//! The paper's headline mechanism in isolation: on branchy code, the
//! SS baseline pays for ROB-walking RMT recovery and a deeper
//! front-end, while STRAIGHT restores RP/SP from one ROB entry
//! (Figure 4). This example prints the recovery accounting
//! side by side.
//!
//! ```sh
//! cargo run --release -p straight-core --example rapid_recovery
//! ```

use straight_core::{build, machines, run_on, Target};

fn main() {
    // Pseudo-random branches defeat the predictor on purpose.
    let src = "
        int lcg = 7;
        int next() { lcg = lcg * 1103515245 + 12345; return (lcg >> 16) & 32767; }
        int main() {
            int s = 0;
            int i;
            for (i = 0; i < 5000; i++) {
                if (next() % 2) s += 3; else s = s ^ i;
            }
            print_int(s);
            return 0;
        }
    ";
    let ss = run_on(&build(src, Target::Riscv).unwrap(), machines::ss_4way(), u64::MAX).unwrap();
    let st = run_on(
        &build(src, Target::StraightRePlus { max_distance: 31 }).unwrap(),
        machines::straight_4way(),
        u64::MAX,
    )
    .unwrap();
    assert_eq!(ss.stdout, st.stdout, "both machines must agree");
    for (name, r) in [("SS-4way", &ss), ("STRAIGHT-4way", &st)] {
        println!(
            "{name:<14} cycles={:>8}  mispredicts={:>6}  squashed={:>8}  recovery-stall={:>7} cycles",
            r.stats.cycles, r.stats.branch_mispredicts, r.stats.squashed, r.stats.recovery_stall_cycles
        );
    }
    println!(
        "\nSTRAIGHT speedup on this branchy kernel: {:+.1} %",
        (ss.stats.cycles as f64 / st.stats.cycles as f64 - 1.0) * 100.0
    );
}
