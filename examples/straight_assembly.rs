//! Hand-written STRAIGHT assembly through the textual assembler,
//! linker, and functional emulator — including the Fibonacci idiom of
//! the paper's Figure 1 (`ADD [1] [2]`).
//!
//! ```sh
//! cargo run --release -p straight-core --example straight_assembly
//! ```

use straight_asm::{link_straight, parse_straight_asm};
use straight_sim::emu::{ExecBackend, StraightEmu};

fn main() {
    // Figure 1's repeated `ADD [1] [2]` computes a Fibonacci series;
    // here it runs 10 steps and prints the result. Note the NOP that
    // equalizes the loop-entry distance with the back-edge distance
    // (the paper's fall-through padding rule).
    let src = "
.text
func main:
    ADDi [0] 0         ; fib a
    ADDi [0] 1         ; fib b
    ADDi [0] 10        ; counter
    NOP                ; entry padding: mimics the loop's branch slot
loop:
    ; loop-entry contract: [1]=branch/NOP [2]=counter [3]=b [4]=a
    ADD [4] [3]        ; next = a + b    (Figure 1's ADD idiom)
    RMOV [4]           ; a' = old b
    RMOV [2]           ; b' = next
    ADDi [5] -1        ; counter--
    BNZ [1] loop
    SYS 1 [3]          ; print_int(b')
    HALT
";

    let prog = parse_straight_asm(src).expect("assembles");
    println!(
        "assembled {} instructions in {} function(s)",
        prog.funcs.iter().map(|f| f.items.len()).sum::<usize>(),
        prog.funcs.len()
    );
    let image = link_straight(&prog).expect("links");
    let result = StraightEmu::new(image).run(100_000);
    println!("stdout: {}", result.stdout.trim());
    println!("retired {} instructions, exit {:?}", result.stats.retired, result.exit_code());
}
