//! Quickstart: compile one MinC program for both machines, run it on
//! the cycle-accurate Table-I models, and compare.
//!
//! ```sh
//! cargo run --release -p straight-core --example quickstart
//! ```

use straight_core::{build, machines, run_on, Target};

fn main() {
    let src = "
        int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
        int main() { print_int(fib(18)); return 0; }
    ";

    println!("source:\n{src}");
    for (target, cfg) in [
        (Target::Riscv, machines::ss_4way()),
        (Target::StraightRePlus { max_distance: 31 }, machines::straight_4way()),
    ] {
        let image = build(src, target).expect("build");
        let r = run_on(&image, cfg.clone(), 100_000_000).expect("machine accepts the image");
        println!(
            "{:<14} -> stdout={:?} exit={:?} cycles={} retired={} IPC={:.2}",
            cfg.name,
            r.stdout.trim(),
            r.exit_code,
            r.stats.cycles,
            r.stats.retired,
            r.stats.ipc()
        );
    }
}
