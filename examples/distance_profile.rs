//! Profile the source-operand distances of a compiled program — the
//! measurement behind Figure 16 and the argument for a short operand
//! field (Section VI-B).
//!
//! ```sh
//! cargo run --release -p straight-core --example distance_profile
//! ```

use straight_core::{build, Target};
use straight_sim::emu::{ExecBackend, StraightEmu};
use straight_workloads::kernels;

fn main() {
    let src = kernels::quicksort(256);
    let image = build(&src, Target::StraightRePlus { max_distance: 1023 }).expect("build");
    let mut emu = StraightEmu::new(image);
    emu.profile_distances = true;
    let r = emu.run(u64::MAX);
    println!("quicksort(256) on STRAIGHT: {} retired, stdout {}", r.stats.retired, r.stdout.trim());
    println!("max operand distance used: {}", r.stats.max_distance_used());
    for k in 0..=7 {
        let d = 1usize << k;
        println!(
            "  operands within distance {d:>4}: {:5.1} %",
            r.stats.cumulative_fraction(d) * 100.0
        );
    }
}
