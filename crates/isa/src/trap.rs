//! The shared typed trap taxonomy.
//!
//! STRAIGHT's claim to fame is *hazardless* execution: write-once
//! registers, bounded operand distances, and single-ROB-read branch
//! recovery. Proving those invariants hold requires that every way a
//! simulation can go wrong is a first-class, typed event rather than a
//! formatted string or a silent wrong value. Both functional emulators,
//! the cycle-accurate cores, and the hazard sanitizer all report
//! faults as a [`Trap`]: a [`TrapKind`] plus the precise architectural
//! context (PC, dynamic instruction index, and — for the pipelined
//! cores — the cycle).
//!
//! The kinds split into three families:
//!
//! * **architectural traps** — the program itself did something
//!   undefined (illegal opcode, wild or misaligned access, an operand
//!   distance that references an instruction that never executed);
//! * **sanitizer traps** — the opt-in hazard sanitizer caught the
//!   *machine* diverging from STRAIGHT semantics (a committed value
//!   that disagrees with the oracle emulator, an RP that desynced from
//!   the ROB, an operand distance above the binary's declared bound);
//! * **liveness traps** — forward progress stopped (the watchdog).

use std::fmt;

use crate::inst::MemWidth;

/// What went wrong. All payloads are small `Copy` data so the kind can
/// travel through `Copy` pipeline structures (fetched-instruction
/// queues, ROB entries) without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapKind {
    /// Instruction fetch left the code segment (or was misaligned).
    FetchFault,
    /// The fetched word does not decode to a valid instruction.
    IllegalInstruction {
        /// The undecodable instruction word.
        word: u32,
    },
    /// A load touched memory outside the simulated address space.
    WildLoad {
        /// Faulting byte address.
        addr: u32,
        /// Access width.
        width: MemWidth,
    },
    /// A store touched memory outside the simulated address space.
    WildStore {
        /// Faulting byte address.
        addr: u32,
        /// Access width.
        width: MemWidth,
    },
    /// A load address was not a multiple of the access width.
    MisalignedLoad {
        /// Faulting byte address.
        addr: u32,
        /// Access width.
        width: MemWidth,
    },
    /// A store address was not a multiple of the access width.
    MisalignedStore {
        /// Faulting byte address.
        addr: u32,
        /// Access width.
        width: MemWidth,
    },
    /// A source operand named a distance further back than the number
    /// of instructions executed on this path (STRAIGHT only): the
    /// referenced producer never existed, so the read would return
    /// ring garbage.
    DistanceOutOfRange {
        /// The out-of-range distance operand.
        dist: u16,
        /// Dynamic instructions executed before this one.
        executed: u64,
    },
    /// Sanitizer: an operand distance exceeded the bound the binary
    /// was compiled for — a compiler distance-fixing bug.
    DistanceAboveBound {
        /// The observed distance.
        dist: u16,
        /// The declared compilation bound.
        bound: u16,
    },
    /// Sanitizer: the stack pointer left the stack region (`SPADD`
    /// misuse — unbalanced frame push/pop).
    SpMisuse {
        /// The offending stack-pointer value.
        sp: u32,
    },
    /// An environment-call code the platform does not implement.
    UnknownSys {
        /// The service code.
        code: u16,
    },
    /// The machine configuration cannot execute this image (wrong
    /// ISA). Raised at construction time, never mid-run.
    IsaMismatch,
    /// Sanitizer: the core committed an instruction at a different PC
    /// than the oracle emulator executed — control flow diverged.
    OraclePcMismatch {
        /// The PC the oracle executed.
        expected: u32,
    },
    /// Sanitizer: the core committed a different result value than
    /// the oracle emulator produced for the same instruction.
    OracleValueMismatch {
        /// The value the oracle produced.
        expected: u32,
        /// The value the core committed.
        got: u32,
    },
    /// Sanitizer: the console output the core produced diverged from
    /// the oracle emulator's (a corrupted value reached an
    /// environment call without passing through a checked register).
    OracleOutputDivergence {
        /// Bytes of output the core has produced.
        core_len: u32,
        /// Bytes of output the oracle has produced.
        oracle_len: u32,
    },
    /// Sanitizer: STRAIGHT's register-pointer arithmetic desynced
    /// from the ROB (the committed destination was not the
    /// architectural RP).
    RpDesync {
        /// The physical register the architectural RP designates.
        expected: u16,
        /// The physical register the core actually wrote.
        got: u16,
    },
    /// The forward-progress watchdog fired: no instruction committed
    /// for the configured number of cycles.
    Watchdog {
        /// Commit-free cycles observed when the watchdog fired.
        stalled_cycles: u64,
    },
    /// Lockstep validation caught the fast (pre-translated) execution
    /// tier diverging from the reference interpreter — a translation
    /// or fusion bug in the emulator itself, never a fault of the
    /// program.
    TierDivergence {
        /// Dynamic instructions the fast tier had executed when the
        /// divergence was detected.
        executed: u64,
    },
}

impl TrapKind {
    /// True for sanitizer-detected machine divergences (as opposed to
    /// architectural faults of the program itself).
    #[must_use]
    pub fn is_sanitizer(&self) -> bool {
        matches!(
            self,
            TrapKind::OraclePcMismatch { .. }
                | TrapKind::OracleValueMismatch { .. }
                | TrapKind::OracleOutputDivergence { .. }
                | TrapKind::RpDesync { .. }
                | TrapKind::DistanceAboveBound { .. }
                | TrapKind::SpMisuse { .. }
        )
    }
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TrapKind::FetchFault => write!(f, "fetch fault"),
            TrapKind::IllegalInstruction { word } => {
                write!(f, "illegal instruction {word:#010x}")
            }
            TrapKind::WildLoad { addr, width } => {
                write!(f, "wild {}-byte load at {addr:#x}", width.bytes())
            }
            TrapKind::WildStore { addr, width } => {
                write!(f, "wild {}-byte store at {addr:#x}", width.bytes())
            }
            TrapKind::MisalignedLoad { addr, width } => {
                write!(f, "misaligned {}-byte load at {addr:#x}", width.bytes())
            }
            TrapKind::MisalignedStore { addr, width } => {
                write!(f, "misaligned {}-byte store at {addr:#x}", width.bytes())
            }
            TrapKind::DistanceOutOfRange { dist, executed } => {
                write!(f, "distance [{dist}] exceeds the {executed} instructions executed")
            }
            TrapKind::DistanceAboveBound { dist, bound } => {
                write!(f, "distance [{dist}] exceeds the compiled bound {bound}")
            }
            TrapKind::SpMisuse { sp } => write!(f, "stack pointer left the stack region: {sp:#x}"),
            TrapKind::UnknownSys { code } => write!(f, "unknown environment-call code {code}"),
            TrapKind::IsaMismatch => write!(f, "image ISA does not match the machine"),
            TrapKind::OraclePcMismatch { expected } => {
                write!(f, "committed PC diverged from the oracle (oracle at {expected:#x})")
            }
            TrapKind::OracleValueMismatch { expected, got } => {
                write!(f, "committed value {got:#x} disagrees with the oracle's {expected:#x}")
            }
            TrapKind::OracleOutputDivergence { core_len, oracle_len } => {
                write!(
                    f,
                    "console output diverged from the oracle ({core_len} vs {oracle_len} bytes)"
                )
            }
            TrapKind::RpDesync { expected, got } => {
                write!(f, "RP desync: committed destination p{got}, architectural RP p{expected}")
            }
            TrapKind::Watchdog { stalled_cycles } => {
                write!(f, "watchdog: no commit for {stalled_cycles} cycles")
            }
            TrapKind::TierDivergence { executed } => {
                write!(f, "fast tier diverged from the interpreter after {executed} instructions")
            }
        }
    }
}

/// A typed trap with full architectural context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trap {
    /// What went wrong.
    pub kind: TrapKind,
    /// PC of the faulting instruction (or the fetch PC for fetch
    /// faults).
    pub pc: u32,
    /// Dynamic instruction index (retired count for emulators, the
    /// commit sequence number for the cycle-accurate cores).
    pub index: u64,
    /// Cycle at which the trap was raised; `None` for the untimed
    /// functional emulators.
    pub cycle: Option<u64>,
}

impl Trap {
    /// A trap in emulator context (no cycle).
    #[must_use]
    pub fn untimed(kind: TrapKind, pc: u32, index: u64) -> Trap {
        Trap { kind, pc, index, cycle: None }
    }

    /// True when two traps describe the same architectural event —
    /// same kind at the same PC — regardless of the timing context in
    /// which they were observed. This is the comparison differential
    /// tests use: the emulator and the cycle-accurate core report the
    /// same `index`-free identity even though their cycle/sequence
    /// bookkeeping differs.
    #[must_use]
    pub fn same_event(&self, other: &Trap) -> bool {
        self.kind == other.kind && self.pc == other.pc
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at pc {:#x} (instruction {}", self.kind, self.pc, self.index)?;
        if let Some(c) = self.cycle {
            write!(f, ", cycle {c}")?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let t = Trap {
            kind: TrapKind::WildLoad { addr: 0x50_0000, width: MemWidth::W },
            pc: 0x1040,
            index: 12,
            cycle: Some(99),
        };
        let s = t.to_string();
        assert!(s.contains("0x500000"), "{s}");
        assert!(s.contains("0x1040"), "{s}");
        assert!(s.contains("cycle 99"), "{s}");
    }

    #[test]
    fn same_event_ignores_timing() {
        let a = Trap::untimed(TrapKind::FetchFault, 0x2000, 5);
        let b = Trap { kind: TrapKind::FetchFault, pc: 0x2000, index: 7, cycle: Some(123) };
        assert!(a.same_event(&b));
        let c = Trap::untimed(TrapKind::FetchFault, 0x2004, 5);
        assert!(!a.same_event(&c));
    }

    #[test]
    fn sanitizer_family() {
        assert!(TrapKind::RpDesync { expected: 1, got: 2 }.is_sanitizer());
        assert!(!TrapKind::FetchFault.is_sanitizer());
    }
}
