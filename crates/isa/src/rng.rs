//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace runs in offline environments with no third-party
//! crates, so randomized tests and the fault-injection harness share
//! this SplitMix64 implementation instead of `rand`/`proptest`.
//! Sequences are fully determined by the seed, which keeps fault
//! injection and property-style tests reproducible.

/// SplitMix64: fast, well-distributed, and trivially seedable.
///
/// ```
/// use straight_isa::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// A value in the inclusive range `lo..=hi`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        debug_assert!(lo <= hi);
        let span = (i64::from(hi) - i64::from(lo) + 1) as u64;
        (i64::from(lo) + self.below(span) as i64) as i32
    }

    /// A random boolean.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = SplitMix64::new(123);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range_i32(-5, 5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::new(99);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.below(8) as usize] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from uniform");
        }
    }
}
