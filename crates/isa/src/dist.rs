use std::fmt;

/// The largest distance a source operand field can express.
///
/// The paper's bit-field format (Figure 1b) gives each source operand
/// up to 10 bits, so the results of the last `2^10 - 1 = 1023`
/// instructions can be referenced. Distance `0` decodes as the zero
/// register.
pub const MAX_DISTANCE: u16 = 1023;

/// A source-operand distance: how many dynamic instructions back the
/// producer of the value is, counted along the executed control-flow
/// path.
///
/// `Dist::ZERO` (distance 0) is the architectural zero register and
/// always reads as `0`.
///
/// ```
/// use straight_isa::Dist;
/// let d = Dist::new(2).unwrap();
/// assert_eq!(d.get(), 2);
/// assert!(Dist::new(2000).is_err());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dist(u16);

/// Error returned when constructing a [`Dist`] out of range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistError(pub u32);

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "distance {} exceeds the maximum of {}", self.0, MAX_DISTANCE)
    }
}

impl std::error::Error for DistError {}

impl Dist {
    /// The zero register: reads as the constant 0.
    pub const ZERO: Dist = Dist(0);

    /// Creates a distance, failing if it exceeds [`MAX_DISTANCE`].
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] when `d > MAX_DISTANCE`.
    pub fn new(d: u32) -> Result<Dist, DistError> {
        if d > u32::from(MAX_DISTANCE) {
            Err(DistError(d))
        } else {
            Ok(Dist(d as u16))
        }
    }

    /// Creates a distance, panicking if out of range.
    ///
    /// # Panics
    ///
    /// Panics when `d > MAX_DISTANCE`. Convenient in tests and codegen
    /// where the bound was already enforced.
    #[must_use]
    pub fn of(d: u32) -> Dist {
        Dist::new(d).expect("distance within MAX_DISTANCE")
    }

    /// The raw distance value.
    #[must_use]
    pub fn get(self) -> u16 {
        self.0
    }

    /// Whether this is the zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.0)
    }
}

impl fmt::Debug for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dist({})", self.0)
    }
}

impl From<Dist> for u16 {
    fn from(d: Dist) -> u16 {
        d.0
    }
}

impl TryFrom<u32> for Dist {
    type Error = DistError;
    fn try_from(d: u32) -> Result<Dist, DistError> {
        Dist::new(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_zero_register() {
        assert!(Dist::ZERO.is_zero());
        assert_eq!(Dist::ZERO.get(), 0);
    }

    #[test]
    fn max_distance_accepted() {
        assert_eq!(Dist::new(u32::from(MAX_DISTANCE)).unwrap().get(), MAX_DISTANCE);
    }

    #[test]
    fn over_max_rejected() {
        assert_eq!(Dist::new(1024), Err(DistError(1024)));
        assert!(DistError(1024).to_string().contains("1024"));
    }

    #[test]
    fn display_uses_brackets() {
        assert_eq!(Dist::of(7).to_string(), "[7]");
    }

    #[test]
    fn ordering_follows_value() {
        assert!(Dist::of(1) < Dist::of(2));
    }
}
