use std::fmt;

/// Register–register ALU operations (RV32IM-equivalent set, Section
/// V-A of the paper equalizes STRAIGHT to RV32IM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

impl AluOp {
    /// All register–register operations, in encoding order.
    pub const ALL: [AluOp; 18] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Sll,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
        AluOp::Mul,
        AluOp::Mulh,
        AluOp::Mulhsu,
        AluOp::Mulhu,
        AluOp::Div,
        AluOp::Divu,
        AluOp::Rem,
        AluOp::Remu,
    ];

    /// The mnemonic, upper-case as in the paper's listings.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "ADD",
            AluOp::Sub => "SUB",
            AluOp::Sll => "SLL",
            AluOp::Slt => "SLT",
            AluOp::Sltu => "SLTU",
            AluOp::Xor => "XOR",
            AluOp::Srl => "SRL",
            AluOp::Sra => "SRA",
            AluOp::Or => "OR",
            AluOp::And => "AND",
            AluOp::Mul => "MUL",
            AluOp::Mulh => "MULH",
            AluOp::Mulhsu => "MULHSU",
            AluOp::Mulhu => "MULHU",
            AluOp::Div => "DIV",
            AluOp::Divu => "DIVU",
            AluOp::Rem => "REM",
            AluOp::Remu => "REMU",
        }
    }

    /// True for the M-extension multiply group (issued to the MUL unit).
    #[must_use]
    pub fn is_mul(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Mulh | AluOp::Mulhsu | AluOp::Mulhu)
    }

    /// True for the M-extension divide group (issued to the DIV unit).
    #[must_use]
    pub fn is_div(self) -> bool {
        matches!(self, AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu)
    }

    /// Evaluates the operation on two 32-bit values with RV32IM
    /// semantics (shift amounts masked to 5 bits, division by zero
    /// yields all-ones / the dividend as in RISC-V).
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> u32 {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Slt => u32::from(sa < sb),
            AluOp::Sltu => u32::from(a < b),
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (sa.wrapping_shr(b & 31)) as u32,
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulh => ((i64::from(sa) * i64::from(sb)) >> 32) as u32,
            AluOp::Mulhsu => ((i64::from(sa) * i64::from(b)) >> 32) as u32,
            AluOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
            AluOp::Div => {
                if b == 0 {
                    u32::MAX
                } else if sa == i32::MIN && sb == -1 {
                    sa as u32
                } else {
                    (sa / sb) as u32
                }
            }
            AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else if sa == i32::MIN && sb == -1 {
                    0
                } else {
                    (sa % sb) as u32
                }
            }
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Register–immediate ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluImmOp {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
}

impl AluImmOp {
    /// All register–immediate operations, in encoding order.
    pub const ALL: [AluImmOp; 9] = [
        AluImmOp::Addi,
        AluImmOp::Slti,
        AluImmOp::Sltiu,
        AluImmOp::Xori,
        AluImmOp::Ori,
        AluImmOp::Andi,
        AluImmOp::Slli,
        AluImmOp::Srli,
        AluImmOp::Srai,
    ];

    /// The mnemonic, matching the paper's listings (`ADDi` etc.).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "ADDi",
            AluImmOp::Slti => "SLTi",
            AluImmOp::Sltiu => "SLTiu",
            AluImmOp::Xori => "XORi",
            AluImmOp::Ori => "ORi",
            AluImmOp::Andi => "ANDi",
            AluImmOp::Slli => "SLLi",
            AluImmOp::Srli => "SRLi",
            AluImmOp::Srai => "SRAi",
        }
    }

    /// The corresponding register–register operation.
    #[must_use]
    pub fn base(self) -> AluOp {
        match self {
            AluImmOp::Addi => AluOp::Add,
            AluImmOp::Slti => AluOp::Slt,
            AluImmOp::Sltiu => AluOp::Sltu,
            AluImmOp::Xori => AluOp::Xor,
            AluImmOp::Ori => AluOp::Or,
            AluImmOp::Andi => AluOp::And,
            AluImmOp::Slli => AluOp::Sll,
            AluImmOp::Srli => AluOp::Srl,
            AluImmOp::Srai => AluOp::Sra,
        }
    }

    /// Evaluates `op(a, imm)` with RISC-V semantics: the immediate is
    /// used as given (callers sign-extend their 12-bit fields).
    #[must_use]
    pub fn eval(self, a: u32, imm: i32) -> u32 {
        self.base().eval(a, imm as u32)
    }

    /// Evaluates `op(a, imm)` with STRAIGHT semantics: the logical
    /// group (`ANDi`, `ORi`, `XORi`) **zero-extends** its 16-bit
    /// immediate (as in MIPS) so that `LUI` + `ORi` materializes any
    /// 32-bit constant; the arithmetic/compare group sign-extends.
    #[must_use]
    pub fn eval_straight(self, a: u32, imm: i16) -> u32 {
        let imm32 = match self {
            AluImmOp::Andi | AluImmOp::Ori | AluImmOp::Xori => u32::from(imm as u16),
            _ => imm as i32 as u32,
        };
        self.base().eval(a, imm32)
    }
}

impl fmt::Display for AluImmOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps() {
        assert_eq!(AluOp::Add.eval(u32::MAX, 1), 0);
    }

    #[test]
    fn slt_is_signed() {
        assert_eq!(AluOp::Slt.eval(-1i32 as u32, 0), 1);
        assert_eq!(AluOp::Sltu.eval(-1i32 as u32, 0), 0);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(AluOp::Sll.eval(1, 33), 2);
        assert_eq!(AluOp::Sra.eval(-8i32 as u32, 1), -4i32 as u32);
    }

    #[test]
    fn riscv_division_semantics() {
        assert_eq!(AluOp::Div.eval(7, 0), u32::MAX);
        assert_eq!(AluOp::Rem.eval(7, 0), 7);
        assert_eq!(AluOp::Div.eval(i32::MIN as u32, -1i32 as u32), i32::MIN as u32);
        assert_eq!(AluOp::Rem.eval(i32::MIN as u32, -1i32 as u32), 0);
        assert_eq!(AluOp::Div.eval(-7i32 as u32, 2), -3i32 as u32);
    }

    #[test]
    fn mulh_variants() {
        assert_eq!(AluOp::Mulh.eval(-1i32 as u32, -1i32 as u32), 0);
        assert_eq!(AluOp::Mulhu.eval(u32::MAX, u32::MAX), u32::MAX - 1);
        assert_eq!(AluOp::Mulhsu.eval(-1i32 as u32, u32::MAX), u32::MAX);
    }

    #[test]
    fn straight_logical_imm_zero_extends() {
        // ORi with "negative" bit pattern must zero-extend in STRAIGHT...
        assert_eq!(AluImmOp::Ori.eval_straight(0, -1), 0x0000_ffff);
        assert_eq!(AluImmOp::Andi.eval_straight(0xffff_ffff, -1), 0x0000_ffff);
        // ...but sign-extend in the shared RISC-V-style eval.
        assert_eq!(AluImmOp::Ori.eval(0, -1), 0xffff_ffff);
        // Arithmetic group sign-extends in both.
        assert_eq!(AluImmOp::Addi.eval_straight(10, -1), 9);
        // LUI + ORi materialization identity.
        let v: u32 = 0xdead_beef;
        let lui = v & 0xffff_0000;
        assert_eq!(AluImmOp::Ori.eval_straight(lui, (v & 0xffff) as u16 as i16), v);
    }

    #[test]
    fn imm_ops_match_base() {
        for (op, a, imm) in [
            (AluImmOp::Addi, 5u32, -3i32),
            (AluImmOp::Andi, 0xff, 0x0f),
            (AluImmOp::Srai, -16i32 as u32, 2),
        ] {
            assert_eq!(op.eval(a, imm), op.base().eval(a, imm as u32));
        }
    }
}
