//! Binary encoding of STRAIGHT instructions.
//!
//! The paper (Figure 1b) fixes only the essentials of the bit-field
//! format: no destination field and up to 10 bits per source operand.
//! This crate commits to a concrete 32-bit layout:
//!
//! ```text
//! R-type: [31:26]=opcode [25:16]=s1 [15:6]=s2 [5:0]=sub
//! I-type: [31:26]=opcode [25:16]=s1 [15:0]=imm16
//! J-type: [31:26]=opcode [25:0]=imm26 (signed word offset)
//! ```

use std::fmt;

use crate::{AluImmOp, AluOp, Dist, Inst, MemWidth};

/// Error returned by [`decode`] on a malformed instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field does not name an instruction.
    BadOpcode(u8),
    /// An ALU sub-opcode field is out of range.
    BadSubOpcode(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            DecodeError::BadSubOpcode(sub) => write!(f, "unknown ALU sub-opcode {sub:#x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

mod opc {
    pub const NOP: u8 = 0;
    pub const ALU: u8 = 1;
    pub const ADDI: u8 = 2;
    pub const SLTI: u8 = 3;
    pub const SLTIU: u8 = 4;
    pub const XORI: u8 = 5;
    pub const ORI: u8 = 6;
    pub const ANDI: u8 = 7;
    pub const SLLI: u8 = 8;
    pub const SRLI: u8 = 9;
    pub const SRAI: u8 = 10;
    pub const LUI: u8 = 11;
    pub const LDW: u8 = 12;
    pub const LDH: u8 = 13;
    pub const LDHU: u8 = 14;
    pub const LDB: u8 = 15;
    pub const LDBU: u8 = 16;
    pub const STW: u8 = 17;
    pub const STH: u8 = 18;
    pub const STB: u8 = 19;
    pub const RMOV: u8 = 20;
    pub const SPADD: u8 = 21;
    pub const BEZ: u8 = 22;
    pub const BNZ: u8 = 23;
    pub const J: u8 = 24;
    pub const JAL: u8 = 25;
    pub const JR: u8 = 26;
    pub const JALR: u8 = 27;
    pub const SYS: u8 = 28;
    pub const HALT: u8 = 29;
}

fn r_type(opcode: u8, s1: Dist, s2: Dist, sub: u8) -> u32 {
    (u32::from(opcode) << 26) | (u32::from(s1.get()) << 16) | (u32::from(s2.get()) << 6) | u32::from(sub)
}

fn i_type(opcode: u8, s1: Dist, imm: u16) -> u32 {
    (u32::from(opcode) << 26) | (u32::from(s1.get()) << 16) | u32::from(imm)
}

fn j_type(opcode: u8, offset: i32) -> u32 {
    (u32::from(opcode) << 26) | ((offset as u32) & 0x03ff_ffff)
}

/// Encodes one instruction into its 32-bit word.
///
/// # Panics
///
/// Panics if a `J`/`JAL` offset does not fit in 26 signed bits; the
/// assembler validates ranges before encoding.
#[must_use]
pub fn encode(inst: &Inst) -> u32 {
    match *inst {
        Inst::Nop => u32::from(opc::NOP) << 26,
        Inst::Alu { op, s1, s2 } => {
            let sub = AluOp::ALL.iter().position(|o| *o == op).expect("op in ALL") as u8;
            r_type(opc::ALU, s1, s2, sub)
        }
        Inst::AluImm { op, s1, imm } => {
            let opcode = match op {
                AluImmOp::Addi => opc::ADDI,
                AluImmOp::Slti => opc::SLTI,
                AluImmOp::Sltiu => opc::SLTIU,
                AluImmOp::Xori => opc::XORI,
                AluImmOp::Ori => opc::ORI,
                AluImmOp::Andi => opc::ANDI,
                AluImmOp::Slli => opc::SLLI,
                AluImmOp::Srli => opc::SRLI,
                AluImmOp::Srai => opc::SRAI,
            };
            i_type(opcode, s1, imm as u16)
        }
        Inst::Lui { imm } => i_type(opc::LUI, Dist::ZERO, imm),
        Inst::Ld { width, addr, offset } => {
            let opcode = match width {
                MemWidth::W => opc::LDW,
                MemWidth::H => opc::LDH,
                MemWidth::Hu => opc::LDHU,
                MemWidth::B => opc::LDB,
                MemWidth::Bu => opc::LDBU,
            };
            i_type(opcode, addr, offset as u16)
        }
        Inst::St { width, val, addr } => {
            let opcode = match width {
                MemWidth::W => opc::STW,
                MemWidth::H | MemWidth::Hu => opc::STH,
                MemWidth::B | MemWidth::Bu => opc::STB,
            };
            r_type(opcode, val, addr, 0)
        }
        Inst::Rmov { s } => r_type(opc::RMOV, s, Dist::ZERO, 0),
        Inst::SpAdd { imm } => i_type(opc::SPADD, Dist::ZERO, imm as u16),
        Inst::Bez { s, offset } => i_type(opc::BEZ, s, offset as u16),
        Inst::Bnz { s, offset } => i_type(opc::BNZ, s, offset as u16),
        Inst::J { offset } => {
            assert!((-(1 << 25)..(1 << 25)).contains(&offset), "J offset out of range");
            j_type(opc::J, offset)
        }
        Inst::Jal { offset } => {
            assert!((-(1 << 25)..(1 << 25)).contains(&offset), "JAL offset out of range");
            j_type(opc::JAL, offset)
        }
        Inst::Jr { s } => r_type(opc::JR, s, Dist::ZERO, 0),
        Inst::Jalr { s } => r_type(opc::JALR, s, Dist::ZERO, 0),
        Inst::Sys { code, s } => i_type(opc::SYS, s, code),
        Inst::Halt => u32::from(opc::HALT) << 26,
    }
}

fn field_s1(word: u32) -> Dist {
    Dist::of((word >> 16) & 0x3ff)
}

fn field_s2(word: u32) -> Dist {
    Dist::of((word >> 6) & 0x3ff)
}

fn field_imm16(word: u32) -> u16 {
    (word & 0xffff) as u16
}

fn field_imm26(word: u32) -> i32 {
    ((word << 6) as i32) >> 6
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] on an unknown opcode or sub-opcode.
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let opcode = (word >> 26) as u8;
    let inst = match opcode {
        opc::NOP => Inst::Nop,
        opc::ALU => {
            let sub = (word & 0x3f) as u8;
            let op = *AluOp::ALL.get(sub as usize).ok_or(DecodeError::BadSubOpcode(sub))?;
            Inst::Alu { op, s1: field_s1(word), s2: field_s2(word) }
        }
        opc::ADDI | opc::SLTI | opc::SLTIU | opc::XORI | opc::ORI | opc::ANDI | opc::SLLI | opc::SRLI | opc::SRAI => {
            let op = match opcode {
                opc::ADDI => AluImmOp::Addi,
                opc::SLTI => AluImmOp::Slti,
                opc::SLTIU => AluImmOp::Sltiu,
                opc::XORI => AluImmOp::Xori,
                opc::ORI => AluImmOp::Ori,
                opc::ANDI => AluImmOp::Andi,
                opc::SLLI => AluImmOp::Slli,
                opc::SRLI => AluImmOp::Srli,
                _ => AluImmOp::Srai,
            };
            Inst::AluImm { op, s1: field_s1(word), imm: field_imm16(word) as i16 }
        }
        opc::LUI => Inst::Lui { imm: field_imm16(word) },
        opc::LDW | opc::LDH | opc::LDHU | opc::LDB | opc::LDBU => {
            let width = match opcode {
                opc::LDW => MemWidth::W,
                opc::LDH => MemWidth::H,
                opc::LDHU => MemWidth::Hu,
                opc::LDB => MemWidth::B,
                _ => MemWidth::Bu,
            };
            Inst::Ld { width, addr: field_s1(word), offset: field_imm16(word) as i16 }
        }
        opc::STW | opc::STH | opc::STB => {
            let width = match opcode {
                opc::STW => MemWidth::W,
                opc::STH => MemWidth::H,
                _ => MemWidth::B,
            };
            Inst::St { width, val: field_s1(word), addr: field_s2(word) }
        }
        opc::RMOV => Inst::Rmov { s: field_s1(word) },
        opc::SPADD => Inst::SpAdd { imm: field_imm16(word) as i16 },
        opc::BEZ => Inst::Bez { s: field_s1(word), offset: field_imm16(word) as i16 },
        opc::BNZ => Inst::Bnz { s: field_s1(word), offset: field_imm16(word) as i16 },
        opc::J => Inst::J { offset: field_imm26(word) },
        opc::JAL => Inst::Jal { offset: field_imm26(word) },
        opc::JR => Inst::Jr { s: field_s1(word) },
        opc::JALR => Inst::Jalr { s: field_s1(word) },
        opc::SYS => Inst::Sys { code: field_imm16(word), s: field_s1(word) },
        opc::HALT => Inst::Halt,
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Inst) {
        assert_eq!(decode(encode(&i)), Ok(i), "roundtrip of {i}");
    }

    #[test]
    fn roundtrip_representatives() {
        roundtrip(Inst::Nop);
        roundtrip(Inst::Halt);
        for op in AluOp::ALL {
            roundtrip(Inst::Alu { op, s1: Dist::of(1023), s2: Dist::of(1) });
        }
        for op in AluImmOp::ALL {
            roundtrip(Inst::AluImm { op, s1: Dist::of(7), imm: -1 });
        }
        roundtrip(Inst::Lui { imm: 0xffff });
        for width in [MemWidth::B, MemWidth::Bu, MemWidth::H, MemWidth::Hu, MemWidth::W] {
            roundtrip(Inst::Ld { width, addr: Dist::of(3), offset: -8 });
        }
        for width in [MemWidth::B, MemWidth::H, MemWidth::W] {
            roundtrip(Inst::St { width, val: Dist::of(2), addr: Dist::of(1) });
        }
        roundtrip(Inst::Rmov { s: Dist::of(10) });
        roundtrip(Inst::SpAdd { imm: -4 });
        roundtrip(Inst::Bez { s: Dist::of(1), offset: -100 });
        roundtrip(Inst::Bnz { s: Dist::of(1), offset: 100 });
        roundtrip(Inst::J { offset: -(1 << 25) });
        roundtrip(Inst::Jal { offset: (1 << 25) - 1 });
        roundtrip(Inst::Jr { s: Dist::of(5) });
        roundtrip(Inst::Jalr { s: Dist::of(5) });
        roundtrip(Inst::Sys { code: 42, s: Dist::of(1) });
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(decode(63 << 26), Err(DecodeError::BadOpcode(63)));
    }

    #[test]
    fn bad_sub_opcode_rejected() {
        let word = (1u32 << 26) | 0x3f;
        assert_eq!(decode(word), Err(DecodeError::BadSubOpcode(0x3f)));
    }

    #[test]
    #[should_panic(expected = "JAL offset out of range")]
    fn jal_range_checked() {
        let _ = encode(&Inst::Jal { offset: 1 << 25 });
    }
}
