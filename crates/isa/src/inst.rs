use std::fmt;

use crate::{AluImmOp, AluOp, Dist};

/// Memory access width for loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 8-bit, sign-extended on load.
    B,
    /// 8-bit, zero-extended on load.
    Bu,
    /// 16-bit, sign-extended on load.
    H,
    /// 16-bit, zero-extended on load.
    Hu,
    /// 32-bit word.
    W,
}

impl MemWidth {
    /// Number of bytes accessed.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::B | MemWidth::Bu => 1,
            MemWidth::H | MemWidth::Hu => 2,
            MemWidth::W => 4,
        }
    }
}

/// Coarse instruction classification used by the retired-mix analysis
/// (Figure 15 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// Jumps and conditional branches.
    JumpBranch,
    /// Arithmetic/logic including immediates and `LUI`.
    Alu,
    /// Loads.
    Ld,
    /// Stores.
    St,
    /// Distance-fixing register moves.
    Rmov,
    /// Padding no-ops.
    Nop,
    /// Everything else (`SPADD`, `SYS`, `HALT`).
    Other,
}

/// One STRAIGHT instruction.
///
/// Every instruction implicitly writes a single fresh destination
/// register (the register number is the value of the hardware register
/// pointer RP at decode); none of the variants carries a destination
/// field. Source operands are [`Dist`]ances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Padding instruction; writes 0.
    Nop,
    /// Register–register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// First source distance.
        s1: Dist,
        /// Second source distance.
        s2: Dist,
    },
    /// Register–immediate ALU operation (16-bit signed immediate;
    /// shifts use the low 5 bits).
    AluImm {
        /// Operation.
        op: AluImmOp,
        /// Source distance.
        s1: Dist,
        /// Immediate.
        imm: i16,
    },
    /// Load upper immediate: writes `imm << 16`.
    Lui {
        /// Upper 16 bits of the result.
        imm: u16,
    },
    /// Load from `[addr] + offset`; writes the loaded value.
    Ld {
        /// Access width.
        width: MemWidth,
        /// Distance to the address producer.
        addr: Dist,
        /// Signed byte offset.
        offset: i16,
    },
    /// Store `[val]` to `[addr]`. Writes the stored value (the paper
    /// specifies the store value is returned if the destination is
    /// referenced).
    St {
        /// Access width.
        width: MemWidth,
        /// Distance to the value producer.
        val: Dist,
        /// Distance to the address producer.
        addr: Dist,
    },
    /// Register move: copies `[s]`; inserted by the compiler for
    /// distance fixing, bounding, and argument arrangement.
    Rmov {
        /// Distance to the copied value.
        s: Dist,
    },
    /// Adds `imm` to the (only overwritable) stack pointer, in order at
    /// decode, and writes the *updated* SP to the destination register.
    SpAdd {
        /// Signed SP adjustment in bytes.
        imm: i16,
    },
    /// Branch to `pc + 4*offset` when `[s] == 0`; writes 0.
    Bez {
        /// Condition source.
        s: Dist,
        /// Signed word offset from this instruction.
        offset: i16,
    },
    /// Branch to `pc + 4*offset` when `[s] != 0`; writes 0.
    Bnz {
        /// Condition source.
        s: Dist,
        /// Signed word offset from this instruction.
        offset: i16,
    },
    /// Unconditional jump to `pc + 4*offset`; writes 0.
    J {
        /// Signed word offset from this instruction (26-bit).
        offset: i32,
    },
    /// Jump-and-link to `pc + 4*offset`; writes the return address
    /// `pc + 4`.
    Jal {
        /// Signed word offset from this instruction (26-bit).
        offset: i32,
    },
    /// Jump to the address in `[s]` (function return); writes the
    /// target address.
    Jr {
        /// Distance to the target-address producer (normally the JAL).
        s: Dist,
    },
    /// Indirect call: jump to `[s]`, writing the return address
    /// `pc + 4`.
    Jalr {
        /// Distance to the target-address producer.
        s: Dist,
    },
    /// Environment call; the code selects the service, `[s]` is the
    /// argument; writes the service result.
    Sys {
        /// Service code (see the simulator crate's `sys` module).
        code: u16,
        /// Distance to the argument value.
        s: Dist,
    },
    /// Stops the machine; writes 0.
    Halt,
}

impl Inst {
    /// The source distances this instruction reads, in operand order.
    /// Zero-register sources are included (they read as constant 0).
    #[must_use]
    pub fn sources(&self) -> [Option<Dist>; 2] {
        match *self {
            Inst::Alu { s1, s2, .. } => [Some(s1), Some(s2)],
            Inst::AluImm { s1, .. } => [Some(s1), None],
            Inst::Ld { addr, .. } => [Some(addr), None],
            Inst::St { val, addr, .. } => [Some(val), Some(addr)],
            Inst::Rmov { s }
            | Inst::Bez { s, .. }
            | Inst::Bnz { s, .. }
            | Inst::Jr { s }
            | Inst::Jalr { s }
            | Inst::Sys { s, .. } => [Some(s), None],
            Inst::Nop | Inst::Lui { .. } | Inst::SpAdd { .. } | Inst::J { .. } | Inst::Jal { .. } | Inst::Halt => {
                [None, None]
            }
        }
    }

    /// Classification for the retired-instruction-mix figure.
    #[must_use]
    pub fn kind(&self) -> InstKind {
        match self {
            Inst::Nop => InstKind::Nop,
            Inst::Rmov { .. } => InstKind::Rmov,
            Inst::Alu { .. } | Inst::AluImm { .. } | Inst::Lui { .. } => InstKind::Alu,
            Inst::Ld { .. } => InstKind::Ld,
            Inst::St { .. } => InstKind::St,
            Inst::Bez { .. } | Inst::Bnz { .. } | Inst::J { .. } | Inst::Jal { .. } | Inst::Jr { .. } | Inst::Jalr { .. } => {
                InstKind::JumpBranch
            }
            Inst::SpAdd { .. } | Inst::Sys { .. } | Inst::Halt => InstKind::Other,
        }
    }

    /// True for control-transfer instructions (potential fetch
    /// redirects).
    #[must_use]
    pub fn is_control(&self) -> bool {
        self.kind() == InstKind::JumpBranch
    }

    /// True for conditional branches.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Bez { .. } | Inst::Bnz { .. })
    }

    /// True for memory instructions (go to the LSQ and memory ports).
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Ld { .. } | Inst::St { .. })
    }

    /// The maximum source distance used, or 0 when all sources are the
    /// zero register or absent. Useful for distance-bounding checks.
    #[must_use]
    pub fn max_source_distance(&self) -> u16 {
        self.sources()
            .into_iter()
            .flatten()
            .map(Dist::get)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Nop => write!(f, "NOP"),
            Inst::Alu { op, s1, s2 } => write!(f, "{op} {s1} {s2}"),
            Inst::AluImm { op, s1, imm } => write!(f, "{op} {s1} {imm}"),
            Inst::Lui { imm } => write!(f, "LUI {imm:#x}"),
            Inst::Ld { width, addr, offset } => write!(f, "LD{} {addr} {offset}", width_suffix(width)),
            Inst::St { width, val, addr } => write!(f, "ST{} {val} {addr}", width_suffix(width)),
            Inst::Rmov { s } => write!(f, "RMOV {s}"),
            Inst::SpAdd { imm } => write!(f, "SPADD {imm}"),
            Inst::Bez { s, offset } => write!(f, "BEZ {s} {offset:+}"),
            Inst::Bnz { s, offset } => write!(f, "BNZ {s} {offset:+}"),
            Inst::J { offset } => write!(f, "J {offset:+}"),
            Inst::Jal { offset } => write!(f, "JAL {offset:+}"),
            Inst::Jr { s } => write!(f, "JR {s}"),
            Inst::Jalr { s } => write!(f, "JALR {s}"),
            Inst::Sys { code, s } => write!(f, "SYS {code} {s}"),
            Inst::Halt => write!(f, "HALT"),
        }
    }
}

fn width_suffix(w: MemWidth) -> &'static str {
    match w {
        MemWidth::B => ".B",
        MemWidth::Bu => ".BU",
        MemWidth::H => ".H",
        MemWidth::Hu => ".HU",
        MemWidth::W => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fibonacci_add_displays_like_paper() {
        let i = Inst::Alu { op: AluOp::Add, s1: Dist::of(1), s2: Dist::of(2) };
        assert_eq!(i.to_string(), "ADD [1] [2]");
    }

    #[test]
    fn sources_of_store_are_val_then_addr() {
        let i = Inst::St { width: MemWidth::W, val: Dist::of(4), addr: Dist::of(7) };
        assert_eq!(i.sources(), [Some(Dist::of(4)), Some(Dist::of(7))]);
        assert_eq!(i.to_string(), "ST [4] [7]");
    }

    #[test]
    fn kinds_match_figure15_categories() {
        assert_eq!(Inst::Nop.kind(), InstKind::Nop);
        assert_eq!(Inst::Rmov { s: Dist::of(1) }.kind(), InstKind::Rmov);
        assert_eq!(Inst::SpAdd { imm: 4 }.kind(), InstKind::Other);
        assert_eq!(Inst::Jal { offset: 2 }.kind(), InstKind::JumpBranch);
        assert_eq!(Inst::Lui { imm: 1 }.kind(), InstKind::Alu);
    }

    #[test]
    fn max_source_distance() {
        let i = Inst::St { width: MemWidth::W, val: Dist::of(4), addr: Dist::of(7) };
        assert_eq!(i.max_source_distance(), 7);
        assert_eq!(Inst::Nop.max_source_distance(), 0);
    }

    #[test]
    fn control_classification() {
        assert!(Inst::Bez { s: Dist::of(1), offset: 2 }.is_cond_branch());
        assert!(Inst::J { offset: -1 }.is_control());
        assert!(!Inst::J { offset: -1 }.is_cond_branch());
        assert!(Inst::Ld { width: MemWidth::W, addr: Dist::of(1), offset: 0 }.is_mem());
    }
}
