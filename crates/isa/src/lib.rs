//! # straight-isa
//!
//! The STRAIGHT instruction set architecture from Irie et al.,
//! *"STRAIGHT: Hazardless Processor Architecture Without Register
//! Renaming"* (MICRO 2018).
//!
//! STRAIGHT is a RISC-like ISA with one defining twist: a source
//! operand is not a register *name* but the **dynamic distance** to the
//! instruction that produced the value. `ADD [1] [2]` adds the results
//! of the previous instruction and the one before it. Every instruction
//! implicitly writes exactly one fresh destination register, registers
//! are therefore *write-once*, and a value expires once
//! [`MAX_DISTANCE`] younger instructions have been fetched. The only
//! overwritable architectural register is the stack pointer, which is
//! manipulated exclusively by [`Inst::SpAdd`].
//!
//! This crate defines the instruction forms ([`Inst`]), the distance
//! operand newtype ([`Dist`]), a concrete 32-bit binary encoding
//! ([`encode`]/[`decode`]) and a disassembler (`Display` impls).
//!
//! ```
//! use straight_isa::{Inst, AluOp, Dist};
//!
//! // The Fibonacci kernel from Figure 1 of the paper.
//! let add = Inst::Alu { op: AluOp::Add, s1: Dist::new(1).unwrap(), s2: Dist::new(2).unwrap() };
//! assert_eq!(add.to_string(), "ADD [1] [2]");
//! let word = straight_isa::encode(&add);
//! assert_eq!(straight_isa::decode(word).unwrap(), add);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod encode;
mod inst;
mod op;
pub mod rng;
pub mod trap;

pub use dist::{Dist, DistError, MAX_DISTANCE};
pub use encode::{decode, encode, DecodeError};
pub use inst::{Inst, InstKind, MemWidth};
pub use op::{AluImmOp, AluOp};
pub use trap::{Trap, TrapKind};

/// Byte size of one encoded STRAIGHT instruction.
pub const INST_BYTES: u32 = 4;
