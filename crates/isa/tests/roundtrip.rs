//! Property-style tests driven by the in-repo deterministic PRNG
//! (no third-party crates): encode/decode round-trips for every
//! representable instruction, and decode never panics on arbitrary
//! words.

use straight_isa::rng::SplitMix64;
use straight_isa::{decode, encode, AluImmOp, AluOp, Dist, Inst, MemWidth};

const CASES: u64 = 4096;

fn dist(r: &mut SplitMix64) -> Dist {
    Dist::of(r.below(1024) as u32)
}

fn mem_width(r: &mut SplitMix64) -> MemWidth {
    [MemWidth::B, MemWidth::Bu, MemWidth::H, MemWidth::Hu, MemWidth::W][r.below(5) as usize]
}

fn store_width(r: &mut SplitMix64) -> MemWidth {
    [MemWidth::B, MemWidth::H, MemWidth::W][r.below(3) as usize]
}

fn any_i16(r: &mut SplitMix64) -> i16 {
    r.next_u32() as u16 as i16
}

fn jump_offset(r: &mut SplitMix64) -> i32 {
    r.range_i32(-(1 << 25), (1 << 25) - 1)
}

fn inst(r: &mut SplitMix64) -> Inst {
    match r.below(16) {
        0 => Inst::Nop,
        1 => Inst::Halt,
        2 => Inst::Alu {
            op: AluOp::ALL[r.below(AluOp::ALL.len() as u64) as usize],
            s1: dist(r),
            s2: dist(r),
        },
        3 => Inst::AluImm {
            op: AluImmOp::ALL[r.below(AluImmOp::ALL.len() as u64) as usize],
            s1: dist(r),
            imm: any_i16(r),
        },
        4 => Inst::Lui { imm: r.next_u32() as u16 },
        5 => Inst::Ld { width: mem_width(r), addr: dist(r), offset: any_i16(r) },
        6 => Inst::St { width: store_width(r), val: dist(r), addr: dist(r) },
        7 => Inst::Rmov { s: dist(r) },
        8 => Inst::SpAdd { imm: any_i16(r) },
        9 => Inst::Bez { s: dist(r), offset: any_i16(r) },
        10 => Inst::Bnz { s: dist(r), offset: any_i16(r) },
        11 => Inst::J { offset: jump_offset(r) },
        12 => Inst::Jal { offset: jump_offset(r) },
        13 => Inst::Jr { s: dist(r) },
        14 => Inst::Jalr { s: dist(r) },
        _ => Inst::Sys { code: r.next_u32() as u16, s: dist(r) },
    }
}

#[test]
fn encode_decode_roundtrip() {
    let mut r = SplitMix64::new(0x5712_a167_0001);
    for _ in 0..CASES {
        let i = inst(&mut r);
        assert_eq!(decode(encode(&i)).unwrap(), i, "round-trip failed for {i}");
    }
}

#[test]
fn decode_total_no_panic() {
    let mut r = SplitMix64::new(0x5712_a167_0002);
    for _ in 0..CASES {
        let _ = decode(r.next_u32());
    }
    // Structured corners: all-ones, all-zeros, sign-bit patterns.
    for word in [0, u32::MAX, 0x8000_0000, 0x7fff_ffff, 0xaaaa_aaaa, 0x5555_5555] {
        let _ = decode(word);
    }
}

#[test]
fn decoded_sources_within_bounds() {
    let mut r = SplitMix64::new(0x5712_a167_0003);
    for _ in 0..CASES {
        if let Ok(i) = decode(r.next_u32()) {
            for s in i.sources().into_iter().flatten() {
                assert!(s.get() <= 1023);
            }
        }
    }
}

#[test]
fn display_never_empty() {
    let mut r = SplitMix64::new(0x5712_a167_0004);
    for _ in 0..CASES {
        assert!(!inst(&mut r).to_string().is_empty());
    }
}
