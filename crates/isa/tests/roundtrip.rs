//! Property tests: encode/decode round-trips for every representable
//! instruction, and decode never panics on arbitrary words.

use proptest::prelude::*;
use straight_isa::{decode, encode, AluImmOp, AluOp, Dist, Inst, MemWidth};

fn dist() -> impl Strategy<Value = Dist> {
    (0u32..=1023).prop_map(Dist::of)
}

fn mem_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::B),
        Just(MemWidth::Bu),
        Just(MemWidth::H),
        Just(MemWidth::Hu),
        Just(MemWidth::W),
    ]
}

fn store_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![Just(MemWidth::B), Just(MemWidth::H), Just(MemWidth::W)]
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

fn alu_imm_op() -> impl Strategy<Value = AluImmOp> {
    (0usize..AluImmOp::ALL.len()).prop_map(|i| AluImmOp::ALL[i])
}

fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Halt),
        (alu_op(), dist(), dist()).prop_map(|(op, s1, s2)| Inst::Alu { op, s1, s2 }),
        (alu_imm_op(), dist(), any::<i16>()).prop_map(|(op, s1, imm)| Inst::AluImm { op, s1, imm }),
        any::<u16>().prop_map(|imm| Inst::Lui { imm }),
        (mem_width(), dist(), any::<i16>()).prop_map(|(width, addr, offset)| Inst::Ld { width, addr, offset }),
        (store_width(), dist(), dist()).prop_map(|(width, val, addr)| Inst::St { width, val, addr }),
        dist().prop_map(|s| Inst::Rmov { s }),
        any::<i16>().prop_map(|imm| Inst::SpAdd { imm }),
        (dist(), any::<i16>()).prop_map(|(s, offset)| Inst::Bez { s, offset }),
        (dist(), any::<i16>()).prop_map(|(s, offset)| Inst::Bnz { s, offset }),
        (-(1i32 << 25)..(1i32 << 25)).prop_map(|offset| Inst::J { offset }),
        (-(1i32 << 25)..(1i32 << 25)).prop_map(|offset| Inst::Jal { offset }),
        dist().prop_map(|s| Inst::Jr { s }),
        dist().prop_map(|s| Inst::Jalr { s }),
        (any::<u16>(), dist()).prop_map(|(code, s)| Inst::Sys { code, s }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(i in inst()) {
        prop_assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn decode_total_no_panic(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn decoded_sources_within_bounds(word in any::<u32>()) {
        if let Ok(i) = decode(word) {
            for s in i.sources().into_iter().flatten() {
                prop_assert!(s.get() <= 1023);
            }
        }
    }

    #[test]
    fn display_never_empty(i in inst()) {
        prop_assert!(!i.to_string().is_empty());
    }
}
