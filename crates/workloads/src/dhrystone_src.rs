//! The Dhrystone-like workload, adapted from the structure of
//! Dhrystone 2.1 (Weicker): record manipulation through pointers,
//! 30-character string copy/compare, a chain of small procedures with
//! enum/bool/char logic, and a global integer/array mix. MinC has no
//! structs, so the two `Record_Type` instances live in parallel
//! arrays indexed by a record id — the same loads/stores a
//! field-offset access would produce.

/// MinC source; `__ITER__` is replaced with the run count.
pub const SOURCE: &str = r#"
int RUNS = __ITER__;

// Record pool: two records, fields as parallel arrays.
int rec_ptr[2];     // PtrComp: index of the next record
int rec_discr[2];
int rec_enum[2];
int rec_int[2];
byte rec_str[64];   // 31 bytes per record, record r at offset r*31

int Int_Glob;
int Bool_Glob;
int Ch_1_Glob;
int Ch_2_Glob;
int Arr_1_Glob[50];
int Arr_2_Glob[2500]; // 50 x 50

byte Str_1_Loc[31];
byte Str_2_Loc[31];

void strcpy_(byte* dst, byte* src) {
    int i = 0;
    while (src[i]) { dst[i] = src[i]; i++; }
    dst[i] = 0;
}

int strcmp_(byte* a, byte* b) {
    int i = 0;
    while (a[i] && a[i] == b[i]) i++;
    return a[i] - b[i];
}

int Func_1(int ch_1, int ch_2) {
    int ch_1_loc = ch_1;
    int ch_2_loc = ch_1_loc;
    if (ch_2_loc != ch_2) return 0;       // Ident_1
    Ch_1_Glob = ch_1_loc;
    return 1;                             // Ident_2
}

int Func_2(byte* str_1, byte* str_2) {
    int int_loc = 2;
    int ch_loc = 0;
    while (int_loc <= 2) {
        if (Func_1(str_1[int_loc], str_2[int_loc + 1]) == 0) {
            ch_loc = 'A';
            int_loc = int_loc + 1;
        }
    }
    if (ch_loc >= 'W' && ch_loc < 'Z') int_loc = 7;
    if (ch_loc == 'R') return 1;
    if (strcmp_(str_1, str_2) > 0) {
        int_loc = int_loc + 7;
        Int_Glob = int_loc;
        return 1;
    }
    return 0;
}

int Func_3(int enum_par) {
    int enum_loc = enum_par;
    if (enum_loc == 2) return 1;          // Ident_3
    return 0;
}

void Proc_6(int enum_val, int* enum_ref) {
    *enum_ref = enum_val;
    if (Func_3(enum_val) == 0) *enum_ref = 3;
    if (enum_val == 0) *enum_ref = 0;
    else if (enum_val == 1) { if (Int_Glob > 100) *enum_ref = 0; else *enum_ref = 3; }
    else if (enum_val == 2) *enum_ref = 1;
    else if (enum_val == 4) *enum_ref = 2;
}

void Proc_7(int int_1, int int_2, int* int_out) {
    int int_loc = int_1 + 2;
    *int_out = int_2 + int_loc;
}

void Proc_8(int* arr_1, int* arr_2, int int_1, int int_2) {
    int int_loc = int_1 + 5;
    arr_1[int_loc] = int_2;
    arr_1[int_loc + 1] = arr_1[int_loc];
    arr_1[int_loc + 30] = int_loc;
    int idx;
    for (idx = int_loc; idx <= int_loc + 1; idx++) arr_2[int_loc * 50 + idx] = int_loc;
    arr_2[int_loc * 50 + int_loc - 1] = arr_2[int_loc * 50 + int_loc - 1] + 1;
    arr_2[(int_loc + 20) * 50 + int_loc] = arr_1[int_loc];
    Int_Glob = 5;
}

void Proc_5() {
    Ch_1_Glob = 'A';
    Bool_Glob = 0;
}

void Proc_4() {
    int bool_loc = Ch_1_Glob == 'A';
    bool_loc = bool_loc | Bool_Glob;
    Ch_2_Glob = 'B';
}

void Proc_3(int* ptr_ref) {
    if (rec_ptr[0] >= 0) *ptr_ref = rec_ptr[0];
    Proc_7(10, Int_Glob, &rec_int[0]);
}

void Proc_2(int* int_par_ref) {
    int int_loc = *int_par_ref + 10;
    int enum_loc = 0;
    int done = 0;
    while (done == 0) {
        if (Ch_1_Glob == 'A') {
            int_loc = int_loc - 1;
            *int_par_ref = int_loc - Int_Glob;
            enum_loc = 1;
        }
        if (enum_loc == 1) done = 1;
    }
}

void Proc_1(int ptr_val_par) {
    int next = rec_ptr[ptr_val_par];
    // *Ptr_Val_Par->Ptr_Comp = *Ptr_Glob (structure assignment)
    rec_ptr[next] = rec_ptr[0];
    rec_discr[next] = rec_discr[0];
    rec_enum[next] = rec_enum[0];
    rec_int[next] = rec_int[0];
    rec_int[ptr_val_par] = 5;
    rec_int[next] = rec_int[ptr_val_par];
    rec_ptr[next] = rec_ptr[ptr_val_par];
    Proc_3(&rec_ptr[next]);
    if (rec_discr[next] == 0) {
        rec_int[next] = 6;
        Proc_6(rec_enum[ptr_val_par], &rec_enum[next]);
        rec_ptr[next] = rec_ptr[0];
        Proc_7(rec_int[next], 10, &rec_int[next]);
    } else {
        rec_ptr[ptr_val_par] = rec_ptr[next];
        rec_discr[ptr_val_par] = rec_discr[next];
        rec_enum[ptr_val_par] = rec_enum[next];
        rec_int[ptr_val_par] = rec_int[next];
    }
}

int main() {
    int int_1_loc;
    int int_2_loc;
    int int_3_loc = 0;
    int ch_index;
    int enum_loc;
    int run_index;

    // Initialization, as in dhry_1.c main().
    rec_ptr[1] = 0;                 // Next_Ptr_Glob
    rec_ptr[0] = 1;                 // Ptr_Glob->Ptr_Comp = Next
    rec_discr[0] = 0;               // Ident_1
    rec_enum[0] = 2;                // Ident_3
    rec_int[0] = 40;
    strcpy_(&rec_str[0], "DHRYSTONE PROGRAM, SOME STRING");
    strcpy_(Str_1_Loc, "DHRYSTONE PROGRAM, 1'ST STRING");
    Arr_2_Glob[8 * 50 + 7] = 10;

    for (run_index = 1; run_index <= RUNS; run_index++) {
        Proc_5();
        Proc_4();
        int_1_loc = 2;
        int_2_loc = 3;
        strcpy_(Str_2_Loc, "DHRYSTONE PROGRAM, 2'ND STRING");
        enum_loc = 1;
        Bool_Glob = Func_2(Str_1_Loc, Str_2_Loc) == 0;
        while (int_1_loc < int_2_loc) {
            int_3_loc = 5 * int_1_loc - int_2_loc;
            Proc_7(int_1_loc, int_2_loc, &int_3_loc);
            int_1_loc = int_1_loc + 1;
        }
        Proc_8(Arr_1_Glob, Arr_2_Glob, int_1_loc, int_3_loc);
        Proc_1(0);
        for (ch_index = 'A'; ch_index <= Ch_2_Glob; ch_index++) {
            if (enum_loc == Func_1(ch_index, 'C')) {
                Proc_6(0, &enum_loc);
                strcpy_(Str_2_Loc, "DHRYSTONE PROGRAM, 3'RD STRING");
                Int_Glob = run_index;
            }
        }
        int_2_loc = int_2_loc * int_1_loc;
        int_1_loc = int_2_loc / int_3_loc;
        int_2_loc = 7 * (int_2_loc - int_3_loc) - int_1_loc;
        Proc_2(&int_1_loc);
    }

    // Checksum over the observable state (stands in for Dhrystone's
    // printed validation values).
    int sum = Int_Glob;
    sum = sum * 31 + Bool_Glob;
    sum = sum * 31 + Ch_1_Glob;
    sum = sum * 31 + Ch_2_Glob;
    sum = sum * 31 + Arr_1_Glob[7];
    sum = sum * 31 + Arr_2_Glob[8 * 50 + 7];
    sum = sum * 31 + rec_int[0] + rec_int[1];
    sum = sum * 31 + int_3_loc;
    int i;
    for (i = 0; i < 31 && Str_2_Loc[i]; i++) sum = sum + Str_2_Loc[i];
    print_int(sum);
    return 0;
}
"#;
