//! Small MinC kernels for tests, examples, and microbenchmarks.

/// Iterative Fibonacci printing `fib(n)`.
#[must_use]
pub fn fibonacci(n: u32) -> String {
    format!(
        "int main() {{
             int a = 0;
             int b = 1;
             int i;
             for (i = 0; i < {n}; i++) {{ int t = a + b; a = b; b = t; }}
             print_int(a);
             return 0;
         }}"
    )
}

/// Recursive Fibonacci (call-heavy).
#[must_use]
pub fn fibonacci_recursive(n: u32) -> String {
    format!(
        "int fib(int n) {{ if (n < 2) return n; return fib(n - 1) + fib(n - 2); }}
         int main() {{ print_int(fib({n})); return 0; }}"
    )
}

/// Sieve of Eratosthenes counting primes below `limit` (≤ 4096).
#[must_use]
pub fn sieve(limit: u32) -> String {
    assert!(limit <= 4096, "sieve buffer is 4096 bytes");
    format!(
        "byte composite[4096];
         int main() {{
             int count = 0;
             int i;
             int j;
             for (i = 2; i < {limit}; i++) {{
                 if (composite[i] == 0) {{
                     count++;
                     for (j = i + i; j < {limit}; j += i) composite[j] = 1;
                 }}
             }}
             print_int(count);
             return 0;
         }}"
    )
}

/// Quicksort over a pseudo-random array, printing a checksum.
#[must_use]
pub fn quicksort(n: u32) -> String {
    assert!(n <= 512);
    format!(
        "int data[512];
         void qsort_(int* a, int lo, int hi) {{
             if (lo >= hi) return;
             int pivot = a[(lo + hi) / 2];
             int i = lo;
             int j = hi;
             while (i <= j) {{
                 while (a[i] < pivot) i++;
                 while (a[j] > pivot) j -= 1;
                 if (i <= j) {{
                     int t = a[i]; a[i] = a[j]; a[j] = t;
                     i++;
                     j -= 1;
                 }}
             }}
             qsort_(a, lo, j);
             qsort_(a, i, hi);
         }}
         int main() {{
             int s = 42;
             int i;
             for (i = 0; i < {n}; i++) {{ s = s * 1103515245 + 12345; data[i] = (s >> 16) & 1023; }}
             qsort_(data, 0, {n} - 1);
             int sum = 0;
             for (i = 0; i < {n}; i++) sum = sum * 3 + data[i];
             print_int(sum);
             return 0;
         }}"
    )
}

/// CRC-32 over a generated buffer (bit-twiddling heavy).
#[must_use]
pub fn crc32(len: u32) -> String {
    assert!(len <= 2048);
    format!(
        "byte buf[2048];
         int main() {{
             int i;
             int s = 7;
             for (i = 0; i < {len}; i++) {{ s = s * 1103515245 + 12345; buf[i] = (s >> 16) & 255; }}
             int crc = -1;
             for (i = 0; i < {len}; i++) {{
                 crc = crc ^ buf[i];
                 int k;
                 for (k = 0; k < 8; k++) {{
                     int mask = -(crc & 1);
                     crc = ((crc >> 1) & 0x7FFFFFFF) ^ (0xEDB88320 & mask);
                 }}
             }}
             print_int(crc ^ -1);
             return 0;
         }}"
    )
}

/// Dense 16x16 integer matrix multiply, printing the trace.
#[must_use]
pub fn matmul() -> String {
    "int a[256];
     int b[256];
     int c[256];
     int main() {
         int i;
         int j;
         int k;
         for (i = 0; i < 256; i++) { a[i] = i % 7 + 1; b[i] = i % 5 + 2; }
         for (i = 0; i < 16; i++)
             for (j = 0; j < 16; j++) {
                 int acc = 0;
                 for (k = 0; k < 16; k++) acc += a[i * 16 + k] * b[k * 16 + j];
                 c[i * 16 + j] = acc;
             }
         int trace = 0;
         for (i = 0; i < 16; i++) trace += c[i * 16 + i];
         print_int(trace);
         return 0;
     }"
    .to_string()
}

/// String utilities exercised over byte arrays.
#[must_use]
pub fn string_ops() -> String {
    r#"
byte buf[128];
int strlen_(byte* s) { int n = 0; while (s[n]) n++; return n; }
void strcat_(byte* dst, byte* src) {
    int n = strlen_(dst);
    int i = 0;
    while (src[i]) { dst[n + i] = src[i]; i++; }
    dst[n + i] = 0;
}
int main() {
    strcat_(buf, "hazardless ");
    strcat_(buf, "processor ");
    strcat_(buf, "architecture");
    int sum = 0;
    int i;
    for (i = 0; buf[i]; i++) sum = sum * 31 + buf[i];
    print_int(sum);
    print_int(strlen_(buf));
    return 0;
}
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_are_nonempty_and_parameterized() {
        assert!(fibonacci(10).contains("for"));
        assert!(fibonacci_recursive(5).contains("fib"));
        assert!(sieve(100).contains("100"));
        assert!(quicksort(64).contains("qsort_"));
        assert!(crc32(128).contains("0xEDB88320"));
        assert!(matmul().contains("acc"));
        assert!(string_ops().contains("strcat_"));
    }

    #[test]
    #[should_panic(expected = "sieve buffer")]
    fn sieve_bounds_checked() {
        let _ = sieve(5000);
    }
}
