//! # straight-workloads
//!
//! MinC benchmark sources for the STRAIGHT reproduction.
//!
//! The paper evaluates Dhrystone 2.1 and CoreMark. Those cannot be
//! redistributed (and need a libc), so this crate provides
//! re-implementations of their *workload character* in MinC (see
//! DESIGN.md for the substitution argument):
//!
//! * [`dhrystone`] — record (struct-as-array) manipulation, 30-byte
//!   string copy/compare, a chain of small procedures; few values live
//!   across control-flow merges.
//! * [`coremark`] — the three CoreMark kernels: linked-list
//!   find/mergesort, matrix operations, and a table-driven state
//!   machine, results folded through a CRC-16; noticeably more live
//!   values across merges (the property driving the paper's RAW vs
//!   RE+ gap, Figures 11/12/15).
//! * [`kernels`] — small programs for tests, examples, and
//!   microbenchmarks.
//!
//! All workloads print a checksum so functional correctness can be
//! validated on every machine model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;

mod coremark_src;
mod dhrystone_src;

/// The Dhrystone-like benchmark, performing `iterations` passes.
/// Prints a checksum and returns 0.
#[must_use]
pub fn dhrystone(iterations: u32) -> String {
    dhrystone_src::SOURCE.replace("__ITER__", &iterations.to_string())
}

/// The CoreMark-like benchmark, performing `iterations` passes.
/// Prints the final CRC and returns 0.
#[must_use]
pub fn coremark(iterations: u32) -> String {
    coremark_src::SOURCE.replace("__ITER__", &iterations.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_substitute() {
        let d = dhrystone(7);
        assert!(d.contains("int RUNS = 7;"));
        assert!(!d.contains("__ITER__"));
        let c = coremark(3);
        assert!(c.contains("int RUNS = 3;"));
        assert!(!c.contains("__ITER__"));
    }
}
