//! The CoreMark-like workload: the three EEMBC CoreMark kernels —
//! linked-list processing (find + merge sort), matrix arithmetic,
//! and a table-driven state machine over an input string — with each
//! kernel's result folded into a CRC-16, exactly the benchmark's
//! validation scheme. The list is kept as parallel `val`/`next`
//! arrays (MinC has no structs); `next` holds node indices with `-1`
//! as NULL.
//!
//! Compared to the Dhrystone-like workload this carries far more
//! values live across loop/merge boundaries (list pointers, matrix
//! accumulators, CRC state, loop bounds), which is what inflates the
//! RAW compiler's RMOV count in Figures 11/12/15.

/// MinC source; `__ITER__` is replaced with the run count.
pub const SOURCE: &str = r#"
int RUNS = __ITER__;

int list_val[36];
int list_next[36];
int list_head;

int mat_a[64];   // 8x8
int mat_b[64];
int mat_c[64];

byte sm_input[64];

int crc16(int data, int crc) {
    int i;
    for (i = 0; i < 16; i++) {
        int bit = (data >> i) & 1;
        int c = crc & 1;
        crc = (crc >> 1) & 32767;
        if (bit != c) crc = crc ^ 0xA001;
    }
    return crc & 0xFFFF;
}

// ---- Kernel 1: linked list ------------------------------------

void list_init(int n, int seed) {
    int i;
    for (i = 0; i < n; i++) {
        list_val[i] = (seed * (i + 1) * 2654435761) >> 20 & 255;
        list_next[i] = i + 1;
    }
    list_next[n - 1] = -1;
    list_head = 0;
}

int list_find(int value) {
    int cur = list_head;
    int idx = 0;
    while (cur >= 0) {
        if (list_val[cur] == value) return idx;
        cur = list_next[cur];
        idx++;
    }
    return -1;
}

int list_reverse() {
    int prev = -1;
    int cur = list_head;
    while (cur >= 0) {
        int nxt = list_next[cur];
        list_next[cur] = prev;
        prev = cur;
        cur = nxt;
    }
    list_head = prev;
    return prev;
}

// Merge two sorted chains by value; returns the new head.
int list_merge(int a, int b) {
    int head = -1;
    int tail = -1;
    while (a >= 0 && b >= 0) {
        int pick;
        if (list_val[a] <= list_val[b]) { pick = a; a = list_next[a]; }
        else { pick = b; b = list_next[b]; }
        if (tail < 0) head = pick;
        else list_next[tail] = pick;
        tail = pick;
    }
    int rest;
    if (a >= 0) rest = a; else rest = b;
    if (tail < 0) head = rest;
    else list_next[tail] = rest;
    return head;
}

// Bottom-up merge sort on the chain starting at list_head.
void list_sort(int n) {
    int width = 1;
    while (width < n) {
        int result = -1;
        int result_tail = -1;
        int cur = list_head;
        while (cur >= 0) {
            // Split off two runs of `width`.
            int left = cur;
            int i = 1;
            int p = cur;
            while (i < width && list_next[p] >= 0) { p = list_next[p]; i++; }
            int right = list_next[p];
            list_next[p] = -1;
            int q = right;
            if (q >= 0) {
                i = 1;
                while (i < width && list_next[q] >= 0) { q = list_next[q]; i++; }
                cur = list_next[q];
                list_next[q] = -1;
            } else {
                cur = -1;
            }
            int merged = list_merge(left, right);
            if (result_tail < 0) result = merged;
            else list_next[result_tail] = merged;
            // Walk to the tail of the merged run.
            int t = merged;
            while (list_next[t] >= 0) t = list_next[t];
            result_tail = t;
        }
        list_head = result;
        width = width * 2;
    }
}

int bench_list(int seed) {
    int n = 36;
    list_init(n, seed);
    int crc = 0;
    int found = list_find((seed * 7) & 255);
    crc = crc16(found, crc);
    list_reverse();
    crc = crc16(list_val[list_head], crc);
    list_sort(n);
    int cur = list_head;
    int acc = 0;
    while (cur >= 0) {
        acc = acc * 31 + list_val[cur];
        cur = list_next[cur];
    }
    crc = crc16(acc, crc);
    return crc;
}

// ---- Kernel 2: matrix -----------------------------------------

void matrix_init(int seed) {
    int i;
    for (i = 0; i < 64; i++) {
        mat_a[i] = (seed + i * 17) % 97;
        mat_b[i] = (seed * 3 + i * 29) % 89;
    }
}

int matrix_mul() {
    int r;
    int c;
    int k;
    int sum = 0;
    for (r = 0; r < 8; r++) {
        for (c = 0; c < 8; c++) {
            int acc = 0;
            for (k = 0; k < 8; k++) acc = acc + mat_a[r * 8 + k] * mat_b[k * 8 + c];
            mat_c[r * 8 + c] = acc;
            sum = sum + acc;
        }
    }
    return sum;
}

int matrix_bitops() {
    int i;
    int acc = 0;
    for (i = 0; i < 64; i++) {
        mat_c[i] = (mat_c[i] >> 2) ^ (mat_a[i] & mat_b[i]);
        acc = acc + mat_c[i];
    }
    return acc;
}

int bench_matrix(int seed) {
    matrix_init(seed);
    int crc = 0;
    crc = crc16(matrix_mul(), crc);
    crc = crc16(matrix_bitops(), crc);
    return crc;
}

// ---- Kernel 3: state machine ----------------------------------

// States: 0 START, 1 INT, 2 FLOAT, 3 EXPONENT, 4 SIGN, 5 INVALID.
int sm_counts[6];

void sm_build_input(int seed) {
    byte* digits = "0123456789+-.e,X";
    int i;
    int s = seed;
    for (i = 0; i < 63; i++) {
        s = s * 1103515245 + 12345;
        int pick = (s >> 16) & 15;
        sm_input[i] = digits[pick];
    }
    sm_input[63] = 0;
}

int sm_is_digit(int c) { return c >= '0' && c <= '9'; }

int bench_state(int seed) {
    sm_build_input(seed);
    int i;
    for (i = 0; i < 6; i++) sm_counts[i] = 0;
    int state = 0;
    for (i = 0; i < 63; i++) {
        int c = sm_input[i];
        if (c == ',') { sm_counts[state]++; state = 0; continue; }
        if (state == 0) {
            if (sm_is_digit(c)) state = 1;
            else if (c == '+' || c == '-') state = 4;
            else if (c == '.') state = 2;
            else state = 5;
        } else if (state == 1) {
            if (c == '.') state = 2;
            else if (c == 'e') state = 3;
            else if (sm_is_digit(c) == 0) state = 5;
        } else if (state == 2) {
            if (c == 'e') state = 3;
            else if (sm_is_digit(c) == 0) state = 5;
        } else if (state == 3) {
            if (c == '+' || c == '-') state = 4;
            else if (sm_is_digit(c) == 0) state = 5;
        } else if (state == 4) {
            if (sm_is_digit(c)) state = 1;
            else state = 5;
        }
    }
    sm_counts[state]++;
    int crc = 0;
    for (i = 0; i < 6; i++) crc = crc16(sm_counts[i], crc);
    return crc;
}

// ---- Driver -----------------------------------------------------

int main() {
    int crc = 0;
    int run;
    for (run = 1; run <= RUNS; run++) {
        int seed = run * 2147 + 13;
        crc = crc16(bench_list(seed), crc);
        crc = crc16(bench_matrix(seed), crc);
        crc = crc16(bench_state(seed), crc);
    }
    print_int(crc);
    return 0;
}
"#;
