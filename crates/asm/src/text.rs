//! Textual STRAIGHT assembler accepting the paper's listing syntax.

use std::fmt;

use straight_isa::{AluImmOp, AluOp, Dist, Inst, MemWidth};

use crate::object::{DataItem, SFunc, SItem, SProgram, SReloc};

/// Assembly syntax error with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: u32,
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// Parses STRAIGHT assembly text into a linkable [`SProgram`].
///
/// Syntax, matching the paper's listings:
///
/// ```text
/// .data
/// tab:   .space 40
/// msg:   .asciz "hi"
/// .text
/// func main:
/// loop:
///     ADDi [0] 1
///     ADD [1] [2]
///     BEZ [1] loop
///     JR [4]
/// ```
///
/// Comments start with `;`, `#`, or `//`.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line.
pub fn parse_straight_asm(src: &str) -> Result<SProgram, AsmError> {
    let mut prog = SProgram::default();
    let mut in_text = true;
    let mut cur: Option<SFunc> = None;

    for (lineno, raw) in src.lines().enumerate() {
        let line = (lineno + 1) as u32;
        let err = |msg: &str| AsmError { line, msg: msg.to_string() };
        let mut text = raw;
        for marker in [";", "#", "//"] {
            if let Some(i) = text.find(marker) {
                text = &text[..i];
            }
        }
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        if text == ".text" {
            in_text = true;
            continue;
        }
        if text == ".data" {
            in_text = false;
            continue;
        }
        if !in_text {
            // `name: .directive args`
            let (name, rest) = text.split_once(':').ok_or_else(|| err("expected `name: .directive`"))?;
            let name = name.trim().to_string();
            let rest = rest.trim();
            let (dir, args) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
            let item = match dir {
                ".space" => {
                    let n: u32 = args.trim().parse().map_err(|_| err("bad .space size"))?;
                    DataItem { name, size: n, align: 4, init: vec![] }
                }
                ".word" => {
                    let mut init = Vec::new();
                    for w in args.split(',') {
                        let v = parse_int(w.trim()).ok_or_else(|| err("bad .word value"))?;
                        init.extend_from_slice(&(v as u32).to_le_bytes());
                    }
                    DataItem { name, size: init.len() as u32, align: 4, init }
                }
                ".byte" => {
                    let mut init = Vec::new();
                    for b in args.split(',') {
                        let v = parse_int(b.trim()).ok_or_else(|| err("bad .byte value"))?;
                        init.push(v as u8);
                    }
                    DataItem { name, size: init.len() as u32, align: 1, init }
                }
                ".ascii" | ".asciz" => {
                    let s = args.trim();
                    if !(s.starts_with('"') && s.ends_with('"') && s.len() >= 2) {
                        return Err(err("expected a quoted string"));
                    }
                    let mut init = s.as_bytes()[1..s.len() - 1].to_vec();
                    if dir == ".asciz" {
                        init.push(0);
                    }
                    DataItem { name, size: init.len() as u32, align: 1, init }
                }
                _ => return Err(err("unknown data directive")),
            };
            prog.data.push(item);
            continue;
        }
        // .text section.
        if let Some(rest) = text.strip_prefix("func ") {
            if let Some(f) = cur.take() {
                prog.funcs.push(f);
            }
            let name = rest.trim().trim_end_matches(':').to_string();
            if name.is_empty() {
                return Err(err("missing function name"));
            }
            cur = Some(SFunc { name, ..SFunc::default() });
            continue;
        }
        let f = cur.as_mut().ok_or_else(|| err("instruction outside a function (`func name:` first)"))?;
        if let Some(label) = text.strip_suffix(':') {
            if label.contains(char::is_whitespace) {
                return Err(err("bad label"));
            }
            f.labels.push((label.to_string(), f.items.len()));
            continue;
        }
        let item = parse_inst(text).map_err(|msg| AsmError { line, msg })?;
        f.items.push(item);
    }
    if let Some(f) = cur.take() {
        prog.funcs.push(f);
    }
    Ok(prog)
}

fn parse_int(s: &str) -> Option<i64> {
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        s.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_dist(s: &str) -> Result<Dist, String> {
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected a distance like [2], found `{s}`"))?;
    let n: u32 = inner.trim().parse().map_err(|_| format!("bad distance `{s}`"))?;
    Dist::new(n).map_err(|e| e.to_string())
}

fn parse_imm16(s: &str) -> Result<i16, String> {
    let v = parse_int(s).ok_or_else(|| format!("bad immediate `{s}`"))?;
    i16::try_from(v).map_err(|_| format!("immediate `{s}` out of 16-bit range"))
}

fn parse_inst(text: &str) -> Result<SItem, String> {
    let mut parts = text.split_whitespace();
    let mn = parts.next().expect("nonempty");
    let ops: Vec<&str> = parts.collect();
    let nops = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(format!("{mn} takes {n} operand(s), got {}", ops.len()))
        }
    };

    // Register–register ALU.
    if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == mn) {
        nops(2)?;
        return Ok(SItem::plain(Inst::Alu { op: *op, s1: parse_dist(ops[0])?, s2: parse_dist(ops[1])? }));
    }
    // Register–immediate ALU (with %lo support on ORi).
    if let Some(op) = AluImmOp::ALL.iter().find(|o| o.mnemonic() == mn) {
        nops(2)?;
        let s1 = parse_dist(ops[0])?;
        if let Some(sym) = ops[1].strip_prefix("%lo(").and_then(|s| s.strip_suffix(')')) {
            if *op != AluImmOp::Ori {
                return Err("%lo() is only valid on ORi".into());
            }
            return Ok(SItem {
                inst: Inst::AluImm { op: *op, s1, imm: 0 },
                reloc: Some(SReloc::AbsLo(sym.to_string())),
            });
        }
        return Ok(SItem::plain(Inst::AluImm { op: *op, s1, imm: parse_imm16(ops[1])? }));
    }

    let (ld_width, st_width) = (
        |suffix: &str| match suffix {
            "" => Some(MemWidth::W),
            ".B" => Some(MemWidth::B),
            ".BU" => Some(MemWidth::Bu),
            ".H" => Some(MemWidth::H),
            ".HU" => Some(MemWidth::Hu),
            _ => None,
        },
        |suffix: &str| match suffix {
            "" => Some(MemWidth::W),
            ".B" => Some(MemWidth::B),
            ".H" => Some(MemWidth::H),
            _ => None,
        },
    );

    if let Some(suffix) = mn.strip_prefix("LD") {
        let width = ld_width(suffix).ok_or_else(|| format!("bad load width `{mn}`"))?;
        nops(2)?;
        return Ok(SItem::plain(Inst::Ld { width, addr: parse_dist(ops[0])?, offset: parse_imm16(ops[1])? }));
    }
    if let Some(suffix) = mn.strip_prefix("ST") {
        let width = st_width(suffix).ok_or_else(|| format!("bad store width `{mn}`"))?;
        nops(2)?;
        return Ok(SItem::plain(Inst::St { width, val: parse_dist(ops[0])?, addr: parse_dist(ops[1])? }));
    }

    match mn {
        "NOP" => {
            nops(0)?;
            Ok(SItem::plain(Inst::Nop))
        }
        "HALT" => {
            nops(0)?;
            Ok(SItem::plain(Inst::Halt))
        }
        "LUI" => {
            nops(1)?;
            if let Some(sym) = ops[0].strip_prefix("%hi(").and_then(|s| s.strip_suffix(')')) {
                return Ok(SItem { inst: Inst::Lui { imm: 0 }, reloc: Some(SReloc::AbsHi(sym.to_string())) });
            }
            let v = parse_int(ops[0]).ok_or("bad LUI immediate")?;
            let imm = u16::try_from(v).map_err(|_| "LUI immediate out of range")?;
            Ok(SItem::plain(Inst::Lui { imm }))
        }
        "RMOV" => {
            nops(1)?;
            Ok(SItem::plain(Inst::Rmov { s: parse_dist(ops[0])? }))
        }
        "SPADD" => {
            nops(1)?;
            Ok(SItem::plain(Inst::SpAdd { imm: parse_imm16(ops[0])? }))
        }
        "BEZ" | "BNZ" => {
            nops(2)?;
            let s = parse_dist(ops[0])?;
            let target = ops[1].to_string();
            let inst = if mn == "BEZ" { Inst::Bez { s, offset: 0 } } else { Inst::Bnz { s, offset: 0 } };
            Ok(SItem { inst, reloc: Some(SReloc::BranchTo(target)) })
        }
        "J" | "JAL" => {
            nops(1)?;
            let target = ops[0].to_string();
            let inst = if mn == "J" { Inst::J { offset: 0 } } else { Inst::Jal { offset: 0 } };
            Ok(SItem { inst, reloc: Some(SReloc::BranchTo(target)) })
        }
        "JR" => {
            nops(1)?;
            Ok(SItem::plain(Inst::Jr { s: parse_dist(ops[0])? }))
        }
        "JALR" => {
            nops(1)?;
            Ok(SItem::plain(Inst::Jalr { s: parse_dist(ops[0])? }))
        }
        "SYS" => {
            nops(2)?;
            let code = parse_int(ops[0]).and_then(|v| u16::try_from(v).ok()).ok_or("bad SYS code")?;
            Ok(SItem::plain(Inst::Sys { code, s: parse_dist(ops[1])? }))
        }
        other => Err(format!("unknown mnemonic `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_fibonacci() {
        // Figure 1(a) of the paper, plus scaffolding.
        let src = "
.text
func main:
    ADDi [0] 1        ; I1
    ADDi [0] 1        ; I2
loop:
    ADD [1] [2]       ; I3: Fibonacci step
    J loop
";
        let p = parse_straight_asm(src).unwrap();
        assert_eq!(p.funcs.len(), 1);
        let f = &p.funcs[0];
        assert_eq!(f.items.len(), 4);
        assert_eq!(f.labels, vec![("loop".to_string(), 2)]);
        assert_eq!(f.items[2].inst, Inst::Alu { op: AluOp::Add, s1: Dist::of(1), s2: Dist::of(2) });
    }

    #[test]
    fn parses_data_section() {
        let src = "
.data
tab: .space 16
vals: .word 1, -2, 0x10
msg: .asciz \"ok\"
.text
func main:
    NOP
";
        let p = parse_straight_asm(src).unwrap();
        assert_eq!(p.data.len(), 3);
        assert_eq!(p.data[1].init.len(), 12);
        assert_eq!(p.data[2].init, vec![b'o', b'k', 0]);
    }

    #[test]
    fn parses_all_memory_widths_and_sys() {
        let src = "
.text
func main:
    LD [1] -4
    LD.BU [2] 0
    ST.B [1] [2]
    SYS 1 [1]
    SPADD -16
    LUI %hi(tab)
    ORi [1] %lo(tab)
    HALT
";
        let p = parse_straight_asm(src).unwrap();
        assert_eq!(p.funcs[0].items.len(), 8);
        assert!(matches!(p.funcs[0].items[5].reloc, Some(SReloc::AbsHi(_))));
        assert!(matches!(p.funcs[0].items[6].reloc, Some(SReloc::AbsLo(_))));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_straight_asm(".text\nfunc f:\n  FROB [1]").is_err());
        assert!(parse_straight_asm(".text\n  NOP").is_err()); // outside function
        assert!(parse_straight_asm(".text\nfunc f:\n  ADD [1]").is_err());
        assert!(parse_straight_asm(".text\nfunc f:\n  RMOV [9999]").is_err());
        let e = parse_straight_asm(".text\nfunc f:\n  BAD").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn comments_in_all_styles() {
        let src = ".text\nfunc main:\n  NOP ; x\n  NOP # y\n  NOP // z\n";
        assert_eq!(parse_straight_asm(src).unwrap().funcs[0].items.len(), 3);
    }
}
