//! Symbolic object format produced by the compiler back-ends.

use straight_isa::Inst;
use straight_riscv::RvInst;

/// A pending fix-up on a STRAIGHT instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SReloc {
    /// Patch the branch/jump word-offset field to reach `0` (a local
    /// label or a function symbol).
    BranchTo(String),
    /// Patch a `LUI` immediate with the high 16 bits of the symbol
    /// address.
    AbsHi(String),
    /// Patch an `ORi` immediate with the low 16 bits of the symbol
    /// address.
    AbsLo(String),
}

/// A pending fix-up on an RV32 instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RvReloc {
    /// Patch a conditional-branch byte offset.
    BranchTo(String),
    /// Patch a `jal` byte offset (jumps and calls).
    JalTo(String),
    /// Patch a `lui` with `%hi(symbol)` (with the +0x800 rounding).
    Hi20(String),
    /// Patch an I/S-type immediate with `%lo(symbol)`.
    Lo12(String),
}

/// One STRAIGHT instruction with an optional relocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SItem {
    /// The instruction; offset/immediate fields covered by `reloc`
    /// hold 0 until link time.
    pub inst: Inst,
    /// Pending relocation.
    pub reloc: Option<SReloc>,
}

impl SItem {
    /// An item with no relocation.
    #[must_use]
    pub fn plain(inst: Inst) -> SItem {
        SItem { inst, reloc: None }
    }
}

/// A STRAIGHT function body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SFunc {
    /// Global symbol name.
    pub name: String,
    /// Instructions in layout order.
    pub items: Vec<SItem>,
    /// Local labels: `(name, item index)`. Resolved function-locally
    /// first, then against global symbols.
    pub labels: Vec<(String, usize)>,
}

/// One RV32 instruction with an optional relocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RvItem {
    /// The instruction.
    pub inst: RvInst,
    /// Pending relocation.
    pub reloc: Option<RvReloc>,
}

impl RvItem {
    /// An item with no relocation.
    #[must_use]
    pub fn plain(inst: RvInst) -> RvItem {
        RvItem { inst, reloc: None }
    }
}

/// An RV32 function body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RvFunc {
    /// Global symbol name.
    pub name: String,
    /// Instructions in layout order.
    pub items: Vec<RvItem>,
    /// Local labels.
    pub labels: Vec<(String, usize)>,
}

/// A named, initialized data object (global variable or string).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataItem {
    /// Symbol name.
    pub name: String,
    /// Size in bytes (zero-filled beyond `init`).
    pub size: u32,
    /// Alignment in bytes.
    pub align: u32,
    /// Initial bytes.
    pub init: Vec<u8>,
}

/// A linkable STRAIGHT program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SProgram {
    /// Functions; `main` must exist for linking.
    pub funcs: Vec<SFunc>,
    /// Data objects.
    pub data: Vec<DataItem>,
}

/// A linkable RV32 program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RvProgram {
    /// Functions; `main` must exist for linking.
    pub funcs: Vec<RvFunc>,
    /// Data objects.
    pub data: Vec<DataItem>,
}
