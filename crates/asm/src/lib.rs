//! # straight-asm
//!
//! Assembler, object format, and linker for both ISAs of the STRAIGHT
//! reproduction (the paper develops "a compiler, an assembler, a
//! linker, and a cycle-accurate simulator"; this crate is the
//! assembler + linker).
//!
//! The compiler back-ends emit symbolic [`SProgram`]/[`RvProgram`]
//! objects (instructions with pending [`SReloc`]/[`RvReloc`]
//! relocations); [`link_straight`]/[`link_riscv`] lay out code and
//! data, synthesize the `_start` stub, resolve relocations, and encode
//! an executable [`Image`] the emulators and cycle simulators load.
//! A textual STRAIGHT assembler ([`parse_straight_asm`]) accepts the
//! paper's syntax (`ADD [1] [2]`, `BEZ [1] label`, ...).
//!
//! ```
//! use straight_asm::{parse_straight_asm, link_straight};
//!
//! let src = "
//! .text
//! func main:
//!     ADDi [0] 41
//!     ADDi [1] 1
//!     RMOV [1]
//!     JR [4]          ; return 42 (retaddr is the JAL, 4 back)
//! ";
//! let prog = parse_straight_asm(src).unwrap();
//! let image = link_straight(&prog).unwrap();
//! assert_eq!(image.entry, straight_asm::CODE_BASE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod image;
mod link;
mod object;
mod text;

pub use image::{Image, ImageIsa, CODE_BASE, MEM_SIZE, STACK_TOP};
pub use link::{abi, link_riscv, link_straight, LinkError};
pub use object::{DataItem, RvFunc, RvItem, RvProgram, RvReloc, SFunc, SItem, SProgram, SReloc};
pub use text::{parse_straight_asm, AsmError};
