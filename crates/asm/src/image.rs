//! Executable memory images.

use std::collections::HashMap;

/// Base address of the code segment.
pub const CODE_BASE: u32 = 0x0000_1000;
/// Initial stack pointer (grows down).
pub const STACK_TOP: u32 = 0x003f_0000;
/// Size of the simulated physical memory.
pub const MEM_SIZE: u32 = 0x0040_0000;

/// Which ISA an image's code section encodes. The linker stamps it so
/// consumers (the cycle-accurate cores in particular) can reject a
/// mismatched machine at construction time instead of decoding
/// garbage at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageIsa {
    /// STRAIGHT (distance-operand) code.
    Straight,
    /// RV32IM code.
    Riscv,
}

impl std::fmt::Display for ImageIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageIsa::Straight => write!(f, "STRAIGHT"),
            ImageIsa::Riscv => write!(f, "RV32IM"),
        }
    }
}

/// A linked, executable program image.
#[derive(Debug, Clone)]
pub struct Image {
    /// ISA of the code section.
    pub isa: ImageIsa,
    /// Entry PC (the synthesized `_start`).
    pub entry: u32,
    /// Base address of the code segment.
    pub code_base: u32,
    /// Encoded instruction words.
    pub code: Vec<u32>,
    /// Base address of the data segment.
    pub data_base: u32,
    /// Initialized data bytes (zero-filled holes included).
    pub data: Vec<u8>,
    /// Symbol table: functions, labels, and data objects.
    pub symbols: HashMap<String, u32>,
}

impl Image {
    /// Address one past the last code byte.
    #[must_use]
    pub fn code_end(&self) -> u32 {
        self.code_base + (self.code.len() as u32) * 4
    }

    /// Looks up a symbol address.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Writes the image into a flat memory buffer.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit into `mem`.
    pub fn load_into(&self, mem: &mut [u8]) {
        for (i, w) in self.code.iter().enumerate() {
            let a = self.code_base as usize + i * 4;
            mem[a..a + 4].copy_from_slice(&w.to_le_bytes());
        }
        let d = self.data_base as usize;
        mem[d..d + self.data.len()].copy_from_slice(&self.data);
    }

    /// The instruction word at `pc`, if inside the code segment.
    #[must_use]
    pub fn fetch(&self, pc: u32) -> Option<u32> {
        if pc < self.code_base || pc >= self.code_end() || !pc.is_multiple_of(4) {
            return None;
        }
        Some(self.code[((pc - self.code_base) / 4) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_fetch() {
        let img = Image {
            isa: ImageIsa::Riscv,
            entry: CODE_BASE,
            code_base: CODE_BASE,
            code: vec![0xdead_beef, 0x0102_0304],
            data_base: CODE_BASE + 0x100,
            data: vec![1, 2, 3],
            symbols: HashMap::from([("main".to_string(), CODE_BASE)]),
        };
        assert_eq!(img.fetch(CODE_BASE), Some(0xdead_beef));
        assert_eq!(img.fetch(CODE_BASE + 4), Some(0x0102_0304));
        assert_eq!(img.fetch(CODE_BASE + 8), None);
        assert_eq!(img.fetch(CODE_BASE + 1), None);
        assert_eq!(img.symbol("main"), Some(CODE_BASE));
        let mut mem = vec![0u8; (CODE_BASE + 0x200) as usize];
        img.load_into(&mut mem);
        assert_eq!(mem[CODE_BASE as usize], 0xef);
        assert_eq!(mem[(CODE_BASE + 0x100) as usize], 1);
    }
}
