//! Linker: code/data layout, `_start` synthesis, relocation, encoding.

use std::collections::HashMap;
use std::fmt;

use straight_isa::{AluImmOp, Dist, Inst};
use straight_riscv::{Reg, RvInst};

use crate::{
    image::{Image, ImageIsa, CODE_BASE},
    object::{RvFunc, RvItem, RvProgram, RvReloc, SFunc, SItem, SProgram, SReloc},
};

/// Environment-service codes shared by both ISAs (`SYS code` /
/// `ecall` with the code in `a7`). They match `straight_ir::SysOp`.
pub mod abi {
    /// Print a signed decimal plus newline.
    pub const SYS_PRINT_INT: u16 = 1;
    /// Print one character.
    pub const SYS_PRINT_CHAR: u16 = 2;
    /// Terminate with an exit code.
    pub const SYS_EXIT: u16 = 3;
}

/// Linking failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// A referenced symbol was not defined.
    Undefined(String),
    /// Two definitions share a name.
    Duplicate(String),
    /// A branch target is too far for its offset field.
    OutOfRange {
        /// Symbol the branch targets.
        symbol: String,
        /// Required word offset.
        offset: i64,
    },
    /// The program has no `main`.
    NoMain,
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Undefined(s) => write!(f, "undefined symbol `{s}`"),
            LinkError::Duplicate(s) => write!(f, "duplicate symbol `{s}`"),
            LinkError::OutOfRange { symbol, offset } => {
                write!(f, "branch to `{symbol}` out of range (offset {offset})")
            }
            LinkError::NoMain => write!(f, "program defines no `main` function"),
        }
    }
}

impl std::error::Error for LinkError {}

/// The STRAIGHT `_start` stub: call `main`, pass its return value to
/// the exit service, halt. After the call returns, `[1]` is the
/// callee's `JR` and `[2]` is `retval0` per the calling convention.
fn straight_start_stub() -> SFunc {
    SFunc {
        name: "_start".to_string(),
        items: vec![
            SItem { inst: Inst::Jal { offset: 0 }, reloc: Some(SReloc::BranchTo("main".into())) },
            SItem::plain(Inst::Sys { code: abi::SYS_EXIT, s: Dist::of(2) }),
            SItem::plain(Inst::Halt),
        ],
        labels: vec![],
    }
}

/// The RV32 `_start` stub: call `main`, move its return value into the
/// exit service, halt.
fn riscv_start_stub() -> RvFunc {
    RvFunc {
        name: "_start".to_string(),
        items: vec![
            RvItem { inst: RvInst::Jal { rd: Reg::RA, offset: 0 }, reloc: Some(RvReloc::JalTo("main".into())) },
            RvItem::plain(RvInst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::A7,
                rs1: Reg::ZERO,
                imm: i32::from(abi::SYS_EXIT),
            }),
            RvItem::plain(RvInst::Ecall),
            RvItem::plain(RvInst::Ebreak),
        ],
        labels: vec![],
    }
}

struct Layout {
    symbols: HashMap<String, u32>,
    func_bases: Vec<u32>,
    data_base: u32,
    data: Vec<u8>,
}

fn layout(
    func_names: &[&str],
    func_lens: &[usize],
    func_labels: &[&[(String, usize)]],
    data: &[crate::DataItem],
) -> Result<Layout, LinkError> {
    let mut symbols = HashMap::new();
    let mut func_bases = Vec::with_capacity(func_lens.len());
    let mut cursor = CODE_BASE;
    for ((name, len), labels) in func_names.iter().zip(func_lens).zip(func_labels) {
        if symbols.insert((*name).to_string(), cursor).is_some() {
            return Err(LinkError::Duplicate((*name).to_string()));
        }
        func_bases.push(cursor);
        for (label, idx) in labels.iter() {
            let addr = cursor + (*idx as u32) * 4;
            if symbols.insert(format!("{name}.{label}"), addr).is_some() {
                return Err(LinkError::Duplicate(format!("{name}.{label}")));
            }
        }
        cursor += (*len as u32) * 4;
    }
    let data_base = cursor.next_multiple_of(0x100);
    let mut bytes = Vec::new();
    for d in data {
        let pad = (data_base + bytes.len() as u32).next_multiple_of(d.align.max(1)) - (data_base + bytes.len() as u32);
        bytes.extend(std::iter::repeat_n(0, pad as usize));
        let addr = data_base + bytes.len() as u32;
        if symbols.insert(d.name.clone(), addr).is_some() {
            return Err(LinkError::Duplicate(d.name.clone()));
        }
        bytes.extend_from_slice(&d.init);
        bytes.extend(std::iter::repeat_n(0, (d.size as usize).saturating_sub(d.init.len())));
    }
    Ok(Layout { symbols, func_bases, data_base, data: bytes })
}

fn resolve(symbols: &HashMap<String, u32>, func: &str, target: &str) -> Result<u32, LinkError> {
    symbols
        .get(&format!("{func}.{target}"))
        .or_else(|| symbols.get(target))
        .copied()
        .ok_or_else(|| LinkError::Undefined(target.to_string()))
}

/// Links a STRAIGHT program into an executable image.
///
/// # Errors
///
/// Returns [`LinkError`] on undefined/duplicate symbols, missing
/// `main`, or out-of-range branch offsets.
pub fn link_straight(prog: &SProgram) -> Result<Image, LinkError> {
    if !prog.funcs.iter().any(|f| f.name == "main") {
        return Err(LinkError::NoMain);
    }
    let stub = straight_start_stub();
    let funcs: Vec<&SFunc> = std::iter::once(&stub).chain(prog.funcs.iter()).collect();
    let names: Vec<&str> = funcs.iter().map(|f| f.name.as_str()).collect();
    let lens: Vec<usize> = funcs.iter().map(|f| f.items.len()).collect();
    let labels: Vec<&[(String, usize)]> = funcs.iter().map(|f| f.labels.as_slice()).collect();
    let lo = layout(&names, &lens, &labels, &prog.data)?;

    let mut code = Vec::new();
    for (fi, f) in funcs.iter().enumerate() {
        for (i, item) in f.items.iter().enumerate() {
            let pc = lo.func_bases[fi] + (i as u32) * 4;
            let mut inst = item.inst;
            if let Some(reloc) = &item.reloc {
                match reloc {
                    SReloc::BranchTo(target) => {
                        let addr = resolve(&lo.symbols, &f.name, target)?;
                        let woff = (i64::from(addr) - i64::from(pc)) / 4;
                        let fail = || LinkError::OutOfRange { symbol: target.clone(), offset: woff };
                        match &mut inst {
                            Inst::Bez { offset, .. } | Inst::Bnz { offset, .. } => {
                                *offset = i16::try_from(woff).map_err(|_| fail())?;
                            }
                            Inst::J { offset } | Inst::Jal { offset } => {
                                if !(-(1i64 << 25)..(1i64 << 25)).contains(&woff) {
                                    return Err(fail());
                                }
                                *offset = woff as i32;
                            }
                            other => panic!("BranchTo reloc on non-branch {other}"),
                        }
                    }
                    SReloc::AbsHi(target) => {
                        let addr = resolve(&lo.symbols, &f.name, target)?;
                        match &mut inst {
                            Inst::Lui { imm } => *imm = (addr >> 16) as u16,
                            other => panic!("AbsHi reloc on non-LUI {other}"),
                        }
                    }
                    SReloc::AbsLo(target) => {
                        let addr = resolve(&lo.symbols, &f.name, target)?;
                        match &mut inst {
                            Inst::AluImm { op: AluImmOp::Ori, imm, .. } => {
                                *imm = (addr & 0xffff) as u16 as i16;
                            }
                            other => panic!("AbsLo reloc on non-ORi {other}"),
                        }
                    }
                }
            }
            code.push(straight_isa::encode(&inst));
        }
    }
    Ok(Image {
        isa: ImageIsa::Straight,
        entry: CODE_BASE,
        code_base: CODE_BASE,
        code,
        data_base: lo.data_base,
        data: lo.data,
        symbols: lo.symbols,
    })
}

/// Links an RV32 program into an executable image.
///
/// # Errors
///
/// See [`link_straight`].
pub fn link_riscv(prog: &RvProgram) -> Result<Image, LinkError> {
    if !prog.funcs.iter().any(|f| f.name == "main") {
        return Err(LinkError::NoMain);
    }
    let stub = riscv_start_stub();
    let funcs: Vec<&RvFunc> = std::iter::once(&stub).chain(prog.funcs.iter()).collect();
    let names: Vec<&str> = funcs.iter().map(|f| f.name.as_str()).collect();
    let lens: Vec<usize> = funcs.iter().map(|f| f.items.len()).collect();
    let labels: Vec<&[(String, usize)]> = funcs.iter().map(|f| f.labels.as_slice()).collect();
    let lo = layout(&names, &lens, &labels, &prog.data)?;

    let mut code = Vec::new();
    for (fi, f) in funcs.iter().enumerate() {
        for (i, item) in f.items.iter().enumerate() {
            let pc = lo.func_bases[fi] + (i as u32) * 4;
            let mut inst = item.inst;
            if let Some(reloc) = &item.reloc {
                match reloc {
                    RvReloc::BranchTo(target) => {
                        let addr = resolve(&lo.symbols, &f.name, target)?;
                        let boff = i64::from(addr) - i64::from(pc);
                        let fail = || LinkError::OutOfRange { symbol: target.clone(), offset: boff / 4 };
                        match &mut inst {
                            RvInst::Branch { offset, .. } => {
                                if !(-4096..4096).contains(&boff) {
                                    return Err(fail());
                                }
                                *offset = boff as i32;
                            }
                            other => panic!("BranchTo reloc on non-branch {other}"),
                        }
                    }
                    RvReloc::JalTo(target) => {
                        let addr = resolve(&lo.symbols, &f.name, target)?;
                        let boff = i64::from(addr) - i64::from(pc);
                        if !(-(1i64 << 20)..(1i64 << 20)).contains(&boff) {
                            return Err(LinkError::OutOfRange { symbol: target.clone(), offset: boff / 4 });
                        }
                        match &mut inst {
                            RvInst::Jal { offset, .. } => *offset = boff as i32,
                            other => panic!("JalTo reloc on non-jal {other}"),
                        }
                    }
                    RvReloc::Hi20(target) => {
                        let addr = resolve(&lo.symbols, &f.name, target)?;
                        let hi = addr.wrapping_add(0x800) & 0xffff_f000;
                        match &mut inst {
                            RvInst::Lui { imm, .. } => *imm = hi,
                            other => panic!("Hi20 reloc on non-lui {other}"),
                        }
                    }
                    RvReloc::Lo12(target) => {
                        let addr = resolve(&lo.symbols, &f.name, target)?;
                        let lo12 = ((addr & 0xfff) as i32) << 20 >> 20;
                        match &mut inst {
                            RvInst::OpImm { imm, .. } => *imm = lo12,
                            RvInst::Load { offset, .. } | RvInst::Store { offset, .. } | RvInst::Jalr { offset, .. } => {
                                *offset = lo12;
                            }
                            other => panic!("Lo12 reloc on {other}"),
                        }
                    }
                }
            }
            code.push(straight_riscv::encode(&inst));
        }
    }
    Ok(Image {
        isa: ImageIsa::Riscv,
        entry: CODE_BASE,
        code_base: CODE_BASE,
        code,
        data_base: lo.data_base,
        data: lo.data,
        symbols: lo.symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataItem;

    fn minimal_straight() -> SProgram {
        SProgram {
            funcs: vec![SFunc {
                name: "main".into(),
                items: vec![
                    SItem::plain(Inst::AluImm { op: AluImmOp::Addi, s1: Dist::ZERO, imm: 42 }),
                    SItem::plain(Inst::Rmov { s: Dist::of(1) }),
                    SItem::plain(Inst::Jr { s: Dist::of(3) }),
                ],
                labels: vec![],
            }],
            data: vec![DataItem { name: "g".into(), size: 8, align: 4, init: vec![1, 2, 3, 4] }],
        }
    }

    #[test]
    fn straight_link_produces_stub_and_symbols() {
        let img = link_straight(&minimal_straight()).unwrap();
        assert_eq!(img.entry, CODE_BASE);
        // Stub (3 insts) then main.
        assert_eq!(img.symbol("main"), Some(CODE_BASE + 12));
        assert!(img.symbol("g").unwrap() >= img.code_end());
        // The stub's JAL points at main: word offset 3.
        let jal = straight_isa::decode(img.code[0]).unwrap();
        assert_eq!(jal, Inst::Jal { offset: 3 });
    }

    #[test]
    fn straight_abs_relocs_resolve() {
        let mut p = minimal_straight();
        p.funcs[0].items.insert(
            0,
            SItem { inst: Inst::Lui { imm: 0 }, reloc: Some(SReloc::AbsHi("g".into())) },
        );
        p.funcs[0].items.insert(
            1,
            SItem {
                inst: Inst::AluImm { op: AluImmOp::Ori, s1: Dist::of(1), imm: 0 },
                reloc: Some(SReloc::AbsLo("g".into())),
            },
        );
        let img = link_straight(&p).unwrap();
        let g = img.symbol("g").unwrap();
        let lui = straight_isa::decode(img.code[3]).unwrap();
        let ori = straight_isa::decode(img.code[4]).unwrap();
        let (hi, lo) = match (lui, ori) {
            (Inst::Lui { imm: hi }, Inst::AluImm { op: AluImmOp::Ori, imm, .. }) => (hi, imm),
            other => panic!("{other:?}"),
        };
        assert_eq!((u32::from(hi) << 16) | u32::from(lo as u16), g);
    }

    #[test]
    fn local_labels_resolve_before_globals() {
        let p = SProgram {
            funcs: vec![SFunc {
                name: "main".into(),
                items: vec![
                    SItem::plain(Inst::Nop),
                    SItem { inst: Inst::J { offset: 0 }, reloc: Some(SReloc::BranchTo("top".into())) },
                ],
                labels: vec![("top".into(), 0)],
            }],
            data: vec![],
        };
        let img = link_straight(&p).unwrap();
        let j = straight_isa::decode(*img.code.last().unwrap()).unwrap();
        assert_eq!(j, Inst::J { offset: -1 });
    }

    #[test]
    fn riscv_link_hi_lo() {
        let p = RvProgram {
            funcs: vec![RvFunc {
                name: "main".into(),
                items: vec![
                    RvItem { inst: RvInst::Lui { rd: Reg::A0, imm: 0 }, reloc: Some(RvReloc::Hi20("g".into())) },
                    RvItem {
                        inst: RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::A0, imm: 0 },
                        reloc: Some(RvReloc::Lo12("g".into())),
                    },
                    RvItem::plain(RvInst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 }),
                ],
                labels: vec![],
            }],
            data: vec![DataItem { name: "g".into(), size: 4, align: 4, init: vec![] }],
        };
        let img = link_riscv(&p).unwrap();
        let g = img.symbol("g").unwrap();
        let base = 4; // after the 4-instruction stub
        let (hi, lo) = match (
            straight_riscv::decode(img.code[base]).unwrap(),
            straight_riscv::decode(img.code[base + 1]).unwrap(),
        ) {
            (RvInst::Lui { imm, .. }, RvInst::OpImm { imm: lo, .. }) => (imm, lo),
            other => panic!("{other:?}"),
        };
        assert_eq!(hi.wrapping_add(lo as u32), g);
    }

    #[test]
    fn missing_main_rejected() {
        assert_eq!(link_straight(&SProgram::default()).unwrap_err(), LinkError::NoMain);
        assert_eq!(link_riscv(&RvProgram::default()).unwrap_err(), LinkError::NoMain);
    }

    #[test]
    fn undefined_symbol_reported() {
        let p = SProgram {
            funcs: vec![SFunc {
                name: "main".into(),
                items: vec![SItem { inst: Inst::J { offset: 0 }, reloc: Some(SReloc::BranchTo("ghost".into())) }],
                labels: vec![],
            }],
            data: vec![],
        };
        assert_eq!(link_straight(&p).unwrap_err(), LinkError::Undefined("ghost".into()));
    }

    #[test]
    fn duplicate_symbol_rejected() {
        let mut p = minimal_straight();
        p.data.push(DataItem { name: "main".into(), size: 4, align: 4, init: vec![] });
        assert_eq!(link_straight(&p).unwrap_err(), LinkError::Duplicate("main".into()));
    }
}
