use std::fmt;

use straight_isa::{AluImmOp, AluOp, MemWidth};

use crate::Reg;

/// RV32 conditional-branch comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BranchOp {
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
}

impl BranchOp {
    /// All branch comparisons in funct3 order.
    pub const ALL: [BranchOp; 6] =
        [BranchOp::Beq, BranchOp::Bne, BranchOp::Blt, BranchOp::Bge, BranchOp::Bltu, BranchOp::Bgeu];

    /// Evaluates the comparison.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            BranchOp::Beq => a == b,
            BranchOp::Bne => a != b,
            BranchOp::Blt => (a as i32) < (b as i32),
            BranchOp::Bge => (a as i32) >= (b as i32),
            BranchOp::Bltu => a < b,
            BranchOp::Bgeu => a >= b,
        }
    }

    /// Mnemonic (`beq` etc.).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchOp::Beq => "beq",
            BranchOp::Bne => "bne",
            BranchOp::Blt => "blt",
            BranchOp::Bge => "bge",
            BranchOp::Bltu => "bltu",
            BranchOp::Bgeu => "bgeu",
        }
    }
}

/// One RV32IM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RvInst {
    /// `lui rd, imm20` — rd = imm20 << 12. `imm` stores the already
    /// shifted value (low 12 bits zero).
    Lui {
        /// Destination.
        rd: Reg,
        /// Value with low 12 bits zero.
        imm: u32,
    },
    /// `auipc rd, imm20` — rd = pc + (imm20 << 12).
    Auipc {
        /// Destination.
        rd: Reg,
        /// Value with low 12 bits zero.
        imm: u32,
    },
    /// `jal rd, offset` — rd = pc+4; pc += offset (bytes).
    Jal {
        /// Link destination (x0 for plain jumps).
        rd: Reg,
        /// Signed byte offset, multiple of 2 (we emit multiples of 4).
        offset: i32,
    },
    /// `jalr rd, rs1, offset` — rd = pc+4; pc = (rs1+offset) & !1.
    Jalr {
        /// Link destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Conditional branch; pc += offset when taken.
    Branch {
        /// Comparison.
        op: BranchOp,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Signed byte offset, multiple of 2.
        offset: i32,
    },
    /// Load `rd = mem[rs1 + offset]`.
    Load {
        /// Access width and sign extension.
        width: MemWidth,
        /// Destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Store `mem[rs1 + offset] = rs2`.
    Store {
        /// Access width.
        width: MemWidth,
        /// Value register.
        rs2: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Register–immediate ALU (`addi` etc., 12-bit signed immediate).
    OpImm {
        /// Operation.
        op: AluImmOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Signed 12-bit immediate (5-bit shift amounts).
        imm: i32,
    },
    /// Register–register ALU including the M extension.
    Op {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left source.
        rs1: Reg,
        /// Right source.
        rs2: Reg,
    },
    /// Environment call (service selected by `a7`, args in `a0`/`a1`).
    Ecall,
    /// Breakpoint; the emulator and simulator treat it as halt.
    Ebreak,
}

impl RvInst {
    /// Destination register, if the instruction writes one (writes to
    /// `x0` are reported and later discarded by the machine).
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            RvInst::Lui { rd, .. }
            | RvInst::Auipc { rd, .. }
            | RvInst::Jal { rd, .. }
            | RvInst::Jalr { rd, .. }
            | RvInst::Load { rd, .. }
            | RvInst::OpImm { rd, .. }
            | RvInst::Op { rd, .. } => Some(rd),
            RvInst::Branch { .. } | RvInst::Store { .. } | RvInst::Ecall | RvInst::Ebreak => None,
        }
    }

    /// Source registers in operand order.
    #[must_use]
    pub fn sources(&self) -> [Option<Reg>; 2] {
        match *self {
            RvInst::Jalr { rs1, .. } | RvInst::Load { rs1, .. } | RvInst::OpImm { rs1, .. } => [Some(rs1), None],
            RvInst::Branch { rs1, rs2, .. } | RvInst::Op { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            RvInst::Store { rs2, rs1, .. } => [Some(rs1), Some(rs2)],
            RvInst::Lui { .. } | RvInst::Auipc { .. } | RvInst::Jal { .. } | RvInst::Ecall | RvInst::Ebreak => {
                [None, None]
            }
        }
    }

    /// True for control-transfer instructions.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(self, RvInst::Jal { .. } | RvInst::Jalr { .. } | RvInst::Branch { .. })
    }

    /// True for conditional branches.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, RvInst::Branch { .. })
    }

    /// True for loads and stores.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self, RvInst::Load { .. } | RvInst::Store { .. })
    }
}

impl fmt::Display for RvInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RvInst::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", imm >> 12),
            RvInst::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", imm >> 12),
            RvInst::Jal { rd, offset } => write!(f, "jal {rd}, {offset:+}"),
            RvInst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            RvInst::Branch { op, rs1, rs2, offset } => {
                write!(f, "{} {rs1}, {rs2}, {offset:+}", op.mnemonic())
            }
            RvInst::Load { width, rd, rs1, offset } => {
                write!(f, "l{} {rd}, {offset}({rs1})", load_suffix(width))
            }
            RvInst::Store { width, rs2, rs1, offset } => {
                write!(f, "s{} {rs2}, {offset}({rs1})", store_suffix(width))
            }
            RvInst::OpImm { op, rd, rs1, imm } => {
                write!(f, "{} {rd}, {rs1}, {imm}", imm_mnemonic(op))
            }
            RvInst::Op { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic().to_lowercase())
            }
            RvInst::Ecall => write!(f, "ecall"),
            RvInst::Ebreak => write!(f, "ebreak"),
        }
    }
}

fn load_suffix(w: MemWidth) -> &'static str {
    match w {
        MemWidth::B => "b",
        MemWidth::Bu => "bu",
        MemWidth::H => "h",
        MemWidth::Hu => "hu",
        MemWidth::W => "w",
    }
}

fn store_suffix(w: MemWidth) -> &'static str {
    match w {
        MemWidth::B | MemWidth::Bu => "b",
        MemWidth::H | MemWidth::Hu => "h",
        MemWidth::W => "w",
    }
}

fn imm_mnemonic(op: AluImmOp) -> &'static str {
    match op {
        AluImmOp::Addi => "addi",
        AluImmOp::Slti => "slti",
        AluImmOp::Sltiu => "sltiu",
        AluImmOp::Xori => "xori",
        AluImmOp::Ori => "ori",
        AluImmOp::Andi => "andi",
        AluImmOp::Slli => "slli",
        AluImmOp::Srli => "srli",
        AluImmOp::Srai => "srai",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_eval() {
        assert!(BranchOp::Beq.eval(3, 3));
        assert!(BranchOp::Blt.eval(-1i32 as u32, 0));
        assert!(!BranchOp::Bltu.eval(-1i32 as u32, 0));
        assert!(BranchOp::Bgeu.eval(-1i32 as u32, 0));
    }

    #[test]
    fn dest_and_sources() {
        let st = RvInst::Store { width: MemWidth::W, rs2: Reg::A0, rs1: Reg::SP, offset: 4 };
        assert_eq!(st.dest(), None);
        assert_eq!(st.sources(), [Some(Reg::SP), Some(Reg::A0)]);
        let op = RvInst::Op { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
        assert_eq!(op.dest(), Some(Reg::A0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            RvInst::Load { width: MemWidth::Bu, rd: Reg::A0, rs1: Reg::SP, offset: -4 }.to_string(),
            "lbu a0, -4(sp)"
        );
        assert_eq!(RvInst::Jal { rd: Reg::RA, offset: 8 }.to_string(), "jal ra, +8");
        assert_eq!(RvInst::Ecall.to_string(), "ecall");
    }

    #[test]
    fn classification() {
        assert!(RvInst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 }.is_control());
        assert!(RvInst::Branch { op: BranchOp::Bne, rs1: Reg::A0, rs2: Reg::ZERO, offset: -4 }.is_cond_branch());
        assert!(RvInst::Load { width: MemWidth::W, rd: Reg::A0, rs1: Reg::SP, offset: 0 }.is_mem());
    }
}
