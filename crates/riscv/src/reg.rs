use std::fmt;

/// One of the 32 RV32 integer registers.
///
/// `x0` is hardwired to zero. Display uses ABI names.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

#[rustfmt::skip]
const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
];

impl Reg {
    /// Hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// Return address.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Global pointer.
    pub const GP: Reg = Reg(3);
    /// Thread pointer.
    pub const TP: Reg = Reg(4);
    /// Temporary 0.
    pub const T0: Reg = Reg(5);
    /// Temporary 1.
    pub const T1: Reg = Reg(6);
    /// Temporary 2.
    pub const T2: Reg = Reg(7);
    /// Saved 0 / frame pointer.
    pub const S0: Reg = Reg(8);
    /// Saved 1.
    pub const S1: Reg = Reg(9);
    /// Argument/return 0.
    pub const A0: Reg = Reg(10);
    /// Argument/return 1.
    pub const A1: Reg = Reg(11);
    /// Argument 2.
    pub const A2: Reg = Reg(12);
    /// Argument 3.
    pub const A3: Reg = Reg(13);
    /// Argument 4.
    pub const A4: Reg = Reg(14);
    /// Argument 5.
    pub const A5: Reg = Reg(15);
    /// Argument 6.
    pub const A6: Reg = Reg(16);
    /// Argument 7.
    pub const A7: Reg = Reg(17);
    /// Temporary 3.
    pub const T3: Reg = Reg(28);
    /// Temporary 4.
    pub const T4: Reg = Reg(29);
    /// Temporary 5.
    pub const T5: Reg = Reg(30);
    /// Temporary 6.
    pub const T6: Reg = Reg(31);

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub fn new(n: u8) -> Reg {
        assert!(n < 32, "register number {n} out of range");
        Reg(n)
    }

    /// The register number, 0..=31.
    #[must_use]
    pub fn num(self) -> u8 {
        self.0
    }

    /// True for `x0`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The ABI name (`zero`, `ra`, `sp`, `a0`, ...).
    #[must_use]
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// Saved register `s{i}` for `i` in `0..=11`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 11`.
    #[must_use]
    pub fn s(i: u8) -> Reg {
        match i {
            0 => Reg(8),
            1 => Reg(9),
            2..=11 => Reg(18 + i - 2),
            _ => panic!("no saved register s{i}"),
        }
    }

    /// Argument register `a{i}` for `i` in `0..=7`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 7`.
    #[must_use]
    pub fn a(i: u8) -> Reg {
        assert!(i < 8, "no argument register a{i}");
        Reg(10 + i)
    }

    /// Temporary register `t{i}` for `i` in `0..=6`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 6`.
    #[must_use]
    pub fn t(i: u8) -> Reg {
        match i {
            0..=2 => Reg(5 + i),
            3..=6 => Reg(28 + i - 3),
            _ => panic!("no temporary register t{i}"),
        }
    }

    /// True for registers the RISC-V calling convention preserves
    /// across calls (`sp`, `s0`–`s11`).
    #[must_use]
    pub fn is_callee_saved(self) -> bool {
        matches!(self.0, 2 | 8 | 9 | 18..=27)
    }

    /// All 32 registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({})", self.abi_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_line_up() {
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::a(0), Reg::A0);
        assert_eq!(Reg::a(7), Reg::A7);
        assert_eq!(Reg::s(0), Reg::S0);
        assert_eq!(Reg::s(11).to_string(), "s11");
        assert_eq!(Reg::t(2), Reg::T2);
        assert_eq!(Reg::t(3), Reg::T3);
    }

    #[test]
    fn callee_saved_set() {
        assert!(Reg::SP.is_callee_saved());
        assert!(Reg::s(5).is_callee_saved());
        assert!(!Reg::A0.is_callee_saved());
        assert!(!Reg::T3.is_callee_saved());
        assert!(!Reg::RA.is_callee_saved());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = Reg::new(32);
    }
}
