//! # straight-riscv
//!
//! The RV32IM instruction set used as the conventional-superscalar
//! baseline ("SS") in the STRAIGHT paper's evaluation (Section V-A).
//!
//! Operation semantics ([`AluOp`], [`AluImmOp`], [`MemWidth`]) are
//! shared with the `straight-isa` crate because the paper deliberately
//! equalizes the two machines to RV32IM integer semantics; only the
//! operand model differs (named, overwritable registers here vs
//! write-once distance operands there).
//!
//! ```
//! use straight_riscv::{Reg, RvInst};
//! use straight_isa::AluOp;
//!
//! let add = RvInst::Op { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
//! assert_eq!(add.to_string(), "add a0, a1, a2");
//! let word = straight_riscv::encode(&add);
//! assert_eq!(straight_riscv::decode(word).unwrap(), add);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
mod inst;
mod reg;

pub use encode::{decode, encode, RvDecodeError};
pub use inst::{BranchOp, RvInst};
pub use reg::Reg;
pub use straight_isa::{AluImmOp, AluOp, MemWidth};

/// Byte size of one encoded RV32 instruction.
pub const INST_BYTES: u32 = 4;
