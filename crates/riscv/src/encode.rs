//! Standard RV32IM binary encoding (the real RISC-V formats, so the
//! baseline binaries are genuine RV32IM machine code).

use std::fmt;

use straight_isa::{AluImmOp, AluOp, MemWidth};

use crate::{BranchOp, Reg, RvInst};

/// Error returned by [`decode`] on a word that is not a supported
/// RV32IM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RvDecodeError(pub u32);

impl fmt::Display for RvDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode RV32IM instruction word {:#010x}", self.0)
    }
}

impl std::error::Error for RvDecodeError {}

const OP_LUI: u32 = 0b011_0111;
const OP_AUIPC: u32 = 0b001_0111;
const OP_JAL: u32 = 0b110_1111;
const OP_JALR: u32 = 0b110_0111;
const OP_BRANCH: u32 = 0b110_0011;
const OP_LOAD: u32 = 0b000_0011;
const OP_STORE: u32 = 0b010_0011;
const OP_IMM: u32 = 0b001_0011;
const OP_OP: u32 = 0b011_0011;
const OP_SYSTEM: u32 = 0b111_0011;

fn rd(r: Reg) -> u32 {
    u32::from(r.num()) << 7
}

fn rs1(r: Reg) -> u32 {
    u32::from(r.num()) << 15
}

fn rs2(r: Reg) -> u32 {
    u32::from(r.num()) << 20
}

fn funct3(f: u32) -> u32 {
    f << 12
}

fn i_imm(imm: i32) -> u32 {
    ((imm as u32) & 0xfff) << 20
}

fn s_imm(imm: i32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5) & 0x7f) << 25 | (imm & 0x1f) << 7
}

fn b_imm(imm: i32) -> u32 {
    let imm = imm as u32;
    ((imm >> 12) & 1) << 31 | ((imm >> 5) & 0x3f) << 25 | ((imm >> 1) & 0xf) << 8 | ((imm >> 11) & 1) << 7
}

fn j_imm(imm: i32) -> u32 {
    let imm = imm as u32;
    ((imm >> 20) & 1) << 31 | ((imm >> 1) & 0x3ff) << 21 | ((imm >> 11) & 1) << 20 | ((imm >> 12) & 0xff) << 12
}

fn branch_funct3(op: BranchOp) -> u32 {
    match op {
        BranchOp::Beq => 0b000,
        BranchOp::Bne => 0b001,
        BranchOp::Blt => 0b100,
        BranchOp::Bge => 0b101,
        BranchOp::Bltu => 0b110,
        BranchOp::Bgeu => 0b111,
    }
}

fn load_funct3(w: MemWidth) -> u32 {
    match w {
        MemWidth::B => 0b000,
        MemWidth::H => 0b001,
        MemWidth::W => 0b010,
        MemWidth::Bu => 0b100,
        MemWidth::Hu => 0b101,
    }
}

fn store_funct3(w: MemWidth) -> u32 {
    match w {
        MemWidth::B | MemWidth::Bu => 0b000,
        MemWidth::H | MemWidth::Hu => 0b001,
        MemWidth::W => 0b010,
    }
}

/// Encodes one instruction into its RV32IM word.
///
/// # Panics
///
/// Panics when an immediate does not fit its field (`i32` offsets are
/// validated by the assembler before encoding): 12-bit I/S immediates,
/// 13-bit branch offsets, 21-bit JAL offsets.
#[must_use]
pub fn encode(inst: &RvInst) -> u32 {
    match *inst {
        RvInst::Lui { rd: d, imm } => {
            assert_eq!(imm & 0xfff, 0, "LUI immediate must have low 12 bits clear");
            (imm & 0xffff_f000) | rd(d) | OP_LUI
        }
        RvInst::Auipc { rd: d, imm } => {
            assert_eq!(imm & 0xfff, 0, "AUIPC immediate must have low 12 bits clear");
            (imm & 0xffff_f000) | rd(d) | OP_AUIPC
        }
        RvInst::Jal { rd: d, offset } => {
            assert!((-(1 << 20)..(1 << 20)).contains(&offset) && offset % 2 == 0, "JAL offset out of range");
            j_imm(offset) | rd(d) | OP_JAL
        }
        RvInst::Jalr { rd: d, rs1: s1, offset } => {
            assert!((-2048..2048).contains(&offset), "JALR offset out of range");
            i_imm(offset) | rs1(s1) | funct3(0) | rd(d) | OP_JALR
        }
        RvInst::Branch { op, rs1: s1, rs2: s2, offset } => {
            assert!((-4096..4096).contains(&offset) && offset % 2 == 0, "branch offset out of range");
            b_imm(offset) | rs2(s2) | rs1(s1) | funct3(branch_funct3(op)) | OP_BRANCH
        }
        RvInst::Load { width, rd: d, rs1: s1, offset } => {
            assert!((-2048..2048).contains(&offset), "load offset out of range");
            i_imm(offset) | rs1(s1) | funct3(load_funct3(width)) | rd(d) | OP_LOAD
        }
        RvInst::Store { width, rs2: s2, rs1: s1, offset } => {
            assert!((-2048..2048).contains(&offset), "store offset out of range");
            s_imm(offset) | rs2(s2) | rs1(s1) | funct3(store_funct3(width)) | OP_STORE
        }
        RvInst::OpImm { op, rd: d, rs1: s1, imm } => {
            let (f3, imm_field) = match op {
                AluImmOp::Addi => (0b000, i_imm(imm)),
                AluImmOp::Slti => (0b010, i_imm(imm)),
                AluImmOp::Sltiu => (0b011, i_imm(imm)),
                AluImmOp::Xori => (0b100, i_imm(imm)),
                AluImmOp::Ori => (0b110, i_imm(imm)),
                AluImmOp::Andi => (0b111, i_imm(imm)),
                AluImmOp::Slli => (0b001, i_imm(imm & 31)),
                AluImmOp::Srli => (0b101, i_imm(imm & 31)),
                AluImmOp::Srai => (0b101, i_imm(imm & 31) | (0b010_0000 << 25)),
            };
            if !matches!(op, AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai) {
                assert!((-2048..2048).contains(&imm), "I-type immediate out of range");
            }
            imm_field | rs1(s1) | funct3(f3) | rd(d) | OP_IMM
        }
        RvInst::Op { op, rd: d, rs1: s1, rs2: s2 } => {
            let (f7, f3) = match op {
                AluOp::Add => (0b000_0000, 0b000),
                AluOp::Sub => (0b010_0000, 0b000),
                AluOp::Sll => (0b000_0000, 0b001),
                AluOp::Slt => (0b000_0000, 0b010),
                AluOp::Sltu => (0b000_0000, 0b011),
                AluOp::Xor => (0b000_0000, 0b100),
                AluOp::Srl => (0b000_0000, 0b101),
                AluOp::Sra => (0b010_0000, 0b101),
                AluOp::Or => (0b000_0000, 0b110),
                AluOp::And => (0b000_0000, 0b111),
                AluOp::Mul => (0b000_0001, 0b000),
                AluOp::Mulh => (0b000_0001, 0b001),
                AluOp::Mulhsu => (0b000_0001, 0b010),
                AluOp::Mulhu => (0b000_0001, 0b011),
                AluOp::Div => (0b000_0001, 0b100),
                AluOp::Divu => (0b000_0001, 0b101),
                AluOp::Rem => (0b000_0001, 0b110),
                AluOp::Remu => (0b000_0001, 0b111),
            };
            (f7 << 25) | rs2(s2) | rs1(s1) | funct3(f3) | rd(d) | OP_OP
        }
        RvInst::Ecall => OP_SYSTEM,
        RvInst::Ebreak => (1 << 20) | OP_SYSTEM,
    }
}

fn x_rd(word: u32) -> Reg {
    Reg::new(((word >> 7) & 31) as u8)
}

fn x_rs1(word: u32) -> Reg {
    Reg::new(((word >> 15) & 31) as u8)
}

fn x_rs2(word: u32) -> Reg {
    Reg::new(((word >> 20) & 31) as u8)
}

fn x_i_imm(word: u32) -> i32 {
    (word as i32) >> 20
}

fn x_s_imm(word: u32) -> i32 {
    (((word as i32) >> 25) << 5) | ((word >> 7) & 0x1f) as i32
}

fn x_b_imm(word: u32) -> i32 {
    let sign = (word as i32) >> 31;
    (sign << 12) | (((word >> 25) & 0x3f) << 5) as i32 | (((word >> 8) & 0xf) << 1) as i32 | (((word >> 7) & 1) << 11) as i32
}

fn x_j_imm(word: u32) -> i32 {
    let sign = (word as i32) >> 31;
    (sign << 20) | (((word >> 21) & 0x3ff) << 1) as i32 | (((word >> 20) & 1) << 11) as i32 | (((word >> 12) & 0xff) << 12) as i32
}

/// Decodes an RV32IM instruction word.
///
/// # Errors
///
/// Returns [`RvDecodeError`] for unsupported opcodes or funct fields
/// (anything outside RV32IM + `ecall`/`ebreak`).
pub fn decode(word: u32) -> Result<RvInst, RvDecodeError> {
    let err = || RvDecodeError(word);
    let opcode = word & 0x7f;
    let f3 = (word >> 12) & 7;
    let f7 = word >> 25;
    let inst = match opcode {
        OP_LUI => RvInst::Lui { rd: x_rd(word), imm: word & 0xffff_f000 },
        OP_AUIPC => RvInst::Auipc { rd: x_rd(word), imm: word & 0xffff_f000 },
        OP_JAL => RvInst::Jal { rd: x_rd(word), offset: x_j_imm(word) },
        OP_JALR if f3 == 0 => RvInst::Jalr { rd: x_rd(word), rs1: x_rs1(word), offset: x_i_imm(word) },
        OP_BRANCH => {
            let op = match f3 {
                0b000 => BranchOp::Beq,
                0b001 => BranchOp::Bne,
                0b100 => BranchOp::Blt,
                0b101 => BranchOp::Bge,
                0b110 => BranchOp::Bltu,
                0b111 => BranchOp::Bgeu,
                _ => return Err(err()),
            };
            RvInst::Branch { op, rs1: x_rs1(word), rs2: x_rs2(word), offset: x_b_imm(word) }
        }
        OP_LOAD => {
            let width = match f3 {
                0b000 => MemWidth::B,
                0b001 => MemWidth::H,
                0b010 => MemWidth::W,
                0b100 => MemWidth::Bu,
                0b101 => MemWidth::Hu,
                _ => return Err(err()),
            };
            RvInst::Load { width, rd: x_rd(word), rs1: x_rs1(word), offset: x_i_imm(word) }
        }
        OP_STORE => {
            let width = match f3 {
                0b000 => MemWidth::B,
                0b001 => MemWidth::H,
                0b010 => MemWidth::W,
                _ => return Err(err()),
            };
            RvInst::Store { width, rs2: x_rs2(word), rs1: x_rs1(word), offset: x_s_imm(word) }
        }
        OP_IMM => {
            let op = match f3 {
                0b000 => AluImmOp::Addi,
                0b010 => AluImmOp::Slti,
                0b011 => AluImmOp::Sltiu,
                0b100 => AluImmOp::Xori,
                0b110 => AluImmOp::Ori,
                0b111 => AluImmOp::Andi,
                0b001 if f7 == 0 => AluImmOp::Slli,
                0b101 if f7 == 0 => AluImmOp::Srli,
                0b101 if f7 == 0b010_0000 => AluImmOp::Srai,
                _ => return Err(err()),
            };
            let imm = if matches!(op, AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai) {
                ((word >> 20) & 31) as i32
            } else {
                x_i_imm(word)
            };
            RvInst::OpImm { op, rd: x_rd(word), rs1: x_rs1(word), imm }
        }
        OP_OP => {
            let op = match (f7, f3) {
                (0b000_0000, 0b000) => AluOp::Add,
                (0b010_0000, 0b000) => AluOp::Sub,
                (0b000_0000, 0b001) => AluOp::Sll,
                (0b000_0000, 0b010) => AluOp::Slt,
                (0b000_0000, 0b011) => AluOp::Sltu,
                (0b000_0000, 0b100) => AluOp::Xor,
                (0b000_0000, 0b101) => AluOp::Srl,
                (0b010_0000, 0b101) => AluOp::Sra,
                (0b000_0000, 0b110) => AluOp::Or,
                (0b000_0000, 0b111) => AluOp::And,
                (0b000_0001, 0b000) => AluOp::Mul,
                (0b000_0001, 0b001) => AluOp::Mulh,
                (0b000_0001, 0b010) => AluOp::Mulhsu,
                (0b000_0001, 0b011) => AluOp::Mulhu,
                (0b000_0001, 0b100) => AluOp::Div,
                (0b000_0001, 0b101) => AluOp::Divu,
                (0b000_0001, 0b110) => AluOp::Rem,
                (0b000_0001, 0b111) => AluOp::Remu,
                _ => return Err(err()),
            };
            RvInst::Op { op, rd: x_rd(word), rs1: x_rs1(word), rs2: x_rs2(word) }
        }
        OP_SYSTEM if word == OP_SYSTEM => RvInst::Ecall,
        OP_SYSTEM if word == (1 << 20) | OP_SYSTEM => RvInst::Ebreak,
        _ => return Err(err()),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: RvInst) {
        assert_eq!(decode(encode(&i)), Ok(i), "roundtrip of {i}");
    }

    #[test]
    fn known_encodings_match_the_spec() {
        // addi x1, x0, 5  => 0x00500093
        assert_eq!(encode(&RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::RA, rs1: Reg::ZERO, imm: 5 }), 0x0050_0093);
        // add x3, x1, x2 => 0x002081b3
        assert_eq!(encode(&RvInst::Op { op: AluOp::Add, rd: Reg::GP, rs1: Reg::RA, rs2: Reg::SP }), 0x0020_81b3);
        // lw x5, 8(x2) => 0x00812283
        assert_eq!(
            encode(&RvInst::Load { width: MemWidth::W, rd: Reg::T0, rs1: Reg::SP, offset: 8 }),
            0x0081_2283
        );
        // sw x5, 8(x2) => 0x00512423
        assert_eq!(
            encode(&RvInst::Store { width: MemWidth::W, rs2: Reg::T0, rs1: Reg::SP, offset: 8 }),
            0x0051_2423
        );
        // ecall => 0x00000073
        assert_eq!(encode(&RvInst::Ecall), 0x0000_0073);
    }

    #[test]
    fn roundtrip_representatives() {
        roundtrip(RvInst::Lui { rd: Reg::A0, imm: 0xdead_b000 });
        roundtrip(RvInst::Auipc { rd: Reg::A0, imm: 0x1000 });
        roundtrip(RvInst::Jal { rd: Reg::RA, offset: -4096 });
        roundtrip(RvInst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 });
        for op in BranchOp::ALL {
            roundtrip(RvInst::Branch { op, rs1: Reg::A0, rs2: Reg::A1, offset: -256 });
        }
        for width in [MemWidth::B, MemWidth::Bu, MemWidth::H, MemWidth::Hu, MemWidth::W] {
            roundtrip(RvInst::Load { width, rd: Reg::T3, rs1: Reg::S0, offset: -2048 });
        }
        for width in [MemWidth::B, MemWidth::H, MemWidth::W] {
            roundtrip(RvInst::Store { width, rs2: Reg::T3, rs1: Reg::S0, offset: 2047 });
        }
        for op in AluImmOp::ALL {
            roundtrip(RvInst::OpImm { op, rd: Reg::A2, rs1: Reg::A3, imm: 17 });
        }
        for op in AluOp::ALL {
            roundtrip(RvInst::Op { op, rd: Reg::A2, rs1: Reg::A3, rs2: Reg::A4 });
        }
        roundtrip(RvInst::Ecall);
        roundtrip(RvInst::Ebreak);
    }

    #[test]
    fn negative_branch_offset_roundtrips() {
        for offset in [-4096, -2, 0, 2, 4094] {
            roundtrip(RvInst::Branch { op: BranchOp::Bne, rs1: Reg::A0, rs2: Reg::ZERO, offset });
        }
    }

    #[test]
    fn jal_extreme_offsets_roundtrip() {
        for offset in [-(1 << 20), -2, 0, 2, (1 << 20) - 2] {
            roundtrip(RvInst::Jal { rd: Reg::RA, offset });
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0).is_err());
    }
}
