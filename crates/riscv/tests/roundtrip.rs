//! Property tests for the RV32IM encoder/decoder.

use proptest::prelude::*;
use straight_riscv::{decode, encode, AluImmOp, AluOp, BranchOp, MemWidth, Reg, RvInst};

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn inst() -> impl Strategy<Value = RvInst> {
    prop_oneof![
        (reg(), any::<u32>()).prop_map(|(rd, imm)| RvInst::Lui { rd, imm: imm & 0xffff_f000 }),
        (reg(), any::<u32>()).prop_map(|(rd, imm)| RvInst::Auipc { rd, imm: imm & 0xffff_f000 }),
        (reg(), (-(1i32 << 20) / 2..(1i32 << 19)).prop_map(|o| o * 2)).prop_map(|(rd, offset)| RvInst::Jal { rd, offset }),
        (reg(), reg(), -2048i32..2048).prop_map(|(rd, rs1, offset)| RvInst::Jalr { rd, rs1, offset }),
        (0usize..6, reg(), reg(), (-2048i32..2048).prop_map(|o| o * 2)).prop_map(|(i, rs1, rs2, offset)| {
            RvInst::Branch { op: BranchOp::ALL[i], rs1, rs2, offset }
        }),
        (0usize..5, reg(), reg(), -2048i32..2048).prop_map(|(i, rd, rs1, offset)| {
            let width = [MemWidth::B, MemWidth::Bu, MemWidth::H, MemWidth::Hu, MemWidth::W][i];
            RvInst::Load { width, rd, rs1, offset }
        }),
        (0usize..3, reg(), reg(), -2048i32..2048).prop_map(|(i, rs2, rs1, offset)| {
            let width = [MemWidth::B, MemWidth::H, MemWidth::W][i];
            RvInst::Store { width, rs2, rs1, offset }
        }),
        (0usize..AluImmOp::ALL.len(), reg(), reg(), -2048i32..2048).prop_map(|(i, rd, rs1, imm)| {
            let op = AluImmOp::ALL[i];
            let imm = if matches!(op, AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai) { imm & 31 } else { imm };
            RvInst::OpImm { op, rd, rs1, imm }
        }),
        (0usize..AluOp::ALL.len(), reg(), reg(), reg()).prop_map(|(i, rd, rs1, rs2)| RvInst::Op {
            op: AluOp::ALL[i],
            rd,
            rs1,
            rs2
        }),
        Just(RvInst::Ecall),
        Just(RvInst::Ebreak),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(i in inst()) {
        prop_assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn decode_total_no_panic(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn display_never_empty(i in inst()) {
        prop_assert!(!i.to_string().is_empty());
    }
}
