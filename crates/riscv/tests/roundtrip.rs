//! Property-style tests for the RV32IM encoder/decoder, driven by the
//! in-repo deterministic PRNG (no third-party crates).

use straight_isa::rng::SplitMix64;
use straight_riscv::{decode, encode, AluImmOp, AluOp, BranchOp, MemWidth, Reg, RvInst};

const CASES: u64 = 4096;

fn reg(r: &mut SplitMix64) -> Reg {
    Reg::new(r.below(32) as u8)
}

fn imm12(r: &mut SplitMix64) -> i32 {
    r.range_i32(-2048, 2047)
}

fn inst(r: &mut SplitMix64) -> RvInst {
    match r.below(11) {
        0 => RvInst::Lui { rd: reg(r), imm: r.next_u32() & 0xffff_f000 },
        1 => RvInst::Auipc { rd: reg(r), imm: r.next_u32() & 0xffff_f000 },
        2 => RvInst::Jal { rd: reg(r), offset: r.range_i32(-(1 << 19), (1 << 19) - 1) * 2 },
        3 => RvInst::Jalr { rd: reg(r), rs1: reg(r), offset: imm12(r) },
        4 => RvInst::Branch {
            op: BranchOp::ALL[r.below(BranchOp::ALL.len() as u64) as usize],
            rs1: reg(r),
            rs2: reg(r),
            offset: r.range_i32(-2048, 2047) * 2,
        },
        5 => RvInst::Load {
            width: [MemWidth::B, MemWidth::Bu, MemWidth::H, MemWidth::Hu, MemWidth::W]
                [r.below(5) as usize],
            rd: reg(r),
            rs1: reg(r),
            offset: imm12(r),
        },
        6 => RvInst::Store {
            width: [MemWidth::B, MemWidth::H, MemWidth::W][r.below(3) as usize],
            rs2: reg(r),
            rs1: reg(r),
            offset: imm12(r),
        },
        7 => {
            let op = AluImmOp::ALL[r.below(AluImmOp::ALL.len() as u64) as usize];
            let imm = if matches!(op, AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai) {
                imm12(r) & 31
            } else {
                imm12(r)
            };
            RvInst::OpImm { op, rd: reg(r), rs1: reg(r), imm }
        }
        8 => RvInst::Op {
            op: AluOp::ALL[r.below(AluOp::ALL.len() as u64) as usize],
            rd: reg(r),
            rs1: reg(r),
            rs2: reg(r),
        },
        9 => RvInst::Ecall,
        _ => RvInst::Ebreak,
    }
}

#[test]
fn encode_decode_roundtrip() {
    let mut r = SplitMix64::new(0x5712_a167_1001);
    for _ in 0..CASES {
        let i = inst(&mut r);
        assert_eq!(decode(encode(&i)).unwrap(), i, "round-trip failed for {i}");
    }
}

#[test]
fn decode_total_no_panic() {
    let mut r = SplitMix64::new(0x5712_a167_1002);
    for _ in 0..CASES {
        let _ = decode(r.next_u32());
    }
    for word in [0, u32::MAX, 0x8000_0000, 0x7fff_ffff, 0xaaaa_aaaa, 0x5555_5555] {
        let _ = decode(word);
    }
}

#[test]
fn display_never_empty() {
    let mut r = SplitMix64::new(0x5712_a167_1003);
    for _ in 0..CASES {
        assert!(!inst(&mut r).to_string().is_empty());
    }
}
