//! §VI-B sensitivity sweep, via the unified `straight-lab` runner
//! (thin delegate; see `straight-lab --figure sensitivity`).

fn main() -> std::process::ExitCode {
    straight_bench::run_figure("sensitivity")
}
