//! §VI-B sensitivity: CoreMark cycles vs the ISA maximum distance.
//! The paper reports ~1 % degradation shrinking 1023 → 31.

use straight_bench::cm_iters;
use straight_core::{experiment, report};

fn main() {
    let rows = experiment::sensitivity(cm_iters(), &[1023, 127, 63, 31]);
    print!("{}", report::render_sensitivity(&rows));
}
