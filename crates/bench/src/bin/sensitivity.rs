//! §VI-B sensitivity: CoreMark cycles vs the ISA maximum distance.
//! The paper reports ~1 % degradation shrinking 1023 → 31.

use straight_bench::cm_iters;
use straight_core::{experiment, report};

fn main() {
    match experiment::sensitivity(cm_iters(), &[1023, 127, 63, 31]) {
        Ok(rows) => print!("{}", report::render_sensitivity(&rows)),
        Err(e) => {
            eprintln!("sensitivity failed: {e}");
            std::process::exit(1);
        }
    }
}
