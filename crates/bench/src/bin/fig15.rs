//! Figure 15, via the unified `straight-lab` runner (thin delegate;
//! see `straight-lab --figure fig15` for the full CLI).

fn main() -> std::process::ExitCode {
    straight_bench::run_figure("fig15")
}
