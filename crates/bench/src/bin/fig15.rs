//! Figure 15: retired-instruction mix on CoreMark.

use straight_bench::cm_iters;
use straight_core::{experiment, report};

fn main() {
    let rows = experiment::fig15(cm_iters());
    print!("{}", report::render_mix(&rows));
}
