//! Figure 15: retired-instruction mix on CoreMark.

use straight_bench::cm_iters;
use straight_core::{experiment, report};

fn main() {
    match experiment::fig15(cm_iters()) {
        Ok(rows) => print!("{}", report::render_mix(&rows)),
        Err(e) => {
            eprintln!("fig15 failed: {e}");
            std::process::exit(1);
        }
    }
}
