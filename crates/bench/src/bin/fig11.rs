//! Figure 11: relative performance of the 4-way models on Dhrystone
//! and CoreMark (SS vs STRAIGHT RAW vs STRAIGHT RE+).

use straight_bench::{cm_iters, dhry_iters};
use straight_core::{experiment, report};

fn main() {
    match experiment::fig11(dhry_iters(), cm_iters()) {
        Ok(groups) => print!(
            "{}",
            report::render_perf("Figure 11: 4-way relative performance (vs SS-4way)", &groups)
        ),
        Err(e) => {
            eprintln!("fig11 failed: {e}");
            std::process::exit(1);
        }
    }
}
