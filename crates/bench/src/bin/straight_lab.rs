//! `straight-lab` — the unified parallel experiment runner.
//!
//! One binary regenerates the paper's whole evaluation: it enumerates
//! the (figure × workload × machine config × ISA profile) grid,
//! executes cells in parallel, writes machine-readable
//! `BENCH_<name>.json` records, and re-renders the paper-shaped text
//! reports from those records. `docs/REPRODUCING.md` maps every paper
//! figure to its invocation.
//!
//! With `--remote <addr>` the same selection runs on a `straightd`
//! daemon instead of in-process: cells execute in the daemon's
//! persistent session (so its caches survive across invocations), and
//! the fetched records are byte-identical — after `normalized()` — to
//! an in-process run at the same revision. See `docs/SERVING.md`.

use std::path::PathBuf;
use std::process::ExitCode;

use straight_bench::serve::{Client, ClientConfig};
use straight_core::experiment::{self, ExperimentId, RunParams};
use straight_core::lab::{default_jobs, validate_file, write_result, LabRun, LabSession};
use straight_sim::emu::TierConfig;

const USAGE: &str = "\
straight-lab — unified parallel experiment runner for the STRAIGHT reproduction

USAGE:
    straight-lab [OPTIONS]

SELECTION (at least one):
    --all                Run the full grid (fig11..fig17, sensitivity, table1)
    --figure NAME        Run one experiment; repeatable, accepts comma lists
    --list               List the experiment grid and exit
    --validate FILE      Parse and schema-check a BENCH_*.json file; repeatable
    --normalize FILE     Print a BENCH_*.json file with run-dependent timing
                         fields normalized away (for byte comparison)

OPTIONS:
    --remote ADDR        Run on a straightd daemon instead of in-process
                         (host:port, or a Unix socket path containing `/`)
    --remote-timeout-ms N   Socket read/write timeout for --remote; 0 blocks
                         forever (default: 30000)
    --remote-retries N   Retry budget for transient connect failures and
                         queue-full refusals, with exponential backoff
                         (default: 4)
    --stats              With --remote: print the daemon's stats JSON and exit
    --jobs N             Worker-thread cap (default: all cores)
    --quick              Reduced iteration counts for smoke runs (dhry 50, cm 1)
    --emu-tier TIER      Emulator tier for mix cells: interp (default), fast,
                         or fast-lockstep (fast, cross-checked against the
                         interpreter every few thousand instructions).
                         Local runs only; a daemon configures its own session
    --out DIR            Where to write BENCH_<name>.json (default: .)
    --no-write           Render reports without writing JSON records
    --quiet              Suppress the text reports (records still written)
    --profile            Print a host-side throughput table (per pipeline
                         cell: simulated cycles, sim wall time, kcycles/s)
    --help               This text

ENVIRONMENT:
    STRAIGHT_DHRY_ITERS / STRAIGHT_CM_ITERS   iteration counts (default 200 / 3)
    STRAIGHT_GIT_REV                          overrides recorded git revision
";

struct Options {
    all: bool,
    figures: Vec<ExperimentId>,
    list: bool,
    validate: Vec<PathBuf>,
    normalize: Vec<PathBuf>,
    remote: Option<String>,
    remote_timeout_ms: Option<u64>,
    remote_retries: Option<u32>,
    stats: bool,
    jobs: usize,
    quick: bool,
    out: PathBuf,
    no_write: bool,
    quiet: bool,
    profile: bool,
    emu_tier: TierConfig,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        all: false,
        figures: Vec::new(),
        list: false,
        validate: Vec::new(),
        normalize: Vec::new(),
        remote: None,
        remote_timeout_ms: None,
        remote_retries: None,
        stats: false,
        jobs: default_jobs(),
        quick: false,
        out: PathBuf::from("."),
        no_write: false,
        quiet: false,
        profile: false,
        emu_tier: TierConfig::interp(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--all" => opts.all = true,
            "--figure" | "-f" => {
                let value = value_for("--figure")?;
                for name in value.split(',').map(str::trim) {
                    // The unknown-name error is structured at parse
                    // time: it carries the full list of valid ids.
                    opts.figures.push(name.parse::<ExperimentId>().map_err(|e| e.to_string())?);
                }
            }
            "--list" => opts.list = true,
            "--validate" => opts.validate.push(PathBuf::from(value_for("--validate")?)),
            "--normalize" => opts.normalize.push(PathBuf::from(value_for("--normalize")?)),
            "--remote" => opts.remote = Some(value_for("--remote")?),
            "--remote-timeout-ms" => {
                let value = value_for("--remote-timeout-ms")?;
                opts.remote_timeout_ms = Some(value.parse::<u64>().map_err(|_| {
                    format!("--remote-timeout-ms: `{value}` is not a non-negative integer")
                })?);
            }
            "--remote-retries" => {
                let value = value_for("--remote-retries")?;
                opts.remote_retries = Some(value.parse::<u32>().map_err(|_| {
                    format!("--remote-retries: `{value}` is not a non-negative integer")
                })?);
            }
            "--stats" => opts.stats = true,
            "--jobs" | "-j" => {
                let value = value_for("--jobs")?;
                opts.jobs = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs: `{value}` is not a positive integer"))?;
            }
            "--quick" => opts.quick = true,
            "--emu-tier" => {
                let value = value_for("--emu-tier")?;
                opts.emu_tier = match value.as_str() {
                    "interp" => TierConfig::interp(),
                    "fast" => TierConfig::fast(),
                    "fast-lockstep" => TierConfig::fast_lockstep(),
                    other => {
                        return Err(format!(
                            "--emu-tier: `{other}` is not interp, fast, or fast-lockstep"
                        ))
                    }
                };
            }
            "--out" | "-o" => opts.out = PathBuf::from(value_for("--out")?),
            "--no-write" => opts.no_write = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--profile" => opts.profile = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.stats && opts.remote.is_none() {
        return Err("--stats needs --remote ADDR (it queries a daemon)".to_string());
    }
    if !opts.all
        && !opts.list
        && !opts.stats
        && opts.figures.is_empty()
        && opts.validate.is_empty()
        && opts.normalize.is_empty()
    {
        return Err(
            "nothing to do: pass --all, --figure, --list, --stats, --validate, or --normalize"
                .to_string(),
        );
    }
    Ok(opts)
}

fn list_grid() {
    println!("{:<12} {:<14} {:>5}  TITLE", "NAME", "PAPER", "CELLS");
    for spec in experiment::all() {
        println!(
            "{:<12} {:<14} {:>5}  {}",
            spec.id.name(),
            spec.paper_ref,
            spec.cells().len(),
            spec.title
        );
    }
}

fn validate(paths: &[PathBuf]) -> ExitCode {
    let mut failed = false;
    for path in paths {
        match validate_file(path) {
            Ok(result) => println!(
                "OK {}: {} ({} cells, git {})",
                path.display(),
                result.experiment,
                result.cells.len(),
                result.git_rev
            ),
            Err(e) => {
                eprintln!("INVALID {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Prints each file's records with run-dependent timing zeroed, so two
/// runs of the same revision can be compared with `cmp`/`diff` — the
/// daemon-vs-in-process check `scripts/ci.sh` performs.
fn normalize(paths: &[PathBuf]) -> ExitCode {
    use straight_json::ToJson;
    for path in paths {
        match validate_file(path) {
            Ok(result) => println!("{}", result.normalized().to_json().render_pretty()),
            Err(e) => {
                eprintln!("INVALID {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Prints the host-side profiler summary: one row per pipeline cell
/// with the simulation's wall time and throughput, then totals over
/// the *unique* simulations (cells sharing a config fingerprint share
/// one cached run, so their times are the same measurement).
fn print_profile(runs: &[LabRun]) {
    println!();
    println!("{:<44} {:>12} {:>10} {:>10}", "PROFILE (pipeline cells)", "CYCLES", "SIM ms", "KCYC/S");
    let mut seen = std::collections::BTreeSet::new();
    let mut total_cycles = 0u64;
    let mut total_ms = 0.0f64;
    for cell in runs.iter().flat_map(|r| &r.result.cells) {
        let Some(sim_ms) = cell.sim_wall_ms else { continue };
        let kcps = cell.ksim_cycles_per_sec.unwrap_or(0.0);
        let cached = !seen.insert(cell.config_fingerprint.clone());
        if !cached {
            total_cycles += cell.cycles;
            total_ms += sim_ms;
        }
        println!(
            "{:<44} {:>12} {:>10.1} {:>10.0}{}",
            cell.id,
            cell.cycles,
            sim_ms,
            kcps,
            if cached { "  (cached)" } else { "" }
        );
    }
    if seen.is_empty() {
        println!("(no pipeline cells in this selection)");
        return;
    }
    println!(
        "{:<44} {:>12} {:>10.1} {:>10.0}",
        format!("TOTAL ({} unique simulations)", seen.len()),
        total_cycles,
        total_ms,
        if total_ms > 0.0 { total_cycles as f64 / total_ms } else { 0.0 }
    );
}

/// Emits one finished run: report text, record file, write notice.
fn emit_run(opts: &Options, run: &LabRun) {
    if !opts.quiet {
        print!("{}", run.rendered);
    }
    if let Some(path) = &run.path {
        eprintln!(
            "straight-lab: wrote {} ({} cells, {:.0} ms compute)",
            path.display(),
            run.result.cells.len(),
            run.result.wall_ms
        );
    }
}

fn run_local(opts: &Options, ids: &[ExperimentId], params: RunParams) -> ExitCode {
    let session = match LabSession::builder()
        .jobs(opts.jobs)
        .profile(opts.profile)
        .out_dir((!opts.no_write).then(|| opts.out.clone()))
        .emu_tier(opts.emu_tier)
        .build()
    {
        Ok(session) => session,
        Err(e) => {
            eprintln!("straight-lab: {e}");
            return ExitCode::FAILURE;
        }
    };
    match session.run(ids, params) {
        Ok(runs) => {
            for run in &runs {
                emit_run(opts, run);
            }
            if opts.profile {
                print_profile(&runs);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("straight-lab: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The client resilience knobs from the command line: socket timeouts
/// (`--remote-timeout-ms`, 0 disables) and the retry budget
/// (`--remote-retries`).
fn client_config(opts: &Options) -> ClientConfig {
    let mut config = ClientConfig::default();
    if let Some(ms) = opts.remote_timeout_ms {
        config.io_timeout = std::time::Duration::from_millis(ms);
        if ms != 0 {
            config.connect_timeout = std::time::Duration::from_millis(ms);
        }
    }
    if let Some(retries) = opts.remote_retries {
        config.retries = retries;
    }
    config
}

/// Connects with retry/backoff; failures are terminal and explain the
/// budget that was spent.
fn connect_remote(opts: &Options, addr: &str) -> Result<Client, ExitCode> {
    Client::connect_with(addr, &client_config(opts)).map_err(|e| {
        eprintln!("straight-lab: cannot connect to {addr}: {e}");
        ExitCode::FAILURE
    })
}

/// `--stats`: print the daemon's stats snapshot as pretty JSON.
fn run_stats(opts: &Options, addr: &str) -> ExitCode {
    let mut client = match connect_remote(opts, addr) {
        Ok(client) => client,
        Err(code) => return code,
    };
    match client.stats() {
        Ok(stats) => {
            println!("{}", stats.render_pretty());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("straight-lab: stats query failed on {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The remote path: submit every experiment up front (the daemon's
/// pool pipelines their cells), then wait, fetch, render and persist
/// locally.
fn run_remote(opts: &Options, addr: &str, ids: &[ExperimentId], params: RunParams) -> ExitCode {
    let mut client = match connect_remote(opts, addr) {
        Ok(client) => client,
        Err(code) => return code,
    };
    let mut submitted = Vec::with_capacity(ids.len());
    for &id in ids {
        match client.submit_experiment_with_retry(id, &params) {
            Ok(job) => submitted.push((id, job)),
            Err(e) => {
                eprintln!("straight-lab: submit {id} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut runs = Vec::with_capacity(submitted.len());
    for (id, job) in submitted {
        // Fetch regardless of the terminal state: for failed or
        // cancelled jobs the daemon answers with the structured
        // job-failed error, which is the message we want to surface.
        let outcome = client.wait_job(job).and_then(|_| client.fetch_experiment(job));
        let result = match outcome {
            Ok(result) => result,
            Err(e) => {
                eprintln!("straight-lab: {id} failed on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let rendered = match id.spec().render(&result) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("straight-lab: {id}: daemon records did not render: {e}");
                return ExitCode::FAILURE;
            }
        };
        let path = if opts.no_write {
            None
        } else {
            match write_result(&opts.out, &result) {
                Ok(path) => Some(path),
                Err(e) => {
                    eprintln!("straight-lab: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        let run = LabRun { result, rendered, path };
        emit_run(opts, &run);
        runs.push(run);
    }
    if opts.profile {
        print_profile(&runs);
    }
    let (retries, timeouts) = client.retry_counters();
    if retries > 0 || timeouts > 0 {
        eprintln!("straight-lab: remote resilience: {retries} retries, {timeouts} timeouts");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("straight-lab: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.list {
        list_grid();
        if !opts.all && opts.figures.is_empty() && opts.validate.is_empty() {
            return ExitCode::SUCCESS;
        }
    }
    if !opts.normalize.is_empty() {
        let code = normalize(&opts.normalize);
        if code != ExitCode::SUCCESS || (!opts.all && opts.figures.is_empty()) {
            return code;
        }
    }
    if !opts.validate.is_empty() {
        let code = validate(&opts.validate);
        if code != ExitCode::SUCCESS || (!opts.all && opts.figures.is_empty()) {
            return code;
        }
    }

    if opts.stats {
        let Some(addr) = &opts.remote else { unreachable!("parse_args enforces --remote") };
        return run_stats(&opts, addr);
    }

    let ids: Vec<ExperimentId> = if opts.all {
        ExperimentId::ALL.to_vec()
    } else {
        opts.figures.clone()
    };
    let params = if opts.quick {
        RunParams::quick()
    } else {
        straight_bench::params_from_env()
    };
    match &opts.remote {
        Some(addr) => run_remote(&opts, addr, &ids, params),
        None => run_local(&opts, &ids, params),
    }
}
