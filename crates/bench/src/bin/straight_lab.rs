//! `straight-lab` — the unified parallel experiment runner.
//!
//! One binary regenerates the paper's whole evaluation: it enumerates
//! the (figure × workload × machine config × ISA profile) grid,
//! executes cells in parallel, writes machine-readable
//! `BENCH_<name>.json` records, and re-renders the paper-shaped text
//! reports from those records. `docs/REPRODUCING.md` maps every paper
//! figure to its invocation.

use std::path::PathBuf;
use std::process::ExitCode;

use straight_core::experiment::{self, RunParams};
use straight_core::lab::{default_jobs, run_lab, validate_file, LabConfig};

const USAGE: &str = "\
straight-lab — unified parallel experiment runner for the STRAIGHT reproduction

USAGE:
    straight-lab [OPTIONS]

SELECTION (at least one):
    --all                Run the full grid (fig11..fig17, sensitivity, table1)
    --figure NAME        Run one experiment; repeatable, accepts comma lists
    --list               List the experiment grid and exit
    --validate FILE      Parse and schema-check a BENCH_*.json file; repeatable

OPTIONS:
    --jobs N             Worker-thread cap (default: all cores)
    --quick              Reduced iteration counts for smoke runs (dhry 50, cm 1)
    --out DIR            Where to write BENCH_<name>.json (default: .)
    --no-write           Render reports without writing JSON records
    --quiet              Suppress the text reports (records still written)
    --profile            Print a host-side throughput table (per pipeline
                         cell: simulated cycles, sim wall time, kcycles/s)
    --help               This text

ENVIRONMENT:
    STRAIGHT_DHRY_ITERS / STRAIGHT_CM_ITERS   iteration counts (default 200 / 3)
    STRAIGHT_GIT_REV                          overrides recorded git revision
";

struct Options {
    all: bool,
    figures: Vec<String>,
    list: bool,
    validate: Vec<PathBuf>,
    jobs: usize,
    quick: bool,
    out: PathBuf,
    no_write: bool,
    quiet: bool,
    profile: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        all: false,
        figures: Vec::new(),
        list: false,
        validate: Vec::new(),
        jobs: default_jobs(),
        quick: false,
        out: PathBuf::from("."),
        no_write: false,
        quiet: false,
        profile: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--all" => opts.all = true,
            "--figure" | "-f" => {
                let value = value_for("--figure")?;
                opts.figures.extend(value.split(',').map(|s| s.trim().to_string()));
            }
            "--list" => opts.list = true,
            "--validate" => opts.validate.push(PathBuf::from(value_for("--validate")?)),
            "--jobs" | "-j" => {
                let value = value_for("--jobs")?;
                opts.jobs = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs: `{value}` is not a positive integer"))?;
            }
            "--quick" => opts.quick = true,
            "--out" | "-o" => opts.out = PathBuf::from(value_for("--out")?),
            "--no-write" => opts.no_write = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--profile" => opts.profile = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !opts.all && !opts.list && opts.figures.is_empty() && opts.validate.is_empty() {
        return Err("nothing to do: pass --all, --figure, --list, or --validate".to_string());
    }
    Ok(opts)
}

fn list_grid() {
    println!("{:<12} {:<14} {:>5}  TITLE", "NAME", "PAPER", "CELLS");
    for spec in experiment::all() {
        println!(
            "{:<12} {:<14} {:>5}  {}",
            spec.name,
            spec.paper_ref,
            spec.cells().len(),
            spec.title
        );
    }
}

fn validate(paths: &[PathBuf]) -> ExitCode {
    let mut failed = false;
    for path in paths {
        match validate_file(path) {
            Ok(result) => println!(
                "OK {}: {} ({} cells, git {})",
                path.display(),
                result.experiment,
                result.cells.len(),
                result.git_rev
            ),
            Err(e) => {
                eprintln!("INVALID {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Prints the host-side profiler summary: one row per pipeline cell
/// with the simulation's wall time and throughput, then totals over
/// the *unique* simulations (cells sharing a config fingerprint share
/// one cached run, so their times are the same measurement).
fn print_profile(runs: &[straight_core::lab::LabRun]) {
    println!();
    println!("{:<44} {:>12} {:>10} {:>10}", "PROFILE (pipeline cells)", "CYCLES", "SIM ms", "KCYC/S");
    let mut seen = std::collections::BTreeSet::new();
    let mut total_cycles = 0u64;
    let mut total_ms = 0.0f64;
    for cell in runs.iter().flat_map(|r| &r.result.cells) {
        let Some(sim_ms) = cell.sim_wall_ms else { continue };
        let kcps = cell.ksim_cycles_per_sec.unwrap_or(0.0);
        let cached = !seen.insert(cell.config_fingerprint.clone());
        if !cached {
            total_cycles += cell.cycles;
            total_ms += sim_ms;
        }
        println!(
            "{:<44} {:>12} {:>10.1} {:>10.0}{}",
            cell.id,
            cell.cycles,
            sim_ms,
            kcps,
            if cached { "  (cached)" } else { "" }
        );
    }
    if seen.is_empty() {
        println!("(no pipeline cells in this selection)");
        return;
    }
    println!(
        "{:<44} {:>12} {:>10.1} {:>10.0}",
        format!("TOTAL ({} unique simulations)", seen.len()),
        total_cycles,
        total_ms,
        if total_ms > 0.0 { total_cycles as f64 / total_ms } else { 0.0 }
    );
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("straight-lab: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.list {
        list_grid();
        if !opts.all && opts.figures.is_empty() && opts.validate.is_empty() {
            return ExitCode::SUCCESS;
        }
    }
    if !opts.validate.is_empty() {
        let code = validate(&opts.validate);
        if code != ExitCode::SUCCESS || (!opts.all && opts.figures.is_empty()) {
            return code;
        }
    }

    let experiments: Vec<String> = if opts.all {
        experiment::all().iter().map(|e| e.name.to_string()).collect()
    } else {
        opts.figures.clone()
    };
    let params = if opts.quick {
        RunParams::quick()
    } else {
        straight_bench::params_from_env()
    };
    let config = LabConfig {
        experiments,
        params,
        jobs: opts.jobs,
        out_dir: if opts.no_write { None } else { Some(opts.out.clone()) },
    };

    match run_lab(&config) {
        Ok(runs) => {
            for run in &runs {
                if !opts.quiet {
                    print!("{}", run.rendered);
                }
                if let Some(path) = &run.path {
                    eprintln!(
                        "straight-lab: wrote {} ({} cells, {:.0} ms compute)",
                        path.display(),
                        run.result.cells.len(),
                        run.result.wall_ms
                    );
                }
            }
            if opts.profile {
                print_profile(&runs);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("straight-lab: {e}");
            ExitCode::FAILURE
        }
    }
}
