//! Figure 12: relative performance of the 2-way models.

use straight_bench::{cm_iters, dhry_iters};
use straight_core::{experiment, report};

fn main() {
    match experiment::fig12(dhry_iters(), cm_iters()) {
        Ok(groups) => print!(
            "{}",
            report::render_perf("Figure 12: 2-way relative performance (vs SS-2way)", &groups)
        ),
        Err(e) => {
            eprintln!("fig12 failed: {e}");
            std::process::exit(1);
        }
    }
}
