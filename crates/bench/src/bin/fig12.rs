//! Figure 12: relative performance of the 2-way models.

use straight_bench::{cm_iters, dhry_iters};
use straight_core::{experiment, report};

fn main() {
    let groups = experiment::fig12(dhry_iters(), cm_iters());
    print!("{}", report::render_perf("Figure 12: 2-way relative performance (vs SS-2way)", &groups));
}
