//! `fast-tier-bench` — interleaved A/B throughput comparison of the
//! two emulator tiers behind `ExecBackend`: the instruction-at-a-time
//! interpreter vs. the decoded-basic-block fast tier (with RMOV-chain
//! fusion). Follows the docs/PERFORMANCE.md methodology: alternate
//! `interp, fast, interp, fast, …` run pairs so both tiers sample the
//! same host drift, reduce per cell (median and best-of), and report
//! the median of per-cell ratios. Writes `BENCH_fast_tier.json` in the
//! same artifact shape as `BENCH_core_soa.json`.
//!
//! Before timing, each cell is verified: the fast tier must reproduce
//! the interpreter's exit, retired count, and stdout, and a
//! lockstep-mode run (`TierConfig::fast_lockstep()`) must complete
//! without a divergence trap.

use std::process::ExitCode;
use std::time::Instant;

use straight_core::{build, Target};
use straight_json::{obj, Json, ToJson};
use straight_sim::emu::{EmuExit, ExecBackend, RiscvEmu, StraightEmu, TierConfig};
use straight_workloads::{coremark, dhrystone};

/// Interleaved run pairs per cell (odd, so the median is a sample).
const PAIRS: usize = 7;

/// One tier's timing samples for a cell, in retired Minstr/s.
struct TierSamples {
    runs: Vec<f64>,
}

impl TierSamples {
    fn median(&self) -> f64 {
        let mut s = self.runs.clone();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    }

    fn best(&self) -> f64 {
        self.runs.iter().copied().fold(0.0, f64::max)
    }

    fn to_json(&self) -> Json {
        obj()
            .field("runs", &self.runs.iter().map(|r| round2(*r)).collect::<Vec<_>>())
            .field("median", &round2(self.median()))
            .field("best", &round2(self.best()))
            .build()
    }
}

struct Cell {
    name: String,
    retired: u64,
    interp: TierSamples,
    fast: TierSamples,
    lockstep_verified: bool,
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// One full-program run; returns (exit, retired, Minstr/s, stdout).
fn timed_run<E: ExecBackend>(mut emu: E, tier: TierConfig) -> (EmuExit, u64, f64, String) {
    let t0 = Instant::now();
    let exit = emu.run_with(u64::MAX, tier);
    let secs = t0.elapsed().as_secs_f64();
    let retired = emu.stats().retired;
    let minstr = retired as f64 / secs / 1e6;
    (exit, retired, minstr, emu.stdout().to_string())
}

/// Measures one (workload, ISA) cell: correctness check first, then
/// `PAIRS` interleaved interp/fast timing pairs.
fn measure<E: ExecBackend>(name: &str, fresh: impl Fn() -> E) -> Result<Cell, String> {
    // Reference semantics from the interpreter tier.
    let (ref_exit, ref_retired, _, ref_stdout) = timed_run(fresh(), TierConfig::interp());
    if !matches!(ref_exit, EmuExit::Done { .. }) {
        return Err(format!("{name}: interpreter run did not complete: {ref_exit:?}"));
    }

    // The fast tier must agree, and a lockstep run (cross-checked
    // against the interpreter every sync interval) must not trap.
    for (mode, tier) in
        [("fast", TierConfig::fast()), ("fast-lockstep", TierConfig::fast_lockstep())]
    {
        let (exit, retired, _, stdout) = timed_run(fresh(), tier);
        if exit != ref_exit || retired != ref_retired || stdout != ref_stdout {
            return Err(format!(
                "{name}: {mode} tier diverged from the interpreter \
                 (exit {exit:?} vs {ref_exit:?}, retired {retired} vs {ref_retired})"
            ));
        }
    }

    let mut interp = TierSamples { runs: Vec::with_capacity(PAIRS) };
    let mut fast = TierSamples { runs: Vec::with_capacity(PAIRS) };
    for _ in 0..PAIRS {
        interp.runs.push(timed_run(fresh(), TierConfig::interp()).2);
        fast.runs.push(timed_run(fresh(), TierConfig::fast()).2);
    }
    Ok(Cell {
        name: name.to_string(),
        retired: ref_retired,
        interp,
        fast,
        lockstep_verified: true,
    })
}

/// Days-since-epoch to an ISO `YYYY-MM-DD` date (civil-from-days).
fn iso_date_today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = secs as i64 / 86_400 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Best-effort CPU model string from /proc/cpuinfo.
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn run() -> Result<(), String> {
    let dhry = std::env::var("STRAIGHT_DHRY_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000u32);
    let cm =
        std::env::var("STRAIGHT_CM_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(20u32);

    let built = |src: &str, target: Target, what: &str| {
        build(src, target).map_err(|e| format!("building {what}: {e}"))
    };
    let dhry_src = dhrystone(dhry);
    let cm_src = coremark(cm);
    let re = Target::StraightRePlus { max_distance: 31 };
    let dhry_st = built(&dhry_src, re, "Dhrystone STRAIGHT(RE+)")?;
    let dhry_rv = built(&dhry_src, Target::Riscv, "Dhrystone RV32IM")?;
    let cm_st = built(&cm_src, re, "Coremark STRAIGHT(RE+)")?;
    let cm_rv = built(&cm_src, Target::Riscv, "Coremark RV32IM")?;

    let cells = vec![
        measure("Dhrystone/STRAIGHT(RE+)", || StraightEmu::new(dhry_st.clone()))?,
        measure("Dhrystone/SS", || RiscvEmu::new(dhry_rv.clone()))?,
        measure("Coremark/STRAIGHT(RE+)", || StraightEmu::new(cm_st.clone()))?,
        measure("Coremark/SS", || RiscvEmu::new(cm_rv.clone()))?,
    ];

    let mut ratios: Vec<f64> =
        cells.iter().map(|c| c.fast.median() / c.interp.median()).collect();
    ratios.sort_by(f64::total_cmp);
    let median_ratio = ratios[ratios.len() / 2];
    let min_ratio = ratios[0];
    let max_ratio = ratios[ratios.len() - 1];
    let pass = min_ratio >= 5.0;

    println!("== fast tier vs interpreter, retired Minstr/s ==");
    println!(
        "  {:<26}{:>12}{:>16}{:>14}{:>10}",
        "cell", "retired", "interp Mi/s", "fast Mi/s", "speedup"
    );
    for c in &cells {
        println!(
            "  {:<26}{:>12}{:>16.2}{:>14.2}{:>9.2}x",
            c.name,
            c.retired,
            c.interp.median(),
            c.fast.median(),
            c.fast.median() / c.interp.median()
        );
    }
    println!(
        "  median speedup {median_ratio:.2}x (range {min_ratio:.2}-{max_ratio:.2}x) — \
         >=5x acceptance: {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let cell_json: Vec<Json> = cells
        .iter()
        .map(|c| {
            obj()
                .field("cell", c.name.as_str())
                .field("retired_instructions", &c.retired)
                .field("interp_minstr_per_s", &c.interp.to_json())
                .field("fast_minstr_per_s", &c.fast.to_json())
                .field("speedup_median_of_runs", &round3(c.fast.median() / c.interp.median()))
                .field("speedup_best_of_runs", &round3(c.fast.best() / c.interp.best()))
                .field("lockstep_verified", &c.lockstep_verified)
                .build()
        })
        .collect();

    let record = obj()
        .field("record", "BENCH_fast_tier")
        .field(
            "claim",
            "decoded-basic-block fast tier with RMOV-chain fusion vs. the \
             instruction-at-a-time interpreter tier, retired instructions per host second",
        )
        .field("date", iso_date_today().as_str())
        .field(
            "methodology",
            &format!(
                "docs/PERFORMANCE.md: {PAIRS} interleaved interp/fast full-program run pairs \
                 per cell (interp,fast,interp,fast,...), per-cell reduction across runs \
                 (median and best-of), headline = median of per-cell median ratios"
            ),
        )
        .field(
            "equivalence",
            "per cell, one fast-tier and one lockstep-mode run verified against the \
             interpreter before timing: identical exit, retired count, and stdout; \
             lockstep mode additionally cross-checks architectural state at every \
             sync interval and traps on divergence",
        )
        .field(
            "host",
            &obj()
                .field("cpu", cpu_model().as_str())
                .field("os", "Linux")
                .field(
                    "note",
                    "virtualised, +/-15% per-cell same-binary drift measured; \
                     see docs/PERFORMANCE.md",
                )
                .build(),
        )
        .field(
            "workload_scale",
            &obj().field("STRAIGHT_DHRY_ITERS", &dhry).field("STRAIGHT_CM_ITERS", &cm).build(),
        )
        .field("command", "fast-tier-bench")
        .field(
            "headline",
            &obj()
                .field("median_speedup_median_of_runs", &round3(median_ratio))
                .field("min_cell_ratio", &round3(min_ratio))
                .field("max_cell_ratio", &round3(max_ratio))
                .field(
                    "acceptance",
                    &format!(
                        ">=5x fast-tier retired-instr/s per cell: {}",
                        if pass { "PASS" } else { "FAIL" }
                    ),
                )
                .build(),
        )
        .field("cells", &Json::Arr(cell_json))
        .build();

    let path = "BENCH_fast_tier.json";
    std::fs::write(path, record.to_json().render_pretty() + "\n")
        .map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("fast-tier-bench: wrote {path} ({} cells)", cells.len());
    if pass {
        Ok(())
    } else {
        Err(format!("acceptance failed: min cell ratio {min_ratio:.2}x < 5x"))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fast-tier-bench: {e}");
            ExitCode::FAILURE
        }
    }
}
