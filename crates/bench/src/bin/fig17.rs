//! Figure 17: relative per-module power at several clock frequencies.

use straight_bench::dhry_iters;
use straight_core::{experiment, report};

fn main() {
    let rows = experiment::fig17(dhry_iters());
    print!("{}", report::render_power(&rows));
}
