//! Figure 17: relative per-module power at several clock frequencies.

use straight_bench::dhry_iters;
use straight_core::{experiment, report};

fn main() {
    match experiment::fig17(dhry_iters()) {
        Ok(rows) => print!("{}", report::render_power(&rows)),
        Err(e) => {
            eprintln!("fig17 failed: {e}");
            std::process::exit(1);
        }
    }
}
