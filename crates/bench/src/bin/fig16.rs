//! Figure 16: cumulative source-operand distance distribution.

use straight_bench::{cm_iters, dhry_iters};
use straight_core::{experiment, report};

fn main() {
    let profiles = experiment::fig16(dhry_iters(), cm_iters());
    print!("{}", report::render_distances(&profiles));
}
