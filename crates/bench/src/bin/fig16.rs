//! Figure 16: cumulative source-operand distance distribution.

use straight_bench::{cm_iters, dhry_iters};
use straight_core::{experiment, report};

fn main() {
    match experiment::fig16(dhry_iters(), cm_iters()) {
        Ok(profiles) => print!("{}", report::render_distances(&profiles)),
        Err(e) => {
            eprintln!("fig16 failed: {e}");
            std::process::exit(1);
        }
    }
}
