//! Figure 13, via the unified `straight-lab` runner (thin delegate;
//! see `straight-lab --figure fig13` for the full CLI).

fn main() -> std::process::ExitCode {
    straight_bench::run_figure("fig13")
}
