//! Figure 13: the effect of the misprediction penalty (SS, SS with an
//! idealized penalty, STRAIGHT RE+; CoreMark; normalized to SS-2way).

use straight_bench::cm_iters;
use straight_core::{experiment, report};

fn main() {
    match experiment::fig13(cm_iters()) {
        Ok(groups) => print!(
            "{}",
            report::render_perf("Figure 13: misprediction-penalty effect (vs SS-2way)", &groups)
        ),
        Err(e) => {
            eprintln!("fig13 failed: {e}");
            std::process::exit(1);
        }
    }
}
