//! Table I: the evaluated machine models.

use straight_core::machines;

fn main() {
    println!("== Table I: evaluated models ==");
    for cfg in
        [machines::ss_2way(), machines::straight_2way(), machines::ss_4way(), machines::straight_4way()]
    {
        println!("[{}]", cfg.name);
        println!("  isa             {:?}", cfg.isa);
        println!("  fetch width     {}", cfg.fetch_width);
        println!("  front-end depth {}", cfg.frontend_latency);
        println!("  ROB capacity    {}", cfg.rob_capacity);
        println!("  scheduler       {}-way, {} entries", cfg.issue_width, cfg.iq_entries);
        println!("  register file   {}", cfg.phys_regs);
        println!("  LSQ             LD {} / ST {}", cfg.lsq_ld, cfg.lsq_st);
        println!(
            "  exec units      ALU {}, MUL {}, DIV {}, BC {}, Mem {}",
            cfg.units.alu, cfg.units.mul, cfg.units.div, cfg.units.bc, cfg.units.mem
        );
        println!("  commit width    {}", cfg.commit_width);
        println!("  predictor       {:?}", cfg.predictor);
        println!("  L3              {}", if cfg.hierarchy.l3.is_some() { "2 MiB" } else { "none" });
        if cfg.isa == straight_sim::pipeline::IsaKind::Straight {
            println!("  max distance    {}", cfg.max_distance);
        }
    }
}
