//! Table I (the evaluated machine models), via the unified
//! `straight-lab` runner (thin delegate; see `straight-lab --figure
//! table1`).

fn main() -> std::process::ExitCode {
    straight_bench::run_figure("table1")
}
