//! `straightd` — the persistent simulation daemon.
//!
//! Owns one long-lived `LabSession` (worker pool + image/run caches)
//! and serves it over the newline-delimited-JSON protocol of
//! `straight_bench::serve` on a TCP address or Unix-domain socket.
//! Repeated submissions of the same cell — from any number of clients
//! — run the simulation once; everyone else reads the cache.
//!
//! SIGTERM/SIGINT (or a `shutdown` request) drain gracefully: the
//! listener stops accepting, in-flight jobs run to completion, then
//! the process exits 0. See `docs/SERVING.md` for the protocol.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use straight_bench::serve::{parse_addr, Daemon, DaemonConfig};

const USAGE: &str = "\
straightd — persistent simulation daemon for the STRAIGHT reproduction

USAGE:
    straightd --listen ADDR [OPTIONS]

OPTIONS:
    --listen ADDR        host:port, or a Unix socket path containing `/`
    --jobs N             Worker-thread cap (default: all cores)
    --queue N            Job-queue bound; beyond it submissions get a
                         queue-full error (default: 64)
    --store DIR          Crash-safe on-disk record store; completed
                         pipeline simulations survive restarts (default:
                         memory only)
    --idle-timeout-ms N  Reap connections idle for N ms; 0 disables
                         (default: 300000)
    --help               This text

Clients: `straight-lab --remote ADDR ...`, or any newline-delimited-JSON
speaker (see docs/SERVING.md). SIGTERM drains in-flight jobs and exits.
STRAIGHT_CHAOS_PANIC_CELL=<cell-id|any> injects a worker panic into that
cell's execution (fault-tolerance testing only).
";

/// Set by the signal handler, polled by the accept loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Registers an async-signal-safe handler: just a store to a static
/// atomic, the only thing that is safe to do there. This is the lone
/// unsafe block in the workspace's binaries; the libraries all
/// `forbid(unsafe_code)`.
fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

struct Options {
    listen: String,
    jobs: Option<usize>,
    queue: Option<usize>,
    store: Option<std::path::PathBuf>,
    idle_timeout_ms: Option<u64>,
}

fn parse_args() -> Result<Options, String> {
    let mut listen = None;
    let mut jobs = None;
    let mut queue = None;
    let mut store = None;
    let mut idle_timeout_ms = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--listen" | "-l" => listen = Some(value_for("--listen")?),
            "--jobs" | "-j" => {
                let value = value_for("--jobs")?;
                jobs = Some(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--jobs: `{value}` is not a positive integer"))?,
                );
            }
            "--queue" => {
                let value = value_for("--queue")?;
                queue = Some(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--queue: `{value}` is not a positive integer"))?,
                );
            }
            "--store" => store = Some(std::path::PathBuf::from(value_for("--store")?)),
            "--idle-timeout-ms" => {
                let value = value_for("--idle-timeout-ms")?;
                idle_timeout_ms = Some(value.parse::<u64>().map_err(|_| {
                    format!("--idle-timeout-ms: `{value}` is not a non-negative integer")
                })?);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let listen = listen.ok_or_else(|| "--listen is required".to_string())?;
    Ok(Options { listen, jobs, queue, store, idle_timeout_ms })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("straightd: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut config = DaemonConfig::new(parse_addr(&opts.listen));
    if let Some(jobs) = opts.jobs {
        config.jobs = jobs;
    }
    if let Some(queue) = opts.queue {
        config.queue_cap = queue;
    }
    config.store = opts.store;
    if let Some(ms) = opts.idle_timeout_ms {
        config.idle_timeout =
            if ms == 0 { None } else { Some(std::time::Duration::from_millis(ms)) };
    }
    // Chaos injection is env-only (never a flag) so it cannot be
    // reached for by accident from normal command lines.
    if let Ok(victim) = std::env::var("STRAIGHT_CHAOS_PANIC_CELL") {
        if !victim.is_empty() {
            eprintln!("straightd: CHAOS: injecting panics into cell `{victim}`");
            config.chaos_panic_cell = Some(victim);
        }
    }
    let daemon = match Daemon::bind(&config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("straightd: cannot listen on {}: {e}", opts.listen);
            return ExitCode::FAILURE;
        }
    };
    install_signal_handlers();
    eprintln!(
        "straightd: listening on {} ({} workers, queue bound {})",
        daemon.local_addr(),
        config.jobs,
        config.queue_cap
    );
    if let Some(report) = daemon.store_report() {
        eprintln!("straightd: store: {}", report.summary());
    }
    match daemon.run(&SHUTDOWN) {
        Ok(()) => {
            eprintln!("straightd: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("straightd: listener failed: {e}");
            ExitCode::FAILURE
        }
    }
}
