//! Figure 14: CoreMark comparison with the TAGE predictor.

use straight_bench::cm_iters;
use straight_core::{experiment, report};

fn main() {
    let groups = experiment::fig14(cm_iters());
    print!("{}", report::render_perf("Figure 14: with TAGE branch predictor (vs SS)", &groups));
}
