//! Figure 14: CoreMark comparison with the TAGE predictor.

use straight_bench::cm_iters;
use straight_core::{experiment, report};

fn main() {
    match experiment::fig14(cm_iters()) {
        Ok(groups) => {
            print!("{}", report::render_perf("Figure 14: with TAGE branch predictor (vs SS)", &groups));
        }
        Err(e) => {
            eprintln!("fig14 failed: {e}");
            std::process::exit(1);
        }
    }
}
