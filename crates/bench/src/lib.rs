//! # straight-bench
//!
//! The benchmark front-end of the STRAIGHT reproduction — the top of
//! the evaluation stack (`workloads` → `core` → here):
//!
//! * **`straight-lab`** — the unified experiment runner. It enumerates
//!   the full grid (Figures 11–17, the §VI-B sensitivity sweep,
//!   Table I), executes cells in parallel with a `--jobs` cap, caches
//!   compiled workload images across figures, writes machine-readable
//!   `BENCH_<name>.json` records (cycles, IPC, full `SimStats`,
//!   power-model events, configuration fingerprint, git revision, wall
//!   time), and re-renders the paper-shaped text reports from those
//!   records. See `docs/REPRODUCING.md` for the figure-by-figure
//!   guide.
//! * **`fig11` … `fig17`, `sensitivity`, `table1`** — one-figure
//!   conveniences kept for muscle memory; each is a thin delegate to
//!   the same runner ([`run_figure`]), so there is exactly one
//!   build/run/error path.
//! * **`straightd`** — a persistent simulation daemon serving the same
//!   lab session over a newline-delimited-JSON protocol (the [`serve`]
//!   module); `straight-lab --remote <addr>` is its client, and cached
//!   images/runs persist across requests. See `docs/SERVING.md`.
//! * **Microbenchmarks** (`cargo bench -p straight-bench`, hand-rolled
//!   harness) of the simulator and toolchain hot paths.
//!
//! Iteration counts default to values that complete in seconds on a
//! laptop; set `STRAIGHT_DHRY_ITERS` / `STRAIGHT_CM_ITERS` to larger
//! values (the paper uses 9000 and 9) for longer, steadier runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod serve;
pub mod store;

use std::process::ExitCode;

use straight_core::experiment::{ExperimentId, RunParams};
use straight_core::lab::LabSession;

/// Dhrystone iteration count (`STRAIGHT_DHRY_ITERS`, default 200).
#[must_use]
pub fn dhry_iters() -> u32 {
    std::env::var("STRAIGHT_DHRY_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(200)
}

/// CoreMark iteration count (`STRAIGHT_CM_ITERS`, default 3).
#[must_use]
pub fn cm_iters() -> u32 {
    std::env::var("STRAIGHT_CM_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

/// Run parameters from the environment (the historical behavior of
/// the per-figure binaries).
#[must_use]
pub fn params_from_env() -> RunParams {
    RunParams { dhry_iters: dhry_iters(), cm_iters: cm_iters(), ..RunParams::default() }
}

/// Runs a single named experiment through the lab runner and prints
/// its text report — the shared implementation of every per-figure
/// binary, and the one place their errors are reported.
#[must_use]
pub fn run_figure(name: &str) -> ExitCode {
    let id = match name.parse::<ExperimentId>() {
        Ok(id) => id,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let session = match LabSession::builder().build() {
        Ok(session) => session,
        Err(e) => {
            eprintln!("{name} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match session.run_experiment(id, params_from_env()) {
        Ok(run) => {
            print!("{}", run.rendered);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{name} failed: {e}");
            ExitCode::FAILURE
        }
    }
}
