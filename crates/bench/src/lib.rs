//! # straight-bench
//!
//! Harness binaries regenerating every table and figure of the
//! STRAIGHT paper (run with `cargo run -p straight-bench --release
//! --bin figNN`) plus Criterion microbenchmarks of the simulator and
//! toolchain.
//!
//! Iteration counts default to values that complete in seconds on a
//! laptop; set `STRAIGHT_DHRY_ITERS` / `STRAIGHT_CM_ITERS` to larger
//! values (the paper uses 9000 and 9) for longer, steadier runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Dhrystone iteration count (`STRAIGHT_DHRY_ITERS`, default 200).
#[must_use]
pub fn dhry_iters() -> u32 {
    std::env::var("STRAIGHT_DHRY_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(200)
}

/// CoreMark iteration count (`STRAIGHT_CM_ITERS`, default 3).
#[must_use]
pub fn cm_iters() -> u32 {
    std::env::var("STRAIGHT_CM_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}
