//! A crash-safe, content-addressed on-disk store of completed cell
//! records — what makes a `straightd` restart cheap.
//!
//! ## Layout
//!
//! ```text
//! <root>/
//!   v<schema>/             one directory per record schema version
//!     <fingerprint>.rec    payload (record JSON) + 16-byte footer
//!     <fingerprint>.tmp    in-flight write (removed on boot)
//!   quarantine/            entries that failed validation on boot
//! ```
//!
//! Entries are keyed by configuration fingerprint (see
//! `CellSpec::fingerprint`): everything that determines a pipeline
//! cell's numbers is hashed into the key, so a record is valid for
//! any cell sharing the fingerprint, at any time, under the same
//! schema version. Bumping [`SCHEMA_VERSION`] isolates old entries in
//! their own directory rather than misreading them.
//!
//! ## Durability discipline
//!
//! Writes go to a temp file, are fsynced, and are atomically renamed
//! into place — a SIGKILL (or power cut) mid-write leaves either the
//! old state or a `.tmp` leftover, never a half-visible entry. Every
//! entry ends in a footer recording the payload length and an FNV-1a
//! checksum; on boot the store scans its directory, loads entries
//! that validate end to end (footer, checksum, JSON shape,
//! fingerprint match), and moves everything else into
//! `quarantine/` with a structured [`StoreReport`] — a corrupt or
//! truncated entry is never served and never silently deleted.
//!
//! ## Degradation
//!
//! The store is infallible at its API boundary: if the directory
//! cannot be created, or a write fails mid-run (disk full, permission
//! flip), it logs one structured warning and degrades to memory-only
//! mode — the daemon keeps serving, it just stops persisting. The
//! flip is observable through [`StoreStats::memory_only`].

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use straight_core::experiment::{CellRecord, SCHEMA_VERSION};
use straight_core::lab::RecordCache;
use straight_json::{fnv1a64, obj, FromJson, Json, ToJson};

/// Bytes of the fixed-size entry footer: payload length (u64 LE)
/// followed by the payload's FNV-1a checksum (u64 LE).
pub const FOOTER_LEN: usize = 16;

/// File extension of a committed entry.
const ENTRY_EXT: &str = "rec";
/// File extension of an in-flight (not yet renamed) write.
const TMP_EXT: &str = "tmp";

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One entry the boot scan refused to load, and why.
#[derive(Debug, Clone)]
pub struct Quarantined {
    /// File name of the rejected entry (now under `quarantine/`).
    pub file: String,
    /// Human-readable rejection reason ("checksum mismatch", ...).
    pub reason: String,
}

/// What [`RecordStore::open`] found on disk.
#[derive(Debug, Clone, Default)]
pub struct StoreReport {
    /// Entries that validated and were loaded.
    pub loaded: usize,
    /// Entries that failed validation and were quarantined.
    pub quarantined: Vec<Quarantined>,
    /// Leftover `.tmp` files (torn writes) that were removed.
    pub removed_temps: usize,
    /// When `Some`, the store opened in memory-only mode and the
    /// reason why (unwritable directory).
    pub memory_only: Option<String>,
}

impl StoreReport {
    /// One-line summary for daemon boot logs.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!(
            "{} record(s) loaded, {} quarantined, {} torn temp file(s) removed",
            self.loaded,
            self.quarantined.len(),
            self.removed_temps
        );
        if let Some(reason) = &self.memory_only {
            out.push_str(&format!("; MEMORY-ONLY ({reason})"));
        }
        out
    }
}

/// A snapshot of the store's counters, reported through the daemon's
/// `stats` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Records currently held (loaded at boot plus added since,
    /// including memory-only additions).
    pub entries: u64,
    /// Entries quarantined by the boot scan.
    pub quarantined: u64,
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries durably written since boot.
    pub writes: u64,
    /// Writes that failed (each one flips the store to memory-only).
    pub write_failures: u64,
    /// Whether the store is in memory-only (degraded) mode.
    pub memory_only: bool,
}

impl ToJson for StoreStats {
    fn to_json(&self) -> Json {
        obj()
            .field("entries", &self.entries)
            .field("quarantined", &self.quarantined)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("writes", &self.writes)
            .field("write_failures", &self.write_failures)
            .field("memory_only", &self.memory_only)
            .build()
    }
}

/// The store proper. See the module docs for layout and guarantees.
pub struct RecordStore {
    entries_dir: PathBuf,
    quarantine_dir: PathBuf,
    mem: Mutex<HashMap<String, CellRecord>>,
    memory_only: AtomicBool,
    quarantined: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    write_failures: AtomicU64,
}

/// Encodes one entry: record JSON followed by the length + checksum
/// footer.
#[must_use]
pub fn encode_entry(record: &CellRecord) -> Vec<u8> {
    let payload = record.to_json().render().into_bytes();
    let mut out = payload;
    let len = out.len() as u64;
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decodes and fully validates one entry read from disk.
///
/// # Errors
///
/// A human-readable reason (the quarantine report's `reason` field)
/// when the bytes are truncated, torn, corrupt, unparseable, or carry
/// a record whose fingerprint does not match its file name.
pub fn decode_entry(bytes: &[u8], expected_fingerprint: &str) -> Result<CellRecord, String> {
    if bytes.len() < FOOTER_LEN {
        return Err(format!("truncated: {} bytes is shorter than the footer", bytes.len()));
    }
    let (payload, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
    let mut len = [0u8; 8];
    let mut checksum = [0u8; 8];
    len.copy_from_slice(&footer[..8]);
    checksum.copy_from_slice(&footer[8..]);
    let len = u64::from_le_bytes(len);
    let checksum = u64::from_le_bytes(checksum);
    if len != payload.len() as u64 {
        return Err(format!("torn write: footer says {len} payload bytes, file has {}", payload.len()));
    }
    if fnv1a64(payload) != checksum {
        return Err("checksum mismatch".to_string());
    }
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let parsed = Json::parse(text).map_err(|e| format!("payload is not JSON: {e}"))?;
    let record =
        CellRecord::from_json(&parsed).map_err(|e| format!("payload is not a cell record: {e}"))?;
    if record.config_fingerprint != expected_fingerprint {
        return Err(format!(
            "fingerprint mismatch: file {expected_fingerprint}, record {}",
            record.config_fingerprint
        ));
    }
    Ok(record)
}

impl RecordStore {
    /// Opens (or creates) a store rooted at `root`, scanning and
    /// validating every existing entry. Never fails: an unusable
    /// directory yields a memory-only store, with the reason in the
    /// report.
    #[must_use]
    pub fn open(root: &Path) -> (RecordStore, StoreReport) {
        let entries_dir = root.join(format!("v{SCHEMA_VERSION}"));
        let quarantine_dir = root.join("quarantine");
        let store = RecordStore {
            entries_dir: entries_dir.clone(),
            quarantine_dir: quarantine_dir.clone(),
            mem: Mutex::new(HashMap::new()),
            memory_only: AtomicBool::new(false),
            quarantined: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
        };
        let mut report = StoreReport::default();
        for dir in [&entries_dir, &quarantine_dir] {
            if let Err(e) = std::fs::create_dir_all(dir) {
                let reason = format!("cannot create {}: {e}", dir.display());
                store.degrade(&reason);
                report.memory_only = Some(reason);
                return (store, report);
            }
        }
        store.scan(&mut report);
        (store, report)
    }

    /// Loads every valid entry into memory; quarantines the rest.
    fn scan(&self, report: &mut StoreReport) {
        let entries = match std::fs::read_dir(&self.entries_dir) {
            Ok(entries) => entries,
            Err(e) => {
                let reason = format!("cannot scan {}: {e}", self.entries_dir.display());
                self.degrade(&reason);
                report.memory_only = Some(reason);
                return;
            }
        };
        let mut mem = lock(&self.mem);
        for entry in entries.flatten() {
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let stem = path.file_stem().map(|s| s.to_string_lossy().into_owned());
            let ext = path.extension().map(|s| s.to_string_lossy().into_owned());
            if ext.as_deref() == Some(TMP_EXT) {
                // A write the previous process never committed; the
                // rename never happened, so nothing references it.
                let _ = std::fs::remove_file(&path);
                report.removed_temps += 1;
                continue;
            }
            let reason = if ext.as_deref() != Some(ENTRY_EXT) {
                format!("unrecognized file `{name}` in store directory")
            } else {
                let fingerprint = stem.unwrap_or_default();
                match std::fs::read(&path) {
                    Err(e) => format!("unreadable: {e}"),
                    Ok(bytes) => match decode_entry(&bytes, &fingerprint) {
                        Ok(record) => {
                            mem.insert(fingerprint, record);
                            report.loaded += 1;
                            continue;
                        }
                        Err(reason) => reason,
                    },
                }
            };
            self.quarantine(&path, &name);
            report.quarantined.push(Quarantined { file: name, reason });
        }
        self.quarantined.store(report.quarantined.len() as u64, Ordering::Relaxed);
    }

    /// Moves a rejected entry aside (never deletes it: the bytes may
    /// matter for a post-mortem). Name collisions get a numeric
    /// suffix.
    fn quarantine(&self, path: &Path, name: &str) {
        let mut target = self.quarantine_dir.join(name);
        let mut attempt = 1;
        while target.exists() {
            target = self.quarantine_dir.join(format!("{name}.{attempt}"));
            attempt += 1;
        }
        if std::fs::rename(path, &target).is_err() {
            // Cross-device or permission failure: removing is the
            // only way to guarantee the corrupt entry is never
            // rescanned as live.
            let _ = std::fs::remove_file(path);
        }
    }

    /// Flips to memory-only mode, logging the structured warning once.
    fn degrade(&self, reason: &str) {
        if !self.memory_only.swap(true, Ordering::SeqCst) {
            eprintln!("straightd: record store degraded to memory-only mode: {reason}");
        }
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            entries: lock(&self.mem).len() as u64,
            quarantined: self.quarantined.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
            memory_only: self.memory_only.load(Ordering::SeqCst),
        }
    }

    /// Whether the store has degraded to memory-only mode.
    #[must_use]
    pub fn memory_only(&self) -> bool {
        self.memory_only.load(Ordering::SeqCst)
    }

    /// Writes one entry durably: temp file, fsync, atomic rename,
    /// directory fsync (best effort).
    fn write_entry(&self, fingerprint: &str, record: &CellRecord) -> std::io::Result<()> {
        let tmp = self.entries_dir.join(format!("{fingerprint}.{TMP_EXT}"));
        let committed = self.entries_dir.join(format!("{fingerprint}.{ENTRY_EXT}"));
        let bytes = encode_entry(record);
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, &committed)?;
        if let Ok(dir) = std::fs::File::open(&self.entries_dir) {
            let _ = dir.sync_all();
        }
        Ok(())
    }
}

impl RecordCache for RecordStore {
    fn get(&self, fingerprint: &str) -> Option<CellRecord> {
        let found = lock(&self.mem).get(fingerprint).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn put(&self, fingerprint: &str, record: &CellRecord) {
        {
            let mut mem = lock(&self.mem);
            if mem.contains_key(fingerprint) {
                return;
            }
            mem.insert(fingerprint.to_string(), record.clone());
        }
        if self.memory_only.load(Ordering::SeqCst) {
            return;
        }
        match self.write_entry(fingerprint, record) {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.write_failures.fetch_add(1, Ordering::Relaxed);
                self.degrade(&format!(
                    "writing {}: {e}",
                    self.entries_dir.join(format!("{fingerprint}.{ENTRY_EXT}")).display()
                ));
            }
        }
    }
}
