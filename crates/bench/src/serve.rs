//! The `straightd` simulation service: a persistent daemon front-end
//! over a [`LabSession`].
//!
//! One daemon process owns a single session — worker pool, image
//! cache, run cache — and serves it over a newline-delimited-JSON
//! protocol on a TCP or Unix-domain listener. Because the session
//! outlives any request, repeated cells are O(cache lookup): the
//! second client asking for `fig12/Dhrystone/SS` gets the first
//! client's simulation, observable through the `stats` op's cache-hit
//! counters.
//!
//! ## Protocol
//!
//! Each request is one JSON object on one line (at most
//! [`MAX_REQUEST_LINE`] bytes); each response is one JSON object on
//! one line. Success responses carry `"ok": true`; failures carry
//! `"ok": false` and a structured `"error": {"kind", "msg", ...}`
//! object. Malformed framing (oversized or non-JSON lines) yields an
//! error response, never a dropped connection without explanation and
//! never a daemon panic. See `docs/SERVING.md` for the full
//! request/response catalog with examples.
//!
//! Ops: `ping`, `submit-experiment`, `submit-cell`, `status`, `fetch`,
//! `cancel`, `stats`, `shutdown`.
//!
//! ## Lifecycle
//!
//! Jobs land in a bounded queue ([`DaemonConfig::queue_cap`]); when
//! the bound is hit, submissions are refused with a `queue-full`
//! error — backpressure the client can retry on. `shutdown` (or
//! SIGTERM, wired up by the `straightd` binary) stops the accept loop
//! and drains in-flight jobs before [`Daemon::run`] returns; queued
//! cells of cancelled jobs resolve without executing.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use straight_core::experiment::{
    CellRecord, CellSpec, ExperimentId, ExperimentResult, RunParams, UnknownExperiment,
};
use straight_core::lab::{Batch, LabError, LabRun, LabSession, RecordCache};
use straight_isa::rng::SplitMix64;
use straight_json::{obj, FromJson, Json, JsonBuilder};

use crate::store::{RecordStore, StoreReport};

/// Upper bound on one request line, bytes. Requests are small (the
/// largest is a `submit-cell` with explicit parameters); anything
/// larger is a framing error, answered structurally and then the
/// connection is closed.
pub const MAX_REQUEST_LINE: usize = 1 << 20;

/// Upper bound on one response line read by [`Client`], bytes.
/// Responses carry whole `ExperimentResult`s, so the bound is
/// generous.
pub const MAX_RESPONSE_LINE: usize = 1 << 28;

/// How a daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP address, e.g. `127.0.0.1:4155`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

/// Splits an address argument: anything containing a `/` is a
/// Unix-socket path, everything else is `host:port`.
#[must_use]
pub fn parse_addr(addr: &str) -> Listen {
    if addr.contains('/') {
        Listen::Unix(PathBuf::from(addr))
    } else {
        Listen::Tcp(addr.to_string())
    }
}

/// Daemon construction parameters.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Where to listen.
    pub listen: Listen,
    /// Worker threads of the underlying [`LabSession`].
    pub jobs: usize,
    /// Maximum number of jobs that may be queued or running at once;
    /// submissions beyond it get a `queue-full` error.
    pub queue_cap: usize,
    /// Root of the crash-safe on-disk record store; `None` runs with
    /// in-memory caches only (completed simulations die on restart).
    pub store: Option<PathBuf>,
    /// How long a connection may sit without sending a request before
    /// it is reaped (so a stalled client cannot pin a handler thread
    /// forever); `None` disables reaping.
    pub idle_timeout: Option<Duration>,
    /// Chaos injection for fault-tolerance tests: a cell id (or
    /// `"any"`) whose execution deliberately panics. See
    /// `LabSessionBuilder::chaos_panic_cell`.
    pub chaos_panic_cell: Option<String>,
}

impl DaemonConfig {
    /// A config listening on `listen` with [`default_jobs`] workers, a
    /// queue bound of 64 jobs, no store, and a 5-minute idle timeout.
    ///
    /// [`default_jobs`]: straight_core::lab::default_jobs
    #[must_use]
    pub fn new(listen: Listen) -> DaemonConfig {
        DaemonConfig {
            listen,
            jobs: straight_core::lab::default_jobs(),
            queue_cap: 64,
            store: None,
            idle_timeout: Some(Duration::from_secs(300)),
            chaos_panic_cell: None,
        }
    }
}

/// What a job computes.
enum JobKind {
    /// All cells of one experiment; `fetch` returns the assembled
    /// `ExperimentResult`.
    Experiment(ExperimentId),
    /// One cell; `fetch` returns its `CellRecord`.
    Cell,
}

/// One submitted job: its identity, parameters, and batch handle.
struct JobEntry {
    kind: JobKind,
    params: RunParams,
    batch: Batch,
}

/// State shared by the accept loop and every connection thread.
struct DaemonState {
    session: LabSession,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    next_job: AtomicU64,
    submitted: AtomicU64,
    queue_cap: usize,
    shutdown: AtomicBool,
    /// The on-disk record store, when configured (also wired into the
    /// session as its record cache).
    store: Option<Arc<RecordStore>>,
    /// Per-connection request deadline; see [`DaemonConfig::idle_timeout`].
    idle_timeout: Option<Duration>,
    /// Submissions refused with `queue-full` (each one is a client
    /// retry trigger).
    queue_full_refusals: AtomicU64,
    /// Connections closed for sitting idle past the timeout.
    idle_reaped: AtomicU64,
    /// When the daemon bound its listener, for the `stats` uptime.
    started: Instant,
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Formats a fallible `Display` for logging, collapsing the error
/// case to `<unknown>` — the one helper for peer/local-address and
/// similar best-effort formatting.
fn or_unknown<T: std::fmt::Display, E>(value: Result<T, E>) -> String {
    value.map(|v| v.to_string()).unwrap_or_else(|_| "<unknown>".to_string())
}

/// Whether an I/O error is a blocking-socket timeout (both kinds
/// occur, platform-dependently, for `set_read_timeout` expiries).
fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

impl DaemonState {
    /// Jobs not yet finished — the measure the queue bound applies to.
    fn active_jobs(&self) -> usize {
        lock(&self.jobs).values().filter(|j| !j.batch.is_done()).count()
    }

    fn all_drained(&self) -> bool {
        lock(&self.jobs).values().all(|j| j.batch.is_done())
    }
}

/// Either kind of stream, so one code path serves TCP and Unix
/// connections.
enum Conn {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    Unix(UnixStream),
}

impl Conn {
    /// Applies a read+write timeout to the underlying socket (`None`
    /// clears it). A timed-out read surfaces as a `WouldBlock`/
    /// `TimedOut` I/O error.
    fn set_io_timeouts(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            Conn::Unix(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
        }
    }

    /// Best-effort peer description for log lines.
    fn peer_name(&self) -> String {
        match self {
            Conn::Tcp(s) => or_unknown(s.peer_addr()),
            Conn::Unix(s) => or_unknown(s.peer_addr().map(|a| format!("unix:{a:?}"))),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A framing failure while reading one protocol line.
#[derive(Debug)]
pub enum FrameError {
    /// The line exceeded the size limit before a newline appeared.
    Oversized {
        /// The limit that was exceeded, bytes.
        limit: usize,
    },
    /// The underlying transport failed.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
            FrameError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one newline-terminated frame, tolerating arbitrarily
/// fragmented reads. Returns `Ok(None)` on a clean disconnect (EOF at
/// a frame boundary *or* mid-line: a half-written request from a dying
/// client is discarded, not misparsed).
///
/// # Errors
///
/// [`FrameError::Oversized`] when `limit` bytes accumulate without a
/// newline; [`FrameError::Io`] on transport errors.
pub fn read_frame(
    reader: &mut impl BufRead,
    limit: usize,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut line = Vec::new();
    loop {
        let (consumed, finished) = {
            let buf = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            };
            if buf.is_empty() {
                return Ok(None);
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    line.extend_from_slice(&buf[..nl]);
                    (nl + 1, true)
                }
                None => {
                    line.extend_from_slice(buf);
                    (buf.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if line.len() > limit {
            return Err(FrameError::Oversized { limit });
        }
        if finished {
            return Ok(Some(line));
        }
    }
}

fn ok_response() -> JsonBuilder {
    obj().field("ok", &true)
}

fn error_response(kind: &str, msg: impl Into<String>, extra: Option<(&str, Json)>) -> Json {
    let mut error = obj().field("kind", kind).field("msg", &msg.into());
    if let Some((key, value)) = extra {
        error = error.field(key, &value);
    }
    obj().field("ok", &false).field("error", &error.build()).build()
}

/// The per-job state string reported by the `status` op.
fn job_state(entry: &JobEntry) -> (&'static str, Option<String>) {
    if entry.batch.is_done() {
        if entry.batch.is_cancelled() {
            return ("cancelled", None);
        }
        let first_err = entry
            .batch
            .outcomes()
            .into_iter()
            .find_map(|o| o.err().map(|e| e.to_string()));
        return match first_err {
            Some(msg) => ("failed", Some(msg)),
            None => ("done", None),
        };
    }
    if entry.batch.started() || entry.batch.progress().0 > 0 {
        ("running", None)
    } else {
        ("queued", None)
    }
}

/// Assembles a done experiment job into its result (no file output —
/// the daemon's session has no `out_dir`; clients persist records
/// themselves).
fn assemble_job(state: &DaemonState, entry: &JobEntry, id: ExperimentId) -> Result<LabRun, LabError> {
    let spec = id.spec();
    let outcomes = entry.batch.outcomes();
    state.session.assemble(&spec, entry.params, &entry.batch, outcomes)
}

fn handle_request(state: &DaemonState, line: &[u8]) -> Json {
    let Ok(text) = std::str::from_utf8(line) else {
        return error_response("malformed", "request is not UTF-8", None);
    };
    let request = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return error_response("malformed", format!("request is not JSON: {e}"), None),
    };
    let Some(op) = request.get("op").and_then(Json::as_str) else {
        return error_response("malformed", "missing string field `op`", None);
    };
    match op {
        "ping" => ok_response().field("op", "pong").build(),
        "submit-experiment" => submit_experiment(state, &request),
        "submit-cell" => submit_cell(state, &request),
        "status" => with_job(state, &request, |_, job, entry| {
            let (job_status, error) = job_state(entry);
            let (done, total) = entry.batch.progress();
            ok_response()
                .field("job", &job)
                .field("state", job_status)
                .field("done_cells", &done)
                .field("total_cells", &total)
                .field("error", &error)
                .build()
        }),
        "fetch" => with_job(state, &request, fetch_job),
        "cancel" => with_job(state, &request, |_, job, entry| {
            entry.batch.cancel();
            ok_response().field("job", &job).field("state", "cancelled").build()
        }),
        "stats" => ok_response()
            .field("cache", &state.session.cache_stats())
            .field("jobs_submitted", &state.submitted.load(Ordering::Relaxed))
            .field("jobs_active", &(state.active_jobs() as u64))
            .field("queue_cap", &(state.queue_cap as u64))
            .field("workers", &(state.session.jobs() as u64))
            .field("uptime_ms", &(state.started.elapsed().as_millis() as u64))
            .field("worker_panics", &state.session.panic_count())
            .field("queue_full_refusals", &state.queue_full_refusals.load(Ordering::Relaxed))
            .field("idle_reaped", &state.idle_reaped.load(Ordering::Relaxed))
            .field("store", &state.store.as_ref().map(|s| s.stats()))
            .build(),
        "shutdown" => {
            state.shutdown.store(true, Ordering::SeqCst);
            ok_response().field("op", "shutdown").build()
        }
        other => error_response(
            "unknown-op",
            format!(
                "unknown op `{other}` (valid: ping, submit-experiment, submit-cell, status, \
                 fetch, cancel, stats, shutdown)"
            ),
            None,
        ),
    }
}

/// Parses the optional `params` field (absent → defaults).
fn request_params(request: &Json) -> Result<RunParams, Json> {
    match request.get("params") {
        None | Some(Json::Null) => Ok(RunParams::default()),
        Some(value) => RunParams::from_json(value).map_err(|e| {
            error_response("malformed", format!("bad `params`: {e}"), None)
        }),
    }
}

/// Guards a submission: refuses when draining or when the job queue
/// is at its bound.
fn admit(state: &DaemonState) -> Result<(), Json> {
    if state.shutdown.load(Ordering::SeqCst) {
        return Err(error_response("shutting-down", "daemon is draining; resubmit elsewhere", None));
    }
    if state.active_jobs() >= state.queue_cap {
        state.queue_full_refusals.fetch_add(1, Ordering::Relaxed);
        return Err(error_response(
            "queue-full",
            format!("job queue is at its bound ({}); retry later", state.queue_cap),
            None,
        ));
    }
    Ok(())
}

fn register_job(state: &DaemonState, kind: JobKind, params: RunParams, cells: Vec<CellSpec>) -> Json {
    let total = cells.len();
    let batch = state.session.submit(cells, params);
    let job = state.next_job.fetch_add(1, Ordering::Relaxed);
    state.submitted.fetch_add(1, Ordering::Relaxed);
    lock(&state.jobs).insert(job, JobEntry { kind, params, batch });
    ok_response().field("job", &job).field("cells", &total).build()
}

fn submit_experiment(state: &DaemonState, request: &Json) -> Json {
    let Some(name) = request.get("experiment").and_then(Json::as_str) else {
        return error_response("malformed", "missing string field `experiment`", None);
    };
    let id = match name.parse::<ExperimentId>() {
        Ok(id) => id,
        Err(e) => {
            let valid = UnknownExperiment::valid_names()
                .into_iter()
                .map(|n| Json::Str(n.to_string()))
                .collect();
            return error_response("unknown-experiment", e.to_string(), Some(("valid", Json::Arr(valid))));
        }
    };
    let params = match request_params(request) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    if let Err(resp) = admit(state) {
        return resp;
    }
    register_job(state, JobKind::Experiment(id), params, id.spec().cells())
}

fn submit_cell(state: &DaemonState, request: &Json) -> Json {
    let Some(cell_id) = request.get("cell").and_then(Json::as_str) else {
        return error_response("malformed", "missing string field `cell`", None);
    };
    let Some((experiment, _)) = cell_id.split_once('/') else {
        return error_response(
            "malformed",
            format!("cell id `{cell_id}` is not of the form experiment/group/label"),
            None,
        );
    };
    let id = match experiment.parse::<ExperimentId>() {
        Ok(id) => id,
        Err(e) => {
            let valid = UnknownExperiment::valid_names()
                .into_iter()
                .map(|n| Json::Str(n.to_string()))
                .collect();
            return error_response("unknown-experiment", e.to_string(), Some(("valid", Json::Arr(valid))));
        }
    };
    let cells = id.spec().cells();
    let Some(cell) = cells.into_iter().find(|c| c.id() == cell_id) else {
        let valid = id.spec().cells().iter().map(|c| Json::Str(c.id())).collect();
        return error_response(
            "unknown-cell",
            format!("experiment `{id}` has no cell `{cell_id}`"),
            Some(("valid", Json::Arr(valid))),
        );
    };
    let params = match request_params(request) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    if let Err(resp) = admit(state) {
        return resp;
    }
    register_job(state, JobKind::Cell, params, vec![cell])
}

fn with_job(
    state: &DaemonState,
    request: &Json,
    f: impl FnOnce(&DaemonState, u64, &JobEntry) -> Json,
) -> Json {
    let Some(job) = request.get("job").and_then(Json::as_u64) else {
        return error_response("malformed", "missing integer field `job`", None);
    };
    let jobs = lock(&state.jobs);
    match jobs.get(&job) {
        Some(entry) => f(state, job, entry),
        None => error_response("unknown-job", format!("no job {job}"), None),
    }
}

fn fetch_job(state: &DaemonState, job: u64, entry: &JobEntry) -> Json {
    if !entry.batch.is_done() {
        let (done, total) = entry.batch.progress();
        return error_response(
            "not-done",
            format!("job {job} has completed {done}/{total} cells; poll `status` first"),
            None,
        );
    }
    match &entry.kind {
        JobKind::Experiment(id) => match assemble_job(state, entry, *id) {
            Ok(run) => ok_response()
                .field("job", &job)
                .field("kind", "experiment")
                .field("result", &run.result)
                .build(),
            Err(e) => error_response("job-failed", e.to_string(), None),
        },
        JobKind::Cell => match entry.batch.outcomes().into_iter().next() {
            Some(Ok(record)) => ok_response()
                .field("job", &job)
                .field("kind", "cell")
                .field("record", &record)
                .build(),
            Some(Err(e)) => error_response("job-failed", e.to_string(), None),
            None => error_response("job-failed", "job has no cells", None),
        },
    }
}

fn serve_connection(stream: Conn, state: &Arc<DaemonState>) {
    let peer = stream.peer_name();
    // The idle timeout doubles as the write timeout: a client that
    // neither sends nor drains cannot pin this handler thread.
    let _ = stream.set_io_timeouts(state.idle_timeout);
    // One BufReader per connection; writes go through the same stream
    // (requests and responses strictly alternate, so the read buffer
    // never hides a write).
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader, MAX_REQUEST_LINE) {
            Ok(None) => return, // client disconnected (possibly mid-job: jobs keep running)
            Ok(Some(line)) => {
                let response = handle_request(state, &line);
                if write_json_line(reader.get_mut(), &response).is_err() {
                    return;
                }
            }
            Err(FrameError::Oversized { limit }) => {
                // Cannot resync reliably mid-line; answer structurally
                // and close.
                let response = error_response(
                    "oversized",
                    format!("request line exceeds {limit} bytes"),
                    None,
                );
                let _ = write_json_line(reader.get_mut(), &response);
                return;
            }
            Err(FrameError::Io(e)) if is_timeout(&e) => {
                // Idle reap: answer structurally (best effort — the
                // peer may be gone) and free the handler thread. Jobs
                // the connection submitted keep running and stay
                // fetchable from any later connection.
                state.idle_reaped.fetch_add(1, Ordering::Relaxed);
                let timeout = state.idle_timeout.unwrap_or_default();
                let response = error_response(
                    "idle-timeout",
                    format!("no request in {timeout:?}; closing idle connection"),
                    None,
                );
                let _ = write_json_line(reader.get_mut(), &response);
                eprintln!("straightd: reaped idle connection from {peer}");
                return;
            }
            Err(FrameError::Io(_)) => return,
        }
    }
}

fn write_json_line(writer: &mut impl Write, value: &Json) -> io::Result<()> {
    let mut line = value.render().into_bytes();
    line.push(b'\n');
    writer.write_all(&line)?;
    writer.flush()
}

enum ListenerKind {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// A bound, not-yet-running daemon. Construct with [`Daemon::bind`],
/// then drive the accept loop with [`Daemon::run`].
pub struct Daemon {
    state: Arc<DaemonState>,
    listener: ListenerKind,
    store_report: Option<StoreReport>,
}

impl Daemon {
    /// Binds the listener, opens the record store (when configured),
    /// and starts the session's worker pool. A pre-existing Unix
    /// socket file at the same path is replaced. An unusable store
    /// directory does not fail the bind: the store opens in
    /// memory-only mode and says so in [`Daemon::store_report`].
    ///
    /// # Errors
    ///
    /// [`LabError::InvalidJobs`] (as an `InvalidInput` I/O error) when
    /// `jobs` is 0; otherwise whatever binding the listener raised.
    pub fn bind(config: &DaemonConfig) -> io::Result<Daemon> {
        let mut builder = LabSession::builder().jobs(config.jobs);
        let mut store = None;
        let mut store_report = None;
        if let Some(root) = &config.store {
            let (opened, report) = RecordStore::open(root);
            let opened = Arc::new(opened);
            builder = builder.record_cache(Arc::clone(&opened) as Arc<dyn RecordCache>);
            store = Some(opened);
            store_report = Some(report);
        }
        if let Some(cell) = &config.chaos_panic_cell {
            builder = builder.chaos_panic_cell(cell.clone());
        }
        let session = builder
            .build()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = match &config.listen {
            Listen::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                ListenerKind::Tcp(l)
            }
            Listen::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                ListenerKind::Unix(l, path.clone())
            }
        };
        Ok(Daemon {
            state: Arc::new(DaemonState {
                session,
                jobs: Mutex::new(HashMap::new()),
                next_job: AtomicU64::new(1),
                submitted: AtomicU64::new(0),
                queue_cap: config.queue_cap.max(1),
                shutdown: AtomicBool::new(false),
                store,
                idle_timeout: config.idle_timeout,
                queue_full_refusals: AtomicU64::new(0),
                idle_reaped: AtomicU64::new(0),
                started: Instant::now(),
            }),
            listener,
            store_report,
        })
    }

    /// The bound address, printable: the actual TCP address (useful
    /// after binding port 0) or the socket path.
    #[must_use]
    pub fn local_addr(&self) -> String {
        match &self.listener {
            ListenerKind::Tcp(l) => or_unknown(l.local_addr()),
            ListenerKind::Unix(_, path) => path.display().to_string(),
        }
    }

    /// What the boot scan of the record store found (`None` when no
    /// store is configured). The binary logs its summary.
    #[must_use]
    pub fn store_report(&self) -> Option<&StoreReport> {
        self.store_report.as_ref()
    }

    /// Accepts and serves connections until a `shutdown` request
    /// arrives or `external_shutdown` (e.g. a SIGTERM flag) becomes
    /// true, then drains: in-flight jobs run to completion before this
    /// returns. Each connection is served on its own thread.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection errors are contained
    /// to their connection.
    pub fn run(&self, external_shutdown: &AtomicBool) -> io::Result<()> {
        let poll = Duration::from_millis(25);
        loop {
            if self.state.shutdown.load(Ordering::SeqCst) || external_shutdown.load(Ordering::SeqCst)
            {
                break;
            }
            let accepted = match &self.listener {
                ListenerKind::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                ListenerKind::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            match accepted {
                Ok(conn) => {
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || serve_connection(conn, &state));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(poll),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Graceful drain: stop accepting, let submitted work finish.
        while !self.state.all_drained() {
            std::thread::sleep(poll);
        }
        Ok(())
    }

    /// A snapshot of the underlying session's cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> straight_core::lab::CacheStats {
        self.state.session.cache_stats()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let ListenerKind::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, or write).
    Io(io::Error),
    /// A read or write did not complete within the configured
    /// timeout — the daemon is wedged, overloaded, or unreachable.
    Timeout {
        /// The timeout that expired.
        after: Duration,
    },
    /// The server's bytes were not a valid protocol response.
    Protocol(String),
    /// The server answered with a structured error.
    Remote {
        /// The error's `kind` discriminator.
        kind: String,
        /// Human-readable message.
        msg: String,
    },
    /// The retry budget ran out. Terminal: carries the attempt count
    /// and the last underlying failure.
    Exhausted {
        /// Total attempts made (initial try plus retries).
        attempts: u32,
        /// The failure of the final attempt.
        last: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "{e}"),
            ClientError::Timeout { after } => {
                write!(f, "request timed out after {after:?} (daemon wedged or unreachable)")
            }
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Remote { kind, msg } => write!(f, "daemon error ({kind}): {msg}"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Client-side resilience parameters: connect/read/write timeouts and
/// the bounded-retry budget with exponential backoff plus
/// deterministic jitter.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout (Unix-socket connects are effectively
    /// immediate and ignore this).
    pub connect_timeout: Duration,
    /// Per-read/per-write socket timeout; [`Duration::ZERO`] disables
    /// it (the pre-timeout behavior: block forever on a wedged
    /// daemon).
    pub io_timeout: Duration,
    /// Retries after the first attempt, for transient connect
    /// failures and `queue-full` refusals.
    pub retries: u32,
    /// First backoff delay; doubles each retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed of the jitter sequence. Fixed per client, so chaos tests
    /// replay identical schedules; defaults to the process id to
    /// decorrelate concurrent clients.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(30),
            retries: 4,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            jitter_seed: u64::from(std::process::id()),
        }
    }
}

/// The delay before retry number `attempt` (1-based): exponential in
/// the attempt, capped, with deterministic jitter in the upper half
/// of the window (so concurrent clients spread out but a fixed seed
/// replays exactly).
#[must_use]
pub fn backoff_delay(config: &ClientConfig, attempt: u32, rng: &mut SplitMix64) -> Duration {
    let base = config.backoff_base.as_millis() as u64;
    let cap = config.backoff_cap.as_millis() as u64;
    let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(20)).min(cap).max(1);
    let jitter = rng.next_u64() % (exp / 2 + 1);
    Duration::from_millis(exp / 2 + jitter)
}

/// Whether a connect failure is worth retrying: the daemon may be
/// restarting (refused / socket file not there yet) or briefly
/// unresponsive (timeout).
fn transient_connect(e: &ClientError) -> bool {
    match e {
        ClientError::Io(io) => {
            is_timeout(io)
                || matches!(
                    io.kind(),
                    io::ErrorKind::ConnectionRefused
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::NotFound
                        | io::ErrorKind::AddrNotAvailable
                )
        }
        ClientError::Timeout { .. } => true,
        _ => false,
    }
}

/// A blocking protocol client over one connection. This is what
/// `straight-lab --remote` uses; tests drive it directly.
pub struct Client {
    reader: BufReader<Conn>,
    config: ClientConfig,
    retries_used: u64,
    timeouts_seen: u64,
}

impl Client {
    /// Connects to `addr` (a `host:port` or, when it contains `/`, a
    /// Unix-socket path) with default timeouts ([`ClientConfig`]) and
    /// no connect retries.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        Client::connect_once(addr, &ClientConfig::default())
    }

    /// One connect attempt under `config`'s timeouts.
    fn connect_once(addr: &str, config: &ClientConfig) -> io::Result<Client> {
        let conn = match parse_addr(addr) {
            Listen::Tcp(a) => {
                if config.connect_timeout.is_zero() {
                    Conn::Tcp(TcpStream::connect(a.as_str())?)
                } else {
                    let resolved = a.to_socket_addrs()?.next().ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::AddrNotAvailable,
                            format!("`{a}` resolved to no addresses"),
                        )
                    })?;
                    Conn::Tcp(TcpStream::connect_timeout(&resolved, config.connect_timeout)?)
                }
            }
            Listen::Unix(p) => Conn::Unix(UnixStream::connect(p)?),
        };
        if !config.io_timeout.is_zero() {
            conn.set_io_timeouts(Some(config.io_timeout))?;
        }
        Ok(Client {
            reader: BufReader::new(conn),
            config: config.clone(),
            retries_used: 0,
            timeouts_seen: 0,
        })
    }

    /// Connects with `config`'s timeouts, retrying transient failures
    /// (connection refused, socket file not yet created, timeouts)
    /// with exponential backoff and jitter up to the retry budget.
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] once the budget runs out; the first
    /// non-transient failure immediately otherwise.
    pub fn connect_with(addr: &str, config: &ClientConfig) -> Result<Client, ClientError> {
        let mut rng = SplitMix64::new(config.jitter_seed);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match Client::connect_once(addr, config) {
                Ok(mut client) => {
                    client.retries_used = u64::from(attempt - 1);
                    return Ok(client);
                }
                Err(e) => {
                    let e = ClientError::Io(e);
                    if !transient_connect(&e) {
                        return Err(e);
                    }
                    if attempt > config.retries {
                        return Err(ClientError::Exhausted { attempts: attempt, last: Box::new(e) });
                    }
                    std::thread::sleep(backoff_delay(config, attempt, &mut rng));
                }
            }
        }
    }

    /// `(retries_used, timeouts_seen)` — how often this client had to
    /// retry (connects and `queue-full` submissions) and how many
    /// reads/writes timed out.
    #[must_use]
    pub fn retry_counters(&self) -> (u64, u64) {
        (self.retries_used, self.timeouts_seen)
    }

    /// Sends one request object and reads one response object.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure, [`ClientError::Protocol`]
    /// when the response is not parseable, [`ClientError::Remote`] when
    /// the daemon answered `"ok": false`.
    pub fn request(&mut self, request: &Json) -> Result<Json, ClientError> {
        let io_timeout = self.config.io_timeout;
        let mut classify = |io: io::Error| {
            if is_timeout(&io) {
                self.timeouts_seen += 1;
                ClientError::Timeout { after: io_timeout }
            } else {
                ClientError::Io(io)
            }
        };
        write_json_line(self.reader.get_mut(), request).map_err(&mut classify)?;
        let line = read_frame(&mut self.reader, MAX_RESPONSE_LINE)
            .map_err(|e| match e {
                FrameError::Io(io) => classify(io),
                FrameError::Oversized { limit } => {
                    ClientError::Protocol(format!("response exceeds {limit} bytes"))
                }
            })?
            .ok_or_else(|| ClientError::Protocol("connection closed mid-request".to_string()))?;
        let text = std::str::from_utf8(&line)
            .map_err(|_| ClientError::Protocol("response is not UTF-8".to_string()))?;
        let response =
            Json::parse(text).map_err(|e| ClientError::Protocol(format!("bad response: {e}")))?;
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(response),
            Some(false) => {
                let error = response.get("error");
                let get = |key: &str| {
                    error
                        .and_then(|e| e.get(key))
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string()
                };
                Err(ClientError::Remote { kind: get("kind"), msg: get("msg") })
            }
            None => Err(ClientError::Protocol("response lacks `ok`".to_string())),
        }
    }

    /// Submits one experiment; returns the job id.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn submit_experiment(
        &mut self,
        id: ExperimentId,
        params: &RunParams,
    ) -> Result<u64, ClientError> {
        let request = obj()
            .field("op", "submit-experiment")
            .field("experiment", &id.to_string())
            .field("params", params)
            .build();
        let response = self.request(&request)?;
        response
            .get("job")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("submit response lacks `job`".to_string()))
    }

    /// Submits one experiment, retrying `queue-full` refusals with
    /// exponential backoff and jitter up to the configured budget. A
    /// `queue-full` refusal leaves the connection synced (one request,
    /// one structured error response), so retrying on the same
    /// connection is safe.
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] once the budget runs out; any other
    /// failure immediately.
    pub fn submit_experiment_with_retry(
        &mut self,
        id: ExperimentId,
        params: &RunParams,
    ) -> Result<u64, ClientError> {
        let config = self.config.clone();
        let mut rng = SplitMix64::new(config.jitter_seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.submit_experiment(id, params) {
                Ok(job) => return Ok(job),
                Err(e @ ClientError::Remote { .. })
                    if matches!(&e, ClientError::Remote { kind, .. } if kind == "queue-full") =>
                {
                    if attempt > config.retries {
                        return Err(ClientError::Exhausted { attempts: attempt, last: Box::new(e) });
                    }
                    self.retries_used += 1;
                    std::thread::sleep(backoff_delay(&config, attempt, &mut rng));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Polls `status` until the job leaves the queue/run states.
    /// Returns the terminal state string (`done`, `failed`, or
    /// `cancelled`).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn wait_job(&mut self, job: u64) -> Result<String, ClientError> {
        loop {
            let response =
                self.request(&obj().field("op", "status").field("job", &job).build())?;
            let state = response
                .get("state")
                .and_then(Json::as_str)
                .ok_or_else(|| ClientError::Protocol("status lacks `state`".to_string()))?;
            match state {
                "queued" | "running" => std::thread::sleep(Duration::from_millis(20)),
                terminal => return Ok(terminal.to_string()),
            }
        }
    }

    /// Fetches a done experiment job's typed result.
    ///
    /// # Errors
    ///
    /// As [`Client::request`]; `Protocol` when the payload does not
    /// deserialize as an `ExperimentResult`.
    pub fn fetch_experiment(&mut self, job: u64) -> Result<ExperimentResult, ClientError> {
        let response = self.request(&obj().field("op", "fetch").field("job", &job).build())?;
        let payload = response
            .get("result")
            .ok_or_else(|| ClientError::Protocol("fetch response lacks `result`".to_string()))?;
        ExperimentResult::from_json(payload)
            .map_err(|e| ClientError::Protocol(format!("bad result payload: {e}")))
    }

    /// Fetches a done cell job's record.
    ///
    /// # Errors
    ///
    /// As [`Client::request`]; `Protocol` when the payload does not
    /// deserialize as a `CellRecord`.
    pub fn fetch_cell(&mut self, job: u64) -> Result<CellRecord, ClientError> {
        let response = self.request(&obj().field("op", "fetch").field("job", &job).build())?;
        let payload = response
            .get("record")
            .ok_or_else(|| ClientError::Protocol("fetch response lacks `record`".to_string()))?;
        CellRecord::from_json(payload)
            .map_err(|e| ClientError::Protocol(format!("bad record payload: {e}")))
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&obj().field("op", "shutdown").build()).map(|_| ())
    }

    /// The daemon's `stats` snapshot (cache counters, job counts).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request(&obj().field("op", "stats").build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_parse_by_shape() {
        assert_eq!(parse_addr("127.0.0.1:4155"), Listen::Tcp("127.0.0.1:4155".to_string()));
        assert_eq!(parse_addr("/tmp/d.sock"), Listen::Unix(PathBuf::from("/tmp/d.sock")));
        assert_eq!(parse_addr("./d.sock"), Listen::Unix(PathBuf::from("./d.sock")));
    }

    #[test]
    fn frames_tolerate_fragmentation_and_bound_length() {
        // A reader that yields one byte at a time exercises the
        // partial-read path.
        struct OneByte<'a>(&'a [u8], usize);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut r = BufReader::with_capacity(1, OneByte(b"{\"op\":\"ping\"}\nrest", 0));
        let frame = read_frame(&mut r, 64).unwrap().unwrap();
        assert_eq!(frame, b"{\"op\":\"ping\"}");
        // Trailing bytes without a newline are a clean EOF, not a frame.
        assert!(read_frame(&mut r, 64).unwrap().is_none());
        // An over-long line errors instead of buffering unboundedly.
        let long = [b'x'; 100];
        let mut r = BufReader::with_capacity(8, &long[..]);
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Oversized { limit: 64 })));
    }
}
