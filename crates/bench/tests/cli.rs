//! Integration tests of the `straight-lab` command line: argument
//! validation happens at parse time with usage-style exits (code 2),
//! and `--normalize` produces comparable output.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::{Command, Output};

fn straight_lab(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_straight-lab"))
        .args(args)
        .output()
        .expect("spawn straight-lab")
}

#[test]
fn zero_jobs_is_a_usage_error_at_parse_time() {
    let out = straight_lab(&["--all", "--jobs", "0"]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--jobs"), "stderr names the offending flag: {stderr}");
    assert!(stderr.contains("positive"), "stderr explains the constraint: {stderr}");
    // Nothing ran: no report on stdout.
    assert!(out.stdout.is_empty());
}

#[test]
fn non_numeric_jobs_is_rejected_the_same_way() {
    let out = straight_lab(&["--all", "--jobs", "many"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("`many`"));
}

#[test]
fn unknown_figure_is_rejected_at_parse_time_listing_valid_ids() {
    let out = straight_lab(&["--figure", "fig99"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fig99"), "stderr names the bad id: {stderr}");
    for name in ["fig11", "sensitivity", "table1"] {
        assert!(stderr.contains(name), "stderr lists `{name}`: {stderr}");
    }
}

#[test]
fn normalize_output_is_stable_across_runs() {
    // Run table1 (no simulation, fast everywhere) twice into separate
    // directories; the normalized record text must match exactly even
    // though wall times differ.
    let base = std::env::temp_dir().join(format!("straight_cli_test_{}", std::process::id()));
    let dirs = [base.join("a"), base.join("b")];
    let mut normalized = Vec::new();
    for dir in &dirs {
        let out = straight_lab(&[
            "--figure",
            "table1",
            "--quick",
            "--quiet",
            "--out",
            dir.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        let record: PathBuf = dir.join("BENCH_table1.json");
        let out = straight_lab(&["--normalize", record.to_str().unwrap()]);
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        assert!(!out.stdout.is_empty());
        normalized.push(out.stdout);
    }
    assert_eq!(
        normalized[0], normalized[1],
        "normalized records of identical runs must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn normalize_rejects_corrupt_files_nonzero() {
    let path = std::env::temp_dir().join(format!("straight_cli_bad_{}.json", std::process::id()));
    std::fs::write(&path, "not json").unwrap();
    let out = straight_lab(&["--normalize", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("INVALID"));
    let _ = std::fs::remove_file(&path);
}
