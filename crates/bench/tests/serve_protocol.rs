//! Integration tests of the `straightd` wire protocol: framing
//! robustness (partial reads, oversized lines, malformed JSON,
//! mid-job disconnects), the submit/status/fetch lifecycle,
//! backpressure, cross-client deduplication, shutdown/cancel races,
//! idle-connection reaping, and byte-identity of daemon records with
//! in-process records.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::AtomicBool;
use std::thread::JoinHandle;
use std::time::Duration;

use straight_bench::serve::{
    read_frame, Client, ClientConfig, ClientError, Daemon, DaemonConfig, Listen, MAX_REQUEST_LINE,
};
use straight_core::experiment::{CellKind, ExperimentId, RunParams};
use straight_core::lab::LabSession;
use straight_json::{Json, ToJson};

/// Tiny parameters so pipeline cells finish quickly in debug builds.
fn tiny_params() -> RunParams {
    RunParams { dhry_iters: 5, cm_iters: 1, ..RunParams::default() }
}

struct TestDaemon {
    addr: String,
    handle: Option<JoinHandle<std::io::Result<()>>>,
}

impl TestDaemon {
    /// Binds on an ephemeral local port and runs the accept loop on a
    /// background thread.
    fn start(jobs: usize, queue_cap: usize) -> TestDaemon {
        TestDaemon::start_with(jobs, queue_cap, |_| {})
    }

    /// As [`TestDaemon::start`], with a configuration hook for tests
    /// that need a store, idle timeout, or chaos injection.
    fn start_with(
        jobs: usize,
        queue_cap: usize,
        tweak: impl FnOnce(&mut DaemonConfig),
    ) -> TestDaemon {
        let mut config = DaemonConfig::new(Listen::Tcp("127.0.0.1:0".to_string()));
        config.jobs = jobs;
        config.queue_cap = queue_cap;
        tweak(&mut config);
        let daemon = Daemon::bind(&config).expect("bind ephemeral port");
        let addr = daemon.local_addr();
        let handle = std::thread::spawn(move || {
            static NEVER: AtomicBool = AtomicBool::new(false);
            daemon.run(&NEVER)
        });
        TestDaemon { addr, handle: Some(handle) }
    }

    /// Sends `shutdown` and waits for the accept loop to drain out.
    fn stop(mut self) {
        let mut client = Client::connect(&self.addr).expect("connect for shutdown");
        client.shutdown().expect("shutdown accepted");
        self.handle.take().unwrap().join().unwrap().unwrap();
    }
}

/// A raw (non-`Client`) request, for inspecting error payloads and
/// driving the wire directly.
fn raw_request(stream: &mut TcpStream, line: &[u8]) -> Json {
    stream.write_all(line).unwrap();
    stream.flush().unwrap();
    read_response(stream)
}

fn read_response(stream: &mut TcpStream) -> Json {
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let frame = read_frame(&mut reader, 1 << 26).unwrap().expect("server sent a response");
    Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap()
}

fn error_kind(response: &Json) -> &str {
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false), "expected an error");
    response.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str).unwrap()
}

#[test]
fn malformed_requests_get_structured_errors_not_disconnects() {
    let daemon = TestDaemon::start(1, 4);
    let mut stream = TcpStream::connect(&daemon.addr).unwrap();

    // Non-JSON bytes.
    let response = raw_request(&mut stream, b"this is not json\n");
    assert_eq!(error_kind(&response), "malformed");

    // JSON without an `op`.
    let response = raw_request(&mut stream, b"{\"job\": 3}\n");
    assert_eq!(error_kind(&response), "malformed");

    // Unknown op; the message names the valid ones.
    let response = raw_request(&mut stream, b"{\"op\": \"frobnicate\"}\n");
    assert_eq!(error_kind(&response), "unknown-op");
    let msg = response.get("error").and_then(|e| e.get("msg")).and_then(Json::as_str).unwrap();
    assert!(msg.contains("submit-experiment"), "got: {msg}");

    // The connection survived all of the above.
    let response = raw_request(&mut stream, b"{\"op\": \"ping\"}\n");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    daemon.stop();
}

#[test]
fn partial_writes_assemble_into_one_frame() {
    let daemon = TestDaemon::start(1, 4);
    let mut stream = TcpStream::connect(&daemon.addr).unwrap();
    // One request, dribbled across several writes with pauses: the
    // framing layer must buffer until the newline.
    for chunk in [&b"{\"op\""[..], &b": \"pi"[..], &b"ng\"}"[..], &b"\n"[..]] {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    let response = read_response(&mut stream);
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(response.get("op").and_then(Json::as_str), Some("pong"));
    daemon.stop();
}

#[test]
fn oversized_lines_error_and_close_without_panicking() {
    let daemon = TestDaemon::start(1, 4);
    let mut stream = TcpStream::connect(&daemon.addr).unwrap();
    // Slightly past the limit: the server answers as soon as the bound
    // is exceeded, so nothing here blocks on full socket buffers.
    let oversized = vec![b'x'; MAX_REQUEST_LINE + 16];
    let _ = stream.write_all(&oversized); // server may close mid-write
    let response = read_response(&mut stream);
    assert_eq!(error_kind(&response), "oversized");
    // The connection is then closed (cannot resync mid-line)…
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    // …but the daemon itself is fine.
    let mut client = Client::connect(&daemon.addr).unwrap();
    client.request(&straight_json::obj().field("op", "ping").build()).unwrap();
    daemon.stop();
}

#[test]
fn unknown_experiment_and_cell_errors_list_valid_ids() {
    let daemon = TestDaemon::start(1, 4);
    let mut stream = TcpStream::connect(&daemon.addr).unwrap();

    let response =
        raw_request(&mut stream, b"{\"op\": \"submit-experiment\", \"experiment\": \"fig99\"}\n");
    assert_eq!(error_kind(&response), "unknown-experiment");
    let valid = response.get("error").and_then(|e| e.get("valid")).unwrap();
    let Json::Arr(valid) = valid else { panic!("`valid` should be an array") };
    let names: Vec<&str> = valid.iter().filter_map(Json::as_str).collect();
    assert_eq!(names.len(), 10);
    assert!(
        names.contains(&"fig11") && names.contains(&"table1") && names.contains(&"sampled")
    );

    let response =
        raw_request(&mut stream, b"{\"op\": \"submit-cell\", \"cell\": \"fig15/Nope/Nope\"}\n");
    assert_eq!(error_kind(&response), "unknown-cell");
    let valid = response.get("error").and_then(|e| e.get("valid")).unwrap();
    let Json::Arr(valid) = valid else { panic!("`valid` should be an array") };
    assert!(!valid.is_empty(), "unknown-cell error lists the experiment's real cells");

    // Unknown job ids are structured too.
    let response = raw_request(&mut stream, b"{\"op\": \"status\", \"job\": 12345}\n");
    assert_eq!(error_kind(&response), "unknown-job");
    daemon.stop();
}

#[test]
fn daemon_records_are_byte_identical_to_in_process_records() {
    let daemon = TestDaemon::start(2, 8);
    let mut client = Client::connect(&daemon.addr).unwrap();
    let params = tiny_params();

    // fig15/fig16 cover the emulator cell kinds, table1 the config
    // kind; all three are fast in debug builds.
    for id in [ExperimentId::Fig15, ExperimentId::Fig16, ExperimentId::Table1] {
        let job = client.submit_experiment(id, &params).unwrap();
        assert_eq!(client.wait_job(job).unwrap(), "done");
        let remote = client.fetch_experiment(job).unwrap();

        let session = LabSession::builder().jobs(2).build().unwrap();
        let local = session.run_experiment(id, params).unwrap();

        // Byte-identical after normalization (wall times necessarily
        // differ between the two runs).
        assert_eq!(
            remote.normalized().to_json().render_pretty(),
            local.result.normalized().to_json().render_pretty(),
            "{id}: daemon and in-process records diverged"
        );
        // And the daemon result renders to the same paper-shaped text.
        assert_eq!(id.spec().render(&remote).unwrap(), local.rendered);
    }

    // Fetching a second time re-serves the same job (fetch is not
    // consuming).
    daemon.stop();
}

#[test]
fn two_clients_submitting_the_same_cell_share_one_simulation() {
    let daemon = TestDaemon::start(2, 8);
    // A cycle-accurate cell, so the run cache (not just the image
    // cache) is exercised.
    let cell = ExperimentId::Fig17
        .spec()
        .cells()
        .into_iter()
        .find(|c| matches!(c.kind, CellKind::Pipeline { .. }))
        .expect("fig17 has pipeline cells");
    let request = straight_json::obj()
        .field("op", "submit-cell")
        .field("cell", &cell.id())
        .field("params", &tiny_params())
        .build();

    let mut a = Client::connect(&daemon.addr).unwrap();
    let mut b = Client::connect(&daemon.addr).unwrap();
    let job_a = a.request(&request).unwrap().get("job").and_then(Json::as_u64).unwrap();
    let job_b = b.request(&request).unwrap().get("job").and_then(Json::as_u64).unwrap();
    assert_ne!(job_a, job_b, "jobs are distinct even when the work is shared");

    assert_eq!(a.wait_job(job_a).unwrap(), "done");
    assert_eq!(b.wait_job(job_b).unwrap(), "done");
    let rec_a = a.fetch_cell(job_a).unwrap();
    let rec_b = b.fetch_cell(job_b).unwrap();
    assert_eq!(rec_a.cycles, rec_b.cycles);
    assert_eq!(rec_a.stdout_digest, rec_b.stdout_digest);
    assert_eq!(rec_a.config_fingerprint, rec_b.config_fingerprint);

    // The dedup is observable: two lookups of the run cache, at most
    // one miss.
    let stats = a.stats().unwrap();
    let cache = stats.get("cache").expect("stats carries cache counters");
    let lookups = cache.get("run_lookups").and_then(Json::as_u64).unwrap();
    let hits = cache.get("run_hits").and_then(Json::as_u64).unwrap();
    assert!(lookups >= 2, "expected both submissions to consult the run cache, got {lookups}");
    assert!(hits >= 1, "expected at least one run-cache hit, got {hits} (lookups {lookups})");
    daemon.stop();
}

#[test]
fn disconnecting_mid_job_does_not_kill_the_job() {
    let daemon = TestDaemon::start(1, 4);
    let job = {
        // Submit and immediately drop the connection.
        let mut ephemeral = Client::connect(&daemon.addr).unwrap();
        ephemeral.submit_experiment(ExperimentId::Table1, &tiny_params()).unwrap()
    };
    // A different connection can watch the same job to completion.
    let mut client = Client::connect(&daemon.addr).unwrap();
    assert_eq!(client.wait_job(job).unwrap(), "done");
    let result = client.fetch_experiment(job).unwrap();
    assert_eq!(result.experiment, "table1");
    daemon.stop();
}

#[test]
fn full_queue_pushes_back_with_a_structured_error() {
    // One worker and a queue bound of 1: while the first job occupies
    // the daemon, a second submission must be refused, not buffered
    // without limit.
    let daemon = TestDaemon::start(1, 1);
    let mut client = Client::connect(&daemon.addr).unwrap();
    let first = client
        .submit_experiment(ExperimentId::Fig17, &RunParams { dhry_iters: 50, cm_iters: 1, ..RunParams::default() })
        .unwrap();
    let refused = client.submit_experiment(ExperimentId::Table1, &tiny_params());
    match refused {
        Err(ClientError::Remote { kind, .. }) => assert_eq!(kind, "queue-full"),
        other => panic!("expected queue-full, got {other:?}"),
    }
    // Cancel drains the first job's pending cells quickly; the slot
    // frees up and the next submission is admitted.
    client.request(&straight_json::obj().field("op", "cancel").field("job", &first).build()).unwrap();
    let state = client.wait_job(first).unwrap();
    assert!(state == "cancelled" || state == "failed" || state == "done", "got {state}");
    let second = client.submit_experiment(ExperimentId::Table1, &tiny_params()).unwrap();
    assert_eq!(client.wait_job(second).unwrap(), "done");
    daemon.stop();
}

#[test]
fn shutdown_with_queued_jobs_drains_them_to_terminal_states() {
    // One worker, several queued jobs, then a shutdown from another
    // connection: the drain must run every queued job to a terminal
    // state — nothing may sit in `queued` forever — and the accept
    // loop must only return after that.
    let mut daemon = TestDaemon::start(1, 8);
    let mut submitter = Client::connect(&daemon.addr).unwrap();
    let jobs: Vec<u64> = (0..3)
        .map(|_| submitter.submit_experiment(ExperimentId::Table1, &tiny_params()).unwrap())
        .collect();

    let mut other = Client::connect(&daemon.addr).unwrap();
    other.shutdown().expect("shutdown accepted");
    // Draining refuses new submissions with a structured error.
    match other.submit_experiment(ExperimentId::Table1, &tiny_params()) {
        Err(ClientError::Remote { kind, .. }) => assert_eq!(kind, "shutting-down"),
        other => panic!("expected shutting-down, got {other:?}"),
    }

    // The already-open connection can watch the queued jobs finish.
    for job in jobs {
        assert_eq!(submitter.wait_job(job).unwrap(), "done", "job {job} left in queue");
    }
    daemon.handle.take().unwrap().join().unwrap().unwrap();
}

#[test]
fn stats_stay_consistent_after_cancellation() {
    let daemon = TestDaemon::start(1, 4);
    let mut client = Client::connect(&daemon.addr).unwrap();
    let slow = RunParams { dhry_iters: 50, cm_iters: 1, ..RunParams::default() };
    let cancelled = client.submit_experiment(ExperimentId::Fig17, &slow).unwrap();
    client
        .request(&straight_json::obj().field("op", "cancel").field("job", &cancelled).build())
        .unwrap();
    let state = client.wait_job(cancelled).unwrap();
    assert!(state == "cancelled" || state == "done", "got {state}");

    let finished = client.submit_experiment(ExperimentId::Table1, &tiny_params()).unwrap();
    assert_eq!(client.wait_job(finished).unwrap(), "done");

    let stats = client.stats().unwrap();
    let get = |key: &str| stats.get(key).and_then(Json::as_u64).expect(key);
    assert_eq!(get("jobs_submitted"), 2, "cancelled jobs still count as submitted");
    assert_eq!(get("jobs_active"), 0, "cancellation must not leak an active job");
    assert_eq!(get("worker_panics"), 0);
    assert!(matches!(stats.get("store"), Some(Json::Null) | None), "no store configured");
    assert!(get("uptime_ms") > 0);
    daemon.stop();
}

#[test]
fn idle_connections_are_reaped_with_a_structured_goodbye() {
    let daemon =
        TestDaemon::start_with(1, 4, |c| c.idle_timeout = Some(Duration::from_millis(100)));
    let mut stream = TcpStream::connect(&daemon.addr).unwrap();
    // Say nothing. The daemon must reap us, not pin a handler thread.
    std::thread::sleep(Duration::from_millis(400));
    let response = read_response(&mut stream);
    assert_eq!(error_kind(&response), "idle-timeout");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection closes after the goodbye");

    // The reap is counted, and fresh connections still work.
    let mut client = Client::connect(&daemon.addr).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.get("idle_reaped").and_then(Json::as_u64).unwrap() >= 1);
    daemon.stop();
}

#[test]
fn queue_full_submissions_retry_until_admitted() {
    let daemon = TestDaemon::start(1, 1);
    let addr = daemon.addr.clone();
    let config = ClientConfig {
        io_timeout: Duration::from_secs(60),
        retries: 15,
        backoff_base: Duration::from_millis(50),
        backoff_cap: Duration::from_millis(500),
        jitter_seed: 7,
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(&daemon.addr, &config).unwrap();
    let slow = RunParams { dhry_iters: 50, cm_iters: 1, ..RunParams::default() };
    let occupant = client.submit_experiment(ExperimentId::Fig17, &slow).unwrap();

    // Free the slot shortly, from another connection.
    let canceller = std::thread::spawn(move || {
        let mut c = Client::connect(&addr).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        c.request(&straight_json::obj().field("op", "cancel").field("job", &occupant).build())
            .unwrap();
        c.wait_job(occupant).unwrap();
    });

    // The retrying submit rides out the queue-full refusals.
    let job = client.submit_experiment_with_retry(ExperimentId::Table1, &tiny_params()).unwrap();
    assert_eq!(client.wait_job(job).unwrap(), "done");
    let (retries, timeouts) = client.retry_counters();
    assert!(retries >= 1, "the first submit must have been refused at least once");
    assert_eq!(timeouts, 0);
    canceller.join().unwrap();
    daemon.stop();
}

#[test]
fn wedged_server_surfaces_a_timeout_not_a_hang() {
    // A listener that accepts and then never answers: the client's
    // io timeout must turn the stalled read into a typed error.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let hold = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_millis(800));
        drop(stream);
    });
    let config = ClientConfig {
        io_timeout: Duration::from_millis(100),
        retries: 0,
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(&addr, &config).unwrap();
    match client.request(&straight_json::obj().field("op", "ping").build()) {
        Err(ClientError::Timeout { after }) => assert_eq!(after, Duration::from_millis(100)),
        other => panic!("expected a timeout, got {other:?}"),
    }
    let (_, timeouts) = client.retry_counters();
    assert_eq!(timeouts, 1);
    hold.join().unwrap();
}

#[test]
fn connect_retries_exhaust_into_a_terminal_error() {
    // Nothing listens here; connects are refused immediately.
    let free = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = free.local_addr().unwrap().to_string();
    drop(free);
    let config = ClientConfig {
        retries: 2,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(20),
        jitter_seed: 3,
        ..ClientConfig::default()
    };
    match Client::connect_with(&addr, &config) {
        Err(ClientError::Exhausted { attempts, last }) => {
            assert_eq!(attempts, 3, "initial try plus two retries");
            assert!(matches!(*last, ClientError::Io(_)));
        }
        other => panic!("expected exhaustion, got {:?}", other.map(|_| "a client")),
    }
}

#[test]
fn fetch_before_completion_is_a_not_done_error() {
    let daemon = TestDaemon::start(1, 4);
    let mut client = Client::connect(&daemon.addr).unwrap();
    let job = client
        .submit_experiment(ExperimentId::Fig17, &RunParams { dhry_iters: 50, cm_iters: 1, ..RunParams::default() })
        .unwrap();
    // Immediately fetching is (overwhelmingly likely) premature; if
    // the machine is so fast the job already finished, a successful
    // fetch is also correct — only a hang or panic would be a bug.
    match client.fetch_experiment(job) {
        Err(ClientError::Remote { kind, .. }) => assert_eq!(kind, "not-done"),
        Ok(_) => {}
        Err(other) => panic!("unexpected failure: {other}"),
    }
    client.wait_job(job).unwrap();
    daemon.stop();
}
