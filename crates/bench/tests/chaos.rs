//! Chaos harness for the serving tier: seeded fault injection against
//! the crash-safe record store and a real `straightd` process.
//!
//! Everything here is deterministic under fixed seeds (`SplitMix64`):
//! corruption sites, injected panics, and retry jitter replay exactly.
//! The invariants exercised:
//!
//! * a SIGKILL mid-run never leaves a torn record that a later boot
//!   will serve — the scan either loads a fully valid entry or
//!   quarantines it;
//! * quarantine counts match the number of injected corruptions, and
//!   corrupt entries are moved aside (for post-mortems), never served
//!   and never silently deleted;
//! * a restarted daemon answers the same submission with
//!   byte-identical normalized records, from the store, without
//!   re-simulating;
//! * an unusable store root degrades to memory-only mode and the
//!   session keeps serving;
//! * an injected worker panic surfaces as a structured job failure
//!   and the daemon keeps running jobs afterwards.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use straight_bench::serve::{Client, ClientConfig, Daemon, DaemonConfig, Listen};
use straight_bench::store::{decode_entry, encode_entry, RecordStore};
use straight_core::experiment::{CellKind, ExperimentId, RunParams};
use straight_core::lab::{LabSession, RecordCache};
use straight_isa::rng::SplitMix64;
use straight_json::{Json, ToJson};

/// Fixed chaos seed; change it and the whole fault schedule changes
/// reproducibly.
const CHAOS_SEED: u64 = 0x5742_4943_4841_4f53; // "WBICHAOS"

fn tiny_params() -> RunParams {
    RunParams { dhry_iters: 5, cm_iters: 1, ..RunParams::default() }
}

/// A per-test scratch directory under the system temp dir.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("straight-chaos-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The committed entry files of a store, sorted for determinism.
fn entry_files(store_root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(store_root)
        .unwrap()
        .flatten()
        .filter(|e| e.path().is_dir() && e.file_name().to_string_lossy().starts_with('v'))
        .flat_map(|dir| std::fs::read_dir(dir.path()).unwrap().flatten())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rec"))
        .collect();
    files.sort();
    files
}

/// Applies one seeded corruption to a committed entry. The four modes
/// cover the failure classes the footer must catch: truncation inside
/// the payload, a single flipped bit, wholesale garbage, and a footer
/// torn by one byte.
fn corrupt(path: &Path, mode: u64, rng: &mut SplitMix64) {
    let mut bytes = std::fs::read(path).unwrap();
    match mode % 4 {
        0 => bytes.truncate(bytes.len() / 2),
        1 => {
            let i = (rng.next_u64() % bytes.len() as u64) as usize;
            bytes[i] ^= 1 << (rng.next_u64() % 8);
        }
        2 => {
            for b in &mut bytes {
                *b = (rng.next_u64() & 0xff) as u8;
            }
        }
        _ => bytes.truncate(bytes.len() - 1),
    }
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn seeded_corruption_quarantines_exactly_the_injected_entries() {
    let root = scratch("quarantine");

    // Populate the store through a real session: fig17's pipeline
    // cells write entries as they complete.
    {
        let (store, report) = RecordStore::open(&root);
        assert_eq!(report.loaded, 0);
        let session = LabSession::builder()
            .jobs(2)
            .record_cache(Arc::new(store) as Arc<dyn RecordCache>)
            .build()
            .unwrap();
        session.run_experiment(ExperimentId::Fig17, tiny_params()).unwrap();
    }

    let files = entry_files(&root);
    assert!(!files.is_empty(), "the run must have persisted pipeline records");
    let fingerprints: Vec<String> =
        files.iter().map(|p| p.file_stem().unwrap().to_string_lossy().into_owned()).collect();

    // A clean reopen loads everything back.
    let (clean, report) = RecordStore::open(&root);
    assert_eq!(report.loaded, files.len());
    assert!(report.quarantined.is_empty());
    for fp in &fingerprints {
        assert!(clean.get(fp).is_some(), "clean boot must serve {fp}");
    }
    drop(clean);

    // Inject: corrupt every entry (seeded mode per file), plus one
    // torn temp file and one alien file.
    let mut rng = SplitMix64::new(CHAOS_SEED);
    for (i, file) in files.iter().enumerate() {
        corrupt(file, i as u64, &mut rng);
    }
    let entries_dir = files[0].parent().unwrap();
    std::fs::write(entries_dir.join("0123456789abcdef.tmp"), b"torn mid-write").unwrap();
    std::fs::write(entries_dir.join("README.txt"), b"i do not belong here").unwrap();

    let (store, report) = RecordStore::open(&root);
    assert_eq!(report.loaded, 0, "no corrupt entry may load");
    assert_eq!(
        report.quarantined.len(),
        files.len() + 1,
        "every corruption plus the alien file is quarantined: {:?}",
        report.quarantined
    );
    assert_eq!(report.removed_temps, 1);
    assert_eq!(store.stats().quarantined, (files.len() + 1) as u64);
    for fp in &fingerprints {
        assert!(store.get(fp).is_none(), "torn record {fp} must never be served");
    }
    // Quarantined bytes are moved aside, not deleted.
    let held = std::fs::read_dir(root.join("quarantine")).unwrap().flatten().count();
    assert_eq!(held, files.len() + 1);
    // The entries directory is clean again: nothing but directories
    // may remain, and a fresh write round-trips.
    assert!(entry_files(&root).is_empty());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn every_single_bit_flip_is_caught_by_the_footer() {
    let root = scratch("bitflip");
    {
        let (store, _) = RecordStore::open(&root);
        let session = LabSession::builder()
            .jobs(2)
            .record_cache(Arc::new(store) as Arc<dyn RecordCache>)
            .build()
            .unwrap();
        session.run_experiment(ExperimentId::Fig17, tiny_params()).unwrap();
    }
    let files = entry_files(&root);
    let fingerprint = files[0].file_stem().unwrap().to_string_lossy().into_owned();
    let (reopened, _) = RecordStore::open(&root);
    let record = reopened.get(&fingerprint).unwrap();

    let bytes = encode_entry(&record);
    assert_eq!(decode_entry(&bytes, &fingerprint).unwrap().cycles, record.cycles);

    // 256 seeded single-bit flips across the entry, payload and footer
    // alike: every one must be rejected, none may decode to anything.
    let mut rng = SplitMix64::new(CHAOS_SEED ^ 1);
    for _ in 0..256 {
        let mut flipped = bytes.clone();
        let i = (rng.next_u64() % flipped.len() as u64) as usize;
        flipped[i] ^= 1 << (rng.next_u64() % 8);
        assert!(
            decode_entry(&flipped, &fingerprint).is_err(),
            "bit flip at byte {i} went undetected"
        );
    }
    // Seeded truncations too.
    for _ in 0..64 {
        let keep = (rng.next_u64() % bytes.len() as u64) as usize;
        assert!(decode_entry(&bytes[..keep], &fingerprint).is_err());
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unusable_store_root_degrades_to_memory_only_and_keeps_serving() {
    // The root is a regular file, so the store cannot create its
    // directories — even running as root, this fails structurally.
    let dir = scratch("degrade");
    let root = dir.join("not-a-directory");
    std::fs::write(&root, b"occupied").unwrap();

    let (store, report) = RecordStore::open(&root);
    assert!(report.memory_only.is_some(), "report must carry the degradation reason");
    assert!(store.memory_only());
    assert!(report.summary().contains("MEMORY-ONLY"));

    // The degraded store still serves through a full session run.
    let store = Arc::new(store);
    let session = LabSession::builder()
        .jobs(2)
        .record_cache(Arc::clone(&store) as Arc<dyn RecordCache>)
        .build()
        .unwrap();
    session.run_experiment(ExperimentId::Fig17, tiny_params()).unwrap();
    let stats = store.stats();
    assert!(stats.entries > 0, "memory-only puts still cache in RAM");
    assert_eq!(stats.writes, 0, "nothing may touch the unusable path");
    assert!(stats.memory_only);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns a real `straightd` on a Unix socket with a store, fixed git
/// revision, and quiet output.
fn spawn_daemon(sock: &Path, store: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_straightd"))
        .arg("--listen")
        .arg(sock)
        .arg("--store")
        .arg(store)
        .arg("--jobs")
        .arg("2")
        .env("STRAIGHT_GIT_REV", "chaos-fixed")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn straightd")
}

/// Connects with a generous deterministic retry schedule (the socket
/// file appears only once the daemon is up).
fn connect(sock: &Path) -> Client {
    let config = ClientConfig {
        connect_timeout: Duration::from_secs(5),
        io_timeout: Duration::from_secs(120),
        retries: 60,
        backoff_base: Duration::from_millis(25),
        backoff_cap: Duration::from_millis(200),
        jitter_seed: CHAOS_SEED,
    };
    Client::connect_with(&sock.to_string_lossy(), &config).expect("daemon came up")
}

fn store_stat(stats: &Json, key: &str) -> u64 {
    stats.get("store").and_then(|s| s.get(key)).and_then(Json::as_u64).expect(key)
}

#[test]
fn sigkill_mid_run_then_restart_serves_byte_identical_records_from_the_store() {
    let dir = scratch("sigkill");
    let sock = dir.join("d.sock");
    let store = dir.join("store");

    // Phase 1: start, submit real work, SIGKILL mid-run. Some entries
    // may have committed, some may be mid-write — both must be safe.
    let mut victim = spawn_daemon(&sock, &store);
    {
        let mut client = connect(&sock);
        let slow = RunParams { dhry_iters: 100, cm_iters: 1, ..RunParams::default() };
        client.submit_experiment(ExperimentId::Fig17, &slow).unwrap();
        std::thread::sleep(Duration::from_millis(150));
    }
    victim.kill().unwrap();
    victim.wait().unwrap();

    // Phase 2: restart over the same store. The boot scan must accept
    // the directory (no torn record survives as live), and the rerun
    // completes.
    let mut second = spawn_daemon(&sock, &store);
    let normalized_b;
    {
        let mut client = connect(&sock);
        let stats = client.stats().unwrap();
        assert_eq!(store_stat(&stats, "quarantined"), 0, "a SIGKILL must not produce torn records");
        let job = client.submit_experiment_with_retry(ExperimentId::Fig17, &tiny_params()).unwrap();
        assert_eq!(client.wait_job(job).unwrap(), "done");
        let result = client.fetch_experiment(job).unwrap();
        normalized_b = result.normalized().to_json().render_pretty();
        let stats = client.stats().unwrap();
        assert!(store_stat(&stats, "entries") > 0, "completed cells must persist");
    }
    second.kill().unwrap();
    second.wait().unwrap();

    // Phase 3: warm restart. The same submission is answered from the
    // store — byte-identical after normalization — without
    // re-simulating the pipeline cells.
    let mut third = spawn_daemon(&sock, &store);
    {
        let mut client = connect(&sock);
        let boot = client.stats().unwrap();
        assert!(store_stat(&boot, "entries") > 0, "warm boot reloads the store");
        assert_eq!(store_stat(&boot, "quarantined"), 0);
        let job = client.submit_experiment_with_retry(ExperimentId::Fig17, &tiny_params()).unwrap();
        assert_eq!(client.wait_job(job).unwrap(), "done");
        let result = client.fetch_experiment(job).unwrap();
        assert_eq!(
            result.normalized().to_json().render_pretty(),
            normalized_b,
            "restart changed the records"
        );
        let after = client.stats().unwrap();
        assert!(store_stat(&after, "hits") > 0, "the rerun must be served from the store");
        let cache = after.get("cache").unwrap();
        assert_eq!(
            cache.get("run_lookups").and_then(Json::as_u64),
            Some(0),
            "store hits must short-circuit before the run cache, i.e. no re-simulation"
        );
        client.shutdown().unwrap();
    }
    assert!(third.wait().unwrap().success(), "graceful drain after shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_panic_fails_the_job_and_the_daemon_keeps_serving() {
    let victim_cell = ExperimentId::Fig17
        .spec()
        .cells()
        .into_iter()
        .find(|c| matches!(c.kind, CellKind::Pipeline { .. }))
        .expect("fig17 has pipeline cells")
        .id();

    let mut config = DaemonConfig::new(Listen::Tcp("127.0.0.1:0".to_string()));
    config.jobs = 1;
    config.chaos_panic_cell = Some(victim_cell.clone());
    let daemon = Daemon::bind(&config).unwrap();
    let addr = daemon.local_addr();
    let handle = std::thread::spawn(move || {
        static NEVER: AtomicBool = AtomicBool::new(false);
        daemon.run(&NEVER)
    });

    let mut client = Client::connect(&addr).unwrap();
    let request = straight_json::obj()
        .field("op", "submit-cell")
        .field("cell", &victim_cell)
        .field("params", &tiny_params())
        .build();
    let job = client.request(&request).unwrap().get("job").and_then(Json::as_u64).unwrap();
    assert_eq!(client.wait_job(job).unwrap(), "failed", "the panic is a terminal job state");
    match client.fetch_cell(job) {
        Err(straight_bench::serve::ClientError::Remote { kind, msg }) => {
            assert_eq!(kind, "job-failed");
            assert!(msg.contains("panicked"), "failure names the panic: {msg}");
        }
        other => panic!("expected a structured job failure, got {other:?}"),
    }

    // The worker pool survived: an untouched experiment still runs.
    let next = client.submit_experiment(ExperimentId::Table1, &tiny_params()).unwrap();
    assert_eq!(client.wait_job(next).unwrap(), "done");
    let stats = client.stats().unwrap();
    assert!(stats.get("worker_panics").and_then(Json::as_u64).unwrap() >= 1);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}
