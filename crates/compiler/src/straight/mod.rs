//! The STRAIGHT back-end (Section IV of the paper).

mod emit;
mod frames;

use straight_asm::{DataItem, SProgram};
use straight_ir::{passes, Module};

use crate::CodegenError;

/// Options controlling STRAIGHT code generation.
#[derive(Debug, Clone)]
pub struct StraightOptions {
    /// Maximum source-operand distance the generated code may use.
    /// The paper's ISA allows 1023; the evaluated models use 31
    /// (Section V-A) and Section VI-B studies the sensitivity.
    pub max_distance: u16,
    /// Enables the RE+ redundancy elimination of Section IV-D
    /// (producer rearrangement + stack storage of loop-live-through
    /// values). Off = the `RAW` basic algorithm.
    pub redundancy_elimination: bool,
}

impl Default for StraightOptions {
    fn default() -> StraightOptions {
        StraightOptions { max_distance: 1023, redundancy_elimination: true }
    }
}

impl StraightOptions {
    /// The basic algorithm of Sections IV-A..IV-C (`STRAIGHT RAW` in
    /// the evaluation).
    #[must_use]
    pub fn raw() -> StraightOptions {
        StraightOptions { redundancy_elimination: false, ..StraightOptions::default() }
    }

    /// RAW/RE+ with a specific distance bound.
    #[must_use]
    pub fn with_max_distance(mut self, d: u16) -> StraightOptions {
        self.max_distance = d;
        self
    }
}

/// Compiles an IR module to a linkable STRAIGHT program.
///
/// # Errors
///
/// Returns [`CodegenError`] when a merge point carries more live
/// values than the distance bound can express, or on internal
/// invariant violations.
pub fn compile_straight(module: &Module, opts: &StraightOptions) -> Result<SProgram, CodegenError> {
    let mut module = module.clone();
    for f in &mut module.funcs {
        passes::split_critical_edges(f);
    }
    let mut prog = SProgram::default();
    for g in &module.globals {
        prog.data.push(DataItem { name: g.name.clone(), size: g.size, align: g.align, init: g.init.clone() });
    }
    for f in &module.funcs {
        let sfunc = emit::FnEmitter::compile(f, &module, opts)?;
        prog.funcs.push(sfunc);
    }
    Ok(prog)
}
