//! Per-function STRAIGHT code emission.
//!
//! The emitter walks blocks in reverse postorder, tracking for every
//! live value the *virtual dynamic position* of its most recent
//! producer. Reading an operand turns into a distance (`current
//! position - producer position`), which is exactly the ISA's operand
//! model. The pieces of the paper's algorithm map onto this machinery
//! as follows:
//!
//! * **Distance fixing (IV-C2)** — every merge block gets a *frame*
//!   (ordered live-in values + phis); each predecessor ends with a
//!   shuffle producing the frame in order, then exactly one control
//!   instruction (`J`, `BEZ`/`BNZ`, or a padding `NOP` on fall-through
//!   paths), so entry distances are path-independent.
//! * **Distance bounding (IV-C3)** — an aging sweep relays values
//!   about to exceed the bound with `RMOV` (RAW) or retires them to
//!   the stack frame (RE+).
//! * **Calling convention (IV-B)** — argument producers are arranged
//!   immediately before `JAL`; values live across a call are stored
//!   to the stack frame (their distances after the callee returns are
//!   statically unknowable); `retval0` is produced immediately before
//!   `JR`.
//! * **RE+ (IV-D)** — single-instruction producers with no local uses
//!   are sunk into the shuffle zone instead of being `RMOV`-copied
//!   (Figure 10b), and loop-live-through values stay in the stack
//!   frame (Figure 10c).

use std::collections::{HashMap, HashSet};

use straight_asm::{SFunc, SItem, SReloc};
use straight_isa::{AluImmOp, AluOp, Dist, Inst, MemWidth};
use straight_ir::analysis::{Cfg, Dominators, Liveness, Loops};
use straight_ir::{BinOp, Block, Function, InstData, Module, Terminator, Value};

use super::frames::{self, FrameInfo, SlotSrc};
use super::StraightOptions;
use crate::CodegenError;

/// A value whose producer position the emitter tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Tracked {
    Val(Value),
    RetAddr,
    FrameBase,
}

/// Per-path emission state: where on the virtual dynamic timeline each
/// live value was last produced, and which values have valid stack
/// copies.
#[derive(Debug, Clone, Default)]
struct PathState {
    /// Position of the *next* instruction to be emitted.
    cur: i64,
    pos: HashMap<Tracked, i64>,
    spilled: HashSet<Tracked>,
}

pub(crate) struct FnEmitter<'a> {
    f: &'a Function,
    module: &'a Module,
    opts: &'a StraightOptions,
    #[allow(dead_code)]
    cfg: Cfg,
    live: Liveness,
    info: FrameInfo,
    order: Vec<Block>,
    order_idx: HashMap<Block, usize>,
    def_block: HashMap<Value, Block>,
    items: Vec<SItem>,
    labels: Vec<(String, usize)>,
    spill_off: HashMap<Tracked, u32>,
    next_spill: u32,
    ir_frame: u32,
    spadd_fixups: Vec<(usize, i32)>,
    st: PathState,
    in_states: HashMap<Block, PathState>,
    uses_left: HashMap<Value, u32>,
    init_uses: HashMap<Value, u32>,
    vhigh: i64,
    cur_block: Block,
    sink_set: HashSet<Value>,
    prologue_spilled_retaddr: bool,
    has_calls: bool,
    /// Per merge block: intersection of the spilled sets of the
    /// already-processed predecessors. Sound for back edges too: the
    /// spilled set only grows along a path, so the latch's set is a
    /// superset of the header's entry set.
    merge_spills: HashMap<Block, HashSet<Tracked>>,
    /// Second-pass flag: the function proved frameless, so the
    /// prologue/epilogue `SPADD`s are omitted entirely.
    skip_frame: bool,
}

type CResult<T> = Result<T, CodegenError>;

fn internal<T>(msg: impl Into<String>) -> CResult<T> {
    Err(CodegenError::Internal(msg.into()))
}

impl<'a> FnEmitter<'a> {
    /// Compiles one function. Runs the emitter once; if the function
    /// turns out to need no stack frame at all (no IR slots and no
    /// spills), re-runs it with the frame `SPADD`s omitted — leaf
    /// functions then carry zero frame overhead.
    pub(crate) fn compile(f: &'a Function, module: &'a Module, opts: &'a StraightOptions) -> CResult<SFunc> {
        let first = Self::compile_pass(f, module, opts, false)?;
        match first {
            (sfunc, 0, 0) if f.frame_size() == 0 => {
                let (sfunc2, spills2, _) = Self::compile_pass(f, module, opts, true)?;
                debug_assert_eq!(spills2, 0, "frameless rerun must not spill");
                let _ = sfunc;
                Ok(sfunc2)
            }
            (sfunc, ..) => Ok(sfunc),
        }
    }

    fn compile_pass(
        f: &'a Function,
        module: &'a Module,
        opts: &'a StraightOptions,
        skip_frame: bool,
    ) -> CResult<(SFunc, u32, u32)> {
        let cfg = Cfg::compute(f);
        let live = Liveness::compute(f, &cfg);
        let dom = Dominators::compute(f, &cfg);
        let loops = Loops::compute(f, &cfg, &dom);
        let info = frames::compute(f, &cfg, &live, &loops, &dom, opts.redundancy_elimination);
        let order: Vec<Block> = cfg.rpo().to_vec();
        let order_idx: HashMap<Block, usize> = order.iter().enumerate().map(|(i, b)| (*b, i)).collect();
        let mut def_block = HashMap::new();
        for b in f.block_ids() {
            for &v in &f.block(b).insts {
                def_block.insert(v, b);
            }
        }
        let has_calls = f.insts.iter().any(|i| matches!(i, InstData::Call { .. }));
        let mut e = FnEmitter {
            f,
            module,
            opts,
            cfg,
            live,
            info,
            order,
            order_idx,
            def_block,
            items: Vec::new(),
            labels: Vec::new(),
            spill_off: HashMap::new(),
            next_spill: 0,
            ir_frame: f.frame_size(),
            spadd_fixups: Vec::new(),
            st: PathState::default(),
            in_states: HashMap::new(),
            uses_left: HashMap::new(),
            init_uses: HashMap::new(),
            vhigh: 0,
            cur_block: f.entry(),
            sink_set: HashSet::new(),
            prologue_spilled_retaddr: false,
            has_calls,
            merge_spills: HashMap::new(),
            skip_frame,
        };
        e.run()?;
        // Patch frame-size SPADDs now the spill count is known.
        let total = (e.ir_frame + 4 * e.next_spill) as i32;
        for (idx, sign) in e.spadd_fixups.clone() {
            let imm = i16::try_from(sign * total)
                .map_err(|_| CodegenError::Internal("frame larger than 32 KiB".into()))?;
            e.items[idx].inst = Inst::SpAdd { imm };
        }
        Ok((SFunc { name: f.name.clone(), items: e.items, labels: e.labels }, e.next_spill, e.ir_frame))
    }

    // ---------------------------------------------------------------
    // Low-level emission.

    fn push(&mut self, inst: Inst) -> i64 {
        self.push_reloc(inst, None)
    }

    fn push_reloc(&mut self, inst: Inst, reloc: Option<SReloc>) -> i64 {
        let p = self.st.cur;
        self.items.push(SItem { inst, reloc });
        self.st.cur += 1;
        self.vhigh = self.vhigh.max(self.st.cur);
        p
    }

    fn place_label(&mut self, b: Block) {
        self.labels.push((format!("{b}"), self.items.len()));
    }

    fn label_name(b: Block) -> String {
        format!("{b}")
    }

    fn maxd(&self) -> i64 {
        i64::from(self.opts.max_distance)
    }

    fn dist_to(&self, t: Tracked) -> CResult<Dist> {
        let p = match self.st.pos.get(&t) {
            Some(p) => *p,
            None => return internal(format!("{t:?} not tracked in {}", self.f.name)),
        };
        let d = self.st.cur - p;
        if d < 1 || d > self.maxd() {
            return internal(format!("distance {d} to {t:?} out of range in {}", self.f.name));
        }
        Ok(Dist::of(d as u32))
    }

    fn is_zero_const(&self, v: Value) -> bool {
        matches!(self.f.inst(v), InstData::Const(0))
    }

    fn spill_slot(&mut self, t: Tracked) -> u32 {
        if let Some(&off) = self.spill_off.get(&t) {
            return off;
        }
        let off = self.ir_frame + 4 * self.next_spill;
        self.next_spill += 1;
        self.spill_off.insert(t, off);
        off
    }

    /// Makes the frame base readable (`SPADD 0` re-materializes SP).
    fn ensure_fb(&mut self, margin: i64) -> CResult<()> {
        if self.skip_frame {
            return internal("frame base requested in a frameless function");
        }
        match self.st.pos.get(&Tracked::FrameBase) {
            Some(&p) if self.st.cur - p <= self.maxd() - margin => Ok(()),
            _ => {
                let p = self.push(Inst::SpAdd { imm: 0 });
                self.st.pos.insert(Tracked::FrameBase, p);
                Ok(())
            }
        }
    }

    /// Stores `t` to its stack slot (idempotent: SSA values never
    /// change, so an existing copy stays valid).
    fn spill(&mut self, t: Tracked) -> CResult<()> {
        if self.st.spilled.contains(&t) {
            return Ok(());
        }
        let off = self.spill_slot(t);
        self.ensure_fb(6)?;
        // Address: frame base + offset (ADDi when nonzero).
        if off == 0 {
            let dv = self.dist_to(t)?;
            let da = self.dist_to(Tracked::FrameBase)?;
            self.push(Inst::St { width: MemWidth::W, val: dv, addr: da });
        } else {
            let dfb = self.dist_to(Tracked::FrameBase)?;
            self.push(Inst::AluImm { op: AluImmOp::Addi, s1: dfb, imm: off as i16 });
            let dv = self.dist_to(t)?;
            self.push(Inst::St { width: MemWidth::W, val: dv, addr: Dist::of(1) });
        }
        self.st.spilled.insert(t);
        Ok(())
    }

    /// Reloads `t` from its stack slot.
    fn reload(&mut self, t: Tracked) -> CResult<()> {
        let off = *self
            .spill_off
            .get(&t)
            .ok_or_else(|| CodegenError::Internal(format!("reload of unspilled {t:?}")))?;
        self.ensure_fb(4)?;
        let dfb = self.dist_to(Tracked::FrameBase)?;
        let p = self.push(Inst::Ld { width: MemWidth::W, addr: dfb, offset: off as i16 });
        self.st.pos.insert(t, p);
        Ok(())
    }

    /// Emits a relay `RMOV` refreshing `t`'s position (the distance
    /// bounding of Section IV-C3).
    fn relay(&mut self, t: Tracked) -> CResult<()> {
        let d = self.dist_to(t)?;
        let p = self.push(Inst::Rmov { s: d });
        self.st.pos.insert(t, p);
        Ok(())
    }

    /// Guarantees `v` is readable at a distance ≤ `max_distance -
    /// margin`, re-materializing constants/addresses, reloading stack
    /// copies, or relaying as needed.
    fn ensure_val(&mut self, v: Value, margin: i64) -> CResult<()> {
        if self.is_zero_const(v) {
            return Ok(());
        }
        let t = Tracked::Val(v);
        if let Some(&p) = self.st.pos.get(&t) {
            if self.st.cur - p <= self.maxd() - margin {
                return Ok(());
            }
            // Too old to guarantee the margin; refresh.
            if self.st.cur - p <= self.maxd() {
                return self.relay(t);
            }
            self.st.pos.remove(&t);
        }
        if self.st.spilled.contains(&t) {
            return self.reload(t);
        }
        // Re-materializable?
        match self.f.inst(v).clone() {
            InstData::Const(c) => {
                self.materialize_const(v, c)?;
                Ok(())
            }
            InstData::GlobalAddr(g) => {
                self.materialize_global(v, g)?;
                Ok(())
            }
            InstData::SlotAddr(s) => {
                self.materialize_slot_addr(v, s)?;
                Ok(())
            }
            other => internal(format!("lost value {v} ({other:?}) in {}", self.f.name)),
        }
    }

    /// Reads an IR operand, returning its distance; consumes one use.
    fn read1(&mut self, v: Value) -> CResult<Dist> {
        self.consume_use(v);
        if self.is_zero_const(v) {
            return Ok(Dist::ZERO);
        }
        self.ensure_val(v, 2)?;
        self.dist_to(Tracked::Val(v))
    }

    /// Reads two operands with a safe margin between the ensures.
    fn read2(&mut self, a: Value, b: Value) -> CResult<(Dist, Dist)> {
        self.consume_use(a);
        self.consume_use(b);
        if !self.is_zero_const(a) {
            self.ensure_val(a, 6)?;
        }
        if !self.is_zero_const(b) {
            self.ensure_val(b, 2)?;
        }
        let da = if self.is_zero_const(a) { Dist::ZERO } else { self.dist_to(Tracked::Val(a))? };
        let db = if self.is_zero_const(b) { Dist::ZERO } else { self.dist_to(Tracked::Val(b))? };
        Ok((da, db))
    }

    fn consume_use(&mut self, v: Value) {
        if let Some(n) = self.uses_left.get_mut(&v) {
            *n = n.saturating_sub(1);
        }
    }

    /// True while `v` must be kept reachable on this path.
    fn needed(&self, v: Value) -> bool {
        self.uses_left.get(&v).copied().unwrap_or(0) > 0
            || self.live.live_out(self.cur_block).contains(&v)
    }

    /// The distance-bounding sweep: values nearing the bound are
    /// relayed (RAW), retired to the stack (RE+), or dropped when no
    /// longer needed.
    fn age_sweep(&mut self) -> CResult<()> {
        let threshold = self.maxd() - 10;
        // Relaying diverges when more values are live than the
        // distance window can hold (each relay ages every other value
        // by one). Cap the rounds and report the overflow cleanly.
        let mut rounds = 0;
        loop {
            rounds += 1;
            if rounds > 64 {
                return Err(CodegenError::FrameTooLarge {
                    func: self.f.name.clone(),
                    live: self.st.pos.len(),
                    max_distance: self.opts.max_distance,
                });
            }
            let mut aged: Vec<Tracked> = self
                .st
                .pos
                .iter()
                .filter(|(_, &p)| self.st.cur - p > threshold)
                .map(|(t, _)| *t)
                .collect();
            if aged.is_empty() {
                return Ok(());
            }
            aged.sort_unstable();
            for t in aged {
                let Some(&p) = self.st.pos.get(&t) else { continue };
                if self.st.cur - p <= threshold {
                    continue; // refreshed by an earlier action this round
                }
                match t {
                    Tracked::FrameBase => {
                        self.st.pos.remove(&t);
                    }
                    Tracked::RetAddr => {
                        if self.st.spilled.contains(&t) {
                            self.st.pos.remove(&t);
                        } else {
                            self.relay(t)?;
                        }
                    }
                    Tracked::Val(v) => {
                        if !self.needed(v) || self.st.spilled.contains(&t) || self.is_rematerializable(v) {
                            self.st.pos.remove(&t);
                        } else {
                            // Distance bounding relays with RMOV in
                            // both modes (Section IV-C3); RE+ reserves
                            // the stack for call sites and
                            // loop-live-through values.
                            self.relay(t)?;
                        }
                    }
                }
            }
        }
    }

    fn is_rematerializable(&self, v: Value) -> bool {
        matches!(self.f.inst(v), InstData::Const(_) | InstData::GlobalAddr(_) | InstData::SlotAddr(_))
    }

    // ---------------------------------------------------------------
    // Value materialization.

    fn materialize_const(&mut self, v: Value, c: i32) -> CResult<i64> {
        let p = if (-32768..=32767).contains(&c) {
            self.push(Inst::AluImm { op: AluImmOp::Addi, s1: Dist::ZERO, imm: c as i16 })
        } else {
            self.push(Inst::Lui { imm: ((c as u32) >> 16) as u16 });
            self.push(Inst::AluImm {
                op: AluImmOp::Ori,
                s1: Dist::of(1),
                imm: ((c as u32) & 0xffff) as u16 as i16,
            })
        };
        self.st.pos.insert(Tracked::Val(v), p);
        Ok(p)
    }

    fn materialize_global(&mut self, v: Value, g: straight_ir::GlobalId) -> CResult<i64> {
        let name = self.module.global(g).name.clone();
        self.push_reloc(Inst::Lui { imm: 0 }, Some(SReloc::AbsHi(name.clone())));
        let p = self.push_reloc(
            Inst::AluImm { op: AluImmOp::Ori, s1: Dist::of(1), imm: 0 },
            Some(SReloc::AbsLo(name)),
        );
        self.st.pos.insert(Tracked::Val(v), p);
        Ok(p)
    }

    fn materialize_slot_addr(&mut self, v: Value, s: straight_ir::SlotId) -> CResult<i64> {
        self.ensure_fb(2)?;
        let dfb = self.dist_to(Tracked::FrameBase)?;
        let off = self.f.slot_offset(s);
        let p = self.push(Inst::AluImm { op: AluImmOp::Addi, s1: dfb, imm: off as i16 });
        self.st.pos.insert(Tracked::Val(v), p);
        Ok(p)
    }

    // ---------------------------------------------------------------
    // Instruction selection for `Bin`.

    /// Returns the single-instruction plan for `v` if one exists:
    /// `(inst-template needing (da, db))`. Used both for normal
    /// lowering and for deciding RE+ sinkability.
    fn bin_single_plan(&self, op: BinOp, a: Value, b: Value) -> Option<BinPlan> {
        use BinOp::*;
        let const_of = |v: Value| match self.f.inst(v) {
            InstData::Const(c) => Some(*c),
            _ => None,
        };
        // Immediate forms.
        if let Some(cb) = const_of(b) {
            let imm_ok = (-32768..=32767).contains(&cb);
            let uimm_ok = (0..=0xffff).contains(&cb);
            let sh_ok = (0..32).contains(&cb);
            let imm = cb as i16;
            let uimm = cb as u16 as i16;
            let plan = match op {
                Add if imm_ok => Some((AluImmOp::Addi, imm)),
                Sub if (-32767..=32768).contains(&cb) => Some((AluImmOp::Addi, (-cb) as i16)),
                And if uimm_ok => Some((AluImmOp::Andi, uimm)),
                Or if uimm_ok => Some((AluImmOp::Ori, uimm)),
                Xor if uimm_ok => Some((AluImmOp::Xori, uimm)),
                Shl if sh_ok => Some((AluImmOp::Slli, imm)),
                ShrA if sh_ok => Some((AluImmOp::Srai, imm)),
                ShrL if sh_ok => Some((AluImmOp::Srli, imm)),
                SLt if imm_ok => Some((AluImmOp::Slti, imm)),
                ULt if imm_ok => Some((AluImmOp::Sltiu, imm)),
                _ => None,
            };
            if let Some((iop, imm)) = plan {
                return Some(BinPlan::Imm { op: iop, a, imm });
            }
            if cb == 0 && op == Eq {
                return Some(BinPlan::Imm { op: AluImmOp::Sltiu, a, imm: 1 });
            }
            if cb == 0 && op == Ne {
                return Some(BinPlan::Reg { op: AluOp::Sltu, a: b, b: a }); // 0 <u a
            }
        }
        if let Some(ca) = const_of(a) {
            // Commutative ops with the constant on the left; guard
            // against const-const operands (no recursion fixpoint).
            if op.is_commutative() && const_of(b).is_none() {
                if let Some(p) = self.bin_single_plan(op, b, a) {
                    return Some(p);
                }
            }
            if ca == 0 && op == Ne {
                return Some(BinPlan::Reg { op: AluOp::Sltu, a, b }); // 0 <u b
            }
            if ca == 0 && op == Eq {
                return Some(BinPlan::Imm { op: AluImmOp::Sltiu, a: b, imm: 1 });
            }
        }
        let reg = |aop: AluOp, x: Value, y: Value| Some(BinPlan::Reg { op: aop, a: x, b: y });
        match op {
            Add => reg(AluOp::Add, a, b),
            Sub => reg(AluOp::Sub, a, b),
            Mul => reg(AluOp::Mul, a, b),
            Div => reg(AluOp::Div, a, b),
            Rem => reg(AluOp::Rem, a, b),
            DivU => reg(AluOp::Divu, a, b),
            RemU => reg(AluOp::Remu, a, b),
            And => reg(AluOp::And, a, b),
            Or => reg(AluOp::Or, a, b),
            Xor => reg(AluOp::Xor, a, b),
            Shl => reg(AluOp::Sll, a, b),
            ShrA => reg(AluOp::Sra, a, b),
            ShrL => reg(AluOp::Srl, a, b),
            SLt => reg(AluOp::Slt, a, b),
            ULt => reg(AluOp::Sltu, a, b),
            SGt => reg(AluOp::Slt, b, a),
            UGt => reg(AluOp::Sltu, b, a),
            Eq | Ne | SLe | SGe | ULe | UGe => None,
        }
    }

    fn lower_bin(&mut self, v: Value, op: BinOp, a: Value, b: Value) -> CResult<()> {
        if let Some(plan) = self.bin_single_plan(op, a, b) {
            let p = match plan {
                BinPlan::Imm { op: iop, a: pa, imm } => {
                    let da = self.read1(pa)?;
                    // The folded constant operand's IR use must still
                    // be consumed for liveness bookkeeping.
                    for orig in [a, b] {
                        if orig != pa {
                            self.consume_use(orig);
                        }
                    }
                    self.push(Inst::AluImm { op: iop, s1: da, imm })
                }
                BinPlan::Reg { op: rop, a: pa, b: pb } => {
                    let (da, db) = self.read2(pa, pb)?;
                    self.push(Inst::Alu { op: rop, s1: da, s2: db })
                }
            };
            self.st.pos.insert(Tracked::Val(v), p);
            return Ok(());
        }
        // Two-instruction comparisons.
        use BinOp::*;
        let p = match op {
            Eq => {
                let (da, db) = self.read2(a, b)?;
                self.push(Inst::Alu { op: AluOp::Xor, s1: da, s2: db });
                self.push(Inst::AluImm { op: AluImmOp::Sltiu, s1: Dist::of(1), imm: 1 })
            }
            Ne => {
                let (da, db) = self.read2(a, b)?;
                self.push(Inst::Alu { op: AluOp::Xor, s1: da, s2: db });
                self.push(Inst::Alu { op: AluOp::Sltu, s1: Dist::ZERO, s2: Dist::of(1) })
            }
            SLe => {
                let (da, db) = self.read2(a, b)?;
                self.push(Inst::Alu { op: AluOp::Slt, s1: db, s2: da });
                self.push(Inst::AluImm { op: AluImmOp::Xori, s1: Dist::of(1), imm: 1 })
            }
            SGe => {
                let (da, db) = self.read2(a, b)?;
                self.push(Inst::Alu { op: AluOp::Slt, s1: da, s2: db });
                self.push(Inst::AluImm { op: AluImmOp::Xori, s1: Dist::of(1), imm: 1 })
            }
            ULe => {
                let (da, db) = self.read2(a, b)?;
                self.push(Inst::Alu { op: AluOp::Sltu, s1: db, s2: da });
                self.push(Inst::AluImm { op: AluImmOp::Xori, s1: Dist::of(1), imm: 1 })
            }
            UGe => {
                let (da, db) = self.read2(a, b)?;
                self.push(Inst::Alu { op: AluOp::Sltu, s1: da, s2: db });
                self.push(Inst::AluImm { op: AluImmOp::Xori, s1: Dist::of(1), imm: 1 })
            }
            _ => return internal(format!("unexpected two-inst op {op}")),
        };
        self.st.pos.insert(Tracked::Val(v), p);
        Ok(())
    }

    // ---------------------------------------------------------------
    // The main walk.

    fn run(&mut self) -> CResult<()> {
        self.emit_prologue()?;
        for (i, b) in self.order.clone().into_iter().enumerate() {
            self.cur_block = b;
            if i > 0 {
                self.st = match self.in_states.remove(&b) {
                    Some(s) => s,
                    None => self.merge_entry_state(b)?,
                };
                self.place_label(b);
            }
            self.count_uses(b);
            self.compute_sink_set(b)?;
            for v in self.f.block(b).insts.clone() {
                let inst = self.f.inst(v).clone();
                if inst.is_phi() || self.sink_set.contains(&v) {
                    continue;
                }
                self.lower_value(v, &inst)?;
                self.age_sweep()?;
            }
            self.emit_terminator(b, i)?;
        }
        Ok(())
    }

    fn emit_prologue(&mut self) -> CResult<()> {
        let n = self.f.num_params as i64;
        // Virtual positions of incoming values: [1] = JAL, [2] =
        // arg_{n-1}, ..., [n+1] = arg_0.
        self.st.cur = 0;
        self.st.pos.insert(Tracked::RetAddr, -1);
        let entry = self.f.entry();
        let params: Vec<Value> = self
            .f
            .block(entry)
            .insts
            .iter()
            .copied()
            .filter(|&v| matches!(self.f.inst(v), InstData::Param(_)))
            .collect();
        for &v in &params {
            if let InstData::Param(i) = self.f.inst(v) {
                self.st.pos.insert(Tracked::Val(v), -2 - (n - 1 - i64::from(*i)));
            }
        }
        // Frame allocation (size patched once spills are known).
        if !self.skip_frame {
            let idx = self.items.len();
            let p = self.push(Inst::SpAdd { imm: 0 });
            self.spadd_fixups.push((idx, -1));
            self.st.pos.insert(Tracked::FrameBase, p);
        }
        // RE+ keeps the return address in the stack from the start
        // (Figure 10c stores _RETADDR in the prologue).
        if self.opts.redundancy_elimination && (self.has_calls || !self.info.frames.is_empty()) {
            self.spill(Tracked::RetAddr)?;
            self.prologue_spilled_retaddr = true;
        }
        Ok(())
    }

    fn count_uses(&mut self, b: Block) {
        self.uses_left.clear();
        for &v in &self.f.block(b).insts {
            let inst = self.f.inst(v);
            if inst.is_phi() {
                continue;
            }
            inst.for_each_operand(|op| {
                *self.uses_left.entry(op).or_insert(0) += 1;
            });
        }
        self.f.block(b).term.for_each_operand(|op| {
            *self.uses_left.entry(op).or_insert(0) += 1;
        });
        self.init_uses = self.uses_left.clone();
    }

    /// RE+ producer rearrangement (Figure 10b): single-instruction
    /// values defined in this block, unused locally, whose only role
    /// is to fill a frame slot of the unique merge successor.
    fn compute_sink_set(&mut self, b: Block) -> CResult<()> {
        self.sink_set.clear();
        if !self.opts.redundancy_elimination {
            return Ok(());
        }
        let succs = self.f.block(b).term.successors();
        if succs.len() != 1 {
            return Ok(());
        }
        let succ = succs[0];
        let Some(frame) = self.info.frames.get(&succ) else { return Ok(()) };
        let sources = self.resolve_slots(b, succ, frame)?;
        let mut occurrence: HashMap<Value, u32> = HashMap::new();
        for (_, src) in &sources {
            if let ResolvedSrc::Val(u) = src {
                *occurrence.entry(*u).or_insert(0) += 1;
            }
        }
        for (_, src) in &sources {
            let ResolvedSrc::Val(u) = src else { continue };
            let u = *u;
            if occurrence[&u] != 1 {
                continue;
            }
            if self.def_block.get(&u) != Some(&b) {
                continue;
            }
            if self.init_uses.get(&u).copied().unwrap_or(0) != 0 {
                continue; // used locally; cannot delay production
            }
            let ok = match self.f.inst(u) {
                InstData::Bin { op, a, b: bb } => self.bin_single_plan(*op, *a, *bb).is_some(),
                InstData::SlotAddr(_) => true,
                _ => false,
            };
            if ok {
                self.sink_set.insert(u);
            }
        }
        Ok(())
    }

    fn lower_value(&mut self, v: Value, inst: &InstData) -> CResult<()> {
        match inst {
            InstData::Param(_) => Ok(()), // positions preset in the prologue
            InstData::Const(0) => Ok(()), // the zero register
            InstData::Const(c) => {
                self.materialize_const(v, *c)?;
                Ok(())
            }
            InstData::Bin { op, a, b } => self.lower_bin(v, *op, *a, *b),
            InstData::Load { width, addr } => {
                let da = self.read1(*addr)?;
                let p = self.push(Inst::Ld { width: *width, addr: da, offset: 0 });
                self.st.pos.insert(Tracked::Val(v), p);
                Ok(())
            }
            InstData::Store { width, val, addr } => {
                let (dv, da) = self.read2(*val, *addr)?;
                let p = self.push(Inst::St { width: *width, val: dv, addr: da });
                self.st.pos.insert(Tracked::Val(v), p);
                Ok(())
            }
            InstData::Call { callee, args } => self.lower_call(v, callee, args),
            InstData::Sys { op, args } => {
                let da = self.read1(args[0])?;
                let p = self.push(Inst::Sys { code: op.code(), s: da });
                self.st.pos.insert(Tracked::Val(v), p);
                Ok(())
            }
            InstData::GlobalAddr(g) => {
                self.materialize_global(v, *g)?;
                Ok(())
            }
            InstData::SlotAddr(s) => {
                self.materialize_slot_addr(v, *s)?;
                Ok(())
            }
            InstData::Phi(_) => internal("phi reached lower_value"),
            InstData::Copy(_) => internal("unresolved copy in codegen"),
        }
    }

    /// Calls: spill live values (their post-call distances are
    /// unknowable), arrange argument producers immediately before
    /// `JAL`, then resume with only the return value tracked.
    fn lower_call(&mut self, v: Value, callee: &str, args: &[Value]) -> CResult<()> {
        // 1. Values needed after the call on this path must be in the
        //    stack frame.
        let mut to_spill: Vec<Tracked> = Vec::new();
        for (&t, _) in self.st.pos.clone().iter() {
            match t {
                Tracked::Val(u) => {
                    let needed_after = self.needed(u) || args.contains(&u);
                    // Arguments are consumed by the shuffle below, so
                    // only spill them if used again later.
                    let needed_later = self.needed(u);
                    if needed_after && needed_later && !self.st.spilled.contains(&t) && !self.is_rematerializable(u)
                    {
                        to_spill.push(t);
                    }
                }
                Tracked::RetAddr => {
                    if !self.st.spilled.contains(&t) {
                        to_spill.push(t);
                    }
                }
                Tracked::FrameBase => {}
            }
        }
        to_spill.sort_unstable();
        for t in to_spill {
            // Ensure readable, then store.
            if let Tracked::Val(u) = t {
                self.ensure_val(u, 6)?;
            }
            self.spill(t)?;
            self.age_sweep()?;
        }
        // 2. Argument producers in convention order: arg0 first, the
        //    last argument immediately before JAL.
        let slots: Vec<(SlotKey, ResolvedSrc)> =
            args.iter().map(|&a| (SlotKey::ArgCopy, ResolvedSrc::Val(a))).collect();
        self.emit_slot_sequence(&slots)?;
        for &a in args {
            self.consume_use(a);
        }
        // 3. The call.
        self.push_reloc(Inst::Jal { offset: 0 }, Some(SReloc::BranchTo(callee.to_string())));
        // 4. Post-call state: every tracked position is stale. Model
        //    the resume point as [1] = callee's JR, [2] = retval0.
        let resume = self.st.cur + 2;
        self.st.cur = resume;
        self.vhigh = self.vhigh.max(resume);
        self.st.pos.clear();
        self.st.pos.insert(Tracked::Val(v), resume - 2);
        Ok(())
    }

    // ---------------------------------------------------------------
    // Frames / shuffles.

    fn resolve_slots(
        &self,
        pred: Block,
        succ: Block,
        frame: &[SlotSrc],
    ) -> CResult<Vec<(SlotKey, ResolvedSrc)>> {
        let mut out = Vec::with_capacity(frame.len());
        for slot in frame {
            match *slot {
                SlotSrc::RetAddr => out.push((SlotKey::Tracked(Tracked::RetAddr), ResolvedSrc::RetAddr)),
                SlotSrc::Val(v) => {
                    if let InstData::Phi(phi_args) = self.f.inst(v) {
                        if self.def_block.get(&v) == Some(&succ) {
                            let (_, u) = phi_args
                                .iter()
                                .find(|(p, _)| *p == pred)
                                .ok_or_else(|| CodegenError::Internal(format!("phi {v} missing edge {pred}")))?;
                            out.push((SlotKey::Tracked(Tracked::Val(v)), ResolvedSrc::Val(*u)));
                            continue;
                        }
                    }
                    out.push((SlotKey::Tracked(Tracked::Val(v)), ResolvedSrc::Val(v)));
                }
            }
        }
        Ok(out)
    }

    /// Emits a contiguous sequence of single producer instructions,
    /// one per slot (a merge-frame shuffle or a call-argument
    /// arrangement). Performs the pre-pass that guarantees every
    /// source is producible by exactly one instruction within the
    /// distance bound, then emits with snapshot positions (slot
    /// producers read pre-shuffle values, which makes phi permutations
    /// correct).
    fn emit_slot_sequence(&mut self, slots: &[(SlotKey, ResolvedSrc)]) -> CResult<()> {
        let k = slots.len() as i64;
        if k >= self.maxd() - 12 {
            return Err(CodegenError::FrameTooLarge {
                func: self.f.name.clone(),
                live: slots.len(),
                max_distance: self.opts.max_distance,
            });
        }
        // Pre-pass: make every source producible in one instruction.
        for round in 0..16 {
            let len_before = self.items.len();
            let mut emitted = false;
            for (_, src) in slots {
                match *src {
                    ResolvedSrc::RetAddr => {
                        let t = Tracked::RetAddr;
                        if let Some(&p) = self.st.pos.get(&t) {
                            if self.st.cur + k - p > self.maxd() - 2 {
                                self.relay(t)?;
                                emitted = true;
                            }
                        } else if self.st.spilled.contains(&t) {
                            // LD in slot needs the frame base close.
                            if self.fb_needs_refresh(k) {
                                self.ensure_fb(k + 4)?;
                                emitted = true;
                            }
                        } else {
                            return internal("return address neither tracked nor spilled");
                        }
                    }
                    ResolvedSrc::Val(u) => {
                        if self.is_zero_const(u) {
                            continue;
                        }
                        if self.sink_set.contains(&u) {
                            // Operands of the sunk producer must be close.
                            let ops = self.operands_of(u);
                            for op in ops {
                                if self.is_zero_const(op) {
                                    continue;
                                }
                                self.ensure_val(op, 4)?;
                                if let Some(&p) = self.st.pos.get(&Tracked::Val(op)) {
                                    if self.st.cur + k - p > self.maxd() - 2 {
                                        self.relay(Tracked::Val(op))?;
                                        emitted = true;
                                    }
                                }
                            }
                            if matches!(self.f.inst(u), InstData::SlotAddr(_)) && self.fb_needs_refresh(k) {
                                self.ensure_fb(k + 4)?;
                                emitted = true;
                            }
                            continue;
                        }
                        let t = Tracked::Val(u);
                        if let Some(&p) = self.st.pos.get(&t) {
                            if self.st.cur + k - p > self.maxd() - 2 {
                                self.relay(t)?;
                                emitted = true;
                            }
                        } else if self.st.spilled.contains(&t) {
                            if self.fb_needs_refresh(k) {
                                self.ensure_fb(k + 4)?;
                                emitted = true;
                            }
                        } else if let InstData::Const(c) = self.f.inst(u) {
                            if !(-32768..=32767).contains(c) {
                                self.materialize_const(u, *c)?;
                                emitted = true;
                            }
                        } else if self.is_rematerializable(u) {
                            self.ensure_val(u, k + 4)?;
                            emitted = true;
                        } else {
                            return internal(format!("slot source {u} unavailable in {}", self.f.name));
                        }
                    }
                }
            }
            emitted = emitted || self.items.len() != len_before;
            if !emitted {
                break;
            }
            if round == 15 {
                return internal("slot pre-pass did not converge");
            }
        }
        // Snapshot and emit exactly one instruction per slot.
        let maxd = self.maxd();
        let snap_cur = self.st.cur;
        let snap_pos = self.st.pos.clone();
        let dist_from = move |pos_map: &HashMap<Tracked, i64>, t: Tracked, at: i64| -> CResult<Dist> {
            let p = pos_map
                .get(&t)
                .copied()
                .ok_or_else(|| CodegenError::Internal(format!("snapshot missing {t:?}")))?;
            let d = at - p;
            if d < 1 || d > maxd {
                return internal(format!("slot distance {d} out of range"));
            }
            Ok(Dist::of(d as u32))
        };
        let mut updates: Vec<(SlotKey, i64)> = Vec::new();
        for (i, (key, src)) in slots.iter().enumerate() {
            let at = snap_cur + i as i64;
            debug_assert_eq!(at, self.st.cur);
            match *src {
                ResolvedSrc::RetAddr => {
                    let t = Tracked::RetAddr;
                    if snap_pos.contains_key(&t) {
                        let d = dist_from(&snap_pos, t, at)?;
                        self.push(Inst::Rmov { s: d });
                    } else {
                        let off = self.spill_off[&t];
                        let dfb = dist_from(&snap_pos, Tracked::FrameBase, at)?;
                        self.push(Inst::Ld { width: MemWidth::W, addr: dfb, offset: off as i16 });
                    }
                }
                ResolvedSrc::Val(u) => {
                    if self.is_zero_const(u) {
                        self.push(Inst::Rmov { s: Dist::ZERO });
                    } else if self.sink_set.contains(&u) {
                        self.emit_sunk_single(u, &snap_pos, at)?;
                        updates.push((SlotKey::Tracked(Tracked::Val(u)), at));
                    } else if snap_pos.contains_key(&Tracked::Val(u)) {
                        let d = dist_from(&snap_pos, Tracked::Val(u), at)?;
                        self.push(Inst::Rmov { s: d });
                    } else if self.st.spilled.contains(&Tracked::Val(u)) {
                        let off = self.spill_off[&Tracked::Val(u)];
                        let dfb = dist_from(&snap_pos, Tracked::FrameBase, at)?;
                        self.push(Inst::Ld { width: MemWidth::W, addr: dfb, offset: off as i16 });
                    } else if let InstData::Const(c) = self.f.inst(u) {
                        self.push(Inst::AluImm { op: AluImmOp::Addi, s1: Dist::ZERO, imm: *c as i16 });
                    } else {
                        return internal(format!("slot {u} not producible"));
                    }
                }
            }
            updates.push((*key, at));
        }
        for (key, p) in updates {
            match key {
                SlotKey::Tracked(t) => {
                    self.st.pos.insert(t, p);
                }
                SlotKey::ArgCopy => {}
            }
        }
        for (_, src) in slots {
            if let ResolvedSrc::Val(u) = src {
                self.sink_set.remove(u);
            }
        }
        Ok(())
    }

    fn fb_needs_refresh(&self, k: i64) -> bool {
        match self.st.pos.get(&Tracked::FrameBase) {
            Some(&p) => self.st.cur + k - p > self.maxd() - 2,
            None => true,
        }
    }

    fn operands_of(&self, v: Value) -> Vec<Value> {
        let mut ops = Vec::new();
        self.f.inst(v).for_each_operand(|o| ops.push(o));
        ops
    }

    /// Emits the (single) real producer instruction for a sunk value,
    /// reading operands via snapshot positions.
    fn emit_sunk_single(&mut self, u: Value, snap: &HashMap<Tracked, i64>, at: i64) -> CResult<()> {
        let maxd = self.maxd();
        let sdist = |t: Tracked| -> CResult<Dist> {
            let p = snap
                .get(&t)
                .copied()
                .ok_or_else(|| CodegenError::Internal(format!("sunk operand {t:?} missing")))?;
            let d = at - p;
            if d < 1 || d > maxd {
                return internal(format!("sunk operand distance {d} out of range"));
            }
            Ok(Dist::of(d as u32))
        };
        let inst = match self.f.inst(u).clone() {
            InstData::Bin { op, a, b } => {
                let plan = self
                    .bin_single_plan(op, a, b)
                    .ok_or_else(|| CodegenError::Internal("sunk value lost its single plan".into()))?;
                let vdist = |v: Value| -> CResult<Dist> {
                    if matches!(self.f.inst(v), InstData::Const(0)) {
                        Ok(Dist::ZERO)
                    } else {
                        sdist(Tracked::Val(v))
                    }
                };
                match plan {
                    BinPlan::Imm { op, a, imm } => Inst::AluImm { op, s1: vdist(a)?, imm },
                    BinPlan::Reg { op, a, b } => Inst::Alu { op, s1: vdist(a)?, s2: vdist(b)? },
                }
            }
            InstData::SlotAddr(s) => {
                let dfb = sdist(Tracked::FrameBase)?;
                let off = self.f.slot_offset(s);
                Inst::AluImm { op: AluImmOp::Addi, s1: dfb, imm: off as i16 }
            }
            other => return internal(format!("cannot sink {other:?}")),
        };
        self.push(inst);
        Ok(())
    }

    /// Entry state of a merge block, defined purely by its frame: the
    /// last `k + 1` dynamic instructions before the block were the `k`
    /// slot producers plus one control instruction.
    fn merge_entry_state(&mut self, b: Block) -> CResult<PathState> {
        let frame = self
            .info
            .frames
            .get(&b)
            .cloned()
            .ok_or_else(|| CodegenError::Internal(format!("no in-state and no frame for {b}")))?;
        let k = frame.len() as i64;
        let cur = self.vhigh + 16;
        self.vhigh = cur;
        let mut pos = HashMap::new();
        for (i, slot) in frame.iter().enumerate() {
            let p = cur - (k - i as i64 + 1);
            match slot {
                SlotSrc::RetAddr => pos.insert(Tracked::RetAddr, p),
                SlotSrc::Val(v) => pos.insert(Tracked::Val(*v), p),
            };
        }
        let mut spilled: HashSet<Tracked> = self.merge_spills.get(&b).cloned().unwrap_or_default();
        if self.prologue_spilled_retaddr {
            spilled.insert(Tracked::RetAddr);
        }
        if let Some(res) = self.info.stack_resident.get(&b) {
            for &v in res {
                spilled.insert(Tracked::Val(v));
            }
        }
        Ok(PathState { cur, pos, spilled })
    }

    // ---------------------------------------------------------------
    // Terminators.

    fn next_in_layout(&self, b: Block, t: Block) -> bool {
        self.order_idx.get(&b).and_then(|i| self.order.get(i + 1)) == Some(&t)
    }

    fn emit_terminator(&mut self, b: Block, _idx: usize) -> CResult<()> {
        match self.f.block(b).term.clone() {
            Terminator::Br(t) => {
                if let Some(frame) = self.info.frames.get(&t).cloned() {
                    // Spill values that become stack-resident in the
                    // target region (loop entry edges).
                    if let Some(res) = self.info.stack_resident.get(&t).cloned() {
                        let mut vs: Vec<Value> = res
                            .into_iter()
                            .filter(|v| self.live.live_out(b).contains(v))
                            .collect();
                        vs.sort_unstable();
                        for v in vs {
                            if self.is_zero_const(v) || self.is_rematerializable(v) {
                                continue;
                            }
                            if !self.st.spilled.contains(&Tracked::Val(v)) {
                                self.ensure_val(v, 8)?;
                                self.spill(Tracked::Val(v))?;
                                self.age_sweep()?;
                            }
                        }
                    }
                    let slots = self.resolve_slots(b, t, &frame)?;
                    self.emit_slot_sequence(&slots)?;
                    // Record the spill facts this edge provides; the
                    // merge keeps the intersection over its edges.
                    match self.merge_spills.entry(t) {
                        std::collections::hash_map::Entry::Occupied(mut o) => {
                            let inter: HashSet<Tracked> =
                                o.get().intersection(&self.st.spilled).copied().collect();
                            *o.get_mut() = inter;
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(self.st.spilled.clone());
                        }
                    }
                    // Exactly one trailing control instruction.
                    if self.next_in_layout(b, t) {
                        self.push(Inst::Nop);
                    } else {
                        self.push_reloc(Inst::J { offset: 0 }, Some(SReloc::BranchTo(Self::label_name(t))));
                    }
                } else {
                    // Single-predecessor target: pass the state along.
                    if !self.next_in_layout(b, t) {
                        self.push_reloc(Inst::J { offset: 0 }, Some(SReloc::BranchTo(Self::label_name(t))));
                    }
                    self.in_states.insert(t, self.st.clone());
                }
                Ok(())
            }
            Terminator::CondBr { cond, then_bb, else_bb } => {
                let d = self.read1(cond)?;
                // After critical-edge splitting both successors have a
                // single predecessor: no shuffles on these edges.
                if self.next_in_layout(b, else_bb) {
                    self.push_reloc(
                        Inst::Bnz { s: d, offset: 0 },
                        Some(SReloc::BranchTo(Self::label_name(then_bb))),
                    );
                    self.in_states.insert(then_bb, self.st.clone());
                    self.in_states.insert(else_bb, self.st.clone());
                } else if self.next_in_layout(b, then_bb) {
                    self.push_reloc(
                        Inst::Bez { s: d, offset: 0 },
                        Some(SReloc::BranchTo(Self::label_name(else_bb))),
                    );
                    self.in_states.insert(then_bb, self.st.clone());
                    self.in_states.insert(else_bb, self.st.clone());
                } else {
                    self.push_reloc(
                        Inst::Bez { s: d, offset: 0 },
                        Some(SReloc::BranchTo(Self::label_name(else_bb))),
                    );
                    // Taken path sees only the BEZ.
                    self.in_states.insert(else_bb, self.st.clone());
                    self.push_reloc(Inst::J { offset: 0 }, Some(SReloc::BranchTo(Self::label_name(then_bb))));
                    self.in_states.insert(then_bb, self.st.clone());
                }
                Ok(())
            }
            Terminator::Ret(v) => {
                // Return address first (may need the frame).
                if !self.st.pos.contains_key(&Tracked::RetAddr) {
                    if self.st.spilled.contains(&Tracked::RetAddr) {
                        self.reload(Tracked::RetAddr)?;
                    } else {
                        return internal("return address lost at epilogue");
                    }
                }
                if let Some(v) = v {
                    if !self.is_zero_const(v) {
                        self.ensure_val(v, 6)?;
                    }
                    self.consume_use(v);
                }
                // Restore SP.
                if !self.skip_frame {
                    let idx = self.items.len();
                    self.push(Inst::SpAdd { imm: 0 });
                    self.spadd_fixups.push((idx, 1));
                }
                // retval0 immediately before JR.
                if self.f.returns_value {
                    let d = match v {
                        Some(v) if !self.is_zero_const(v) => self.dist_to(Tracked::Val(v))?,
                        _ => Dist::ZERO,
                    };
                    self.push(Inst::Rmov { s: d });
                }
                let dra = self.dist_to(Tracked::RetAddr)?;
                self.push(Inst::Jr { s: dra });
                Ok(())
            }
            Terminator::Unreachable => internal("unreachable terminator survived to codegen"),
        }
    }
}

/// How a slot's new producer position is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKey {
    /// A frame member: refresh this tracked position.
    Tracked(Tracked),
    /// A call argument: the copy is consumed by the callee, nothing to
    /// track.
    ArgCopy,
}

/// Where a slot's value comes from on the current edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResolvedSrc {
    Val(Value),
    RetAddr,
}

/// A single-instruction plan for a binary operation.
#[derive(Debug, Clone, Copy)]
enum BinPlan {
    Imm { op: AluImmOp, a: Value, imm: i16 },
    Reg { op: AluOp, a: Value, b: Value },
}

