//! Block-entry frame computation: the ordered set of values every
//! predecessor of a merging block must produce at fixed positions
//! (the paper's "distance fixing on merging flow", Section IV-C2),
//! plus the RE+ analysis of values that live in the stack across
//! loops instead (Section IV-D, Figure 10c).

use std::collections::{HashMap, HashSet};

use straight_ir::analysis::{Cfg, Dominators, Liveness, Loops};
use straight_ir::{Block, Function, Value};

/// One entry in a block frame: a value every predecessor must have
/// produced at the same distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotSrc {
    /// An IR value (for a phi of the merge block, each predecessor
    /// produces its edge-specific input).
    Val(Value),
    /// The function's return address (the value of the entry `JAL`).
    /// Frame member only in RAW mode; RE+ keeps it in the stack.
    RetAddr,
}

/// Per-function frame/residency analysis results.
#[derive(Debug)]
pub struct FrameInfo {
    /// Ordered frames for merge blocks (blocks with ≥ 2 predecessors).
    pub frames: HashMap<Block, Vec<SlotSrc>>,
    /// RE+ only: values that stay in the stack frame while control is
    /// inside the given block (excluded from its frame).
    pub stack_resident: HashMap<Block, HashSet<Value>>,
    /// Values resident anywhere (need a spill slot and a store when
    /// entering the region).
    #[allow(dead_code)] // consumed by analysis tests and diagnostics
    pub any_resident: HashSet<Value>,
}

/// Computes frames for every merge block.
///
/// Frame order: `RetAddr` first (RAW only), then non-phi live-ins by
/// value id, then the block's phis by value id. Any deterministic
/// order works; this one keeps loop-carried phis nearest to the block
/// entry, matching the paper's Figure 9 shape.
pub fn compute(
    f: &Function,
    cfg: &Cfg,
    live: &Liveness,
    loops: &Loops,
    dom: &Dominators,
    redundancy_elimination: bool,
) -> FrameInfo {
    let _ = dom;
    let mut stack_resident: HashMap<Block, HashSet<Value>> = HashMap::new();
    let mut any_resident: HashSet<Value> = HashSet::new();

    if redundancy_elimination {
        // A value live into a loop header, neither defined nor used
        // anywhere in the loop, only transits the loop: store it in
        // the stack frame for the duration (Figure 10c).
        for l in &loops.loops {
            let defined_or_used: HashSet<Value> = {
                let mut s = HashSet::new();
                for &b in &l.blocks {
                    for &v in &f.block(b).insts {
                        s.insert(v);
                        f.inst(v).for_each_operand(|op| {
                            s.insert(op);
                        });
                    }
                    f.block(b).term.for_each_operand(|op| {
                        s.insert(op);
                    });
                }
                s
            };
            for &v in live.live_in(l.header) {
                // Constants and addresses re-materialize for free;
                // only real computed values are worth stack storage.
                let remat = matches!(
                    f.inst(v),
                    straight_ir::InstData::Const(_)
                        | straight_ir::InstData::GlobalAddr(_)
                        | straight_ir::InstData::SlotAddr(_)
                );
                if !remat && !defined_or_used.contains(&v) {
                    for &b in &l.blocks {
                        stack_resident.entry(b).or_default().insert(v);
                    }
                    any_resident.insert(v);
                }
            }
        }
    }

    let mut frames = HashMap::new();
    for b in f.block_ids() {
        if cfg.preds(b).len() < 2 || !cfg.is_reachable(b) {
            continue;
        }
        let resident = stack_resident.get(&b);
        let mut members: Vec<SlotSrc> = Vec::new();
        if !redundancy_elimination {
            members.push(SlotSrc::RetAddr);
        }
        let mut live_ins: Vec<Value> = live
            .live_in(b)
            .iter()
            .copied()
            .filter(|v| resident.is_none_or(|r| !r.contains(v)))
            .collect();
        live_ins.sort_unstable();
        members.extend(live_ins.into_iter().map(SlotSrc::Val));
        let mut phis: Vec<Value> =
            f.block(b).insts.iter().copied().filter(|&v| f.inst(v).is_phi()).collect();
        phis.sort_unstable();
        members.extend(phis.into_iter().map(SlotSrc::Val));
        frames.insert(b, members);
    }
    FrameInfo { frames, stack_resident, any_resident }
}

#[cfg(test)]
mod tests {
    use super::*;
    use straight_ir::compile_source;

    fn analyse(src: &str, re: bool) -> (Function, FrameInfo) {
        let mut m = compile_source(src).unwrap();
        for f in &mut m.funcs {
            straight_ir::passes::split_critical_edges(f);
        }
        let f = m.funcs.into_iter().next().unwrap();
        let cfg = Cfg::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        let dom = Dominators::compute(&f, &cfg);
        let loops = Loops::compute(&f, &cfg, &dom);
        let info = compute(&f, &cfg, &live, &loops, &dom, re);
        (f, info)
    }

    #[test]
    fn loop_header_gets_a_frame_with_phi() {
        let (f, info) = analyse(
            "int sum(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }",
            true,
        );
        // Some merge block must exist (loop header) and its frame must
        // contain phis.
        let has_phi_frame = info.frames.values().any(|frame| {
            frame.iter().any(|s| matches!(s, SlotSrc::Val(v) if f.inst(*v).is_phi()))
        });
        assert!(has_phi_frame, "{:?}", info.frames);
    }

    #[test]
    fn raw_frames_carry_retaddr() {
        let (_, info) = analyse(
            "int sum(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }",
            false,
        );
        for frame in info.frames.values() {
            assert_eq!(frame[0], SlotSrc::RetAddr);
        }
    }

    #[test]
    fn re_plus_marks_loop_live_through_values_resident() {
        // `a` is computed before the loop and only used after it: it
        // transits the loop and should be stack-resident under RE+.
        let (f, info) = analyse(
            "int f(int n) {
                 int a = n * 17;
                 int s = 0;
                 int i;
                 for (i = 0; i < n; i++) s += i;
                 return s + a;
             }",
            true,
        );
        assert!(!info.any_resident.is_empty(), "expected a resident value: {f}");
        // Resident values never appear in frames of their region.
        for (b, frame) in &info.frames {
            if let Some(res) = info.stack_resident.get(b) {
                for s in frame {
                    if let SlotSrc::Val(v) = s {
                        assert!(!res.contains(v));
                    }
                }
            }
        }
    }

    #[test]
    fn raw_mode_has_no_residents() {
        let (_, info) = analyse(
            "int f(int n) {
                 int a = n * 17;
                 int s = 0;
                 int i;
                 for (i = 0; i < n; i++) s += i;
                 return s + a;
             }",
            false,
        );
        assert!(info.any_resident.is_empty());
    }
}
