//! Instruction selection: SSA IR → MIR over virtual registers.

use std::collections::HashMap;

use straight_isa::{AluImmOp, AluOp};
use straight_riscv::BranchOp;
use straight_ir::analysis::Cfg;
use straight_ir::{BinOp, Block, Function, InstData, Module, Terminator, Value};

use super::{MBlock, MFunc, MInst, VReg};
use crate::CodegenError;

type CResult<T> = Result<T, CodegenError>;

pub(crate) struct Isel<'a> {
    f: &'a Function,
    module: &'a Module,
    order: Vec<Block>,
    next_vreg: VReg,
    use_counts: HashMap<Value, u32>,
    out: Vec<MBlock>,
    cur: Vec<MInst>,
}

/// Lowers one function to MIR.
pub(crate) fn lower_function(f: &Function, module: &Module) -> CResult<MFunc> {
    let cfg = Cfg::compute(f);
    let order: Vec<Block> = cfg.rpo().to_vec();
    let mut use_counts: HashMap<Value, u32> = HashMap::new();
    for b in f.block_ids() {
        for &v in &f.block(b).insts {
            f.inst(v).for_each_operand(|op| *use_counts.entry(op).or_insert(0) += 1);
        }
        f.block(b).term.for_each_operand(|op| *use_counts.entry(op).or_insert(0) += 1);
    }
    let mut isel = Isel {
        f,
        module,
        order: order.clone(),
        next_vreg: f.insts.len() as VReg,
        use_counts,
        out: Vec::new(),
        cur: Vec::new(),
    };
    isel.run()?;
    Ok(MFunc { name: f.name.clone(), blocks: isel.out, ir_frame: f.frame_size(), next_vreg: isel.next_vreg })
}

impl<'a> Isel<'a> {
    fn vreg(&self, v: Value) -> VReg {
        v.index() as VReg
    }

    fn temp(&mut self) -> VReg {
        let t = self.next_vreg;
        self.next_vreg += 1;
        t
    }

    fn emit(&mut self, i: MInst) {
        self.cur.push(i);
    }

    fn label(b: Block) -> String {
        format!("{b}")
    }

    fn run(&mut self) -> CResult<()> {
        if self.f.num_params > 8 {
            return Err(CodegenError::TooManyArgs { func: self.f.name.clone() });
        }
        for (i, b) in self.order.clone().into_iter().enumerate() {
            self.cur = Vec::new();
            if i == 0 {
                // Bind incoming argument registers to their vregs.
                for v in self.f.block(b).insts.clone() {
                    if let InstData::Param(idx) = self.f.inst(v) {
                        self.emit(MInst::GetArg { rd: self.vreg(v), index: *idx });
                    }
                }
            }
            let next = self.order.get(i + 1).copied();
            for v in self.f.block(b).insts.clone() {
                let inst = self.f.inst(v).clone();
                if inst.is_phi() {
                    continue;
                }
                self.lower_inst(v, &inst, b)?;
            }
            self.lower_terminator(b, next)?;
            let label = if i == 0 { self.f.name.clone() } else { Self::label(b) };
            let insts = std::mem::take(&mut self.cur);
            self.out.push(MBlock { label, insts });
        }
        Ok(())
    }

    fn const_of(&self, v: Value) -> Option<i32> {
        match self.f.inst(v) {
            InstData::Const(c) => Some(*c),
            _ => None,
        }
    }

    fn lower_inst(&mut self, v: Value, inst: &InstData, _b: Block) -> CResult<()> {
        let rd = self.vreg(v);
        match inst {
            InstData::Param(_) => Ok(()), // bound by the prologue
            InstData::Const(c) => {
                self.emit(MInst::Li { rd, imm: *c });
                Ok(())
            }
            InstData::Bin { op, a, b } => {
                // Fused into the branch? Then skip here.
                if self.branch_fusable(v) {
                    return Ok(());
                }
                self.lower_bin(rd, *op, *a, *b)
            }
            InstData::Load { width, addr } => {
                self.emit(MInst::Load { width: *width, rd, rs1: self.vreg(*addr), offset: 0 });
                Ok(())
            }
            InstData::Store { width, val, addr } => {
                self.emit(MInst::Store { width: *width, rs2: self.vreg(*val), rs1: self.vreg(*addr), offset: 0 });
                // The store's result is its value operand; forward it.
                if self.use_counts.get(&v).copied().unwrap_or(0) > 0 {
                    self.emit(MInst::Mv { rd, rs: self.vreg(*val) });
                }
                Ok(())
            }
            InstData::Call { callee, args } => {
                if args.len() > 8 {
                    return Err(CodegenError::TooManyArgs { func: self.f.name.clone() });
                }
                let args: Vec<VReg> = args.iter().map(|a| self.vreg(*a)).collect();
                let dst = if self.f_returns_value(callee) || self.use_counts.get(&v).copied().unwrap_or(0) > 0 {
                    Some(rd)
                } else {
                    None
                };
                self.emit(MInst::Call { symbol: callee.clone(), args, dst });
                Ok(())
            }
            InstData::Sys { op, args } => {
                self.emit(MInst::Sys { code: op.code(), arg: self.vreg(args[0]), dst: rd });
                Ok(())
            }
            InstData::GlobalAddr(g) => {
                self.emit(MInst::La { rd, symbol: self.module.global(*g).name.clone() });
                Ok(())
            }
            InstData::SlotAddr(s) => {
                self.emit(MInst::FrameAddr { rd, ir_off: self.f.slot_offset(*s) });
                Ok(())
            }
            InstData::Phi(_) => Ok(()),
            InstData::Copy(_) => Err(CodegenError::Internal("unresolved copy in riscv isel".into())),
        }
    }

    fn f_returns_value(&self, callee: &str) -> bool {
        self.module.func(callee).map(|f| f.returns_value).unwrap_or(false)
    }

    fn lower_bin(&mut self, rd: VReg, op: BinOp, a: Value, b: Value) -> CResult<()> {
        use BinOp::*;
        let va = self.vreg(a);
        let vb = self.vreg(b);
        // Immediate forms (12-bit signed).
        if let Some(cb) = self.const_of(b) {
            let fits = (-2048..=2047).contains(&cb);
            let sh = (0..32).contains(&cb);
            let plan = match op {
                Add if fits => Some((AluImmOp::Addi, cb)),
                Sub if (-2047..=2048).contains(&cb) => Some((AluImmOp::Addi, -cb)),
                And if fits => Some((AluImmOp::Andi, cb)),
                Or if fits => Some((AluImmOp::Ori, cb)),
                Xor if fits => Some((AluImmOp::Xori, cb)),
                Shl if sh => Some((AluImmOp::Slli, cb)),
                ShrA if sh => Some((AluImmOp::Srai, cb)),
                ShrL if sh => Some((AluImmOp::Srli, cb)),
                SLt if fits => Some((AluImmOp::Slti, cb)),
                ULt if fits => Some((AluImmOp::Sltiu, cb)),
                _ => None,
            };
            if let Some((iop, imm)) = plan {
                self.emit(MInst::OpImm { op: iop, rd, rs1: va, imm });
                return Ok(());
            }
            if cb == 0 && op == Eq {
                self.emit(MInst::OpImm { op: AluImmOp::Sltiu, rd, rs1: va, imm: 1 });
                return Ok(());
            }
            if cb == 0 && op == Ne {
                let zero = self.zero();
                self.emit(MInst::Op { op: AluOp::Sltu, rd, rs1: zero, rs2: va });
                return Ok(());
            }
        }
        if self.const_of(a).is_some() && self.const_of(b).is_none() && op.is_commutative() {
            // Constant on the left: swap. (Never swap const-const —
            // that would recurse forever; the register path below
            // materializes both.)
            return self.lower_bin(rd, op, b, a);
        }
        let reg = |isel: &mut Self, aop: AluOp, x: VReg, y: VReg| {
            isel.emit(MInst::Op { op: aop, rd, rs1: x, rs2: y });
        };
        match op {
            Add => reg(self, AluOp::Add, va, vb),
            Sub => reg(self, AluOp::Sub, va, vb),
            Mul => reg(self, AluOp::Mul, va, vb),
            Div => reg(self, AluOp::Div, va, vb),
            Rem => reg(self, AluOp::Rem, va, vb),
            DivU => reg(self, AluOp::Divu, va, vb),
            RemU => reg(self, AluOp::Remu, va, vb),
            And => reg(self, AluOp::And, va, vb),
            Or => reg(self, AluOp::Or, va, vb),
            Xor => reg(self, AluOp::Xor, va, vb),
            Shl => reg(self, AluOp::Sll, va, vb),
            ShrA => reg(self, AluOp::Sra, va, vb),
            ShrL => reg(self, AluOp::Srl, va, vb),
            SLt => reg(self, AluOp::Slt, va, vb),
            ULt => reg(self, AluOp::Sltu, va, vb),
            SGt => reg(self, AluOp::Slt, vb, va),
            UGt => reg(self, AluOp::Sltu, vb, va),
            Eq => {
                let t = self.temp();
                self.emit(MInst::Op { op: AluOp::Xor, rd: t, rs1: va, rs2: vb });
                self.emit(MInst::OpImm { op: AluImmOp::Sltiu, rd, rs1: t, imm: 1 });
            }
            Ne => {
                let t = self.temp();
                let zero = self.zero();
                self.emit(MInst::Op { op: AluOp::Xor, rd: t, rs1: va, rs2: vb });
                self.emit(MInst::Op { op: AluOp::Sltu, rd, rs1: zero, rs2: t });
            }
            SLe => {
                let t = self.temp();
                self.emit(MInst::Op { op: AluOp::Slt, rd: t, rs1: vb, rs2: va });
                self.emit(MInst::OpImm { op: AluImmOp::Xori, rd, rs1: t, imm: 1 });
            }
            SGe => {
                let t = self.temp();
                self.emit(MInst::Op { op: AluOp::Slt, rd: t, rs1: va, rs2: vb });
                self.emit(MInst::OpImm { op: AluImmOp::Xori, rd, rs1: t, imm: 1 });
            }
            ULe => {
                let t = self.temp();
                self.emit(MInst::Op { op: AluOp::Sltu, rd: t, rs1: vb, rs2: va });
                self.emit(MInst::OpImm { op: AluImmOp::Xori, rd, rs1: t, imm: 1 });
            }
            UGe => {
                let t = self.temp();
                self.emit(MInst::Op { op: AluOp::Sltu, rd: t, rs1: va, rs2: vb });
                self.emit(MInst::OpImm { op: AluImmOp::Xori, rd, rs1: t, imm: 1 });
            }
        }
        Ok(())
    }

    /// A vreg holding constant zero (`x0` is materialized by `Li 0`;
    /// the allocator rewrites `Li {imm: 0}` to reads of `zero`).
    fn zero(&mut self) -> VReg {
        let t = self.temp();
        self.emit(MInst::Li { rd: t, imm: 0 });
        t
    }

    /// True when `v` is a comparison used exactly once, by this
    /// block's conditional branch — lowered directly to a fused
    /// RISC-V branch.
    fn branch_fusable(&self, v: Value) -> bool {
        if self.use_counts.get(&v).copied().unwrap_or(0) != 1 {
            return false;
        }
        let Some(b) = self.block_of_branch_user(v) else { return false };
        let InstData::Bin { op, .. } = self.f.inst(v) else { return false };
        let _ = b;
        matches!(
            op,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::SLt
                | BinOp::SLe
                | BinOp::SGt
                | BinOp::SGe
                | BinOp::ULt
                | BinOp::ULe
                | BinOp::UGt
                | BinOp::UGe
        )
    }

    /// If `v`'s single use is the CondBr of its own block, return that
    /// block.
    fn block_of_branch_user(&self, v: Value) -> Option<Block> {
        for b in self.f.block_ids() {
            if let Terminator::CondBr { cond, .. } = &self.f.block(b).term {
                if *cond == v && self.f.block(b).insts.contains(&v) {
                    return Some(b);
                }
            }
        }
        None
    }

    /// Lowers phi moves for the edge `b -> succ` as a parallel copy.
    fn emit_phi_moves(&mut self, b: Block, succ: Block) {
        let mut moves: Vec<(VReg, VReg)> = Vec::new();
        for &p in &self.f.block(succ).insts {
            if let InstData::Phi(args) = self.f.inst(p) {
                if let Some((_, src)) = args.iter().find(|(pb, _)| *pb == b) {
                    let (dst, src) = (self.vreg(p), self.vreg(*src));
                    if dst != src {
                        moves.push((dst, src));
                    }
                }
            }
        }
        if moves.is_empty() {
            return;
        }
        let seq = sequence_parallel_moves(&moves, || self.next_vreg);
        for step in seq {
            match step {
                MoveStep::Copy { dst, src } => self.emit(MInst::Mv { rd: dst, rs: src }),
                MoveStep::UsedTemp => self.next_vreg += 1,
            }
        }
    }

    fn lower_terminator(&mut self, b: Block, next: Option<Block>) -> CResult<()> {
        match self.f.block(b).term.clone() {
            Terminator::Br(t) => {
                self.emit_phi_moves(b, t);
                if next != Some(t) {
                    self.emit(MInst::J { target: Self::label(t) });
                }
                Ok(())
            }
            Terminator::CondBr { cond, then_bb, else_bb } => {
                // After critical-edge splitting, CondBr successors have
                // one predecessor and therefore no phis.
                let (bop, rs1, rs2) = self.branch_condition(cond, b)?;
                if next == Some(then_bb) {
                    // Invert so the branch exits to else.
                    let (iop, rs1, rs2) = invert_branch(bop, rs1, rs2);
                    self.emit(MInst::Branch { op: iop, rs1, rs2, target: Self::label(else_bb) });
                } else {
                    self.emit(MInst::Branch { op: bop, rs1, rs2, target: Self::label(then_bb) });
                    if next != Some(else_bb) {
                        self.emit(MInst::J { target: Self::label(else_bb) });
                    }
                }
                Ok(())
            }
            Terminator::Ret(v) => {
                self.emit(MInst::Ret { val: v.map(|v| self.vreg(v)) });
                Ok(())
            }
            Terminator::Unreachable => Err(CodegenError::Internal("unreachable terminator in isel".into())),
        }
    }

    /// Condition of a branch, fusing a single-use comparison.
    fn branch_condition(&mut self, cond: Value, b: Block) -> CResult<(BranchOp, VReg, VReg)> {
        if self.branch_fusable(cond) && self.f.block(b).insts.contains(&cond) {
            if let InstData::Bin { op, a, b: rb } = self.f.inst(cond).clone() {
                let (va, vb) = (self.vreg(a), self.vreg(rb));
                let fused = match op {
                    BinOp::Eq => Some((BranchOp::Beq, va, vb)),
                    BinOp::Ne => Some((BranchOp::Bne, va, vb)),
                    BinOp::SLt => Some((BranchOp::Blt, va, vb)),
                    BinOp::SGe => Some((BranchOp::Bge, va, vb)),
                    BinOp::SLe => Some((BranchOp::Bge, vb, va)),
                    BinOp::SGt => Some((BranchOp::Blt, vb, va)),
                    BinOp::ULt => Some((BranchOp::Bltu, va, vb)),
                    BinOp::UGe => Some((BranchOp::Bgeu, va, vb)),
                    BinOp::ULe => Some((BranchOp::Bgeu, vb, va)),
                    BinOp::UGt => Some((BranchOp::Bltu, vb, va)),
                    _ => None,
                };
                if let Some(f) = fused {
                    return Ok(f);
                }
            }
        }
        let zero = self.zero();
        Ok((BranchOp::Bne, self.vreg(cond), zero))
    }
}

fn invert_branch(op: BranchOp, rs1: VReg, rs2: VReg) -> (BranchOp, VReg, VReg) {
    match op {
        BranchOp::Beq => (BranchOp::Bne, rs1, rs2),
        BranchOp::Bne => (BranchOp::Beq, rs1, rs2),
        BranchOp::Blt => (BranchOp::Bge, rs1, rs2),
        BranchOp::Bge => (BranchOp::Blt, rs1, rs2),
        BranchOp::Bltu => (BranchOp::Bgeu, rs1, rs2),
        BranchOp::Bgeu => (BranchOp::Bltu, rs1, rs2),
    }
}

/// One step of a sequenced parallel copy.
pub(crate) enum MoveStep {
    /// Emit `dst <- src`.
    Copy { dst: VReg, src: VReg },
    /// The sequencer consumed the fresh temporary it was given.
    UsedTemp,
}

/// Orders a parallel copy so no source is clobbered before it is
/// read, breaking cycles with (at most one) temporary.
pub(crate) fn sequence_parallel_moves(moves: &[(VReg, VReg)], temp: impl Fn() -> VReg) -> Vec<MoveStep> {
    let mut pending: Vec<(VReg, VReg)> = moves.to_vec();
    let mut out = Vec::new();
    while !pending.is_empty() {
        let ready = pending
            .iter()
            .position(|(dst, _)| !pending.iter().any(|(_, src)| src == dst));
        match ready {
            Some(i) => {
                let (dst, src) = pending.remove(i);
                out.push(MoveStep::Copy { dst, src });
            }
            None => {
                // Cycle: rotate through the temporary.
                let t = temp();
                out.push(MoveStep::UsedTemp);
                let (dst, src) = pending[0];
                out.push(MoveStep::Copy { dst: t, src });
                // Redirect any reader of `src`... the cycle member
                // reading `dst`'s old value keeps reading `src`'s copy.
                for (_, s) in pending.iter_mut() {
                    if *s == src {
                        *s = t;
                    }
                }
                pending[0] = (dst, pending[0].1);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(moves: &[(VReg, VReg)], init: &mut HashMap<VReg, i32>) {
        let next = 1000;
        let seq = sequence_parallel_moves(moves, || next);
        for step in seq {
            match step {
                MoveStep::UsedTemp => {}
                MoveStep::Copy { dst, src } => {
                    let v = init[&src];
                    init.insert(dst, v);
                }
            }
        }
    }

    #[test]
    fn parallel_moves_simple_chain() {
        // 1 <- 2, 2 <- 3
        let mut state: HashMap<VReg, i32> = [(1, 10), (2, 20), (3, 30)].into();
        apply(&[(1, 2), (2, 3)], &mut state);
        assert_eq!(state[&1], 20);
        assert_eq!(state[&2], 30);
    }

    #[test]
    fn parallel_moves_swap_cycle() {
        let mut state: HashMap<VReg, i32> = [(1, 10), (2, 20)].into();
        apply(&[(1, 2), (2, 1)], &mut state);
        assert_eq!(state[&1], 20);
        assert_eq!(state[&2], 10);
    }

    #[test]
    fn parallel_moves_three_cycle() {
        let mut state: HashMap<VReg, i32> = [(1, 10), (2, 20), (3, 30)].into();
        apply(&[(1, 2), (2, 3), (3, 1)], &mut state);
        assert_eq!(state[&1], 20);
        assert_eq!(state[&2], 30);
        assert_eq!(state[&3], 10);
    }
}
