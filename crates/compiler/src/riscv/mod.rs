//! The conventional RV32IM back-end for the superscalar baseline.
//!
//! A standard pipeline: SSA IR → virtual-register MIR (phi lowering
//! via parallel moves, compare/branch fusion) → linear-scan register
//! allocation with caller-/callee-saved classes → RV32IM with the
//! standard ABI (`a0`–`a7` arguments, `a0` return, `ra`/`sp`
//! handling, 16-byte aligned frames).

mod isel;
mod regalloc;

use straight_asm::{DataItem, RvProgram};
use straight_ir::{passes, Module};

use crate::CodegenError;

/// A virtual register (one per SSA value plus compiler temporaries).
pub(crate) type VReg = u32;

/// MIR: RV32-shaped instructions over virtual registers, plus the
/// pseudo-ops the register allocator and frame finalization expand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum MInst {
    /// Register–register ALU.
    Op { op: straight_isa::AluOp, rd: VReg, rs1: VReg, rs2: VReg },
    /// Register–immediate ALU (12-bit immediate already validated).
    OpImm { op: straight_isa::AluImmOp, rd: VReg, rs1: VReg, imm: i32 },
    /// Load a 32-bit constant (expands to `lui`+`addi` when needed).
    Li { rd: VReg, imm: i32 },
    /// Load a symbol address (`lui %hi` + `addi %lo`).
    La { rd: VReg, symbol: String },
    /// `rd = sp + (spill_area + ir_off)`; resolved after allocation.
    FrameAddr { rd: VReg, ir_off: u32 },
    /// Memory load from `rs1 + offset`.
    Load { width: straight_isa::MemWidth, rd: VReg, rs1: VReg, offset: i32 },
    /// Memory store of `rs2` to `rs1 + offset`.
    Store { width: straight_isa::MemWidth, rs2: VReg, rs1: VReg, offset: i32 },
    /// Copy.
    Mv { rd: VReg, rs: VReg },
    /// Conditional branch to a local label.
    Branch { op: straight_riscv::BranchOp, rs1: VReg, rs2: VReg, target: String },
    /// Unconditional jump to a local label.
    J { target: String },
    /// Call: moves `args` into `a0..`, `jal ra, symbol`, result in
    /// `dst`.
    Call { symbol: String, args: Vec<VReg>, dst: Option<VReg> },
    /// Environment service: code into `a7`, `arg` into `a0`, `ecall`,
    /// result from `a0`.
    Sys { code: u16, arg: VReg, dst: VReg },
    /// Function return (expands to the epilogue + `jalr zero, ra`).
    Ret { val: Option<VReg> },
    /// Bind the `index`-th incoming argument register to `rd`
    /// (expanded into the prologue's parallel move).
    GetArg { rd: VReg, index: u32 },
}

impl MInst {
    /// Virtual registers read by this instruction.
    pub(crate) fn uses(&self) -> Vec<VReg> {
        match self {
            MInst::Op { rs1, rs2, .. } => vec![*rs1, *rs2],
            MInst::OpImm { rs1, .. } | MInst::Load { rs1, .. } => vec![*rs1],
            MInst::Store { rs2, rs1, .. } => vec![*rs1, *rs2],
            MInst::Mv { rs, .. } => vec![*rs],
            MInst::Branch { rs1, rs2, .. } => vec![*rs1, *rs2],
            MInst::Call { args, .. } => args.clone(),
            MInst::Sys { arg, .. } => vec![*arg],
            MInst::Ret { val } => val.iter().copied().collect(),
            MInst::Li { .. } | MInst::La { .. } | MInst::FrameAddr { .. } | MInst::J { .. } | MInst::GetArg { .. } => {
                vec![]
            }
        }
    }

    /// Virtual register written by this instruction.
    pub(crate) fn def(&self) -> Option<VReg> {
        match self {
            MInst::Op { rd, .. }
            | MInst::OpImm { rd, .. }
            | MInst::Li { rd, .. }
            | MInst::La { rd, .. }
            | MInst::FrameAddr { rd, .. }
            | MInst::Load { rd, .. }
            | MInst::Mv { rd, .. }
            | MInst::GetArg { rd, .. } => Some(*rd),
            MInst::Call { dst, .. } => *dst,
            MInst::Sys { dst, .. } => Some(*dst),
            MInst::Store { .. } | MInst::Branch { .. } | MInst::J { .. } | MInst::Ret { .. } => None,
        }
    }

    /// True for instructions that transfer to a callee (allocation
    /// treats live ranges crossing these as needing callee-saved
    /// registers).
    pub(crate) fn is_call(&self) -> bool {
        matches!(self, MInst::Call { .. } | MInst::Sys { .. })
    }
}

/// A MIR basic block: a label plus instructions; control falls
/// through to the next block unless the last instruction is `J` or
/// `Ret`.
#[derive(Debug, Clone, Default)]
pub(crate) struct MBlock {
    pub label: String,
    pub insts: Vec<MInst>,
}

/// A MIR function before register allocation.
#[derive(Debug, Clone)]
pub(crate) struct MFunc {
    pub name: String,
    pub blocks: Vec<MBlock>,
    pub ir_frame: u32,
    #[allow(dead_code)]
    pub next_vreg: VReg,
}

/// Compiles an IR module to a linkable RV32IM program.
///
/// # Errors
///
/// Returns [`CodegenError`] on unsupported shapes (e.g. more than 8
/// call arguments) or internal invariant violations.
pub fn compile_riscv(module: &Module) -> Result<RvProgram, CodegenError> {
    let mut module = module.clone();
    for f in &mut module.funcs {
        passes::split_critical_edges(f);
    }
    let mut prog = RvProgram::default();
    for g in &module.globals {
        prog.data.push(DataItem { name: g.name.clone(), size: g.size, align: g.align, init: g.init.clone() });
    }
    for f in &module.funcs {
        let mfunc = isel::lower_function(f, &module)?;
        let rvfunc = regalloc::allocate_and_finalize(mfunc)?;
        prog.funcs.push(rvfunc);
    }
    Ok(prog)
}
