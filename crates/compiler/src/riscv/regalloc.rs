//! Linear-scan register allocation and frame finalization for the
//! RV32IM baseline.
//!
//! Intervals are built from block-level liveness (conservative
//! hole-free ranges). Ranges crossing a call site are assigned
//! callee-saved registers (or spilled); everything else prefers
//! caller-saved. `t5`/`t6` are reserved as spill/shuffle scratch.

use std::collections::{HashMap, HashSet};

use straight_asm::{RvFunc, RvItem, RvReloc};
use straight_isa::{AluImmOp, MemWidth};
use straight_riscv::{Reg, RvInst};

use super::{MFunc, MInst, VReg};
use crate::CodegenError;

type CResult<T> = Result<T, CodegenError>;

/// Where a vreg lives after allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(Reg),
    /// Word index into the spill area (byte offset `4 * index` from
    /// `sp`).
    Slot(u32),
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    start: i64,
    end: i64,
}

fn caller_pool() -> Vec<Reg> {
    let mut v = vec![Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::T4];
    v.extend((0..8).map(Reg::a));
    v
}

fn callee_pool() -> Vec<Reg> {
    (0..12).map(Reg::s).collect()
}

const SCRATCH1: Reg = Reg::T5;
const SCRATCH2: Reg = Reg::T6;

pub(crate) fn allocate_and_finalize(m: MFunc) -> CResult<RvFunc> {
    // ----- CFG over MIR blocks -------------------------------------
    let label_idx: HashMap<&str, usize> =
        m.blocks.iter().enumerate().map(|(i, b)| (b.label.as_str(), i)).collect();
    let n = m.blocks.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, b) in m.blocks.iter().enumerate() {
        for inst in &b.insts {
            match inst {
                MInst::Branch { target, .. } | MInst::J { target } => {
                    let t = *label_idx
                        .get(target.as_str())
                        .ok_or_else(|| CodegenError::Internal(format!("unknown label {target}")))?;
                    succs[i].push(t);
                }
                _ => {}
            }
        }
        let falls = !matches!(b.insts.last(), Some(MInst::J { .. }) | Some(MInst::Ret { .. }));
        if falls && i + 1 < n {
            succs[i].push(i + 1);
        }
    }

    // ----- Block-level liveness ------------------------------------
    let mut gen: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut kill: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    for (i, b) in m.blocks.iter().enumerate() {
        for inst in &b.insts {
            for u in inst.uses() {
                if !kill[i].contains(&u) {
                    gen[i].insert(u);
                }
            }
            if let Some(d) = inst.def() {
                kill[i].insert(d);
            }
        }
    }
    let mut live_in: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut live_out: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut out = HashSet::new();
            for &s in &succs[i] {
                out.extend(live_in[s].iter().copied());
            }
            let mut inn = gen[i].clone();
            for &v in &out {
                if !kill[i].contains(&v) {
                    inn.insert(v);
                }
            }
            if out != live_out[i] || inn != live_in[i] {
                live_out[i] = out;
                live_in[i] = inn;
                changed = true;
            }
        }
    }

    // ----- Intervals ------------------------------------------------
    let mut intervals: HashMap<VReg, Interval> = HashMap::new();
    let mut calls: Vec<i64> = Vec::new();
    let mut pos: i64 = 0;
    {
        let extend = |map: &mut HashMap<VReg, Interval>, v: VReg, p: i64| {
            let e = map.entry(v).or_insert(Interval { start: p, end: p });
            e.start = e.start.min(p);
            e.end = e.end.max(p);
        };
        for (i, b) in m.blocks.iter().enumerate() {
            let bstart = pos;
            let bend = bstart + 2 * (b.insts.len() as i64) + 1;
            for &v in &live_in[i] {
                extend(&mut intervals, v, bstart);
            }
            for &v in &live_out[i] {
                extend(&mut intervals, v, bend);
            }
            for (j, inst) in b.insts.iter().enumerate() {
                let p = bstart + 1 + 2 * j as i64;
                for u in inst.uses() {
                    extend(&mut intervals, u, p);
                }
                if let Some(d) = inst.def() {
                    extend(&mut intervals, d, p);
                }
                if inst.is_call() {
                    calls.push(p);
                }
            }
            pos = bend + 1;
        }
    }

    // ----- Linear scan ----------------------------------------------
    let mut order: Vec<(VReg, Interval)> = intervals.iter().map(|(v, i)| (*v, *i)).collect();
    order.sort_by_key(|(v, i)| (i.start, *v));
    let mut free_caller = caller_pool();
    let mut free_callee = callee_pool();
    let mut active: Vec<(i64, Reg, bool)> = Vec::new(); // (end, reg, is_callee)
    let mut assign: HashMap<VReg, Loc> = HashMap::new();
    let mut next_slot: u32 = 0;
    for (v, iv) in order {
        // Expire.
        let mut still = Vec::new();
        for (end, reg, is_callee) in active.drain(..) {
            if end < iv.start {
                if is_callee {
                    free_callee.push(reg);
                } else {
                    free_caller.push(reg);
                }
            } else {
                still.push((end, reg, is_callee));
            }
        }
        active = still;
        let crosses = calls.iter().any(|&c| iv.start < c && iv.end > c);
        let choice = if crosses {
            free_callee.pop().map(|r| (r, true))
        } else {
            free_caller.pop().map(|r| (r, false)).or_else(|| free_callee.pop().map(|r| (r, true)))
        };
        match choice {
            Some((reg, is_callee)) => {
                active.push((iv.end, reg, is_callee));
                assign.insert(v, Loc::Reg(reg));
            }
            None => {
                assign.insert(v, Loc::Slot(next_slot));
                next_slot += 1;
            }
        }
    }

    // ----- Frame layout ---------------------------------------------
    let spill_bytes = 4 * next_slot;
    let used_callee: Vec<Reg> = {
        let mut set: Vec<Reg> = assign
            .values()
            .filter_map(|l| match l {
                Loc::Reg(r) if r.is_callee_saved() && *r != Reg::SP => Some(*r),
                _ => None,
            })
            .collect();
        set.sort_by_key(|r| r.num());
        set.dedup();
        set
    };
    let has_call = m.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(i, MInst::Call { .. }));
    let saved_bytes = 4 * (used_callee.len() as u32 + u32::from(has_call));
    let frame = (spill_bytes + m.ir_frame + saved_bytes).next_multiple_of(16);
    let ir_base = spill_bytes; // IR slots sit above the spill area
    let ra_off = frame.saturating_sub(4);
    let saved_offsets: Vec<(Reg, u32)> = used_callee
        .iter()
        .enumerate()
        .map(|(k, r)| (*r, if has_call { frame - 8 - 4 * k as u32 } else { frame - 4 - 4 * k as u32 }))
        .collect();

    // ----- Rewrite & emit -------------------------------------------
    let mut fin = Finalizer {
        items: Vec::new(),
        labels: Vec::new(),
        assign,
        frame,
        ir_base,
        name: m.name.clone(),
    };
    // Prologue.
    fin.addi(Reg::SP, Reg::SP, -(frame as i32))?;
    if has_call {
        fin.emit(RvInst::Store { width: MemWidth::W, rs2: Reg::RA, rs1: Reg::SP, offset: ra_off as i32 });
    }
    for &(r, off) in &saved_offsets {
        fin.emit(RvInst::Store { width: MemWidth::W, rs2: r, rs1: Reg::SP, offset: off as i32 });
    }

    for (bi, b) in m.blocks.iter().enumerate() {
        if bi > 0 {
            fin.labels.push((b.label.clone(), fin.items.len()));
        }
        let mut j = 0;
        while j < b.insts.len() {
            // Batch consecutive GetArgs into one parallel move.
            if matches!(b.insts[j], MInst::GetArg { .. }) {
                let mut batch = Vec::new();
                while let Some(&MInst::GetArg { rd, index }) = b.insts.get(j) {
                    batch.push((rd, index));
                    j += 1;
                }
                fin.expand_get_args(&batch)?;
                continue;
            }
            fin.expand(&b.insts[j], &saved_offsets, has_call, ra_off)?;
            j += 1;
        }
    }
    Ok(RvFunc { name: m.name, items: fin.items, labels: fin.labels })
}

struct Finalizer {
    items: Vec<RvItem>,
    labels: Vec<(String, usize)>,
    assign: HashMap<VReg, Loc>,
    frame: u32,
    ir_base: u32,
    name: String,
}

impl Finalizer {
    fn emit(&mut self, inst: RvInst) {
        self.items.push(RvItem::plain(inst));
    }

    fn emit_reloc(&mut self, inst: RvInst, reloc: RvReloc) {
        self.items.push(RvItem { inst, reloc: Some(reloc) });
    }

    fn loc(&self, v: VReg) -> CResult<Loc> {
        self.assign
            .get(&v)
            .copied()
            .ok_or_else(|| CodegenError::Internal(format!("vreg v{v} unallocated in {}", self.name)))
    }

    /// `addi` with range handling (large frames fall back to `li`+`add`).
    fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> CResult<()> {
        if (-2048..=2047).contains(&imm) {
            self.emit(RvInst::OpImm { op: AluImmOp::Addi, rd, rs1, imm });
        } else {
            self.li(SCRATCH1, imm);
            self.emit(RvInst::Op { op: straight_isa::AluOp::Add, rd, rs1, rs2: SCRATCH1 });
        }
        Ok(())
    }

    fn li(&mut self, rd: Reg, imm: i32) {
        if (-2048..=2047).contains(&imm) {
            self.emit(RvInst::OpImm { op: AluImmOp::Addi, rd, rs1: Reg::ZERO, imm });
        } else {
            let hi = (imm as u32).wrapping_add(0x800) & 0xffff_f000;
            let lo = imm.wrapping_sub(hi as i32);
            self.emit(RvInst::Lui { rd, imm: hi });
            if lo != 0 {
                self.emit(RvInst::OpImm { op: AluImmOp::Addi, rd, rs1: rd, imm: lo });
            }
        }
    }

    /// Reads `v` into a register (its own, or a scratch from a spill
    /// slot).
    fn read(&mut self, v: VReg, scratch: Reg) -> CResult<Reg> {
        match self.loc(v)? {
            Loc::Reg(r) => Ok(r),
            Loc::Slot(s) => {
                self.emit(RvInst::Load { width: MemWidth::W, rd: scratch, rs1: Reg::SP, offset: (4 * s) as i32 });
                Ok(scratch)
            }
        }
    }

    /// The register a def should target; spilled defs write scratch
    /// and [`Finalizer::writeback`] stores it.
    fn def_reg(&mut self, v: VReg) -> CResult<Reg> {
        match self.loc(v)? {
            Loc::Reg(r) => Ok(r),
            Loc::Slot(_) => Ok(SCRATCH1),
        }
    }

    fn writeback(&mut self, v: VReg) -> CResult<()> {
        if let Loc::Slot(s) = self.loc(v)? {
            self.emit(RvInst::Store {
                width: MemWidth::W,
                rs2: SCRATCH1,
                rs1: Reg::SP,
                offset: (4 * s) as i32,
            });
        }
        Ok(())
    }

    fn expand_get_args(&mut self, batch: &[(VReg, u32)]) -> CResult<()> {
        // Stores to spill slots first (they read a-regs, write memory).
        for (rd, idx) in batch {
            if let Loc::Slot(s) = self.loc(*rd)? {
                self.emit(RvInst::Store {
                    width: MemWidth::W,
                    rs2: Reg::a(*idx as u8),
                    rs1: Reg::SP,
                    offset: (4 * s) as i32,
                });
            }
        }
        // Then a parallel register shuffle.
        let mut pending: Vec<(Reg, Reg)> = Vec::new(); // (dst, src)
        for (rd, idx) in batch {
            if let Loc::Reg(r) = self.loc(*rd)? {
                let src = Reg::a(*idx as u8);
                if r != src {
                    pending.push((r, src));
                }
            }
        }
        self.reg_parallel_move(pending);
        Ok(())
    }

    fn reg_parallel_move(&mut self, mut pending: Vec<(Reg, Reg)>) {
        while !pending.is_empty() {
            if let Some(i) = pending.iter().position(|(d, _)| !pending.iter().any(|(_, s)| s == d)) {
                let (d, s) = pending.remove(i);
                self.emit(RvInst::OpImm { op: AluImmOp::Addi, rd: d, rs1: s, imm: 0 });
            } else {
                // Cycle: break with SCRATCH2.
                let (_, s0) = pending[0];
                self.emit(RvInst::OpImm { op: AluImmOp::Addi, rd: SCRATCH2, rs1: s0, imm: 0 });
                for (_, s) in pending.iter_mut() {
                    if *s == s0 {
                        *s = SCRATCH2;
                    }
                }
            }
        }
    }

    fn expand(
        &mut self,
        inst: &MInst,
        saved_offsets: &[(Reg, u32)],
        has_call: bool,
        ra_off: u32,
    ) -> CResult<()> {
        match inst {
            MInst::Op { op, rd, rs1, rs2 } => {
                let r1 = self.read(*rs1, SCRATCH1)?;
                let r2 = self.read(*rs2, SCRATCH2)?;
                let d = self.def_reg(*rd)?;
                self.emit(RvInst::Op { op: *op, rd: d, rs1: r1, rs2: r2 });
                self.writeback(*rd)
            }
            MInst::OpImm { op, rd, rs1, imm } => {
                let r1 = self.read(*rs1, SCRATCH1)?;
                let d = self.def_reg(*rd)?;
                self.emit(RvInst::OpImm { op: *op, rd: d, rs1: r1, imm: *imm });
                self.writeback(*rd)
            }
            MInst::Li { rd, imm } => {
                let d = self.def_reg(*rd)?;
                self.li(d, *imm);
                self.writeback(*rd)
            }
            MInst::La { rd, symbol } => {
                let d = self.def_reg(*rd)?;
                self.emit_reloc(RvInst::Lui { rd: d, imm: 0 }, RvReloc::Hi20(symbol.clone()));
                self.emit_reloc(
                    RvInst::OpImm { op: AluImmOp::Addi, rd: d, rs1: d, imm: 0 },
                    RvReloc::Lo12(symbol.clone()),
                );
                self.writeback(*rd)
            }
            MInst::FrameAddr { rd, ir_off } => {
                let d = self.def_reg(*rd)?;
                self.addi(d, Reg::SP, (self.ir_base + ir_off) as i32)?;
                self.writeback(*rd)
            }
            MInst::Load { width, rd, rs1, offset } => {
                let r1 = self.read(*rs1, SCRATCH1)?;
                let d = self.def_reg(*rd)?;
                self.emit(RvInst::Load { width: *width, rd: d, rs1: r1, offset: *offset });
                self.writeback(*rd)
            }
            MInst::Store { width, rs2, rs1, offset } => {
                let r1 = self.read(*rs1, SCRATCH1)?;
                let r2 = self.read(*rs2, SCRATCH2)?;
                self.emit(RvInst::Store { width: *width, rs2: r2, rs1: r1, offset: *offset });
                Ok(())
            }
            MInst::Mv { rd, rs } => {
                let r = self.read(*rs, SCRATCH1)?;
                let d = self.def_reg(*rd)?;
                if d != r {
                    self.emit(RvInst::OpImm { op: AluImmOp::Addi, rd: d, rs1: r, imm: 0 });
                }
                self.writeback(*rd)
            }
            MInst::Branch { op, rs1, rs2, target } => {
                let r1 = self.read(*rs1, SCRATCH1)?;
                let r2 = self.read(*rs2, SCRATCH2)?;
                self.emit_reloc(
                    RvInst::Branch { op: *op, rs1: r1, rs2: r2, offset: 0 },
                    RvReloc::BranchTo(target.clone()),
                );
                Ok(())
            }
            MInst::J { target } => {
                self.emit_reloc(RvInst::Jal { rd: Reg::ZERO, offset: 0 }, RvReloc::JalTo(target.clone()));
                Ok(())
            }
            MInst::Call { symbol, args, dst } => {
                // Parallel move into a0..: slot loads are unblocked,
                // register moves are sequenced, cycles use SCRATCH2.
                let mut loads: Vec<(Reg, u32)> = Vec::new();
                let mut moves: Vec<(Reg, Reg)> = Vec::new();
                for (i, &a) in args.iter().enumerate() {
                    let dst = Reg::a(i as u8);
                    match self.loc(a)? {
                        Loc::Slot(s) => loads.push((dst, 4 * s)),
                        Loc::Reg(r) => {
                            if r != dst {
                                moves.push((dst, r));
                            }
                        }
                    }
                }
                // Register moves first (their sources may include a-regs
                // that loads would clobber), then loads.
                // A load's destination may be a source of a move, so
                // order: moves (parallel), then loads.
                self.reg_parallel_move(moves);
                for (dst, off) in loads {
                    self.emit(RvInst::Load { width: MemWidth::W, rd: dst, rs1: Reg::SP, offset: off as i32 });
                }
                self.emit_reloc(RvInst::Jal { rd: Reg::RA, offset: 0 }, RvReloc::JalTo(symbol.clone()));
                if let Some(d) = dst {
                    let dr = self.def_reg(*d)?;
                    if dr != Reg::A0 {
                        self.emit(RvInst::OpImm { op: AluImmOp::Addi, rd: dr, rs1: Reg::A0, imm: 0 });
                    }
                    self.writeback(*d)?;
                }
                Ok(())
            }
            MInst::Sys { code, arg, dst } => {
                let r = self.read(*arg, SCRATCH1)?;
                if r != Reg::A0 {
                    self.emit(RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: r, imm: 0 });
                }
                self.emit(RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::A7, rs1: Reg::ZERO, imm: i32::from(*code) });
                self.emit(RvInst::Ecall);
                let dr = self.def_reg(*dst)?;
                if dr != Reg::A0 {
                    self.emit(RvInst::OpImm { op: AluImmOp::Addi, rd: dr, rs1: Reg::A0, imm: 0 });
                }
                self.writeback(*dst)
            }
            MInst::Ret { val } => {
                if let Some(v) = val {
                    let r = self.read(*v, SCRATCH1)?;
                    if r != Reg::A0 {
                        self.emit(RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: r, imm: 0 });
                    }
                }
                for &(r, off) in saved_offsets {
                    self.emit(RvInst::Load { width: MemWidth::W, rd: r, rs1: Reg::SP, offset: off as i32 });
                }
                if has_call {
                    self.emit(RvInst::Load { width: MemWidth::W, rd: Reg::RA, rs1: Reg::SP, offset: ra_off as i32 });
                }
                self.addi(Reg::SP, Reg::SP, self.frame as i32)?;
                self.emit(RvInst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 });
                Ok(())
            }
            MInst::GetArg { .. } => Err(CodegenError::Internal("stray GetArg".into())),
        }
    }
}
