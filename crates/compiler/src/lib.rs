//! # straight-compiler
//!
//! The code generators of the STRAIGHT reproduction: SSA IR (from
//! `straight-ir`, standing in for LLVM IR) down to linkable machine
//! code for both evaluated machines.
//!
//! * [`compile_straight`] implements the paper's compilation algorithm
//!   (Section IV): the fixed-order calling convention around
//!   `JAL`/`JR`, **distance fixing** at merging control flows by
//!   padding predecessor tails with `RMOV`/`NOP`, **distance
//!   bounding** with relay `RMOV`s, caller-side stack saving of values
//!   live across calls, and — when
//!   [`StraightOptions::redundancy_elimination`] is on — the **RE+**
//!   optimizations of Section IV-D (producer rearrangement into the
//!   shuffle zone and stack storage of loop-live-through values).
//! * [`compile_riscv`] is the conventional back-end for the RV32IM
//!   superscalar baseline: phi lowering to parallel moves, linear-scan
//!   register allocation with callee-/caller-saved classes, and the
//!   standard RISC-V ABI.
//!
//! ```
//! use straight_ir::compile_source;
//! use straight_compiler::{compile_straight, compile_riscv, StraightOptions};
//!
//! let module = compile_source("int main() { return 6 * 7; }").unwrap();
//! let sprog = compile_straight(&module, &StraightOptions::default()).unwrap();
//! let rvprog = compile_riscv(&module).unwrap();
//! assert_eq!(sprog.funcs.len(), 1);
//! assert_eq!(rvprog.funcs.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod riscv;
mod straight;

pub use riscv::compile_riscv;
pub use straight::{compile_straight, StraightOptions};

use std::fmt;

/// Code-generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// Too many values live at a merge point for the configured
    /// maximum distance (the frame cannot fit in the distance field).
    FrameTooLarge {
        /// Function name.
        func: String,
        /// Live values at the worst merge.
        live: usize,
        /// Configured maximum distance.
        max_distance: u16,
    },
    /// More call arguments than the convention supports.
    TooManyArgs {
        /// Function name.
        func: String,
    },
    /// Internal invariant violation (a compiler bug, reported rather
    /// than panicking so fuzzing can catch it).
    Internal(String),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::FrameTooLarge { func, live, max_distance } => write!(
                f,
                "`{func}`: {live} live values at a merge exceed max distance {max_distance}"
            ),
            CodegenError::TooManyArgs { func } => write!(f, "`{func}`: too many call arguments"),
            CodegenError::Internal(msg) => write!(f, "internal codegen error: {msg}"),
        }
    }
}

impl std::error::Error for CodegenError {}
