//! The paper's evaluation as a uniform experiment grid.
//!
//! Every figure/table of the evaluation (Figures 11–17, the §VI-B
//! sensitivity study, Table I) is a named [`ExperimentSpec`] that
//! enumerates [`CellSpec`]s — one cell per (workload × core config ×
//! ISA profile) point. Cells are independent, so the
//! [`lab`](crate::lab) runner executes them in parallel; each produces
//! a serializable [`CellRecord`], and a whole experiment's records form
//! an [`ExperimentResult`] that round-trips through JSON
//! (`BENCH_<name>.json`). The paper-shaped text reports are re-rendered
//! *from the records* (see [`ExperimentSpec::render`]), so a saved
//! JSON file can regenerate its figure exactly.
//!
//! Every failure mode — a workload that fails to build for one
//! target, a machine that rejects an image, a run that ends in a trap
//! or the cycle budget, or a functional divergence between variants —
//! propagates as a typed [`ExperimentError`] naming the workload and
//! the target/machine involved, instead of panicking mid-sweep.

use std::collections::BTreeMap;
use std::str::FromStr;

use straight_json::{fnv1a64, obj, read_field, FromJson, Json, JsonError, ToJson};
use straight_power::figure17;
use straight_sim::emu::{EmuExit, ExecBackend, RiscvEmu, StraightEmu, TierConfig};
use straight_sim::pipeline::{Core, CoreError, MachineConfig, SimExit, SimResult, SimStats};
use straight_workloads::{coremark, dhrystone};

use crate::report;
use crate::{build, machines, run_on, BuildError, Target};

/// Cycle budget for experiment runs.
pub const MAX_CYCLES: u64 = 20_000_000_000;

/// The Table-I distance limit used by the evaluated models.
pub const EVAL_MAX_DISTANCE: u16 = 31;

/// Schema version stamped into every [`ExperimentResult`]; bump when
/// the record shape changes incompatibly.
pub const SCHEMA_VERSION: u32 = 2;

/// The distance limits swept by the §VI-B sensitivity study.
pub const SENSITIVITY_DISTANCES: [u16; 4] = [1023, 127, 63, 31];

/// The relative clock frequencies of Figure 17.
pub const FIG17_FREQS: [f64; 3] = [1.0, 2.5, 4.0];

/// A typed experiment selector — the identity of one named experiment
/// of the grid. Replaces the old stringly-typed lookup: both the CLI
/// and the daemon parse user input into an `ExperimentId` up front
/// (via [`FromStr`]), so an unknown name is rejected at the edge with
/// a structured [`UnknownExperiment`] error listing the valid ids,
/// and everything below the parse works with an exhaustive enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExperimentId {
    /// Figure 11: 4-way relative performance.
    Fig11,
    /// Figure 12: 2-way relative performance.
    Fig12,
    /// Figure 13: misprediction-penalty effect.
    Fig13,
    /// Figure 14: TAGE branch predictor.
    Fig14,
    /// Figure 15: retired instruction mix.
    Fig15,
    /// Figure 16: cumulative source-distance fractions.
    Fig16,
    /// Figure 17: relative power per module.
    Fig17,
    /// §VI-B distance-limit sensitivity sweep.
    Sensitivity,
    /// Table I: evaluated machine models.
    Table1,
    /// Methodology check: checkpoint-sampled simulation vs full runs.
    Sampled,
}

impl ExperimentId {
    /// Every experiment of the grid, in run order.
    pub const ALL: [ExperimentId; 10] = [
        ExperimentId::Fig11,
        ExperimentId::Fig12,
        ExperimentId::Fig13,
        ExperimentId::Fig14,
        ExperimentId::Fig15,
        ExperimentId::Fig16,
        ExperimentId::Fig17,
        ExperimentId::Sensitivity,
        ExperimentId::Table1,
        ExperimentId::Sampled,
    ];

    /// The grid name (what [`FromStr`] parses and [`std::fmt::Display`]
    /// prints).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ExperimentId::Fig11 => "fig11",
            ExperimentId::Fig12 => "fig12",
            ExperimentId::Fig13 => "fig13",
            ExperimentId::Fig14 => "fig14",
            ExperimentId::Fig15 => "fig15",
            ExperimentId::Fig16 => "fig16",
            ExperimentId::Fig17 => "fig17",
            ExperimentId::Sensitivity => "sensitivity",
            ExperimentId::Table1 => "table1",
            ExperimentId::Sampled => "sampled",
        }
    }

    /// The full [`ExperimentSpec`] behind this id.
    #[must_use]
    pub fn spec(self) -> ExperimentSpec {
        let (title, paper_ref, kind) = match self {
            ExperimentId::Fig11 => (
                "Figure 11: 4-way relative performance (vs SS-4way)",
                "Figure 11",
                FigureKind::Perf { global_baseline: None },
            ),
            ExperimentId::Fig12 => (
                "Figure 12: 2-way relative performance (vs SS-2way)",
                "Figure 12",
                FigureKind::Perf { global_baseline: None },
            ),
            ExperimentId::Fig13 => (
                "Figure 13: misprediction-penalty effect (vs SS-2way)",
                "Figure 13",
                FigureKind::Perf { global_baseline: Some(("2-way", "SS")) },
            ),
            ExperimentId::Fig14 => (
                "Figure 14: with TAGE branch predictor (vs SS)",
                "Figure 14",
                FigureKind::Perf { global_baseline: None },
            ),
            ExperimentId::Fig15 => (
                "Figure 15: retired instruction mix (normalized to SS)",
                "Figure 15",
                FigureKind::Mix,
            ),
            ExperimentId::Fig16 => (
                "Figure 16: cumulative fraction of source distances",
                "Figure 16",
                FigureKind::Distance,
            ),
            ExperimentId::Fig17 => (
                "Figure 17: relative power (normalized to SS at 1.0x, per module)",
                "Figure 17",
                FigureKind::Power,
            ),
            ExperimentId::Sensitivity => (
                "Sensitivity: max source distance vs CoreMark cycles",
                "Section VI-B",
                FigureKind::Sensitivity,
            ),
            ExperimentId::Table1 => ("Table I: evaluated models", "Table I", FigureKind::Table),
            ExperimentId::Sampled => (
                "Sampled: checkpoint-sampled simulation vs full runs",
                "Methodology",
                FigureKind::Sampled,
            ),
        };
        ExperimentSpec { id: self, title, paper_ref, kind }
    }
}

impl std::fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The structured error for a name that matches no [`ExperimentId`]:
/// carries the offending name and renders the full list of valid ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownExperiment {
    /// The name that failed to parse.
    pub name: String,
}

impl UnknownExperiment {
    /// The valid names, for structured (e.g. JSON) error responses.
    #[must_use]
    pub fn valid_names() -> Vec<&'static str> {
        ExperimentId::ALL.iter().map(|id| id.name()).collect()
    }
}

impl std::fmt::Display for UnknownExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown experiment `{}` (valid: {})", self.name, Self::valid_names().join(", "))
    }
}

impl std::error::Error for UnknownExperiment {}

impl FromStr for ExperimentId {
    type Err = UnknownExperiment;

    fn from_str(s: &str) -> Result<ExperimentId, UnknownExperiment> {
        ExperimentId::ALL
            .into_iter()
            .find(|id| id.name() == s)
            .ok_or_else(|| UnknownExperiment { name: s.to_string() })
    }
}

/// A failure while driving an experiment, with enough context to know
/// which workload/target/machine combination broke.
#[derive(Debug)]
pub enum ExperimentError {
    /// A workload failed to compile or link for one target.
    Build {
        /// Workload name.
        workload: String,
        /// Target description ("RV32IM", "STRAIGHT(RE+)", ...).
        target: &'static str,
        /// The underlying build failure.
        source: BuildError,
    },
    /// A machine model rejected the image outright.
    Machine {
        /// Workload name.
        workload: String,
        /// Machine configuration name.
        machine: String,
        /// The underlying construction failure.
        source: CoreError,
    },
    /// A run did not complete normally (trap, watchdog, or cycle/step
    /// budget).
    Abnormal {
        /// Workload name.
        workload: String,
        /// Machine or emulator description.
        machine: String,
        /// Human-readable exit description.
        exit: String,
    },
    /// Two variants of the same workload produced different output —
    /// the experiment's numbers would compare unlike programs.
    Divergence {
        /// Workload name.
        workload: String,
        /// The variant that disagrees with the baseline.
        variant: String,
    },
    /// The batch owning this cell was cancelled before the cell ran
    /// (daemon job cancellation; never produced by blocking runs).
    Cancelled {
        /// Cell id (`experiment/group/label`).
        cell: String,
    },
    /// The cell's execution panicked. The panic is caught at the
    /// worker boundary (the pool survives; see `lab.rs`) and surfaced
    /// as this structured terminal state instead of silently eating a
    /// worker thread.
    Panic {
        /// Cell id (`experiment/group/label`).
        cell: String,
        /// The panic payload, when it was a string.
        msg: String,
    },
    /// An [`ExperimentResult`] is missing cells its figure needs (a
    /// truncated or foreign record file).
    Malformed {
        /// Experiment name.
        experiment: String,
        /// What is missing or inconsistent.
        msg: String,
    },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Build { workload, target, source } => {
                write!(f, "{workload}/{target}: build failed: {source}")
            }
            ExperimentError::Machine { workload, machine, source } => {
                write!(f, "{workload} on {machine}: {source}")
            }
            ExperimentError::Abnormal { workload, machine, exit } => {
                write!(f, "{workload} on {machine}: did not complete: {exit}")
            }
            ExperimentError::Divergence { workload, variant } => {
                write!(f, "{workload}: {variant} output diverged from the baseline")
            }
            ExperimentError::Cancelled { cell } => {
                write!(f, "{cell}: cancelled before execution")
            }
            ExperimentError::Panic { cell, msg } => {
                write!(f, "{cell}: worker panicked: {msg}")
            }
            ExperimentError::Malformed { experiment, msg } => {
                write!(f, "{experiment}: malformed result: {msg}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

pub(crate) fn target_name(target: Target) -> &'static str {
    match target {
        Target::Riscv => "RV32IM",
        Target::StraightRaw { .. } => "STRAIGHT(RAW)",
        Target::StraightRePlus { .. } => "STRAIGHT(RE+)",
    }
}

pub(crate) fn build_for(
    workload: &str,
    src: &str,
    target: Target,
) -> Result<straight_asm::Image, ExperimentError> {
    build(src, target).map_err(|source| ExperimentError::Build {
        workload: workload.to_string(),
        target: target_name(target),
        source,
    })
}

/// Runs an image and requires normal completion.
pub(crate) fn run_checked(
    workload: &str,
    image: &straight_asm::Image,
    cfg: MachineConfig,
) -> Result<SimResult, ExperimentError> {
    let machine = cfg.name.clone();
    let result = run_on(image, cfg, MAX_CYCLES).map_err(|source| ExperimentError::Machine {
        workload: workload.to_string(),
        machine: machine.clone(),
        source,
    })?;
    if result.exit_code.is_none() {
        return Err(ExperimentError::Abnormal {
            workload: workload.to_string(),
            machine,
            exit: format!("{:?}", result.exit),
        });
    }
    Ok(result)
}

/// How many evenly spaced checkpoints a sampled cell simulates.
pub const SAMPLE_COUNT: u64 = 10;

/// Upper bound on the retired instructions each sampled interval
/// cycle-simulates (intervals shorter than this use their full
/// length).
pub const SAMPLE_WINDOW: u64 = 50_000;

/// The numbers a checkpoint-sampled cell records (see
/// [`CellKind::Sampled`]).
pub(crate) struct SampledOutcome {
    /// Extrapolated whole-program cycles (`retired / ipc_est`).
    pub cycles_est: u64,
    /// Aggregate IPC over the simulated sample intervals.
    pub ipc_est: f64,
    /// Total dynamic instructions of the program (from the emulator
    /// fast-forward, not an estimate).
    pub retired: u64,
    /// Program output, captured by the emulator pass.
    pub stdout: String,
}

/// Checkpoint-sampled simulation: one fast-tier emulator pass measures
/// the dynamic length `N` and the program output; a second pass drops
/// [`SAMPLE_COUNT`] checkpoints at `k * (N / SAMPLE_COUNT)`; the
/// cycle-accurate core resumes from each and simulates up to
/// [`SAMPLE_WINDOW`] retired instructions. Aggregate sample IPC
/// extrapolates to whole-program cycles.
pub(crate) fn run_sampled(
    workload: &str,
    image: &straight_asm::Image,
    cfg: MachineConfig,
    target: Target,
) -> Result<SampledOutcome, ExperimentError> {
    match target {
        Target::Riscv => sample_on(workload, image, cfg, || RiscvEmu::new(image.clone())),
        _ => sample_on(workload, image, cfg, || StraightEmu::new(image.clone())),
    }
}

fn sample_on<E: ExecBackend>(
    workload: &str,
    image: &straight_asm::Image,
    cfg: MachineConfig,
    mut fresh: impl FnMut() -> E,
) -> Result<SampledOutcome, ExperimentError> {
    let abnormal = |exit: String| ExperimentError::Abnormal {
        workload: workload.to_string(),
        machine: format!("{} (sampled)", cfg.name),
        exit,
    };
    // Pass 1: the whole program on the fast tier, for its dynamic
    // length and functional output.
    let mut full = fresh();
    let exit = full.run_with(u64::MAX, TierConfig::fast());
    if !matches!(exit, EmuExit::Done { .. }) {
        return Err(abnormal(format!("emulator fast-forward: {exit:?}")));
    }
    let total = full.executed();
    let stdout = full.stdout().to_string();
    let interval = (total / SAMPLE_COUNT).max(1);
    let window = interval.min(SAMPLE_WINDOW);
    // Pass 2: checkpoint at each sample point and cycle-simulate a
    // bounded interval from it.
    let mut ff = fresh();
    let mut sampled_retired = 0u64;
    let mut sampled_cycles = 0u64;
    for k in 0..SAMPLE_COUNT {
        if ff.run_with(k * interval, TierConfig::fast()) != EmuExit::StepLimit {
            break; // The program ended before this sample point.
        }
        let cp = ff.checkpoint();
        let mut core = Core::resume_from(image.clone(), cfg.clone(), &cp).map_err(|source| {
            ExperimentError::Machine {
                workload: workload.to_string(),
                machine: cfg.name.clone(),
                source,
            }
        })?;
        // A resumed core starts with an empty pipeline and cold
        // predictors/caches; the first half of the window warms the
        // microarchitectural state and is excluded from the estimate
        // (the retire/cycle budgets of `run_retired` are cumulative,
        // so the second call measures the delta).
        let warm = core.run_retired(window / 2, MAX_CYCLES);
        if let SimExit::Trap(trap) = &warm.exit {
            return Err(abnormal(format!("sample at {}: {trap:?}", cp.executed())));
        }
        let (warm_retired, warm_cycles) = (warm.stats.retired, warm.stats.cycles);
        let sample = core.run_retired(window, MAX_CYCLES);
        if let SimExit::Trap(trap) = &sample.exit {
            return Err(abnormal(format!("sample at {}: {trap:?}", cp.executed())));
        }
        sampled_retired += sample.stats.retired - warm_retired;
        sampled_cycles += sample.stats.cycles - warm_cycles;
    }
    if sampled_cycles == 0 || sampled_retired == 0 {
        return Err(abnormal("no instructions were cycle-simulated".to_string()));
    }
    let ipc_est = sampled_retired as f64 / sampled_cycles as f64;
    let cycles_est = (total as f64 / ipc_est).round() as u64;
    Ok(SampledOutcome { cycles_est, ipc_est, retired: total, stdout })
}

/// Iteration counts (and the cycle budget) one grid run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunParams {
    /// Dhrystone iteration count.
    pub dhry_iters: u32,
    /// CoreMark iteration count.
    pub cm_iters: u32,
    /// Per-run cycle budget.
    pub max_cycles: u64,
}

impl Default for RunParams {
    fn default() -> RunParams {
        RunParams { dhry_iters: 200, cm_iters: 3, max_cycles: MAX_CYCLES }
    }
}

impl RunParams {
    /// Reduced counts for smoke runs (`straight-lab --quick`).
    #[must_use]
    pub fn quick() -> RunParams {
        RunParams { dhry_iters: 50, cm_iters: 1, ..RunParams::default() }
    }
}

impl ToJson for RunParams {
    fn to_json(&self) -> Json {
        obj()
            .field("dhry_iters", &self.dhry_iters)
            .field("cm_iters", &self.cm_iters)
            .field("max_cycles", &self.max_cycles)
            .build()
    }
}

impl FromJson for RunParams {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(RunParams {
            dhry_iters: read_field(value, "dhry_iters")?,
            cm_iters: read_field(value, "cm_iters")?,
            max_cycles: read_field(value, "max_cycles")?,
        })
    }
}

/// The two paper workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// The Dhrystone-like benchmark.
    Dhrystone,
    /// The CoreMark-like benchmark.
    Coremark,
}

impl WorkloadKind {
    /// Display name (matches the figures' group labels).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Dhrystone => "Dhrystone",
            WorkloadKind::Coremark => "Coremark",
        }
    }

    /// MinC source at the parameters' iteration count.
    #[must_use]
    pub fn source(self, params: &RunParams) -> String {
        match self {
            WorkloadKind::Dhrystone => dhrystone(params.dhry_iters),
            WorkloadKind::Coremark => coremark(params.cm_iters),
        }
    }

    /// The iteration count this workload uses from `params`.
    #[must_use]
    pub fn iters(self, params: &RunParams) -> u32 {
        match self {
            WorkloadKind::Dhrystone => params.dhry_iters,
            WorkloadKind::Coremark => params.cm_iters,
        }
    }
}

/// What a cell measures.
#[derive(Debug, Clone)]
pub enum CellKind {
    /// A cycle-accurate run on a machine model.
    Pipeline {
        /// Compilation target / ISA profile.
        target: Target,
        /// Machine model.
        machine: MachineConfig,
    },
    /// A functional-emulator run collecting the retired-instruction
    /// mix (Figure 15).
    EmuMix {
        /// Compilation target / ISA profile.
        target: Target,
    },
    /// A functional-emulator run profiling source-operand distances
    /// (Figure 16).
    EmuDistance {
        /// Compilation target / ISA profile.
        target: Target,
    },
    /// No execution: the cell records a machine configuration
    /// fingerprint (Table I).
    ConfigDump {
        /// Machine model.
        machine: MachineConfig,
    },
    /// Checkpoint-sampled cycle simulation: a fast-tier emulator run
    /// finds the dynamic instruction count and drops architectural
    /// checkpoints at evenly spaced points; the cycle-accurate core
    /// resumes from each and simulates a bounded interval, and the
    /// recorded cycles/IPC are the extrapolated estimates.
    Sampled {
        /// Compilation target / ISA profile.
        target: Target,
        /// Machine model the sampled intervals run on.
        machine: MachineConfig,
    },
}

/// One point of the experiment grid.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Owning experiment.
    pub experiment: ExperimentId,
    /// Figure group (usually the workload or scale: "Dhrystone",
    /// "2-way", ...).
    pub group: String,
    /// Bar label within the group ("SS", "STRAIGHT(RE+)", ...).
    pub label: String,
    /// Workload, when the cell executes one.
    pub workload: Option<WorkloadKind>,
    /// Figure-specific scalar parameter (the distance limit for the
    /// sensitivity sweep).
    pub param: Option<u64>,
    /// What to measure.
    pub kind: CellKind,
}

impl CellSpec {
    /// Stable identifier: `experiment/group/label`.
    #[must_use]
    pub fn id(&self) -> String {
        format!("{}/{}/{}", self.experiment, self.group, self.label)
    }

    /// The cell's compilation target, when it executes code.
    #[must_use]
    pub fn target(&self) -> Option<Target> {
        match &self.kind {
            CellKind::Pipeline { target, .. }
            | CellKind::EmuMix { target }
            | CellKind::EmuDistance { target }
            | CellKind::Sampled { target, .. } => Some(*target),
            CellKind::ConfigDump { .. } => None,
        }
    }

    /// The cell's machine model, when it runs on one.
    #[must_use]
    pub fn machine(&self) -> Option<&MachineConfig> {
        match &self.kind {
            CellKind::Pipeline { machine, .. }
            | CellKind::ConfigDump { machine }
            | CellKind::Sampled { machine, .. } => Some(machine),
            _ => None,
        }
    }

    /// Configuration fingerprint: a stable 64-bit hash over everything
    /// that determines the cell's numbers (machine config, target,
    /// iteration count, cycle budget).
    #[must_use]
    pub fn fingerprint(&self, params: &RunParams) -> String {
        let iters = self.workload.map(|w| w.iters(params));
        let machine = self.machine().map(|m| format!("{m:?}"));
        // Sampled cells carry a suffix so their estimate never shares
        // a fingerprint with the full simulation of the same
        // configuration; every other kind keeps the historical text
        // (stored records reference these hashes).
        let kind = match &self.kind {
            CellKind::Sampled { .. } => "|sampled",
            _ => "",
        };
        let text = format!(
            "{:?}|{:?}|{:?}|{:?}|{}{kind}",
            self.target(),
            machine,
            iters,
            self.workload.map(WorkloadKind::name),
            params.max_cycles,
        );
        format!("{:016x}", fnv1a64(text.as_bytes()))
    }
}

/// One executed cell, in fully serializable form. Optional fields are
/// `null` for cell kinds they don't apply to, keeping one schema for
/// the whole grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// `experiment/group/label`.
    pub id: String,
    /// Owning experiment.
    pub experiment: String,
    /// Figure group.
    pub group: String,
    /// Bar label.
    pub label: String,
    /// Workload name.
    pub workload: Option<String>,
    /// Target description ("RV32IM", "STRAIGHT(RE+)", ...).
    pub target: Option<String>,
    /// Machine configuration name.
    pub machine: Option<String>,
    /// Configuration fingerprint (see [`CellSpec::fingerprint`]).
    pub config_fingerprint: String,
    /// Figure-specific parameter (sensitivity distance limit).
    pub param: Option<u64>,
    /// Execution cycles (0 for emulator/config cells).
    pub cycles: u64,
    /// Retired (architectural for emulator cells) instructions.
    pub retired: u64,
    /// Instructions per cycle (0 when cycles is 0).
    pub ipc: f64,
    /// Full pipeline statistics, for pipeline cells.
    pub stats: Option<SimStats>,
    /// Retired-kind histogram, for emulator-mix cells.
    pub kinds: Option<BTreeMap<String, u64>>,
    /// Cumulative distance fractions, for distance cells.
    pub distances: Option<Vec<(u32, f64)>>,
    /// Largest source distance observed, for distance cells.
    pub max_distance_used: Option<u64>,
    /// FNV-1a digest of the program's stdout (functional checksum).
    pub stdout_digest: Option<String>,
    /// Wall-clock time of the cell, milliseconds.
    pub wall_ms: f64,
    /// Host wall time of the cycle-accurate simulation proper,
    /// milliseconds (pipeline cells only). Cells deduplicated by the
    /// run cache report the time of the one shared simulation.
    pub sim_wall_ms: Option<f64>,
    /// Simulation throughput: thousands of simulated cycles per host
    /// second (`cycles / sim_wall_ms`), pipeline cells only.
    pub ksim_cycles_per_sec: Option<f64>,
}

impl ToJson for CellRecord {
    fn to_json(&self) -> Json {
        obj()
            .field("id", &self.id)
            .field("experiment", &self.experiment)
            .field("group", &self.group)
            .field("label", &self.label)
            .field("workload", &self.workload)
            .field("target", &self.target)
            .field("machine", &self.machine)
            .field("config_fingerprint", &self.config_fingerprint)
            .field("param", &self.param)
            .field("cycles", &self.cycles)
            .field("retired", &self.retired)
            .field("ipc", &self.ipc)
            .field("stats", &self.stats)
            .field("kinds", &self.kinds)
            .field("distances", &self.distances)
            .field("max_distance_used", &self.max_distance_used)
            .field("stdout_digest", &self.stdout_digest)
            .field("wall_ms", &self.wall_ms)
            .field("sim_wall_ms", &self.sim_wall_ms)
            .field("ksim_cycles_per_sec", &self.ksim_cycles_per_sec)
            .build()
    }
}

impl FromJson for CellRecord {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(CellRecord {
            id: read_field(value, "id")?,
            experiment: read_field(value, "experiment")?,
            group: read_field(value, "group")?,
            label: read_field(value, "label")?,
            workload: read_field(value, "workload")?,
            target: read_field(value, "target")?,
            machine: read_field(value, "machine")?,
            config_fingerprint: read_field(value, "config_fingerprint")?,
            param: read_field(value, "param")?,
            cycles: read_field(value, "cycles")?,
            retired: read_field(value, "retired")?,
            ipc: read_field(value, "ipc")?,
            stats: read_field(value, "stats")?,
            kinds: read_field(value, "kinds")?,
            distances: read_field(value, "distances")?,
            max_distance_used: read_field(value, "max_distance_used")?,
            stdout_digest: read_field(value, "stdout_digest")?,
            wall_ms: read_field(value, "wall_ms")?,
            sim_wall_ms: read_field(value, "sim_wall_ms")?,
            ksim_cycles_per_sec: read_field(value, "ksim_cycles_per_sec")?,
        })
    }
}

/// A full experiment's machine-readable result: provenance plus one
/// [`CellRecord`] per grid point. This is the content of a
/// `BENCH_<name>.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Record schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Experiment name ("fig11", ...).
    pub experiment: String,
    /// Human title (the report header).
    pub title: String,
    /// Which paper figure/table/section this reproduces.
    pub paper_ref: String,
    /// `git rev-parse HEAD` at run time ("unknown" outside a
    /// checkout).
    pub git_rev: String,
    /// Iteration counts used.
    pub params: RunParams,
    /// Aggregate compute time across the experiment's cells,
    /// milliseconds (cells may have run in parallel).
    pub wall_ms: f64,
    /// One record per cell, in grid order.
    pub cells: Vec<CellRecord>,
}

impl ExperimentResult {
    /// A copy with volatile (timing) fields zeroed: two runs of the
    /// same grid at the same revision compare equal on this.
    #[must_use]
    pub fn normalized(&self) -> ExperimentResult {
        let mut out = self.clone();
        out.wall_ms = 0.0;
        for cell in &mut out.cells {
            cell.wall_ms = 0.0;
            cell.sim_wall_ms = None;
            cell.ksim_cycles_per_sec = None;
        }
        out
    }
}

impl ToJson for ExperimentResult {
    fn to_json(&self) -> Json {
        obj()
            .field("schema_version", &self.schema_version)
            .field("experiment", &self.experiment)
            .field("title", &self.title)
            .field("paper_ref", &self.paper_ref)
            .field("git_rev", &self.git_rev)
            .field("params", &self.params)
            .field("wall_ms", &self.wall_ms)
            .field("cells", &self.cells)
            .build()
    }
}

impl FromJson for ExperimentResult {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ExperimentResult {
            schema_version: read_field(value, "schema_version")?,
            experiment: read_field(value, "experiment")?,
            title: read_field(value, "title")?,
            paper_ref: read_field(value, "paper_ref")?,
            git_rev: read_field(value, "git_rev")?,
            params: read_field(value, "params")?,
            wall_ms: read_field(value, "wall_ms")?,
            cells: read_field(value, "cells")?,
        })
    }
}

/// How an experiment's records turn back into its paper-shaped text
/// report.
#[derive(Debug, Clone, Copy)]
pub enum FigureKind {
    /// Grouped performance bars (Figures 11–14). The baseline is the
    /// first cell of each group, or one global `(group, label)` cell
    /// (Figure 13 normalizes everything to SS-2way).
    Perf {
        /// Global normalization cell, when not per-group.
        global_baseline: Option<(&'static str, &'static str)>,
    },
    /// Retired-instruction mix (Figure 15).
    Mix,
    /// Source-distance distribution (Figure 16).
    Distance,
    /// Per-module power (Figure 17).
    Power,
    /// Distance-limit sensitivity table (§VI-B).
    Sensitivity,
    /// Table I configuration dump.
    Table,
    /// Sampled-vs-full comparison table (pairs of `X (full)` /
    /// `X (sampled)` cells per workload group).
    Sampled,
}

/// One named experiment of the grid (obtained from
/// [`ExperimentId::spec`]).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentSpec {
    /// Typed identity ("fig11", ..., "sensitivity", "table1").
    pub id: ExperimentId,
    /// Report title (exactly the header the legacy binaries printed).
    pub title: &'static str,
    /// Paper reference ("Figure 11", "Table I", "§VI-B").
    pub paper_ref: &'static str,
    /// Rendering/assembly mode.
    pub kind: FigureKind,
}

/// The full grid, in run order.
#[must_use]
pub fn all() -> Vec<ExperimentSpec> {
    ExperimentId::ALL.into_iter().map(ExperimentId::spec).collect()
}

/// Looks an experiment up by name.
#[must_use]
pub fn find(name: &str) -> Option<ExperimentSpec> {
    name.parse::<ExperimentId>().ok().map(ExperimentId::spec)
}

fn raw(d: u16) -> Target {
    Target::StraightRaw { max_distance: d }
}

fn re_plus(d: u16) -> Target {
    Target::StraightRePlus { max_distance: d }
}

/// The three-bar (SS / RAW / RE+) group the performance figures share.
fn perf_cells(
    experiment: ExperimentId,
    workload: WorkloadKind,
    group: &str,
    ss_cfg: MachineConfig,
    st_cfg: MachineConfig,
) -> Vec<CellSpec> {
    vec![
        CellSpec {
            experiment,
            group: group.to_string(),
            label: "SS".to_string(),
            workload: Some(workload),
            param: None,
            kind: CellKind::Pipeline { target: Target::Riscv, machine: ss_cfg },
        },
        CellSpec {
            experiment,
            group: group.to_string(),
            label: "STRAIGHT(RAW)".to_string(),
            workload: Some(workload),
            param: None,
            kind: CellKind::Pipeline {
                target: raw(EVAL_MAX_DISTANCE),
                machine: st_cfg.clone(),
            },
        },
        CellSpec {
            experiment,
            group: group.to_string(),
            label: "STRAIGHT(RE+)".to_string(),
            workload: Some(workload),
            param: None,
            kind: CellKind::Pipeline { target: re_plus(EVAL_MAX_DISTANCE), machine: st_cfg },
        },
    ]
}

impl ExperimentSpec {
    /// Enumerates the experiment's cells, in figure order. The match
    /// is exhaustive over [`ExperimentId`], so adding an experiment
    /// without enumerating its cells is a compile error.
    #[must_use]
    pub fn cells(&self) -> Vec<CellSpec> {
        match self.id {
            ExperimentId::Fig11 => {
                let mut cells = perf_cells(
                    ExperimentId::Fig11,
                    WorkloadKind::Dhrystone,
                    "Dhrystone",
                    machines::ss_4way(),
                    machines::straight_4way(),
                );
                cells.extend(perf_cells(
                    ExperimentId::Fig11,
                    WorkloadKind::Coremark,
                    "Coremark",
                    machines::ss_4way(),
                    machines::straight_4way(),
                ));
                cells
            }
            ExperimentId::Fig12 => {
                let mut cells = perf_cells(
                    ExperimentId::Fig12,
                    WorkloadKind::Dhrystone,
                    "Dhrystone",
                    machines::ss_2way(),
                    machines::straight_2way(),
                );
                cells.extend(perf_cells(
                    ExperimentId::Fig12,
                    WorkloadKind::Coremark,
                    "Coremark",
                    machines::ss_2way(),
                    machines::straight_2way(),
                ));
                cells
            }
            ExperimentId::Fig13 => {
                let mut cells = Vec::new();
                for (scale, ss_cfg, st_cfg) in [
                    ("2-way", machines::ss_2way(), machines::straight_2way()),
                    ("4-way", machines::ss_4way(), machines::straight_4way()),
                ] {
                    for (label, target, machine) in [
                        ("SS", Target::Riscv, ss_cfg.clone()),
                        ("SS no penalty", Target::Riscv, ss_cfg.with_ideal_recovery()),
                        ("STRAIGHT(RE+)", re_plus(EVAL_MAX_DISTANCE), st_cfg),
                    ] {
                        cells.push(CellSpec {
                            experiment: ExperimentId::Fig13,
                            group: scale.to_string(),
                            label: label.to_string(),
                            workload: Some(WorkloadKind::Coremark),
                            param: None,
                            kind: CellKind::Pipeline { target, machine },
                        });
                    }
                }
                cells
            }
            ExperimentId::Fig14 => {
                let mut cells = perf_cells(
                    ExperimentId::Fig14,
                    WorkloadKind::Coremark,
                    "Coremark 2-way",
                    machines::ss_2way().with_tage(),
                    machines::straight_2way().with_tage(),
                );
                cells.extend(perf_cells(
                    ExperimentId::Fig14,
                    WorkloadKind::Coremark,
                    "Coremark 4-way",
                    machines::ss_4way().with_tage(),
                    machines::straight_4way().with_tage(),
                ));
                cells
            }
            ExperimentId::Fig15 => [
                ("SS", Target::Riscv),
                ("STRAIGHT(RAW)", raw(EVAL_MAX_DISTANCE)),
                ("STRAIGHT(RE+)", re_plus(EVAL_MAX_DISTANCE)),
            ]
            .into_iter()
            .map(|(label, target)| CellSpec {
                experiment: ExperimentId::Fig15,
                group: "Coremark".to_string(),
                label: label.to_string(),
                workload: Some(WorkloadKind::Coremark),
                param: None,
                kind: CellKind::EmuMix { target },
            })
            .collect(),
            ExperimentId::Fig16 => [WorkloadKind::Dhrystone, WorkloadKind::Coremark]
                .into_iter()
                .map(|workload| CellSpec {
                    experiment: ExperimentId::Fig16,
                    group: workload.name().to_string(),
                    label: "STRAIGHT(RE+)".to_string(),
                    workload: Some(workload),
                    param: Some(1023),
                    kind: CellKind::EmuDistance { target: re_plus(1023) },
                })
                .collect(),
            ExperimentId::Fig17 => vec![
                CellSpec {
                    experiment: ExperimentId::Fig17,
                    group: "Dhrystone".to_string(),
                    label: "SS".to_string(),
                    workload: Some(WorkloadKind::Dhrystone),
                    param: None,
                    kind: CellKind::Pipeline { target: Target::Riscv, machine: machines::ss_2way() },
                },
                CellSpec {
                    experiment: ExperimentId::Fig17,
                    group: "Dhrystone".to_string(),
                    label: "STRAIGHT(RE+)".to_string(),
                    workload: Some(WorkloadKind::Dhrystone),
                    param: None,
                    kind: CellKind::Pipeline {
                        target: re_plus(EVAL_MAX_DISTANCE),
                        machine: machines::straight_2way(),
                    },
                },
            ],
            ExperimentId::Sensitivity => SENSITIVITY_DISTANCES
                .into_iter()
                .map(|d| {
                    // The machine must provision MAX_RP = distance + ROB.
                    let mut cfg = machines::straight_4way();
                    cfg.max_distance = u32::from(d);
                    cfg.phys_regs = cfg.phys_regs.max(u32::from(d) + cfg.rob_capacity);
                    CellSpec {
                        experiment: ExperimentId::Sensitivity,
                        group: "Coremark".to_string(),
                        label: format!("d={d}"),
                        workload: Some(WorkloadKind::Coremark),
                        param: Some(u64::from(d)),
                        kind: CellKind::Pipeline { target: re_plus(d), machine: cfg },
                    }
                })
                .collect(),
            ExperimentId::Table1 => [
                machines::ss_2way(),
                machines::straight_2way(),
                machines::ss_4way(),
                machines::straight_4way(),
            ]
            .into_iter()
            .map(|machine| CellSpec {
                experiment: ExperimentId::Table1,
                group: "models".to_string(),
                label: machine.name.clone(),
                workload: None,
                param: None,
                kind: CellKind::ConfigDump { machine },
            })
            .collect(),
            ExperimentId::Sampled => {
                let mut cells = Vec::new();
                for workload in [WorkloadKind::Dhrystone, WorkloadKind::Coremark] {
                    for (prefix, target, machine) in [
                        ("SS", Target::Riscv, machines::ss_2way()),
                        ("STRAIGHT(RE+)", re_plus(EVAL_MAX_DISTANCE), machines::straight_2way()),
                    ] {
                        cells.push(CellSpec {
                            experiment: ExperimentId::Sampled,
                            group: workload.name().to_string(),
                            label: format!("{prefix} (full)"),
                            workload: Some(workload),
                            param: None,
                            kind: CellKind::Pipeline { target, machine: machine.clone() },
                        });
                        cells.push(CellSpec {
                            experiment: ExperimentId::Sampled,
                            group: workload.name().to_string(),
                            label: format!("{prefix} (sampled)"),
                            workload: Some(workload),
                            param: None,
                            kind: CellKind::Sampled { target, machine },
                        });
                    }
                }
                cells
            }
        }
    }

    /// Re-renders the paper-shaped text report from an experiment's
    /// records. Byte-identical to what the legacy per-figure binaries
    /// printed.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Divergence`] when a performance group's
    /// variants disagree on program output, and
    /// [`ExperimentError::Malformed`] when required cells are missing.
    pub fn render(&self, result: &ExperimentResult) -> Result<String, ExperimentError> {
        match self.kind {
            FigureKind::Perf { global_baseline } => {
                let groups = assemble_perf(self, result, global_baseline)?;
                Ok(report::render_perf(self.title, &groups))
            }
            FigureKind::Mix => Ok(report::render_mix(&assemble_mix(self, result)?)),
            FigureKind::Distance => {
                Ok(report::render_distances(&assemble_distances(self, result)?))
            }
            FigureKind::Power => {
                let (ss, st) = stats_pair(self, result, "SS", "STRAIGHT(RE+)")?;
                Ok(report::render_power(&figure17(&ss, &st, &FIG17_FREQS)))
            }
            FigureKind::Sensitivity => {
                let rows: Vec<(u16, u64)> = result
                    .cells
                    .iter()
                    .map(|c| {
                        let d = c.param.ok_or_else(|| malformed(self, "cell without param"))?;
                        Ok((d as u16, c.cycles))
                    })
                    .collect::<Result<_, ExperimentError>>()?;
                Ok(report::render_sensitivity(&rows))
            }
            FigureKind::Table => Ok(report::render_table1(&[
                machines::ss_2way(),
                machines::straight_2way(),
                machines::ss_4way(),
                machines::straight_4way(),
            ])),
            FigureKind::Sampled => {
                Ok(report::render_sampled(&assemble_sampled(self, result)?))
            }
        }
    }
}

fn malformed(spec: &ExperimentSpec, msg: impl Into<String>) -> ExperimentError {
    ExperimentError::Malformed { experiment: spec.id.to_string(), msg: msg.into() }
}

/// Groups cells in first-seen order, preserving in-group order.
fn grouped(cells: &[CellRecord]) -> Vec<(&str, Vec<&CellRecord>)> {
    let mut out: Vec<(&str, Vec<&CellRecord>)> = Vec::new();
    for cell in cells {
        match out.iter_mut().find(|(g, _)| *g == cell.group) {
            Some((_, members)) => members.push(cell),
            None => out.push((&cell.group, vec![cell])),
        }
    }
    out
}

fn assemble_perf(
    spec: &ExperimentSpec,
    result: &ExperimentResult,
    global_baseline: Option<(&str, &str)>,
) -> Result<Vec<report::PerfGroup>, ExperimentError> {
    let groups = grouped(&result.cells);
    if groups.is_empty() {
        return Err(malformed(spec, "no cells"));
    }
    let global_base = match global_baseline {
        Some((g, l)) => Some(
            result
                .cells
                .iter()
                .find(|c| c.group == g && c.label == l)
                .ok_or_else(|| malformed(spec, format!("missing baseline cell {g}/{l}")))?
                .cycles as f64,
        ),
        None => None,
    };
    let mut out = Vec::new();
    for (group, members) in groups {
        let first = members.first().ok_or_else(|| malformed(spec, "empty group"))?;
        // Functional cross-check: every variant of the group must have
        // printed the same output as the baseline.
        for member in &members {
            if member.stdout_digest != first.stdout_digest {
                return Err(ExperimentError::Divergence {
                    workload: group.to_string(),
                    variant: member.label.clone(),
                });
            }
        }
        let base = global_base.unwrap_or(first.cycles as f64);
        out.push(report::PerfGroup {
            workload: group.to_string(),
            rows: members
                .iter()
                .map(|c| report::PerfRow {
                    label: c.label.clone(),
                    cycles: c.cycles,
                    retired: c.retired,
                    relative: base / c.cycles as f64,
                })
                .collect(),
        });
    }
    Ok(out)
}

fn assemble_mix(
    spec: &ExperimentSpec,
    result: &ExperimentResult,
) -> Result<Vec<report::MixRow>, ExperimentError> {
    result
        .cells
        .iter()
        .map(|c| {
            let kinds = c.kinds.clone().ok_or_else(|| malformed(spec, "cell without kinds"))?;
            Ok(report::MixRow { label: c.label.clone(), kinds, total: c.retired })
        })
        .collect()
}

fn assemble_distances(
    spec: &ExperimentSpec,
    result: &ExperimentResult,
) -> Result<Vec<report::DistanceProfile>, ExperimentError> {
    result
        .cells
        .iter()
        .map(|c| {
            let cumulative =
                c.distances.clone().ok_or_else(|| malformed(spec, "cell without distances"))?;
            let max_used =
                c.max_distance_used.ok_or_else(|| malformed(spec, "cell without max distance"))?;
            Ok(report::DistanceProfile {
                workload: c.group.clone(),
                cumulative,
                max_used: max_used as usize,
            })
        })
        .collect()
}

fn assemble_sampled(
    spec: &ExperimentSpec,
    result: &ExperimentResult,
) -> Result<Vec<report::SampledRow>, ExperimentError> {
    let mut rows = Vec::new();
    for (group, members) in grouped(&result.cells) {
        for full in &members {
            let Some(prefix) = full.label.strip_suffix(" (full)") else { continue };
            let sampled = members
                .iter()
                .find(|c| c.label == format!("{prefix} (sampled)"))
                .ok_or_else(|| {
                    malformed(spec, format!("missing sampled cell for {group}/{prefix}"))
                })?;
            // Functional cross-check: the emulator that fast-forwarded
            // the sampled cell must print exactly what the full
            // cycle-accurate run printed.
            if sampled.stdout_digest != full.stdout_digest {
                return Err(ExperimentError::Divergence {
                    workload: group.to_string(),
                    variant: sampled.label.clone(),
                });
            }
            rows.push(report::SampledRow {
                workload: group.to_string(),
                label: prefix.to_string(),
                full_cycles: full.cycles,
                full_ipc: full.ipc,
                est_cycles: sampled.cycles,
                est_ipc: sampled.ipc,
            });
        }
    }
    if rows.is_empty() {
        return Err(malformed(spec, "no (full)/(sampled) cell pairs"));
    }
    Ok(rows)
}

/// The full [`SimStats`] of two labeled cells (the Figure 17 pair).
fn stats_pair(
    spec: &ExperimentSpec,
    result: &ExperimentResult,
    a: &str,
    b: &str,
) -> Result<(SimStats, SimStats), ExperimentError> {
    let get = |label: &str| {
        result
            .cells
            .iter()
            .find(|c| c.label == label)
            .and_then(|c| c.stats.clone())
            .ok_or_else(|| malformed(spec, format!("missing stats for `{label}`")))
    };
    Ok((get(a)?, get(b)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_the_evaluation() {
        let names: Vec<&str> = all().iter().map(|e| e.id.name()).collect();
        assert_eq!(
            names,
            [
                "fig11",
                "fig12",
                "fig13",
                "fig14",
                "fig15",
                "fig16",
                "fig17",
                "sensitivity",
                "table1",
                "sampled"
            ]
        );
        let total: usize = all().iter().map(|e| e.cells().len()).sum();
        assert_eq!(total, 47);
    }

    #[test]
    fn sampled_cells_pair_full_and_estimate() {
        let spec = find("sampled").unwrap();
        let cells = spec.cells();
        assert_eq!(cells.len(), 8);
        let p = RunParams::default();
        for pair in cells.chunks(2) {
            let (full, sampled) = (&pair[0], &pair[1]);
            assert!(full.label.ends_with(" (full)"));
            assert!(sampled.label.ends_with(" (sampled)"));
            assert!(matches!(full.kind, CellKind::Pipeline { .. }));
            assert!(matches!(sampled.kind, CellKind::Sampled { .. }));
            // Same configuration, but the estimate must never collide
            // with the full run in the record caches.
            assert_eq!(full.target(), sampled.target());
            assert_ne!(full.fingerprint(&p), sampled.fingerprint(&p));
        }
        // The full cells reuse fig12's configurations, so the run
        // cache deduplicates them against that figure.
        let fig12 = find("fig12").unwrap().cells();
        let ss_full = &cells[0];
        let fig12_ss = &fig12[0];
        assert_eq!(ss_full.fingerprint(&p), fig12_ss.fingerprint(&p));
    }

    #[test]
    fn fingerprints_distinguish_configs_and_params() {
        let spec = find("fig11").unwrap();
        let cells = spec.cells();
        let p = RunParams::default();
        let fp: Vec<String> = cells.iter().map(|c| c.fingerprint(&p)).collect();
        let mut unique = fp.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), fp.len(), "all fig11 cells have distinct fingerprints");
        let quick = cells[0].fingerprint(&RunParams::quick());
        assert_ne!(quick, fp[0], "iteration count is part of the fingerprint");
    }

    #[test]
    fn cell_ids_are_stable() {
        let spec = find("sensitivity").unwrap();
        let ids: Vec<String> = spec.cells().iter().map(CellSpec::id).collect();
        assert_eq!(ids[0], "sensitivity/Coremark/d=1023");
        assert_eq!(ids[3], "sensitivity/Coremark/d=31");
    }
}
