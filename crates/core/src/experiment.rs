//! Drivers for the paper's experiments: one function per table/figure.
//!
//! Each returns plain data; the `straight-bench` binaries print them
//! in the paper's format and EXPERIMENTS.md records the outcomes.
//!
//! Every failure mode — a workload that fails to build for one
//! target, a machine that rejects an image, a run that ends in a trap
//! or the cycle budget, or a functional divergence between variants —
//! propagates as a typed [`ExperimentError`] naming the workload and
//! the target/machine involved, instead of panicking mid-sweep.

use std::collections::BTreeMap;

use straight_power::{figure17, Figure17Row};
use straight_sim::emu::StraightEmu;
use straight_sim::pipeline::{CoreError, MachineConfig, SimResult, SimStats};
use straight_workloads::{coremark, dhrystone};

use crate::{build, machines, run_on, BuildError, Target};

/// Cycle budget for experiment runs.
pub const MAX_CYCLES: u64 = 20_000_000_000;

/// The Table-I distance limit used by the evaluated models.
pub const EVAL_MAX_DISTANCE: u16 = 31;

/// A failure while driving an experiment, with enough context to know
/// which workload/target/machine combination broke.
#[derive(Debug)]
pub enum ExperimentError {
    /// A workload failed to compile or link for one target.
    Build {
        /// Workload name.
        workload: String,
        /// Target description ("RV32IM", "STRAIGHT(RE+)", ...).
        target: &'static str,
        /// The underlying build failure.
        source: BuildError,
    },
    /// A machine model rejected the image outright.
    Machine {
        /// Workload name.
        workload: String,
        /// Machine configuration name.
        machine: String,
        /// The underlying construction failure.
        source: CoreError,
    },
    /// A run did not complete normally (trap, watchdog, or cycle/step
    /// budget).
    Abnormal {
        /// Workload name.
        workload: String,
        /// Machine or emulator description.
        machine: String,
        /// Human-readable exit description.
        exit: String,
    },
    /// Two variants of the same workload produced different output —
    /// the experiment's numbers would compare unlike programs.
    Divergence {
        /// Workload name.
        workload: String,
        /// The variant that disagrees with the baseline.
        variant: &'static str,
    },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Build { workload, target, source } => {
                write!(f, "{workload}/{target}: build failed: {source}")
            }
            ExperimentError::Machine { workload, machine, source } => {
                write!(f, "{workload} on {machine}: {source}")
            }
            ExperimentError::Abnormal { workload, machine, exit } => {
                write!(f, "{workload} on {machine}: did not complete: {exit}")
            }
            ExperimentError::Divergence { workload, variant } => {
                write!(f, "{workload}: {variant} output diverged from the baseline")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

fn target_name(target: Target) -> &'static str {
    match target {
        Target::Riscv => "RV32IM",
        Target::StraightRaw { .. } => "STRAIGHT(RAW)",
        Target::StraightRePlus { .. } => "STRAIGHT(RE+)",
    }
}

fn build_for(
    workload: &str,
    src: &str,
    target: Target,
) -> Result<straight_asm::Image, ExperimentError> {
    build(src, target).map_err(|source| ExperimentError::Build {
        workload: workload.to_string(),
        target: target_name(target),
        source,
    })
}

/// Runs an image and requires normal completion.
fn run_checked(
    workload: &str,
    image: &straight_asm::Image,
    cfg: MachineConfig,
) -> Result<SimResult, ExperimentError> {
    let machine = cfg.name.clone();
    let result = run_on(image, cfg, MAX_CYCLES).map_err(|source| ExperimentError::Machine {
        workload: workload.to_string(),
        machine: machine.clone(),
        source,
    })?;
    if result.exit_code.is_none() {
        return Err(ExperimentError::Abnormal {
            workload: workload.to_string(),
            machine,
            exit: format!("{:?}", result.exit),
        });
    }
    Ok(result)
}

/// One bar of a performance figure.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Bar label ("SS", "STRAIGHT(RAW)", "STRAIGHT(RE+)").
    pub label: String,
    /// Execution cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub retired: u64,
    /// Performance relative to the figure's baseline (1/cycles,
    /// normalized).
    pub relative: f64,
}

/// One workload's bar group.
#[derive(Debug, Clone)]
pub struct PerfGroup {
    /// Workload name.
    pub workload: String,
    /// Bars, baseline first.
    pub rows: Vec<PerfRow>,
}

/// Runs one workload on SS / STRAIGHT-RAW / STRAIGHT-RE+ with the
/// given machine pair, producing a Figure 11/12-style bar group.
fn perf_group(
    workload: &str,
    src: &str,
    ss_cfg: MachineConfig,
    st_cfg: MachineConfig,
) -> Result<PerfGroup, ExperimentError> {
    let ss = run_checked(workload, &build_for(workload, src, Target::Riscv)?, ss_cfg)?;
    let raw = run_checked(
        workload,
        &build_for(workload, src, Target::StraightRaw { max_distance: EVAL_MAX_DISTANCE })?,
        st_cfg.clone(),
    )?;
    let re = run_checked(
        workload,
        &build_for(workload, src, Target::StraightRePlus { max_distance: EVAL_MAX_DISTANCE })?,
        st_cfg,
    )?;
    if ss.stdout != raw.stdout {
        return Err(ExperimentError::Divergence {
            workload: workload.to_string(),
            variant: "STRAIGHT(RAW)",
        });
    }
    if ss.stdout != re.stdout {
        return Err(ExperimentError::Divergence {
            workload: workload.to_string(),
            variant: "STRAIGHT(RE+)",
        });
    }
    let base = ss.stats.cycles as f64;
    let mk = |label: &str, r: &SimResult| PerfRow {
        label: label.to_string(),
        cycles: r.stats.cycles,
        retired: r.stats.retired,
        relative: base / r.stats.cycles as f64,
    };
    Ok(PerfGroup {
        workload: workload.to_string(),
        rows: vec![mk("SS", &ss), mk("STRAIGHT(RAW)", &raw), mk("STRAIGHT(RE+)", &re)],
    })
}

/// Figure 11: 4-way relative performance on Dhrystone and CoreMark.
///
/// # Errors
///
/// Propagates any build, machine, or divergence failure with the
/// offending workload/target named.
pub fn fig11(dhry_iters: u32, cm_iters: u32) -> Result<Vec<PerfGroup>, ExperimentError> {
    Ok(vec![
        perf_group("Dhrystone", &dhrystone(dhry_iters), machines::ss_4way(), machines::straight_4way())?,
        perf_group("Coremark", &coremark(cm_iters), machines::ss_4way(), machines::straight_4way())?,
    ])
}

/// Figure 12: the same comparison on the 2-way models.
///
/// # Errors
///
/// See [`fig11`].
pub fn fig12(dhry_iters: u32, cm_iters: u32) -> Result<Vec<PerfGroup>, ExperimentError> {
    Ok(vec![
        perf_group("Dhrystone", &dhrystone(dhry_iters), machines::ss_2way(), machines::straight_2way())?,
        perf_group("Coremark", &coremark(cm_iters), machines::ss_2way(), machines::straight_2way())?,
    ])
}

/// Figure 13: the effect of the misprediction penalty — SS, SS with
/// an idealized (zero) penalty, and STRAIGHT RE+, for both scales on
/// CoreMark, normalized to SS-2way.
///
/// # Errors
///
/// See [`fig11`].
pub fn fig13(cm_iters: u32) -> Result<Vec<PerfGroup>, ExperimentError> {
    let workload = "Coremark";
    let src = coremark(cm_iters);
    let rv = build_for(workload, &src, Target::Riscv)?;
    let st =
        build_for(workload, &src, Target::StraightRePlus { max_distance: EVAL_MAX_DISTANCE })?;
    let base = run_checked(workload, &rv, machines::ss_2way())?.stats.cycles as f64;
    let mut out = Vec::new();
    for (scale, ss_cfg, st_cfg) in [
        ("2-way", machines::ss_2way(), machines::straight_2way()),
        ("4-way", machines::ss_4way(), machines::straight_4way()),
    ] {
        let ss = run_checked(workload, &rv, ss_cfg.clone())?;
        let nop = run_checked(workload, &rv, ss_cfg.with_ideal_recovery())?;
        let re = run_checked(workload, &st, st_cfg)?;
        let mk = |label: &str, r: &SimResult| PerfRow {
            label: label.to_string(),
            cycles: r.stats.cycles,
            retired: r.stats.retired,
            relative: base / r.stats.cycles as f64,
        };
        out.push(PerfGroup {
            workload: scale.to_string(),
            rows: vec![mk("SS", &ss), mk("SS no penalty", &nop), mk("STRAIGHT(RE+)", &re)],
        });
    }
    Ok(out)
}

/// Figure 14: Figure 11/12's CoreMark comparison with the TAGE
/// predictor instead of gshare.
///
/// # Errors
///
/// See [`fig11`].
pub fn fig14(cm_iters: u32) -> Result<Vec<PerfGroup>, ExperimentError> {
    let src = coremark(cm_iters);
    Ok(vec![
        perf_group(
            "Coremark 2-way",
            &src,
            machines::ss_2way().with_tage(),
            machines::straight_2way().with_tage(),
        )?,
        perf_group(
            "Coremark 4-way",
            &src,
            machines::ss_4way().with_tage(),
            machines::straight_4way().with_tage(),
        )?,
    ])
}

/// One bar of the retired-instruction-mix figure.
#[derive(Debug, Clone)]
pub struct MixRow {
    /// Bar label.
    pub label: String,
    /// Retired count per category.
    pub kinds: BTreeMap<&'static str, u64>,
    /// Total retired.
    pub total: u64,
}

/// Figure 15: retired-instruction mix on CoreMark for SS, STRAIGHT
/// RAW, and STRAIGHT RE+, in emulator (architectural) terms.
///
/// # Errors
///
/// See [`fig11`].
pub fn fig15(cm_iters: u32) -> Result<Vec<MixRow>, ExperimentError> {
    let workload = "Coremark";
    let src = coremark(cm_iters);
    let mut rows = Vec::new();
    for (label, target) in [
        ("SS", Target::Riscv),
        ("STRAIGHT(RAW)", Target::StraightRaw { max_distance: EVAL_MAX_DISTANCE }),
        ("STRAIGHT(RE+)", Target::StraightRePlus { max_distance: EVAL_MAX_DISTANCE }),
    ] {
        let image = build_for(workload, &src, target)?;
        let result = match target {
            Target::Riscv => straight_sim::emu::RiscvEmu::new(image).run(u64::MAX),
            _ => StraightEmu::new(image).run(u64::MAX),
        };
        if result.exit_code().is_none() {
            return Err(ExperimentError::Abnormal {
                workload: workload.to_string(),
                machine: format!("{label} emulator"),
                exit: format!("{:?}", result.exit),
            });
        }
        rows.push(MixRow { label: label.to_string(), total: result.stats.retired, kinds: result.stats.kinds });
    }
    Ok(rows)
}

/// Figure 16 data: cumulative source-distance fraction per workload,
/// measured on code compiled with the uppermost limit (1023).
#[derive(Debug, Clone)]
pub struct DistanceProfile {
    /// Workload name.
    pub workload: String,
    /// Cumulative fraction at distances 1, 2, 4, ..., 1024.
    pub cumulative: Vec<(u32, f64)>,
    /// Largest distance observed in the generated code.
    pub max_used: usize,
}

/// Figure 16: source-operand distance distribution.
///
/// # Errors
///
/// See [`fig11`].
pub fn fig16(dhry_iters: u32, cm_iters: u32) -> Result<Vec<DistanceProfile>, ExperimentError> {
    let mut out = Vec::new();
    for (name, src) in [("Dhrystone", dhrystone(dhry_iters)), ("Coremark", coremark(cm_iters))] {
        let image = build_for(name, &src, Target::StraightRePlus { max_distance: 1023 })?;
        let mut emu = StraightEmu::new(image);
        emu.profile_distances = true;
        let r = emu.run(u64::MAX);
        if r.exit_code().is_none() {
            return Err(ExperimentError::Abnormal {
                workload: name.to_string(),
                machine: "STRAIGHT emulator".to_string(),
                exit: format!("{:?}", r.exit),
            });
        }
        let cumulative = (0..=10)
            .map(|k| {
                let d = 1u32 << k;
                (d, r.stats.cumulative_fraction(d as usize))
            })
            .collect();
        out.push(DistanceProfile {
            workload: name.to_string(),
            cumulative,
            max_used: r.stats.max_distance_used(),
        });
    }
    Ok(out)
}

/// Figure 17: relative per-module power of the 2-way models at
/// several clock frequencies (see `straight-power` for the model).
///
/// # Errors
///
/// See [`fig11`].
pub fn fig17(dhry_iters: u32) -> Result<Vec<Figure17Row>, ExperimentError> {
    let workload = "Dhrystone";
    let src = dhrystone(dhry_iters);
    let ss = run_checked(workload, &build_for(workload, &src, Target::Riscv)?, machines::ss_2way())?;
    let st = run_checked(
        workload,
        &build_for(workload, &src, Target::StraightRePlus { max_distance: EVAL_MAX_DISTANCE })?,
        machines::straight_2way(),
    )?;
    Ok(figure17(&ss.stats, &st.stats, &[1.0, 2.5, 4.0]))
}

/// §VI-B sensitivity: CoreMark cycles at several ISA distance limits
/// (the paper reports ≈1 % degradation going from 1023 to 31).
///
/// # Errors
///
/// See [`fig11`].
pub fn sensitivity(cm_iters: u32, dists: &[u16]) -> Result<Vec<(u16, u64)>, ExperimentError> {
    let workload = "Coremark";
    let src = coremark(cm_iters);
    dists
        .iter()
        .map(|&d| {
            // The machine must provision MAX_RP = distance + ROB.
            let mut cfg = machines::straight_4way();
            cfg.max_distance = u32::from(d);
            cfg.phys_regs = cfg.phys_regs.max(u32::from(d) + cfg.rob_capacity);
            let image = build_for(workload, &src, Target::StraightRePlus { max_distance: d })?;
            let r = run_checked(workload, &image, cfg)?;
            Ok((d, r.stats.cycles))
        })
        .collect()
}

/// Raw access to a run's statistics for custom analyses.
///
/// # Errors
///
/// See [`fig11`].
pub fn stats_for(
    src: &str,
    target: Target,
    cfg: MachineConfig,
) -> Result<SimStats, ExperimentError> {
    let image = build_for("custom", src, target)?;
    Ok(run_checked("custom", &image, cfg)?.stats)
}
