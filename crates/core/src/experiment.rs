//! Drivers for the paper's experiments: one function per table/figure.
//!
//! Each returns plain data; the `straight-bench` binaries print them
//! in the paper's format and EXPERIMENTS.md records the outcomes.

use std::collections::BTreeMap;

use straight_power::{figure17, Figure17Row};
use straight_sim::emu::StraightEmu;
use straight_sim::pipeline::{MachineConfig, SimStats};
use straight_workloads::{coremark, dhrystone};

use crate::{build, machines, run_on, Target};

/// Cycle budget for experiment runs.
pub const MAX_CYCLES: u64 = 20_000_000_000;

/// The Table-I distance limit used by the evaluated models.
pub const EVAL_MAX_DISTANCE: u16 = 31;

/// One bar of a performance figure.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Bar label ("SS", "STRAIGHT(RAW)", "STRAIGHT(RE+)").
    pub label: String,
    /// Execution cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub retired: u64,
    /// Performance relative to the figure's baseline (1/cycles,
    /// normalized).
    pub relative: f64,
}

/// One workload's bar group.
#[derive(Debug, Clone)]
pub struct PerfGroup {
    /// Workload name.
    pub workload: String,
    /// Bars, baseline first.
    pub rows: Vec<PerfRow>,
}

fn straight_cfg(base: MachineConfig) -> MachineConfig {
    base
}

/// Runs one workload on SS / STRAIGHT-RAW / STRAIGHT-RE+ with the
/// given machine pair, producing a Figure 11/12-style bar group.
fn perf_group(
    workload: &str,
    src: &str,
    ss_cfg: MachineConfig,
    st_cfg: MachineConfig,
) -> PerfGroup {
    let ss = run_on(&build(src, Target::Riscv).expect("riscv build"), ss_cfg, MAX_CYCLES);
    let raw = run_on(
        &build(src, Target::StraightRaw { max_distance: EVAL_MAX_DISTANCE }).expect("raw build"),
        straight_cfg(st_cfg.clone()),
        MAX_CYCLES,
    );
    let re = run_on(
        &build(src, Target::StraightRePlus { max_distance: EVAL_MAX_DISTANCE }).expect("re+ build"),
        straight_cfg(st_cfg),
        MAX_CYCLES,
    );
    assert_eq!(ss.stdout, raw.stdout, "{workload}: RAW functional mismatch");
    assert_eq!(ss.stdout, re.stdout, "{workload}: RE+ functional mismatch");
    let base = ss.stats.cycles as f64;
    let mk = |label: &str, r: &straight_sim::pipeline::SimResult| PerfRow {
        label: label.to_string(),
        cycles: r.stats.cycles,
        retired: r.stats.retired,
        relative: base / r.stats.cycles as f64,
    };
    PerfGroup {
        workload: workload.to_string(),
        rows: vec![mk("SS", &ss), mk("STRAIGHT(RAW)", &raw), mk("STRAIGHT(RE+)", &re)],
    }
}

/// Figure 11: 4-way relative performance on Dhrystone and CoreMark.
#[must_use]
pub fn fig11(dhry_iters: u32, cm_iters: u32) -> Vec<PerfGroup> {
    vec![
        perf_group("Dhrystone", &dhrystone(dhry_iters), machines::ss_4way(), machines::straight_4way()),
        perf_group("Coremark", &coremark(cm_iters), machines::ss_4way(), machines::straight_4way()),
    ]
}

/// Figure 12: the same comparison on the 2-way models.
#[must_use]
pub fn fig12(dhry_iters: u32, cm_iters: u32) -> Vec<PerfGroup> {
    vec![
        perf_group("Dhrystone", &dhrystone(dhry_iters), machines::ss_2way(), machines::straight_2way()),
        perf_group("Coremark", &coremark(cm_iters), machines::ss_2way(), machines::straight_2way()),
    ]
}

/// Figure 13: the effect of the misprediction penalty — SS, SS with
/// an idealized (zero) penalty, and STRAIGHT RE+, for both scales on
/// CoreMark, normalized to SS-2way.
#[must_use]
pub fn fig13(cm_iters: u32) -> Vec<PerfGroup> {
    let src = coremark(cm_iters);
    let rv = build(&src, Target::Riscv).expect("riscv build");
    let st = build(&src, Target::StraightRePlus { max_distance: EVAL_MAX_DISTANCE }).expect("re+ build");
    let base = run_on(&rv, machines::ss_2way(), MAX_CYCLES).stats.cycles as f64;
    let mut out = Vec::new();
    for (scale, ss_cfg, st_cfg) in [
        ("2-way", machines::ss_2way(), machines::straight_2way()),
        ("4-way", machines::ss_4way(), machines::straight_4way()),
    ] {
        let ss = run_on(&rv, ss_cfg.clone(), MAX_CYCLES);
        let nop = run_on(&rv, ss_cfg.with_ideal_recovery(), MAX_CYCLES);
        let re = run_on(&st, st_cfg, MAX_CYCLES);
        let mk = |label: &str, r: &straight_sim::pipeline::SimResult| PerfRow {
            label: label.to_string(),
            cycles: r.stats.cycles,
            retired: r.stats.retired,
            relative: base / r.stats.cycles as f64,
        };
        out.push(PerfGroup {
            workload: scale.to_string(),
            rows: vec![mk("SS", &ss), mk("SS no penalty", &nop), mk("STRAIGHT(RE+)", &re)],
        });
    }
    out
}

/// Figure 14: Figure 11/12's CoreMark comparison with the TAGE
/// predictor instead of gshare.
#[must_use]
pub fn fig14(cm_iters: u32) -> Vec<PerfGroup> {
    let src = coremark(cm_iters);
    vec![
        perf_group(
            "Coremark 2-way",
            &src,
            machines::ss_2way().with_tage(),
            machines::straight_2way().with_tage(),
        ),
        perf_group(
            "Coremark 4-way",
            &src,
            machines::ss_4way().with_tage(),
            machines::straight_4way().with_tage(),
        ),
    ]
}

/// One bar of the retired-instruction-mix figure.
#[derive(Debug, Clone)]
pub struct MixRow {
    /// Bar label.
    pub label: String,
    /// Retired count per category.
    pub kinds: BTreeMap<&'static str, u64>,
    /// Total retired.
    pub total: u64,
}

/// Figure 15: retired-instruction mix on CoreMark for SS, STRAIGHT
/// RAW, and STRAIGHT RE+, in emulator (architectural) terms.
#[must_use]
pub fn fig15(cm_iters: u32) -> Vec<MixRow> {
    let src = coremark(cm_iters);
    let mut rows = Vec::new();
    for (label, target) in [
        ("SS", Target::Riscv),
        ("STRAIGHT(RAW)", Target::StraightRaw { max_distance: EVAL_MAX_DISTANCE }),
        ("STRAIGHT(RE+)", Target::StraightRePlus { max_distance: EVAL_MAX_DISTANCE }),
    ] {
        let image = build(&src, target).expect("build");
        let result = match target {
            Target::Riscv => straight_sim::emu::RiscvEmu::new(image).run(u64::MAX),
            _ => StraightEmu::new(image).run(u64::MAX),
        };
        assert!(result.exit_code().is_some(), "{label} did not finish");
        rows.push(MixRow { label: label.to_string(), total: result.stats.retired, kinds: result.stats.kinds });
    }
    rows
}

/// Figure 16 data: cumulative source-distance fraction per workload,
/// measured on code compiled with the uppermost limit (1023).
#[derive(Debug, Clone)]
pub struct DistanceProfile {
    /// Workload name.
    pub workload: String,
    /// Cumulative fraction at distances 1, 2, 4, ..., 1024.
    pub cumulative: Vec<(u32, f64)>,
    /// Largest distance observed in the generated code.
    pub max_used: usize,
}

/// Figure 16: source-operand distance distribution.
#[must_use]
pub fn fig16(dhry_iters: u32, cm_iters: u32) -> Vec<DistanceProfile> {
    let mut out = Vec::new();
    for (name, src) in [("Dhrystone", dhrystone(dhry_iters)), ("Coremark", coremark(cm_iters))] {
        let image = build(&src, Target::StraightRePlus { max_distance: 1023 }).expect("build");
        let mut emu = StraightEmu::new(image);
        emu.profile_distances = true;
        let r = emu.run(u64::MAX);
        assert!(r.exit_code().is_some());
        let cumulative = (0..=10)
            .map(|k| {
                let d = 1u32 << k;
                (d, r.stats.cumulative_fraction(d as usize))
            })
            .collect();
        out.push(DistanceProfile {
            workload: name.to_string(),
            cumulative,
            max_used: r.stats.max_distance_used(),
        });
    }
    out
}

/// Figure 17: relative per-module power of the 2-way models at
/// several clock frequencies (see `straight-power` for the model).
#[must_use]
pub fn fig17(dhry_iters: u32) -> Vec<Figure17Row> {
    let src = dhrystone(dhry_iters);
    let ss = run_on(&build(&src, Target::Riscv).expect("build"), machines::ss_2way(), MAX_CYCLES);
    let st = run_on(
        &build(&src, Target::StraightRePlus { max_distance: EVAL_MAX_DISTANCE }).expect("build"),
        machines::straight_2way(),
        MAX_CYCLES,
    );
    figure17(&ss.stats, &st.stats, &[1.0, 2.5, 4.0])
}

/// §VI-B sensitivity: CoreMark cycles at several ISA distance limits
/// (the paper reports ≈1 % degradation going from 1023 to 31).
#[must_use]
pub fn sensitivity(cm_iters: u32, dists: &[u16]) -> Vec<(u16, u64)> {
    let src = coremark(cm_iters);
    dists
        .iter()
        .map(|&d| {
            // The machine must provision MAX_RP = distance + ROB.
            let mut cfg = machines::straight_4way();
            cfg.max_distance = u32::from(d);
            cfg.phys_regs = cfg.phys_regs.max(u32::from(d) + cfg.rob_capacity);
            let image = build(&src, Target::StraightRePlus { max_distance: d }).expect("build");
            let r = run_on(&image, cfg, MAX_CYCLES);
            assert!(r.exit_code.is_some());
            (d, r.stats.cycles)
        })
        .collect()
}

/// Raw access to a run's statistics for custom analyses.
#[must_use]
pub fn stats_for(src: &str, target: Target, cfg: MachineConfig) -> SimStats {
    let image = build(src, target).expect("build");
    run_on(&image, cfg, MAX_CYCLES).stats
}
