//! The parallel experiment runner behind the `straight-lab` binary.
//!
//! [`run_lab`] flattens the selected [`ExperimentSpec`]s into one list
//! of cells and executes them on a fixed-size worker pool (`jobs`
//! threads; plain `std::thread::scope` — the container has no rayon).
//! Two caches make the full grid cheap:
//!
//! * an **image cache** — each (workload, target, iteration-count)
//!   triple is compiled and linked once, so Dhrystone/CoreMark are
//!   built once per ISA profile instead of once per figure;
//! * a **run cache** — cells with identical configuration
//!   fingerprints (e.g. Figure 17's Dhrystone/SS-2way run, which
//!   Figure 12 also needs) simulate once and share the result.
//!
//! Each cell yields a [`CellRecord`]; per experiment they are wrapped
//! in an [`ExperimentResult`] carrying provenance (git revision,
//! parameters, wall time) and written to `BENCH_<name>.json`. The
//! paper-shaped text report is re-rendered from those records.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use straight_asm::Image;
use straight_json::{fnv1a64, FromJson, Json, ToJson};
use straight_sim::emu::{RiscvEmu, StraightEmu};
use straight_sim::pipeline::SimResult;

use crate::experiment::{
    self, build_for, run_checked, target_name, CellKind, CellRecord, CellSpec, ExperimentError,
    ExperimentResult, ExperimentSpec, RunParams, WorkloadKind, SCHEMA_VERSION,
};
use crate::Target;

/// What to run and how.
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// Experiment names, in run order (validated against
    /// [`experiment::all`]).
    pub experiments: Vec<String>,
    /// Iteration counts and cycle budget.
    pub params: RunParams,
    /// Worker-thread cap (clamped to at least 1).
    pub jobs: usize,
    /// Where to write `BENCH_<name>.json`; `None` skips writing.
    pub out_dir: Option<PathBuf>,
}

impl LabConfig {
    /// A config running `experiments` with default parameters, as many
    /// jobs as the machine has cores, and no file output.
    #[must_use]
    pub fn new(experiments: Vec<String>) -> LabConfig {
        LabConfig { experiments, params: RunParams::default(), jobs: default_jobs(), out_dir: None }
    }
}

/// The machine's available parallelism (1 when unknown).
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// A failure of the runner as a whole.
#[derive(Debug)]
pub enum LabError {
    /// A requested experiment name is not in the grid.
    UnknownExperiment(String),
    /// A cell failed to build or run.
    Cell {
        /// Cell id (`experiment/group/label`).
        cell: String,
        /// The underlying failure.
        source: Arc<ExperimentError>,
    },
    /// Records could not be assembled into the figure (divergence or
    /// missing cells).
    Assemble {
        /// Experiment name.
        experiment: String,
        /// The underlying failure.
        source: ExperimentError,
    },
    /// A `BENCH_*.json` file could not be written.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for LabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabError::UnknownExperiment(name) => {
                write!(f, "unknown experiment `{name}` (see --list)")
            }
            LabError::Cell { cell, source } => write!(f, "cell {cell}: {source}"),
            LabError::Assemble { experiment, source } => write!(f, "{experiment}: {source}"),
            LabError::Io { path, source } => write!(f, "{}: {source}", path.display()),
        }
    }
}

impl std::error::Error for LabError {}

/// One completed experiment: the machine-readable result, its
/// re-rendered text report, and where the JSON landed (if written).
#[derive(Debug, Clone)]
pub struct LabRun {
    /// The serializable result (the `BENCH_<name>.json` content).
    pub result: ExperimentResult,
    /// The paper-shaped text report.
    pub rendered: String,
    /// Path of the written JSON file.
    pub path: Option<PathBuf>,
}

/// The checked-out git revision, for record provenance. Honors
/// `STRAIGHT_GIT_REV` (useful in CI), then asks `git rev-parse HEAD`,
/// then falls back to `"unknown"`.
#[must_use]
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("STRAIGHT_GIT_REV") {
        return rev;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

type ImageKey = (WorkloadKind, Target, u32);
type ImageSlot = Arc<OnceLock<Result<Arc<Image>, Arc<ExperimentError>>>>;
type RunSlot = Arc<OnceLock<Result<Arc<TimedRun>, Arc<ExperimentError>>>>;

/// A cached simulation plus how long the simulation itself took on
/// the host (the profiler's per-run cost; excludes compile time and
/// record assembly).
struct TimedRun {
    result: SimResult,
    sim_wall_ms: f64,
}

/// Shared state of one grid run: both caches.
#[derive(Default)]
struct Caches {
    images: Mutex<HashMap<ImageKey, ImageSlot>>,
    runs: Mutex<HashMap<String, RunSlot>>,
}

impl Caches {
    fn image_slot(&self, key: ImageKey) -> ImageSlot {
        let mut map = self.images.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry(key).or_default().clone()
    }

    fn run_slot(&self, fingerprint: &str) -> RunSlot {
        let mut map = self.runs.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry(fingerprint.to_string()).or_default().clone()
    }
}

fn hex_digest(text: &str) -> String {
    format!("{:016x}", fnv1a64(text.as_bytes()))
}

/// Compiles (or fetches) the image for a cell's workload/target.
fn image_for(
    caches: &Caches,
    workload: WorkloadKind,
    target: Target,
    params: &RunParams,
) -> Result<Arc<Image>, Arc<ExperimentError>> {
    let slot = caches.image_slot((workload, target, workload.iters(params)));
    slot.get_or_init(|| {
        build_for(workload.name(), &workload.source(params), target)
            .map(Arc::new)
            .map_err(Arc::new)
    })
    .clone()
}

/// Executes one cell, producing its record.
fn exec_cell(
    spec: &CellSpec,
    params: &RunParams,
    caches: &Caches,
) -> Result<CellRecord, Arc<ExperimentError>> {
    let started = Instant::now();
    let fingerprint = spec.fingerprint(params);
    let mut record = CellRecord {
        id: spec.id(),
        experiment: spec.experiment.to_string(),
        group: spec.group.clone(),
        label: spec.label.clone(),
        workload: spec.workload.map(|w| w.name().to_string()),
        target: spec.target().map(|t| target_name(t).to_string()),
        machine: spec.machine().map(|m| m.name.clone()),
        config_fingerprint: fingerprint.clone(),
        param: spec.param,
        cycles: 0,
        retired: 0,
        ipc: 0.0,
        stats: None,
        kinds: None,
        distances: None,
        max_distance_used: None,
        stdout_digest: None,
        wall_ms: 0.0,
        sim_wall_ms: None,
        ksim_cycles_per_sec: None,
    };
    match &spec.kind {
        CellKind::Pipeline { target, machine } => {
            let workload = spec.workload.ok_or_else(|| {
                Arc::new(ExperimentError::Malformed {
                    experiment: spec.experiment.to_string(),
                    msg: "pipeline cell without a workload".to_string(),
                })
            })?;
            let image = image_for(caches, workload, *target, params)?;
            // Identical (workload, target, machine, iters) cells — the
            // same point appearing in several figures — simulate once.
            let slot = caches.run_slot(&fingerprint);
            let timed = slot
                .get_or_init(|| {
                    let sim_started = Instant::now();
                    run_checked(workload.name(), &image, machine.clone())
                        .map(|result| {
                            let sim_wall_ms = sim_started.elapsed().as_secs_f64() * 1e3;
                            Arc::new(TimedRun { result, sim_wall_ms })
                        })
                        .map_err(Arc::new)
                })
                .clone()?;
            let result = &timed.result;
            record.cycles = result.stats.cycles;
            record.retired = result.stats.retired;
            record.ipc = result.stats.ipc();
            record.stats = Some(result.stats.clone());
            record.stdout_digest = Some(hex_digest(&result.stdout));
            record.sim_wall_ms = Some(timed.sim_wall_ms);
            // cycles per millisecond ≡ kilo-cycles per second.
            if timed.sim_wall_ms > 0.0 {
                record.ksim_cycles_per_sec =
                    Some(result.stats.cycles as f64 / timed.sim_wall_ms);
            }
        }
        CellKind::EmuMix { target } => {
            let workload = spec.workload.ok_or_else(|| {
                Arc::new(ExperimentError::Malformed {
                    experiment: spec.experiment.to_string(),
                    msg: "emulator cell without a workload".to_string(),
                })
            })?;
            let image = image_for(caches, workload, *target, params)?;
            let result = match target {
                Target::Riscv => RiscvEmu::new((*image).clone()).run(u64::MAX),
                _ => StraightEmu::new((*image).clone()).run(u64::MAX),
            };
            if result.exit_code().is_none() {
                return Err(Arc::new(ExperimentError::Abnormal {
                    workload: workload.name().to_string(),
                    machine: format!("{} emulator", spec.label),
                    exit: format!("{:?}", result.exit),
                }));
            }
            record.retired = result.stats.retired;
            record.kinds = Some(
                result.stats.kinds.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
            );
            record.stdout_digest = Some(hex_digest(&result.stdout));
        }
        CellKind::EmuDistance { target } => {
            let workload = spec.workload.ok_or_else(|| {
                Arc::new(ExperimentError::Malformed {
                    experiment: spec.experiment.to_string(),
                    msg: "emulator cell without a workload".to_string(),
                })
            })?;
            let image = image_for(caches, workload, *target, params)?;
            let mut emu = StraightEmu::new((*image).clone());
            emu.profile_distances = true;
            let result = emu.run(u64::MAX);
            if result.exit_code().is_none() {
                return Err(Arc::new(ExperimentError::Abnormal {
                    workload: workload.name().to_string(),
                    machine: "STRAIGHT emulator".to_string(),
                    exit: format!("{:?}", result.exit),
                }));
            }
            record.retired = result.stats.retired;
            record.distances = Some(
                (0..=10)
                    .map(|k| {
                        let d = 1u32 << k;
                        (d, result.stats.cumulative_fraction(d as usize))
                    })
                    .collect(),
            );
            record.max_distance_used = Some(result.stats.max_distance_used() as u64);
            record.stdout_digest = Some(hex_digest(&result.stdout));
        }
        CellKind::ConfigDump { .. } => {}
    }
    record.wall_ms = started.elapsed().as_secs_f64() * 1e3;
    Ok(record)
}

/// Resolves the requested names against the grid.
fn resolve(names: &[String]) -> Result<Vec<ExperimentSpec>, LabError> {
    names
        .iter()
        .map(|name| {
            experiment::find(name).ok_or_else(|| LabError::UnknownExperiment(name.clone()))
        })
        .collect()
}

/// Runs the selected experiments' cells in parallel and assembles one
/// [`LabRun`] per experiment.
///
/// # Errors
///
/// The first cell/assembly/write failure, as a [`LabError`]. A failing
/// cell does not cancel in-flight cells, but no files are written for
/// the failing experiment.
pub fn run_lab(config: &LabConfig) -> Result<Vec<LabRun>, LabError> {
    let specs = resolve(&config.experiments)?;
    let git_rev = git_rev();

    // Flatten: (experiment index, cell) in deterministic grid order.
    let work: Vec<(usize, CellSpec)> = specs
        .iter()
        .enumerate()
        .flat_map(|(i, spec)| spec.cells().into_iter().map(move |c| (i, c)))
        .collect();

    type CellSlot = Mutex<Option<Result<CellRecord, Arc<ExperimentError>>>>;
    let caches = Caches::default();
    let cursor = AtomicUsize::new(0);
    let results: Vec<CellSlot> = work.iter().map(|_| Mutex::new(None)).collect();
    let workers = config.jobs.clamp(1, work.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some((_, cell)) = work.get(index) else { break };
                let outcome = exec_cell(cell, &config.params, &caches);
                *results[index].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                    Some(outcome);
            });
        }
    });

    // Collect per experiment, preserving grid order.
    let mut per_exp: Vec<Vec<CellRecord>> = specs.iter().map(|_| Vec::new()).collect();
    for ((exp_index, cell), slot) in work.iter().zip(&results) {
        let outcome = slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            .unwrap_or_else(|| {
                Err(Arc::new(ExperimentError::Malformed {
                    experiment: cell.experiment.to_string(),
                    msg: "cell was never executed".to_string(),
                }))
            });
        match outcome {
            Ok(record) => per_exp[*exp_index].push(record),
            Err(source) => return Err(LabError::Cell { cell: cell.id(), source }),
        }
    }

    let mut runs = Vec::new();
    for (spec, cells) in specs.iter().zip(per_exp) {
        let result = ExperimentResult {
            schema_version: SCHEMA_VERSION,
            experiment: spec.name.to_string(),
            title: spec.title.to_string(),
            paper_ref: spec.paper_ref.to_string(),
            git_rev: git_rev.clone(),
            params: config.params,
            wall_ms: cells.iter().map(|c| c.wall_ms).sum(),
            cells,
        };
        let rendered = spec.render(&result).map_err(|source| LabError::Assemble {
            experiment: spec.name.to_string(),
            source,
        })?;
        let path = match &config.out_dir {
            Some(dir) => Some(write_result(dir, &result)?),
            None => None,
        };
        runs.push(LabRun { result, rendered, path });
    }
    Ok(runs)
}

/// Writes one experiment's records to `<dir>/BENCH_<name>.json`.
///
/// # Errors
///
/// [`LabError::Io`] when the directory cannot be created or the file
/// cannot be written.
pub fn write_result(dir: &Path, result: &ExperimentResult) -> Result<PathBuf, LabError> {
    std::fs::create_dir_all(dir)
        .map_err(|source| LabError::Io { path: dir.to_path_buf(), source })?;
    let path = dir.join(format!("BENCH_{}.json", result.experiment));
    std::fs::write(&path, result.to_json().render_pretty())
        .map_err(|source| LabError::Io { path: path.clone(), source })?;
    Ok(path)
}

/// Parses and shape-checks a `BENCH_<name>.json` file, returning the
/// typed result.
///
/// # Errors
///
/// [`LabError::Io`] when unreadable; [`LabError::Assemble`] when the
/// JSON is invalid or does not match the record schema.
pub fn validate_file(path: &Path) -> Result<ExperimentResult, LabError> {
    let text = std::fs::read_to_string(path)
        .map_err(|source| LabError::Io { path: path.to_path_buf(), source })?;
    let parsed = Json::parse(&text).map_err(|e| LabError::Assemble {
        experiment: path.display().to_string(),
        source: ExperimentError::Malformed {
            experiment: path.display().to_string(),
            msg: e.to_string(),
        },
    })?;
    let result = ExperimentResult::from_json(&parsed).map_err(|e| LabError::Assemble {
        experiment: path.display().to_string(),
        source: ExperimentError::Malformed {
            experiment: path.display().to_string(),
            msg: e.to_string(),
        },
    })?;
    if result.schema_version != SCHEMA_VERSION {
        return Err(LabError::Assemble {
            experiment: result.experiment.clone(),
            source: ExperimentError::Malformed {
                experiment: result.experiment.clone(),
                msg: format!(
                    "schema version {} (this binary reads {})",
                    result.schema_version, SCHEMA_VERSION
                ),
            },
        });
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_rejected() {
        let err = run_lab(&LabConfig::new(vec!["fig99".to_string()]));
        assert!(matches!(err, Err(LabError::UnknownExperiment(_))));
    }

    #[test]
    fn table1_runs_without_simulation() {
        let runs = run_lab(&LabConfig::new(vec!["table1".to_string()])).unwrap();
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.result.cells.len(), 4);
        assert!(run.rendered.contains("== Table I: evaluated models =="));
        assert!(run.result.cells.iter().all(|c| c.stats.is_none() && c.cycles == 0));
        // Fingerprints must distinguish the four models.
        let mut fps: Vec<&str> =
            run.result.cells.iter().map(|c| c.config_fingerprint.as_str()).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), 4);
    }
}
