//! The lab: a long-lived experiment-running session.
//!
//! [`LabSession`] is the one entry point to executing grid cells. It
//! owns everything that used to be per-invocation state of the old
//! `run_lab` free function:
//!
//! * a persistent **worker pool** (`jobs` threads; plain
//!   `std::thread` — the container has no rayon) that outlives any
//!   single run, so a daemon can keep submitting work to warm threads;
//! * an **image cache** — each (workload, target, iteration-count)
//!   triple is compiled and linked once, so Dhrystone/CoreMark are
//!   built once per ISA profile across every request the session ever
//!   serves;
//! * a **run cache** — cells with identical configuration
//!   fingerprints (e.g. Figure 17's Dhrystone/SS-2way run, which
//!   Figure 12 also needs, or the same cell submitted by two daemon
//!   clients) simulate once and share the result;
//! * **cache counters** ([`CacheStats`]) making the deduplication
//!   observable.
//!
//! Construction is explicit:
//! `LabSession::builder().jobs(8).profile(true).build()?`. Work enters
//! either through the blocking [`LabSession::run`] (what `straight-lab`
//! uses in-process) or the asynchronous [`LabSession::submit`] /
//! [`Batch`] pair (what the `straightd` daemon builds its job queue
//! on). Each cell yields a [`CellRecord`]; per experiment they are
//! wrapped in an [`ExperimentResult`] carrying provenance (git
//! revision, parameters, wall time) and written to `BENCH_<name>.json`.
//! The paper-shaped text report is re-rendered from those records.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use straight_asm::Image;
use straight_json::{fnv1a64, obj, FromJson, Json, ToJson};
use straight_sim::emu::{ExecBackend, RiscvEmu, StraightEmu, TierConfig};
use straight_sim::pipeline::SimResult;

use crate::experiment::{
    build_for, run_checked, run_sampled, target_name, CellKind, CellRecord, CellSpec,
    ExperimentError, ExperimentId, ExperimentResult, ExperimentSpec, RunParams, WorkloadKind,
    SCHEMA_VERSION,
};
use crate::Target;

/// The machine's available parallelism (1 when unknown).
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A failure of the runner as a whole.
#[derive(Debug)]
pub enum LabError {
    /// A session was configured with zero worker threads.
    InvalidJobs,
    /// A cell failed to build or run.
    Cell {
        /// Cell id (`experiment/group/label`).
        cell: String,
        /// The underlying failure.
        source: Arc<ExperimentError>,
    },
    /// Records could not be assembled into the figure (divergence or
    /// missing cells).
    Assemble {
        /// Experiment name.
        experiment: String,
        /// The underlying failure.
        source: ExperimentError,
    },
    /// A `BENCH_*.json` file could not be written.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for LabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabError::InvalidJobs => {
                write!(f, "--jobs must be at least 1 (0 would run nothing)")
            }
            LabError::Cell { cell, source } => write!(f, "cell {cell}: {source}"),
            LabError::Assemble { experiment, source } => write!(f, "{experiment}: {source}"),
            LabError::Io { path, source } => write!(f, "{}: {source}", path.display()),
        }
    }
}

impl std::error::Error for LabError {}

/// One completed experiment: the machine-readable result, its
/// re-rendered text report, and where the JSON landed (if written).
#[derive(Debug, Clone)]
pub struct LabRun {
    /// The serializable result (the `BENCH_<name>.json` content).
    pub result: ExperimentResult,
    /// The paper-shaped text report.
    pub rendered: String,
    /// Path of the written JSON file.
    pub path: Option<PathBuf>,
}

/// The checked-out git revision, for record provenance. Honors
/// `STRAIGHT_GIT_REV` (useful in CI), then asks `git rev-parse HEAD`,
/// then falls back to `"unknown"`.
#[must_use]
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("STRAIGHT_GIT_REV") {
        return rev;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

type ImageKey = (WorkloadKind, Target, u32);
type ImageSlot = Arc<OnceLock<Result<Arc<Image>, Arc<ExperimentError>>>>;
type RunSlot = Arc<OnceLock<Result<Arc<TimedRun>, Arc<ExperimentError>>>>;
type CellOutcome = Result<CellRecord, Arc<ExperimentError>>;

/// A cached simulation plus how long the simulation itself took on
/// the host (the profiler's per-run cost; excludes compile time and
/// record assembly).
struct TimedRun {
    result: SimResult,
    sim_wall_ms: f64,
}

/// A snapshot of the session's cache activity. Hits minus misses make
/// the image/run deduplication externally observable (the daemon
/// reports this through its `stats` op).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Image-cache lookups (one per cell that compiles a workload).
    pub image_lookups: u64,
    /// Image-cache lookups that compiled (first sight of the key).
    pub image_misses: u64,
    /// Run-cache lookups (one per pipeline cell).
    pub run_lookups: u64,
    /// Run-cache lookups that simulated (first sight of the
    /// fingerprint).
    pub run_misses: u64,
}

impl CacheStats {
    /// Image-cache lookups served from the cache.
    #[must_use]
    pub fn image_hits(&self) -> u64 {
        self.image_lookups - self.image_misses
    }

    /// Run-cache lookups served from the cache (deduplicated
    /// simulations).
    #[must_use]
    pub fn run_hits(&self) -> u64 {
        self.run_lookups - self.run_misses
    }
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Json {
        obj()
            .field("image_lookups", &self.image_lookups)
            .field("image_hits", &self.image_hits())
            .field("image_misses", &self.image_misses)
            .field("run_lookups", &self.run_lookups)
            .field("run_hits", &self.run_hits())
            .field("run_misses", &self.run_misses)
            .build()
    }
}

/// Shared state of one session: both caches plus their counters.
#[derive(Default)]
struct Caches {
    images: Mutex<HashMap<ImageKey, ImageSlot>>,
    runs: Mutex<HashMap<String, RunSlot>>,
    image_lookups: AtomicU64,
    image_misses: AtomicU64,
    run_lookups: AtomicU64,
    run_misses: AtomicU64,
}

impl Caches {
    fn image_slot(&self, key: ImageKey) -> ImageSlot {
        self.image_lookups.fetch_add(1, Ordering::Relaxed);
        lock(&self.images).entry(key).or_default().clone()
    }

    fn run_slot(&self, fingerprint: &str) -> RunSlot {
        self.run_lookups.fetch_add(1, Ordering::Relaxed);
        lock(&self.runs).entry(fingerprint.to_string()).or_default().clone()
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            image_lookups: self.image_lookups.load(Ordering::Relaxed),
            image_misses: self.image_misses.load(Ordering::Relaxed),
            run_lookups: self.run_lookups.load(Ordering::Relaxed),
            run_misses: self.run_misses.load(Ordering::Relaxed),
        }
    }
}

fn hex_digest(text: &str) -> String {
    format!("{:016x}", fnv1a64(text.as_bytes()))
}

/// A persistent cache of completed cell records, keyed by
/// configuration fingerprint. The session consults it before running
/// a cycle-accurate (pipeline) cell and offers every freshly computed
/// pipeline record back to it, so an implementation backed by disk
/// (the bench crate's `RecordStore`) survives process restarts and
/// lets a rebooted daemon answer `fetch` without re-simulating.
///
/// Only pipeline cells go through the cache: their fingerprint
/// captures everything that determines the measurement, and they are
/// the expensive kind. Emulator and config-dump cells re-execute (the
/// fingerprint does not distinguish emulator cell kinds, and they are
/// cheap and deterministic anyway).
///
/// Implementations must be infallible at this boundary: a failing
/// backend degrades (e.g. to memory-only mode) rather than erroring,
/// so simulation always proceeds.
pub trait RecordCache: Send + Sync {
    /// The stored record for `fingerprint`, if any. Identity fields
    /// (`id`, `group`, ...) of the returned record may describe a
    /// different cell with the same fingerprint; callers take only the
    /// measurement fields.
    fn get(&self, fingerprint: &str) -> Option<CellRecord>;

    /// Offers a freshly computed record. Implementations deduplicate
    /// by fingerprint.
    fn put(&self, fingerprint: &str, record: &CellRecord);
}

/// Compiles (or fetches) the image for a cell's workload/target.
fn image_for(
    caches: &Caches,
    workload: WorkloadKind,
    target: Target,
    params: &RunParams,
) -> Result<Arc<Image>, Arc<ExperimentError>> {
    let slot = caches.image_slot((workload, target, workload.iters(params)));
    slot.get_or_init(|| {
        caches.image_misses.fetch_add(1, Ordering::Relaxed);
        build_for(workload.name(), &workload.source(params), target)
            .map(Arc::new)
            .map_err(Arc::new)
    })
    .clone()
}

/// Executes one cell, producing its record.
fn exec_cell(spec: &CellSpec, params: &RunParams, shared: &SessionShared) -> CellOutcome {
    let caches = &shared.caches;
    if let Some(victim) = shared.chaos_panic_cell.as_deref() {
        if victim == "any" || victim == spec.id() {
            panic!("chaos: injected panic in {}", spec.id());
        }
    }
    let started = Instant::now();
    let fingerprint = spec.fingerprint(params);
    let mut record = CellRecord {
        id: spec.id(),
        experiment: spec.experiment.to_string(),
        group: spec.group.clone(),
        label: spec.label.clone(),
        workload: spec.workload.map(|w| w.name().to_string()),
        target: spec.target().map(|t| target_name(t).to_string()),
        machine: spec.machine().map(|m| m.name.clone()),
        config_fingerprint: fingerprint.clone(),
        param: spec.param,
        cycles: 0,
        retired: 0,
        ipc: 0.0,
        stats: None,
        kinds: None,
        distances: None,
        max_distance_used: None,
        stdout_digest: None,
        wall_ms: 0.0,
        sim_wall_ms: None,
        ksim_cycles_per_sec: None,
    };
    match &spec.kind {
        CellKind::Pipeline { target, machine } => {
            let workload = spec.workload.ok_or_else(|| {
                Arc::new(ExperimentError::Malformed {
                    experiment: spec.experiment.to_string(),
                    msg: "pipeline cell without a workload".to_string(),
                })
            })?;
            // A persisted record for this fingerprint (a previous
            // process's simulation) short-circuits everything,
            // including the workload build: only the measurement
            // fields are taken, the identity fields stay this cell's.
            if let Some(stored) = shared.record_cache.as_ref().and_then(|c| c.get(&fingerprint)) {
                record.cycles = stored.cycles;
                record.retired = stored.retired;
                record.ipc = stored.ipc;
                record.stats = stored.stats;
                record.stdout_digest = stored.stdout_digest;
                record.sim_wall_ms = stored.sim_wall_ms;
                record.ksim_cycles_per_sec = stored.ksim_cycles_per_sec;
                record.wall_ms = started.elapsed().as_secs_f64() * 1e3;
                return Ok(record);
            }
            let image = image_for(caches, workload, *target, params)?;
            // Identical (workload, target, machine, iters) cells — the
            // same point appearing in several figures, or the same
            // cell submitted by several daemon clients — simulate
            // once.
            let slot = caches.run_slot(&fingerprint);
            let timed = slot
                .get_or_init(|| {
                    caches.run_misses.fetch_add(1, Ordering::Relaxed);
                    let sim_started = Instant::now();
                    run_checked(workload.name(), &image, machine.clone())
                        .map(|result| {
                            let sim_wall_ms = sim_started.elapsed().as_secs_f64() * 1e3;
                            Arc::new(TimedRun { result, sim_wall_ms })
                        })
                        .map_err(Arc::new)
                })
                .clone()?;
            let result = &timed.result;
            record.cycles = result.stats.cycles;
            record.retired = result.stats.retired;
            record.ipc = result.stats.ipc();
            record.stats = Some(result.stats.clone());
            record.stdout_digest = Some(hex_digest(&result.stdout));
            record.sim_wall_ms = Some(timed.sim_wall_ms);
            // cycles per millisecond ≡ kilo-cycles per second.
            if timed.sim_wall_ms > 0.0 {
                record.ksim_cycles_per_sec =
                    Some(result.stats.cycles as f64 / timed.sim_wall_ms);
            }
        }
        CellKind::EmuMix { target } => {
            let workload = spec.workload.ok_or_else(|| {
                Arc::new(ExperimentError::Malformed {
                    experiment: spec.experiment.to_string(),
                    msg: "emulator cell without a workload".to_string(),
                })
            })?;
            let image = image_for(caches, workload, *target, params)?;
            let result = match target {
                Target::Riscv => {
                    RiscvEmu::new((*image).clone()).run_tiered(u64::MAX, shared.emu_tier)
                }
                _ => StraightEmu::new((*image).clone()).run_tiered(u64::MAX, shared.emu_tier),
            };
            if result.exit_code().is_none() {
                return Err(Arc::new(ExperimentError::Abnormal {
                    workload: workload.name().to_string(),
                    machine: format!("{} emulator", spec.label),
                    exit: format!("{:?}", result.exit),
                }));
            }
            record.retired = result.stats.retired;
            record.kinds = Some(
                result.stats.kinds().into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            );
            record.stdout_digest = Some(hex_digest(&result.stdout));
        }
        CellKind::EmuDistance { target } => {
            let workload = spec.workload.ok_or_else(|| {
                Arc::new(ExperimentError::Malformed {
                    experiment: spec.experiment.to_string(),
                    msg: "emulator cell without a workload".to_string(),
                })
            })?;
            let image = image_for(caches, workload, *target, params)?;
            let mut emu = StraightEmu::new((*image).clone());
            emu.profile_distances = true;
            // Distance profiling needs per-operand hooks, so this runs
            // on the interpreter tier regardless of the session tier.
            let result = emu.run(u64::MAX);
            if result.exit_code().is_none() {
                return Err(Arc::new(ExperimentError::Abnormal {
                    workload: workload.name().to_string(),
                    machine: "STRAIGHT emulator".to_string(),
                    exit: format!("{:?}", result.exit),
                }));
            }
            record.retired = result.stats.retired;
            record.distances = Some(
                (0..=10)
                    .map(|k| {
                        let d = 1u32 << k;
                        (d, result.stats.cumulative_fraction(d as usize))
                    })
                    .collect(),
            );
            record.max_distance_used = Some(result.stats.max_distance_used() as u64);
            record.stdout_digest = Some(hex_digest(&result.stdout));
        }
        CellKind::ConfigDump { .. } => {}
        // Sampled cells bypass both the run cache and the record cache:
        // their estimate is cheap relative to a full simulation, and
        // intentionally re-derived every run.
        CellKind::Sampled { target, machine } => {
            let workload = spec.workload.ok_or_else(|| {
                Arc::new(ExperimentError::Malformed {
                    experiment: spec.experiment.to_string(),
                    msg: "sampled cell without a workload".to_string(),
                })
            })?;
            let image = image_for(caches, workload, *target, params)?;
            let outcome = run_sampled(workload.name(), &image, machine.clone(), *target)
                .map_err(Arc::new)?;
            record.cycles = outcome.cycles_est;
            record.retired = outcome.retired;
            record.ipc = outcome.ipc_est;
            record.stdout_digest = Some(hex_digest(&outcome.stdout));
        }
    }
    record.wall_ms = started.elapsed().as_secs_f64() * 1e3;
    if let (CellKind::Pipeline { .. }, Some(cache)) = (&spec.kind, shared.record_cache.as_ref()) {
        cache.put(&fingerprint, &record);
    }
    Ok(record)
}

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Extracts the human-readable message from a caught panic payload
/// (`panic!` with a literal yields `&str`, with a format string
/// `String`; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        (*msg).to_string()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// State shared between a session handle and its worker threads.
struct SessionShared {
    caches: Caches,
    queue: Mutex<SessionQueue>,
    available: Condvar,
    git_rev: String,
    /// Optional persistent record cache (the daemon's on-disk store).
    record_cache: Option<Arc<dyn RecordCache>>,
    /// Caught worker panics (each one is also a structured
    /// [`ExperimentError::Panic`] outcome).
    panics: AtomicU64,
    /// Chaos injection: a cell id (or `"any"`) whose execution
    /// deliberately panics, exercising the panic-isolation path.
    chaos_panic_cell: Option<String>,
    /// Execution tier emulator-mix cells run on (sampled cells always
    /// fast-forward on the fast tier; distance profiling always
    /// interprets).
    emu_tier: TierConfig,
}

struct SessionQueue {
    tasks: std::collections::VecDeque<Task>,
    shutdown: bool,
}

/// Progress/result state of one submitted batch of cells.
struct BatchShared {
    cells: Vec<CellSpec>,
    slots: Vec<Mutex<Option<CellOutcome>>>,
    started: AtomicUsize,
    done: Mutex<usize>,
    done_cv: Condvar,
    cancelled: AtomicBool,
}

/// A handle to an asynchronously submitted batch of cells (see
/// [`LabSession::submit`]). Cells execute on the session's worker
/// pool in submission order; the handle observes progress, waits for
/// completion, or cancels cells that have not started yet.
#[derive(Clone)]
pub struct Batch {
    shared: Arc<BatchShared>,
}

impl Batch {
    /// `(completed, total)` cell counts.
    #[must_use]
    pub fn progress(&self) -> (usize, usize) {
        (*lock(&self.shared.done), self.shared.cells.len())
    }

    /// Whether any cell has begun executing.
    #[must_use]
    pub fn started(&self) -> bool {
        self.shared.started.load(Ordering::Relaxed) > 0
    }

    /// Whether every cell has completed (successfully or not).
    #[must_use]
    pub fn is_done(&self) -> bool {
        let (done, total) = self.progress();
        done == total
    }

    /// Whether [`Batch::cancel`] was called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.shared.cancelled.load(Ordering::Relaxed)
    }

    /// Requests cancellation: cells that have not started resolve to
    /// [`ExperimentError::Cancelled`] instead of executing. Cells
    /// already in flight run to completion (the simulator has no
    /// preemption points), so [`Batch::wait`] still returns promptly.
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::Relaxed);
    }

    /// Blocks until every cell has completed, then returns the
    /// per-cell outcomes in submission order.
    #[must_use]
    pub fn wait(&self) -> Vec<CellOutcome> {
        let total = self.shared.cells.len();
        let mut done = lock(&self.shared.done);
        while *done < total {
            done = self
                .shared
                .done_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(done);
        self.outcomes()
    }

    /// The cell specs this batch executes, in submission order.
    #[must_use]
    pub fn cells(&self) -> &[CellSpec] {
        &self.shared.cells
    }

    /// The per-cell outcomes recorded so far (`Err(Cancelled)` slots
    /// included); unfinished cells are absent from their slot and
    /// reported as a `Malformed` error. Prefer [`Batch::wait`] unless
    /// the batch is known to be done.
    #[must_use]
    pub fn outcomes(&self) -> Vec<CellOutcome> {
        self.shared
            .cells
            .iter()
            .zip(&self.shared.slots)
            .map(|(cell, slot)| {
                lock(slot).clone().unwrap_or_else(|| {
                    Err(Arc::new(ExperimentError::Malformed {
                        experiment: cell.experiment.to_string(),
                        msg: "cell was never executed".to_string(),
                    }))
                })
            })
            .collect()
    }
}

/// Configures and constructs a [`LabSession`]; see
/// [`LabSession::builder`].
#[derive(Clone)]
pub struct LabSessionBuilder {
    jobs: usize,
    profile: bool,
    out_dir: Option<PathBuf>,
    git_rev: Option<String>,
    record_cache: Option<Arc<dyn RecordCache>>,
    chaos_panic_cell: Option<String>,
    emu_tier: TierConfig,
}

impl LabSessionBuilder {
    /// Worker-thread count. Must be at least 1; [`Self::build`]
    /// rejects 0 with [`LabError::InvalidJobs`] instead of clamping
    /// silently.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> LabSessionBuilder {
        self.jobs = jobs;
        self
    }

    /// Whether front-ends should surface the host-side throughput
    /// profile (the records always carry it; this flag is the caller's
    /// presentation choice, stored once on the session).
    #[must_use]
    pub fn profile(mut self, profile: bool) -> LabSessionBuilder {
        self.profile = profile;
        self
    }

    /// Where completed experiments write `BENCH_<name>.json`; `None`
    /// (the default) skips writing.
    #[must_use]
    pub fn out_dir(mut self, dir: Option<PathBuf>) -> LabSessionBuilder {
        self.out_dir = dir;
        self
    }

    /// Overrides the recorded git revision (defaults to [`git_rev`]).
    #[must_use]
    pub fn git_rev(mut self, rev: impl Into<String>) -> LabSessionBuilder {
        self.git_rev = Some(rev.into());
        self
    }

    /// Attaches a persistent record cache (see [`RecordCache`]):
    /// pipeline cells consult it before simulating and offer their
    /// records back to it, so a disk-backed implementation makes
    /// completed simulations survive restarts.
    #[must_use]
    pub fn record_cache(mut self, cache: Arc<dyn RecordCache>) -> LabSessionBuilder {
        self.record_cache = Some(cache);
        self
    }

    /// Chaos injection for fault-tolerance tests: executing the cell
    /// with this id (or any cell, when `"any"`) panics deliberately.
    /// The panic must surface as a structured
    /// [`ExperimentError::Panic`] outcome without harming the pool.
    #[must_use]
    pub fn chaos_panic_cell(mut self, cell: impl Into<String>) -> LabSessionBuilder {
        self.chaos_panic_cell = Some(cell.into());
        self
    }

    /// Execution tier for emulator-mix cells (default: the
    /// interpreter, which the golden records were produced on). The
    /// fast tier is bit-equivalent by construction and cross-checked
    /// by the lockstep suite; `TierConfig::fast_lockstep()` validates
    /// it on every run.
    #[must_use]
    pub fn emu_tier(mut self, tier: TierConfig) -> LabSessionBuilder {
        self.emu_tier = tier;
        self
    }

    /// Starts the session: spawns the worker pool and initializes
    /// empty caches.
    ///
    /// # Errors
    ///
    /// [`LabError::InvalidJobs`] when `jobs` is 0.
    pub fn build(self) -> Result<LabSession, LabError> {
        if self.jobs == 0 {
            return Err(LabError::InvalidJobs);
        }
        let shared = Arc::new(SessionShared {
            caches: Caches::default(),
            queue: Mutex::new(SessionQueue {
                tasks: std::collections::VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            git_rev: self.git_rev.unwrap_or_else(git_rev),
            record_cache: self.record_cache,
            panics: AtomicU64::new(0),
            chaos_panic_cell: self.chaos_panic_cell,
            emu_tier: self.emu_tier,
        });
        let workers = (0..self.jobs)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let task = {
                        let mut queue = lock(&shared.queue);
                        loop {
                            if let Some(task) = queue.tasks.pop_front() {
                                break task;
                            }
                            if queue.shutdown {
                                return;
                            }
                            queue = shared
                                .available
                                .wait(queue)
                                .unwrap_or_else(PoisonError::into_inner);
                        }
                    };
                    // Panic containment, second layer: tasks catch
                    // cell panics themselves (and turn them into
                    // structured outcomes), but even a panic escaping
                    // a task must not take the worker thread with it —
                    // the loop continues, which is equivalent to
                    // respawning the worker without losing the queue.
                    if catch_unwind(AssertUnwindSafe(task)).is_err() {
                        shared.panics.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        Ok(LabSession {
            shared,
            workers,
            jobs: self.jobs,
            profile: self.profile,
            out_dir: self.out_dir,
        })
    }
}

/// A long-lived experiment-running session: worker pool, image/run
/// caches, and cache counters, with explicit caller-controlled
/// lifetime (dropping the session drains and joins the pool). See the
/// module docs for the full picture.
pub struct LabSession {
    shared: Arc<SessionShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    jobs: usize,
    profile: bool,
    out_dir: Option<PathBuf>,
}

impl LabSession {
    /// Starts configuring a session. Defaults: [`default_jobs`]
    /// workers, no profiling, no output directory.
    #[must_use]
    pub fn builder() -> LabSessionBuilder {
        LabSessionBuilder {
            jobs: default_jobs(),
            profile: false,
            out_dir: None,
            git_rev: None,
            record_cache: None,
            chaos_panic_cell: None,
            emu_tier: TierConfig::interp(),
        }
    }

    /// The worker-pool size.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether the caller asked for throughput-profile presentation.
    #[must_use]
    pub fn profile(&self) -> bool {
        self.profile
    }

    /// The git revision stamped into this session's records.
    #[must_use]
    pub fn git_rev(&self) -> &str {
        &self.shared.git_rev
    }

    /// A snapshot of the cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.caches.stats()
    }

    /// How many cell executions have panicked in this session. Each
    /// panic is caught at the worker boundary: the submitter sees a
    /// structured [`ExperimentError::Panic`] outcome and the pool
    /// keeps its full worker count.
    #[must_use]
    pub fn panic_count(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Enqueues `cells` on the worker pool and returns immediately
    /// with a [`Batch`] handle. Cells of concurrent batches interleave
    /// in FIFO order; results are deduplicated through the session
    /// caches.
    #[must_use]
    pub fn submit(&self, cells: Vec<CellSpec>, params: RunParams) -> Batch {
        let batch = Arc::new(BatchShared {
            slots: cells.iter().map(|_| Mutex::new(None)).collect(),
            cells,
            started: AtomicUsize::new(0),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            cancelled: AtomicBool::new(false),
        });
        {
            let mut queue = lock(&self.shared.queue);
            for index in 0..batch.cells.len() {
                let batch = Arc::clone(&batch);
                let shared = Arc::clone(&self.shared);
                queue.tasks.push_back(Box::new(move || {
                    let cell = &batch.cells[index];
                    let outcome = if batch.cancelled.load(Ordering::Relaxed) {
                        Err(Arc::new(ExperimentError::Cancelled { cell: cell.id() }))
                    } else {
                        batch.started.fetch_add(1, Ordering::Relaxed);
                        // Panic containment, first layer: a panicking
                        // cell becomes a structured failed outcome the
                        // submitter can observe, never a dead worker
                        // or a forever-pending batch slot.
                        match catch_unwind(AssertUnwindSafe(|| exec_cell(cell, &params, &shared)))
                        {
                            Ok(outcome) => outcome,
                            Err(payload) => {
                                shared.panics.fetch_add(1, Ordering::Relaxed);
                                Err(Arc::new(ExperimentError::Panic {
                                    cell: cell.id(),
                                    msg: panic_message(payload.as_ref()),
                                }))
                            }
                        }
                    };
                    *lock(&batch.slots[index]) = Some(outcome);
                    let mut done = lock(&batch.done);
                    *done += 1;
                    batch.done_cv.notify_all();
                }));
            }
        }
        self.shared.available.notify_all();
        Batch { shared: batch }
    }

    /// Runs one experiment to completion: submits its cells, waits,
    /// assembles the [`ExperimentResult`], renders the text report,
    /// and writes `BENCH_<name>.json` when an output directory is
    /// configured.
    ///
    /// # Errors
    ///
    /// The first cell/assembly/write failure, as a [`LabError`]. A
    /// failing cell does not cancel in-flight cells, but no file is
    /// written for the failing experiment.
    pub fn run_experiment(&self, id: ExperimentId, params: RunParams) -> Result<LabRun, LabError> {
        let spec = id.spec();
        let batch = self.submit(spec.cells(), params);
        let outcomes = batch.wait();
        self.assemble(&spec, params, &batch, outcomes)
    }

    /// Runs several experiments, pipelining their cells through the
    /// pool (all cells are enqueued up front, results are assembled in
    /// request order).
    ///
    /// # Errors
    ///
    /// As [`LabSession::run_experiment`]; the first failure wins.
    pub fn run(&self, ids: &[ExperimentId], params: RunParams) -> Result<Vec<LabRun>, LabError> {
        let submitted: Vec<(ExperimentSpec, Batch)> = ids
            .iter()
            .map(|id| {
                let spec = id.spec();
                let batch = self.submit(spec.cells(), params);
                (spec, batch)
            })
            .collect();
        submitted
            .into_iter()
            .map(|(spec, batch)| {
                let outcomes = batch.wait();
                self.assemble(&spec, params, &batch, outcomes)
            })
            .collect()
    }

    /// Builds the [`ExperimentResult`] (and [`LabRun`]) from a
    /// completed batch's outcomes.
    ///
    /// # Errors
    ///
    /// [`LabError::Cell`]/[`LabError::Assemble`]/[`LabError::Io`] as
    /// in [`LabSession::run_experiment`].
    pub fn assemble(
        &self,
        spec: &ExperimentSpec,
        params: RunParams,
        batch: &Batch,
        outcomes: Vec<CellOutcome>,
    ) -> Result<LabRun, LabError> {
        let mut cells = Vec::with_capacity(outcomes.len());
        for (cell, outcome) in batch.cells().iter().zip(outcomes) {
            match outcome {
                Ok(record) => cells.push(record),
                Err(source) => return Err(LabError::Cell { cell: cell.id(), source }),
            }
        }
        let result = ExperimentResult {
            schema_version: SCHEMA_VERSION,
            experiment: spec.id.to_string(),
            title: spec.title.to_string(),
            paper_ref: spec.paper_ref.to_string(),
            git_rev: self.shared.git_rev.clone(),
            params,
            wall_ms: cells.iter().map(|c| c.wall_ms).sum(),
            cells,
        };
        let rendered = spec.render(&result).map_err(|source| LabError::Assemble {
            experiment: spec.id.to_string(),
            source,
        })?;
        let path = match &self.out_dir {
            Some(dir) => Some(write_result(dir, &result)?),
            None => None,
        };
        Ok(LabRun { result, rendered, path })
    }
}

impl Drop for LabSession {
    fn drop(&mut self) {
        lock(&self.shared.queue).shutdown = true;
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Writes one experiment's records to `<dir>/BENCH_<name>.json`.
///
/// # Errors
///
/// [`LabError::Io`] when the directory cannot be created or the file
/// cannot be written.
pub fn write_result(dir: &Path, result: &ExperimentResult) -> Result<PathBuf, LabError> {
    std::fs::create_dir_all(dir)
        .map_err(|source| LabError::Io { path: dir.to_path_buf(), source })?;
    let path = dir.join(format!("BENCH_{}.json", result.experiment));
    std::fs::write(&path, result.to_json().render_pretty())
        .map_err(|source| LabError::Io { path: path.clone(), source })?;
    Ok(path)
}

/// Parses and shape-checks a `BENCH_<name>.json` file, returning the
/// typed result.
///
/// # Errors
///
/// [`LabError::Io`] when unreadable; [`LabError::Assemble`] when the
/// JSON is invalid or does not match the record schema.
pub fn validate_file(path: &Path) -> Result<ExperimentResult, LabError> {
    let text = std::fs::read_to_string(path)
        .map_err(|source| LabError::Io { path: path.to_path_buf(), source })?;
    let parsed = Json::parse(&text).map_err(|e| LabError::Assemble {
        experiment: path.display().to_string(),
        source: ExperimentError::Malformed {
            experiment: path.display().to_string(),
            msg: e.to_string(),
        },
    })?;
    let result = ExperimentResult::from_json(&parsed).map_err(|e| LabError::Assemble {
        experiment: path.display().to_string(),
        source: ExperimentError::Malformed {
            experiment: path.display().to_string(),
            msg: e.to_string(),
        },
    })?;
    if result.schema_version != SCHEMA_VERSION {
        return Err(LabError::Assemble {
            experiment: result.experiment.clone(),
            source: ExperimentError::Malformed {
                experiment: result.experiment.clone(),
                msg: format!(
                    "schema version {} (this binary reads {})",
                    result.schema_version, SCHEMA_VERSION
                ),
            },
        });
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> LabSession {
        LabSession::builder().jobs(2).build().unwrap()
    }

    #[test]
    fn zero_jobs_is_rejected_not_clamped() {
        let err = LabSession::builder().jobs(0).build().err().expect("jobs(0) must be rejected");
        assert!(matches!(err, LabError::InvalidJobs));
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn unknown_experiment_never_reaches_the_session() {
        // Stringly-typed selection dies at the edge now: the parse
        // error carries the full list of valid ids.
        let err = "fig99".parse::<ExperimentId>().unwrap_err();
        assert_eq!(err.name, "fig99");
        let msg = err.to_string();
        for id in ExperimentId::ALL {
            assert!(msg.contains(id.name()), "{msg} should list {id}");
        }
    }

    #[test]
    fn table1_runs_without_simulation() {
        let session = session();
        let run = session.run_experiment(ExperimentId::Table1, RunParams::default()).unwrap();
        assert_eq!(run.result.cells.len(), 4);
        assert!(run.rendered.contains("== Table I: evaluated models =="));
        assert!(run.result.cells.iter().all(|c| c.stats.is_none() && c.cycles == 0));
        // Fingerprints must distinguish the four models.
        let mut fps: Vec<&str> =
            run.result.cells.iter().map(|c| c.config_fingerprint.as_str()).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), 4);
    }

    #[test]
    fn cancelled_batches_resolve_without_executing() {
        let session = session();
        let spec = ExperimentId::Table1.spec();
        let batch = session.submit(spec.cells(), RunParams::default());
        // Whether or not cells started, cancellation completes the
        // batch and wait() returns.
        batch.cancel();
        let outcomes = batch.wait();
        assert_eq!(outcomes.len(), 4);
        assert!(batch.is_done());
        for outcome in outcomes {
            match outcome {
                Ok(record) => assert_eq!(record.experiment, "table1"),
                Err(e) => assert!(matches!(*e, ExperimentError::Cancelled { .. })),
            }
        }
    }

    #[test]
    fn panicking_cell_is_a_structured_outcome_and_the_pool_survives() {
        let spec = ExperimentId::Table1.spec();
        let cells = spec.cells();
        let victim = cells[0].id();
        // One worker: if the panic killed it, the remaining cells
        // would never run and wait() would hang.
        let session = LabSession::builder()
            .jobs(1)
            .chaos_panic_cell(victim.clone())
            .build()
            .unwrap();
        let batch = session.submit(cells.clone(), RunParams::default());
        let outcomes = batch.wait();
        assert_eq!(outcomes.len(), 4);
        match &outcomes[0] {
            Err(e) => {
                assert!(matches!(**e, ExperimentError::Panic { .. }), "got {e}");
                let msg = e.to_string();
                assert!(msg.contains("panicked") && msg.contains(&victim), "got {msg}");
            }
            Ok(_) => panic!("the chaos cell must fail"),
        }
        for outcome in &outcomes[1..] {
            assert!(outcome.is_ok(), "non-victim cells still run on the surviving worker");
        }
        assert_eq!(session.panic_count(), 1);
        // The same worker keeps serving subsequent jobs.
        let survivors: Vec<_> = cells.into_iter().filter(|c| c.id() != victim).collect();
        let again = session.submit(survivors, RunParams::default()).wait();
        assert!(again.iter().all(Result::is_ok));
        assert_eq!(session.panic_count(), 1, "only the injected panic fired");
    }

    #[test]
    fn record_cache_hits_skip_simulation_and_keep_cell_identity() {
        use crate::experiment::CellKind;

        struct MemCache {
            map: Mutex<HashMap<String, CellRecord>>,
            puts: AtomicU64,
        }
        impl RecordCache for MemCache {
            fn get(&self, fingerprint: &str) -> Option<CellRecord> {
                lock(&self.map).get(fingerprint).cloned()
            }
            fn put(&self, fingerprint: &str, record: &CellRecord) {
                self.puts.fetch_add(1, Ordering::Relaxed);
                lock(&self.map).insert(fingerprint.to_string(), record.clone());
            }
        }

        let cell = ExperimentId::Fig17
            .spec()
            .cells()
            .into_iter()
            .find(|c| matches!(c.kind, CellKind::Pipeline { .. }))
            .expect("fig17 has pipeline cells");
        let params = RunParams { dhry_iters: 5, cm_iters: 1, ..RunParams::default() };
        let fingerprint = cell.fingerprint(&params);
        // A sentinel record under another cell's identity, as a
        // restarted daemon would load it from disk.
        let stored = CellRecord {
            id: "other/Cell/Identity".to_string(),
            experiment: "other".to_string(),
            group: "Cell".to_string(),
            label: "Identity".to_string(),
            workload: Some("Dhrystone".to_string()),
            target: None,
            machine: None,
            config_fingerprint: fingerprint.clone(),
            param: None,
            cycles: 424_242,
            retired: 7,
            ipc: 1.5,
            stats: None,
            kinds: None,
            distances: None,
            max_distance_used: None,
            stdout_digest: Some("cafe".to_string()),
            wall_ms: 99.0,
            sim_wall_ms: Some(3.0),
            ksim_cycles_per_sec: Some(141_414.0),
        };
        let cache = Arc::new(MemCache {
            map: Mutex::new(HashMap::from([(fingerprint, stored)])),
            puts: AtomicU64::new(0),
        });
        let session = LabSession::builder()
            .jobs(1)
            .record_cache(Arc::clone(&cache) as Arc<dyn RecordCache>)
            .build()
            .unwrap();
        let outcomes = session.submit(vec![cell.clone()], params).wait();
        let record = outcomes[0].as_ref().expect("cache hit succeeds");
        // Measurement fields come from the cache...
        assert_eq!(record.cycles, 424_242);
        assert_eq!(record.stdout_digest.as_deref(), Some("cafe"));
        assert_eq!(record.sim_wall_ms, Some(3.0));
        // ...identity fields stay the requested cell's...
        assert_eq!(record.id, cell.id());
        assert_eq!(record.experiment, "fig17");
        // ...and neither a build nor a simulation happened.
        let stats = session.cache_stats();
        assert_eq!(stats.image_lookups, 0);
        assert_eq!(stats.run_lookups, 0);
        assert_eq!(cache.puts.load(Ordering::Relaxed), 0, "a hit is not re-offered");
    }

    #[test]
    fn session_caches_persist_across_runs() {
        let session = session();
        let params = RunParams { dhry_iters: 5, cm_iters: 1, ..RunParams::default() };
        let first = session.run_experiment(ExperimentId::Fig16, params).unwrap();
        let after_first = session.cache_stats();
        assert_eq!(after_first.image_hits(), 0, "cold cache compiles everything");
        assert!(after_first.image_misses > 0);
        let second = session.run_experiment(ExperimentId::Fig16, params).unwrap();
        let after_second = session.cache_stats();
        assert_eq!(
            after_second.image_misses, after_first.image_misses,
            "second run recompiles nothing"
        );
        assert!(after_second.image_hits() > 0);
        assert_eq!(first.result.normalized(), second.result.normalized());
    }
}
