//! Plain-text rendering of experiment results, in the shape of the
//! paper's figures. The input types are assembled from
//! [`CellRecord`](crate::experiment::CellRecord)s by
//! [`ExperimentSpec::render`](crate::experiment::ExperimentSpec::render),
//! so a saved `BENCH_<name>.json` regenerates its figure exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use straight_power::Figure17Row;
use straight_sim::pipeline::MachineConfig;

/// One bar of a performance figure.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Bar label ("SS", "STRAIGHT(RAW)", "STRAIGHT(RE+)").
    pub label: String,
    /// Execution cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub retired: u64,
    /// Performance relative to the figure's baseline (1/cycles,
    /// normalized).
    pub relative: f64,
}

/// One workload's bar group.
#[derive(Debug, Clone)]
pub struct PerfGroup {
    /// Workload name.
    pub workload: String,
    /// Bars, baseline first.
    pub rows: Vec<PerfRow>,
}

/// One bar of the retired-instruction-mix figure.
#[derive(Debug, Clone)]
pub struct MixRow {
    /// Bar label.
    pub label: String,
    /// Retired count per category.
    pub kinds: BTreeMap<String, u64>,
    /// Total retired.
    pub total: u64,
}

/// Figure 16 data: cumulative source-distance fraction per workload,
/// measured on code compiled with the uppermost limit (1023).
#[derive(Debug, Clone)]
pub struct DistanceProfile {
    /// Workload name.
    pub workload: String,
    /// Cumulative fraction at distances 1, 2, 4, ..., 1024.
    pub cumulative: Vec<(u32, f64)>,
    /// Largest distance observed in the generated code.
    pub max_used: usize,
}

/// One full-vs-sampled comparison of the methodology experiment: the
/// same (workload, target, machine) point simulated to completion and
/// estimated from checkpointed sample intervals.
#[derive(Debug, Clone)]
pub struct SampledRow {
    /// Workload name.
    pub workload: String,
    /// Configuration label ("SS", "STRAIGHT(RE+)").
    pub label: String,
    /// Cycles of the full cycle-accurate run.
    pub full_cycles: u64,
    /// IPC of the full run.
    pub full_ipc: f64,
    /// Extrapolated cycles from the sampled intervals.
    pub est_cycles: u64,
    /// Aggregate IPC over the sampled intervals.
    pub est_ipc: f64,
}

/// Renders a performance-bar figure (Figures 11–14).
#[must_use]
pub fn render_perf(title: &str, groups: &[PerfGroup]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    for g in groups {
        let _ = writeln!(out, "[{}]", g.workload);
        for r in &g.rows {
            let bar_len = (r.relative * 40.0).round().clamp(0.0, 78.0) as usize;
            let _ = writeln!(
                out,
                "  {:<16} rel={:+.3}  cycles={:>12}  retired={:>12}  {}",
                r.label,
                r.relative,
                r.cycles,
                r.retired,
                "#".repeat(bar_len)
            );
        }
    }
    out
}

/// Renders the retired-mix figure (Figure 15), normalized to the
/// first row's total.
#[must_use]
pub fn render_mix(rows: &[MixRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 15: retired instruction mix (normalized to SS) ==");
    let base = rows.first().map(|r| r.total).unwrap_or(1) as f64;
    let cats = ["jump+branch", "alu", "ld", "st", "rmov", "nop", "other"];
    let _ = write!(out, "  {:<16}", "");
    for c in cats {
        let _ = write!(out, "{c:>13}");
    }
    let _ = writeln!(out, "{:>13}", "TOTAL");
    for r in rows {
        let _ = write!(out, "  {:<16}", r.label);
        for c in cats {
            let v = r.kinds.get(c).copied().unwrap_or(0) as f64 / base;
            let _ = write!(out, "{v:>13.3}");
        }
        let _ = writeln!(out, "{:>13.3}", r.total as f64 / base);
    }
    out
}

/// Renders the distance-distribution figure (Figure 16).
#[must_use]
pub fn render_distances(profiles: &[DistanceProfile]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 16: cumulative fraction of source distances ==");
    for p in profiles {
        let _ = writeln!(out, "[{}] (max distance used: {})", p.workload, p.max_used);
        for (d, f) in &p.cumulative {
            let _ = writeln!(out, "  <= {d:>5}: {:>6.1} %  {}", f * 100.0, "#".repeat((f * 50.0) as usize));
        }
    }
    out
}

/// Renders the power figure (Figure 17).
#[must_use]
pub fn render_power(rows: &[Figure17Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 17: relative power (normalized to SS at 1.0x, per module) ==");
    let _ = writeln!(
        out,
        "  {:<8}{:>14}{:>14}{:>14}{:>14}{:>14}{:>14}",
        "freq", "SS rename", "ST rename", "SS regfile", "ST regfile", "SS other", "ST other"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "  {:<8.1}{:>14.3}{:>14.3}{:>14.3}{:>14.3}{:>14.3}{:>14.3}",
            r.freq, r.ss.rename, r.straight.rename, r.ss.regfile, r.straight.regfile, r.ss.other, r.straight.other
        );
    }
    out
}

/// Renders the sensitivity table (§VI-B).
#[must_use]
pub fn render_sensitivity(rows: &[(u16, u64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Sensitivity: max source distance vs CoreMark cycles ==");
    let base = rows.iter().map(|&(_, c)| c).min().unwrap_or(1) as f64;
    for &(d, cycles) in rows {
        let _ = writeln!(out, "  max_distance={d:>5}: {cycles:>12} cycles ({:+.2} %)", (cycles as f64 / base - 1.0) * 100.0);
    }
    out
}

/// Renders the sampled-vs-full comparison table.
#[must_use]
pub fn render_sampled(rows: &[SampledRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Sampled: checkpoint-sampled simulation vs full runs ==");
    let _ = writeln!(
        out,
        "  {:<12}{:<18}{:>14}{:>14}{:>10}{:>9}{:>9}{:>10}",
        "workload", "model", "full cycles", "est cycles", "err %", "full ipc", "est ipc", "err %"
    );
    for r in rows {
        let cycle_err = (r.est_cycles as f64 / r.full_cycles as f64 - 1.0) * 100.0;
        let ipc_err = (r.est_ipc / r.full_ipc - 1.0) * 100.0;
        let _ = writeln!(
            out,
            "  {:<12}{:<18}{:>14}{:>14}{:>+10.2}{:>9.3}{:>9.3}{:>+10.2}",
            r.workload, r.label, r.full_cycles, r.est_cycles, cycle_err, r.full_ipc, r.est_ipc, ipc_err
        );
    }
    out
}

/// Renders Table I (the evaluated machine models).
#[must_use]
pub fn render_table1(configs: &[MachineConfig]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table I: evaluated models ==");
    for cfg in configs {
        let _ = writeln!(out, "[{}]", cfg.name);
        let _ = writeln!(out, "  isa             {:?}", cfg.isa);
        let _ = writeln!(out, "  fetch width     {}", cfg.fetch_width);
        let _ = writeln!(out, "  front-end depth {}", cfg.frontend_latency);
        let _ = writeln!(out, "  ROB capacity    {}", cfg.rob_capacity);
        let _ = writeln!(out, "  scheduler       {}-way, {} entries", cfg.issue_width, cfg.iq_entries);
        let _ = writeln!(out, "  register file   {}", cfg.phys_regs);
        let _ = writeln!(out, "  LSQ             LD {} / ST {}", cfg.lsq_ld, cfg.lsq_st);
        let _ = writeln!(
            out,
            "  exec units      ALU {}, MUL {}, DIV {}, BC {}, Mem {}",
            cfg.units.alu, cfg.units.mul, cfg.units.div, cfg.units.bc, cfg.units.mem
        );
        let _ = writeln!(out, "  commit width    {}", cfg.commit_width);
        let _ = writeln!(out, "  predictor       {:?}", cfg.predictor);
        let _ = writeln!(out, "  L3              {}", if cfg.hierarchy.l3.is_some() { "2 MiB" } else { "none" });
        if cfg.isa == straight_sim::pipeline::IsaKind::Straight {
            let _ = writeln!(out, "  max distance    {}", cfg.max_distance);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_rendering_contains_rows() {
        let g = vec![PerfGroup {
            workload: "Toy".into(),
            rows: vec![
                PerfRow { label: "SS".into(), cycles: 100, retired: 80, relative: 1.0 },
                PerfRow { label: "STRAIGHT(RE+)".into(), cycles: 84, retired: 90, relative: 1.19 },
            ],
        }];
        let s = render_perf("Figure X", &g);
        assert!(s.contains("Figure X"));
        assert!(s.contains("STRAIGHT(RE+)"));
        assert!(s.contains("rel=+1.190"));
    }

    #[test]
    fn sensitivity_rendering() {
        let s = render_sensitivity(&[(1023, 1000), (31, 1010)]);
        assert!(s.contains("max_distance= 1023"));
        assert!(s.contains("+1.00 %"));
    }

    #[test]
    fn table1_lists_all_models() {
        let s = render_table1(&[
            crate::machines::ss_2way(),
            crate::machines::straight_2way(),
            crate::machines::ss_4way(),
            crate::machines::straight_4way(),
        ]);
        for name in ["SS-2way", "STRAIGHT-2way", "SS-4way", "STRAIGHT-4way"] {
            assert!(s.contains(&format!("[{name}]")));
        }
        assert!(s.contains("max distance"));
    }
}
