//! Plain-text rendering of experiment results, in the shape of the
//! paper's figures.

use std::fmt::Write as _;

use crate::experiment::{DistanceProfile, MixRow, PerfGroup};
use straight_power::Figure17Row;

/// Renders a performance-bar figure (Figures 11–14).
#[must_use]
pub fn render_perf(title: &str, groups: &[PerfGroup]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    for g in groups {
        let _ = writeln!(out, "[{}]", g.workload);
        for r in &g.rows {
            let bar_len = (r.relative * 40.0).round().clamp(0.0, 78.0) as usize;
            let _ = writeln!(
                out,
                "  {:<16} rel={:+.3}  cycles={:>12}  retired={:>12}  {}",
                r.label,
                r.relative,
                r.cycles,
                r.retired,
                "#".repeat(bar_len)
            );
        }
    }
    out
}

/// Renders the retired-mix figure (Figure 15), normalized to the
/// first row's total.
#[must_use]
pub fn render_mix(rows: &[MixRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 15: retired instruction mix (normalized to SS) ==");
    let base = rows.first().map(|r| r.total).unwrap_or(1) as f64;
    let cats = ["jump+branch", "alu", "ld", "st", "rmov", "nop", "other"];
    let _ = write!(out, "  {:<16}", "");
    for c in cats {
        let _ = write!(out, "{c:>13}");
    }
    let _ = writeln!(out, "{:>13}", "TOTAL");
    for r in rows {
        let _ = write!(out, "  {:<16}", r.label);
        for c in cats {
            let v = r.kinds.get(c).copied().unwrap_or(0) as f64 / base;
            let _ = write!(out, "{v:>13.3}");
        }
        let _ = writeln!(out, "{:>13.3}", r.total as f64 / base);
    }
    out
}

/// Renders the distance-distribution figure (Figure 16).
#[must_use]
pub fn render_distances(profiles: &[DistanceProfile]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 16: cumulative fraction of source distances ==");
    for p in profiles {
        let _ = writeln!(out, "[{}] (max distance used: {})", p.workload, p.max_used);
        for (d, f) in &p.cumulative {
            let _ = writeln!(out, "  <= {d:>5}: {:>6.1} %  {}", f * 100.0, "#".repeat((f * 50.0) as usize));
        }
    }
    out
}

/// Renders the power figure (Figure 17).
#[must_use]
pub fn render_power(rows: &[Figure17Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 17: relative power (normalized to SS at 1.0x, per module) ==");
    let _ = writeln!(
        out,
        "  {:<8}{:>14}{:>14}{:>14}{:>14}{:>14}{:>14}",
        "freq", "SS rename", "ST rename", "SS regfile", "ST regfile", "SS other", "ST other"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "  {:<8.1}{:>14.3}{:>14.3}{:>14.3}{:>14.3}{:>14.3}{:>14.3}",
            r.freq, r.ss.rename, r.straight.rename, r.ss.regfile, r.straight.regfile, r.ss.other, r.straight.other
        );
    }
    out
}

/// Renders the sensitivity table (§VI-B).
#[must_use]
pub fn render_sensitivity(rows: &[(u16, u64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Sensitivity: max source distance vs CoreMark cycles ==");
    let base = rows.iter().map(|&(_, c)| c).min().unwrap_or(1) as f64;
    for &(d, cycles) in rows {
        let _ = writeln!(out, "  max_distance={d:>5}: {cycles:>12} cycles ({:+.2} %)", (cycles as f64 / base - 1.0) * 100.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::PerfRow;

    #[test]
    fn perf_rendering_contains_rows() {
        let g = vec![PerfGroup {
            workload: "Toy".into(),
            rows: vec![
                PerfRow { label: "SS".into(), cycles: 100, retired: 80, relative: 1.0 },
                PerfRow { label: "STRAIGHT(RE+)".into(), cycles: 84, retired: 90, relative: 1.19 },
            ],
        }];
        let s = render_perf("Figure X", &g);
        assert!(s.contains("Figure X"));
        assert!(s.contains("STRAIGHT(RE+)"));
        assert!(s.contains("rel=+1.190"));
    }

    #[test]
    fn sensitivity_rendering() {
        let s = render_sensitivity(&[(1023, 1000), (31, 1010)]);
        assert!(s.contains("max_distance= 1023"));
        assert!(s.contains("+1.00 %"));
    }
}
