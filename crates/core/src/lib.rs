//! # straight-core
//!
//! The high-level facade of the STRAIGHT reproduction — the layer the
//! evaluation stack stands on:
//!
//! * [`build`] / [`Target`] — compile MinC for either machine;
//! * [`machines`] — the Table-I machine models;
//! * [`experiment`] — the evaluation as a uniform grid of named
//!   experiments (Figures 11–17, the §VI-B sensitivity study,
//!   Table I), selected by the typed [`experiment::ExperimentId`] and
//!   described by [`experiment::ExperimentSpec`]s, each cell producing
//!   a serializable [`experiment::CellRecord`];
//! * [`lab`] — the [`lab::LabSession`] experiment-running session
//!   (persistent worker pool, image/run caches with hit counters,
//!   blocking and asynchronous submission, `BENCH_<name>.json`
//!   output) behind both the `straight-lab` binary and the
//!   `straightd` daemon;
//! * [`report`] — paper-shaped text rendering, re-derived from the
//!   records.
//!
//! ```
//! use straight_core::{build, Target, machines, run_on};
//!
//! let image = build("int main() { return 6 * 7; }", Target::StraightRePlus { max_distance: 31 }).unwrap();
//! let result = run_on(&image, machines::straight_4way(), 1_000_000).unwrap();
//! assert_eq!(result.exit_code, Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod lab;
pub mod report;

use straight_asm::{link_riscv, link_straight, Image};
use straight_compiler::{compile_riscv, compile_straight, StraightOptions};
use straight_ir::compile_source;
use straight_sim::pipeline::{simulate, CoreError, MachineConfig, SimResult};

/// Which binary to produce from MinC source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// RV32IM via the conventional back-end (the `SS` baseline).
    Riscv,
    /// STRAIGHT with the basic algorithm of Section IV-A..C.
    StraightRaw {
        /// ISA distance limit the code is bounded to.
        max_distance: u16,
    },
    /// STRAIGHT with the RE+ redundancy elimination (Section IV-D).
    StraightRePlus {
        /// ISA distance limit the code is bounded to.
        max_distance: u16,
    },
}

/// A build failure anywhere along the pipeline.
#[derive(Debug)]
pub enum BuildError {
    /// MinC front-end / IR verification failure.
    Frontend(straight_ir::CompileError),
    /// Back-end code generation failure.
    Codegen(straight_compiler::CodegenError),
    /// Linking failure.
    Link(straight_asm::LinkError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Frontend(e) => write!(f, "{e}"),
            BuildError::Codegen(e) => write!(f, "{e}"),
            BuildError::Link(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Compiles and links MinC source for the chosen target.
///
/// # Errors
///
/// Returns [`BuildError`] from whichever stage failed.
pub fn build(src: &str, target: Target) -> Result<Image, BuildError> {
    let module = compile_source(src).map_err(BuildError::Frontend)?;
    match target {
        Target::Riscv => {
            let prog = compile_riscv(&module).map_err(BuildError::Codegen)?;
            link_riscv(&prog).map_err(BuildError::Link)
        }
        Target::StraightRaw { max_distance } => {
            let opts = StraightOptions::raw().with_max_distance(max_distance);
            let prog = compile_straight(&module, &opts).map_err(BuildError::Codegen)?;
            link_straight(&prog).map_err(BuildError::Link)
        }
        Target::StraightRePlus { max_distance } => {
            let opts = StraightOptions::default().with_max_distance(max_distance);
            let prog = compile_straight(&module, &opts).map_err(BuildError::Codegen)?;
            link_straight(&prog).map_err(BuildError::Link)
        }
    }
}

/// Runs a linked image on a machine model.
///
/// # Errors
///
/// Returns [`CoreError`] when the machine cannot execute the image at
/// all — an ISA mismatch between the image and the machine's
/// front-end, or an undersized register file. Runtime faults do *not*
/// error: they surface as a typed trap in [`SimResult::exit`].
pub fn run_on(image: &Image, cfg: MachineConfig, max_cycles: u64) -> Result<SimResult, CoreError> {
    simulate(image.clone(), cfg, max_cycles)
}

/// Table I machine presets, re-exported for convenience.
pub mod machines {
    pub use straight_sim::pipeline::MachineConfig;

    /// SS-2way (Table I).
    #[must_use]
    pub fn ss_2way() -> MachineConfig {
        MachineConfig::ss_2way()
    }
    /// SS-4way (Table I).
    #[must_use]
    pub fn ss_4way() -> MachineConfig {
        MachineConfig::ss_4way()
    }
    /// STRAIGHT-2way (Table I).
    #[must_use]
    pub fn straight_2way() -> MachineConfig {
        MachineConfig::straight_2way()
    }
    /// STRAIGHT-4way (Table I).
    #[must_use]
    pub fn straight_4way() -> MachineConfig {
        MachineConfig::straight_4way()
    }
}
