//! Reference interpreter for the IR.
//!
//! Used as the semantic oracle in differential tests: MinC source is
//! interpreted here and independently compiled + emulated on both
//! ISAs; all three must agree on output and exit code.

use std::collections::HashMap;

use crate::{Block, Function, GlobalId, InstData, MemWidth, Module, SysOp, Terminator, Value};

/// Base address where globals are laid out.
pub const GLOBAL_BASE: u32 = 0x0001_0000;
/// Initial stack pointer (stack grows down).
pub const STACK_TOP: u32 = 0x003f_0000;
/// Memory size in bytes.
const MEM_SIZE: usize = 0x40_0000;

/// Result of running a program to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutput {
    /// Captured `print_int`/`print_char` output.
    pub stdout: String,
    /// Exit code (from `exit` or `main`'s return value).
    pub exit_code: i32,
    /// Dynamic IR instruction count.
    pub steps: u64,
}

/// Interpreter failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// No function with the requested name.
    NoSuchFunction(String),
    /// Step budget exhausted (runaway loop).
    StepLimit,
    /// Call depth exceeded.
    StackOverflow,
    /// Out-of-range memory access.
    BadAccess(u32),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::NoSuchFunction(n) => write!(f, "no such function `{n}`"),
            InterpError::StepLimit => write!(f, "interpreter step limit exceeded"),
            InterpError::StackOverflow => write!(f, "interpreter call depth exceeded"),
            InterpError::BadAccess(a) => write!(f, "bad memory access at {a:#x}"),
        }
    }
}

impl std::error::Error for InterpError {}

struct Interp<'m> {
    module: &'m Module,
    mem: Vec<u8>,
    global_addrs: HashMap<GlobalId, u32>,
    stdout: String,
    steps: u64,
    step_limit: u64,
    exited: Option<i32>,
}

enum FlowResult {
    Return(u32),
}

impl<'m> Interp<'m> {
    fn new(module: &'m Module, step_limit: u64) -> Interp<'m> {
        let mut mem = vec![0u8; MEM_SIZE];
        let mut global_addrs = HashMap::new();
        let mut cursor = GLOBAL_BASE;
        for (i, g) in module.globals.iter().enumerate() {
            cursor = cursor.next_multiple_of(g.align.max(1));
            global_addrs.insert(GlobalId::new(i), cursor);
            let start = cursor as usize;
            mem[start..start + g.init.len()].copy_from_slice(&g.init);
            cursor += g.size;
        }
        Interp { module, mem, global_addrs, stdout: String::new(), steps: 0, step_limit, exited: None }
    }

    fn load(&self, width: MemWidth, addr: u32) -> Result<u32, InterpError> {
        let a = addr as usize;
        if a + width.bytes() as usize > self.mem.len() {
            return Err(InterpError::BadAccess(addr));
        }
        Ok(match width {
            MemWidth::B => self.mem[a] as i8 as i32 as u32,
            MemWidth::Bu => u32::from(self.mem[a]),
            MemWidth::H => i32::from(i16::from_le_bytes([self.mem[a], self.mem[a + 1]])) as u32,
            MemWidth::Hu => u32::from(u16::from_le_bytes([self.mem[a], self.mem[a + 1]])),
            MemWidth::W => u32::from_le_bytes([self.mem[a], self.mem[a + 1], self.mem[a + 2], self.mem[a + 3]]),
        })
    }

    fn store(&mut self, width: MemWidth, addr: u32, val: u32) -> Result<(), InterpError> {
        let a = addr as usize;
        if a + width.bytes() as usize > self.mem.len() {
            return Err(InterpError::BadAccess(addr));
        }
        match width {
            MemWidth::B | MemWidth::Bu => self.mem[a] = val as u8,
            MemWidth::H | MemWidth::Hu => self.mem[a..a + 2].copy_from_slice(&(val as u16).to_le_bytes()),
            MemWidth::W => self.mem[a..a + 4].copy_from_slice(&val.to_le_bytes()),
        }
        Ok(())
    }

    fn sys(&mut self, op: SysOp, args: &[u32]) -> u32 {
        match op {
            SysOp::PrintInt => {
                self.stdout.push_str(&(args[0] as i32).to_string());
                self.stdout.push('\n');
                0
            }
            SysOp::PrintChar => {
                self.stdout.push(args[0] as u8 as char);
                0
            }
            SysOp::Exit => {
                self.exited = Some(args[0] as i32);
                0
            }
        }
    }

    fn call(&mut self, func: &Function, args: &[u32], sp: u32, depth: u32) -> Result<FlowResult, InterpError> {
        if depth > 256 {
            return Err(InterpError::StackOverflow);
        }
        // Allocate this frame below the caller's sp.
        let frame_size = func.frame_size();
        let frame_base = sp.checked_sub(frame_size).ok_or(InterpError::BadAccess(0))?;
        let slot_addr =
            |slot: crate::SlotId| -> u32 { frame_base + func.slot_offset(slot) };

        let mut vals: Vec<u32> = vec![0; func.insts.len()];
        let mut block = func.entry();
        let mut prev: Option<Block> = None;
        loop {
            // Phis first, evaluated as parallel copies from `prev`.
            let data = func.block(block);
            let mut phi_updates: Vec<(Value, u32)> = Vec::new();
            for &v in &data.insts {
                if let InstData::Phi(phi_args) = func.inst(v) {
                    let p = prev.expect("phi in entry block");
                    let (_, src) = phi_args
                        .iter()
                        .find(|(pb, _)| *pb == p)
                        .unwrap_or_else(|| panic!("phi {v} missing edge from {p}"));
                    phi_updates.push((v, vals[src.index()]));
                } else {
                    break;
                }
            }
            for (v, x) in phi_updates {
                vals[v.index()] = x;
                self.steps += 1;
            }
            for &v in &data.insts {
                let inst = func.inst(v);
                if inst.is_phi() {
                    continue;
                }
                self.steps += 1;
                if self.steps > self.step_limit {
                    return Err(InterpError::StepLimit);
                }
                let result = match inst {
                    InstData::Param(i) => args.get(*i as usize).copied().unwrap_or(0),
                    InstData::Const(c) => *c as u32,
                    InstData::Bin { op, a, b } => op.eval(vals[a.index()], vals[b.index()]),
                    InstData::Load { width, addr } => self.load(*width, vals[addr.index()])?,
                    InstData::Store { width, val, addr } => {
                        let x = vals[val.index()];
                        self.store(*width, vals[addr.index()], x)?;
                        x
                    }
                    InstData::Call { callee, args: call_args } => {
                        let vals_args: Vec<u32> = call_args.iter().map(|a| vals[a.index()]).collect();
                        let f = self
                            .module
                            .func(callee)
                            .ok_or_else(|| InterpError::NoSuchFunction(callee.clone()))?;
                        let FlowResult::Return(r) = self.call(f, &vals_args, frame_base, depth + 1)?;
                        if self.exited.is_some() {
                            return Ok(FlowResult::Return(r));
                        }
                        r
                    }
                    InstData::Sys { op, args: sys_args } => {
                        let vals_args: Vec<u32> = sys_args.iter().map(|a| vals[a.index()]).collect();
                        let r = self.sys(*op, &vals_args);
                        if self.exited.is_some() {
                            return Ok(FlowResult::Return(0));
                        }
                        r
                    }
                    InstData::GlobalAddr(g) => self.global_addrs[g],
                    InstData::SlotAddr(s) => slot_addr(*s),
                    InstData::Phi(_) => unreachable!(),
                    InstData::Copy(c) => vals[c.index()],
                };
                vals[v.index()] = result;
            }
            self.steps += 1;
            match &data.term {
                Terminator::Br(t) => {
                    prev = Some(block);
                    block = *t;
                }
                Terminator::CondBr { cond, then_bb, else_bb } => {
                    prev = Some(block);
                    block = if vals[cond.index()] != 0 { *then_bb } else { *else_bb };
                }
                Terminator::Ret(v) => {
                    let r = v.map(|v| vals[v.index()]).unwrap_or(0);
                    return Ok(FlowResult::Return(r));
                }
                Terminator::Unreachable => panic!("executed unreachable terminator in {}", func.name),
            }
        }
    }
}

/// Runs `main` with a default step limit.
///
/// # Errors
///
/// Returns [`InterpError`] on missing `main`, runaway execution, or
/// bad memory accesses.
pub fn run_main(module: &Module) -> Result<RunOutput, InterpError> {
    run_func(module, "main", &[], 500_000_000)
}

/// Runs an arbitrary function with arguments and a step limit.
///
/// # Errors
///
/// See [`run_main`].
pub fn run_func(module: &Module, name: &str, args: &[u32], step_limit: u64) -> Result<RunOutput, InterpError> {
    let f = module.func(name).ok_or_else(|| InterpError::NoSuchFunction(name.to_string()))?;
    let mut interp = Interp::new(module, step_limit);
    let FlowResult::Return(ret) = interp.call(f, args, STACK_TOP, 0)?;
    let exit_code = interp.exited.unwrap_or(ret as i32);
    Ok(RunOutput { stdout: interp.stdout, exit_code, steps: interp.steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    fn run(src: &str) -> RunOutput {
        let m = compile_source(src).expect("compiles");
        run_main(&m).expect("runs")
    }

    #[test]
    fn arithmetic_and_print() {
        let out = run("int main() { print_int(6 * 7); return 0; }");
        assert_eq!(out.stdout, "42\n");
        assert_eq!(out.exit_code, 0);
    }

    #[test]
    fn loops_and_conditions() {
        let out = run("int main() {
            int s = 0;
            int i;
            for (i = 1; i <= 10; i++) { if (i % 2 == 0) s += i; }
            print_int(s);
            return s;
        }");
        assert_eq!(out.stdout, "30\n");
        assert_eq!(out.exit_code, 30);
    }

    #[test]
    fn functions_and_recursion() {
        let out = run("int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
                       int main() { print_int(fib(10)); return 0; }");
        assert_eq!(out.stdout, "55\n");
    }

    #[test]
    fn globals_arrays_strings() {
        let out = run("int acc = 5;
                       int tab[4];
                       byte msg[8] = \"hi\";
                       int main() {
                           tab[0] = acc; tab[1] = tab[0] * 2;
                           print_int(tab[1]);
                           print_char(msg[0]); print_char(msg[1]); print_char('\\n');
                           return 0;
                       }");
        assert_eq!(out.stdout, "10\nhi\n");
    }

    #[test]
    fn pointers_and_addr_of() {
        let out = run("void bump(int* p) { *p = *p + 1; }
                       int main() { int x = 41; bump(&x); print_int(x); return 0; }");
        assert_eq!(out.stdout, "42\n");
    }

    #[test]
    fn short_circuit_semantics() {
        let out = run("int g = 0;
                       int touch() { g = g + 1; return 1; }
                       int main() {
                           if (0 && touch()) {}
                           if (1 || touch()) {}
                           print_int(g);
                           return 0;
                       }");
        assert_eq!(out.stdout, "0\n");
    }

    #[test]
    fn do_while_and_break_continue() {
        let out = run("int main() {
            int i = 0; int s = 0;
            do { i++; if (i == 3) continue; if (i > 5) break; s += i; } while (1);
            print_int(s);
            return 0;
        }");
        // 1 + 2 + 4 + 5 = 12
        assert_eq!(out.stdout, "12\n");
    }

    #[test]
    fn exit_cuts_execution() {
        let out = run("int main() { exit(7); print_int(1); return 0; }");
        assert_eq!(out.stdout, "");
        assert_eq!(out.exit_code, 7);
    }

    #[test]
    fn byte_truncation() {
        let out = run("int main() { byte b = 300; print_int(b); return 0; }");
        assert_eq!(out.stdout, "44\n");
    }

    #[test]
    fn local_arrays() {
        let out = run("int main() {
            int a[5];
            int i;
            for (i = 0; i < 5; i++) a[i] = i * i;
            print_int(a[4] + a[3]);
            return 0;
        }");
        assert_eq!(out.stdout, "25\n"); // 16 + 9
    }

    #[test]
    fn step_limit_detects_runaway() {
        let m = compile_source("int main() { int x = 1; while (x) { x = 1; } return 0; }").unwrap();
        assert_eq!(run_func(&m, "main", &[], 10_000), Err(InterpError::StepLimit));
    }
}
