//! Structural verification of IR invariants: the back-ends rely on
//! these holding, so `compile_source` verifies before handing off.

use std::collections::{HashMap, HashSet};

use crate::{
    analysis::{Cfg, Dominators},
    Block, Function, InstData, Module, Terminator, Value,
};

/// A broken IR invariant, with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError(pub String);

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IR verification failed: {}", self.0)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function in the module.
///
/// # Errors
///
/// Returns the first broken invariant found.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for f in &module.funcs {
        verify_function(f).map_err(|VerifyError(msg)| VerifyError(format!("{}: {msg}", f.name)))?;
    }
    Ok(())
}

/// Verifies a single function:
///
/// * every reachable block has a real terminator;
/// * phis are grouped at block heads and their incoming edges match
///   the CFG predecessors exactly;
/// * every use is dominated by its definition (with phi uses checked
///   at the end of the incoming predecessor);
/// * `Param` instructions only appear in the entry block;
/// * no `Copy` instructions remain placed in blocks.
///
/// # Errors
///
/// Returns the first broken invariant found.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    let err = |msg: String| Err(VerifyError(msg));
    let cfg = Cfg::compute(f);
    let dom = Dominators::compute(f, &cfg);

    // Map each placed value to its block and intra-block position.
    let mut place: HashMap<Value, (Block, usize)> = HashMap::new();
    for b in f.block_ids() {
        for (i, &v) in f.block(b).insts.iter().enumerate() {
            if place.insert(v, (b, i)).is_some() {
                return err(format!("{v} placed twice"));
            }
        }
    }

    for &b in cfg.rpo() {
        let data = f.block(b);
        if matches!(data.term, Terminator::Unreachable) {
            return err(format!("{b} has no terminator"));
        }
        let mut seen_non_phi = false;
        for &v in &data.insts {
            let inst = f.inst(v);
            match inst {
                InstData::Phi(args) => {
                    if seen_non_phi {
                        return err(format!("phi {v} after non-phi in {b}"));
                    }
                    let mut expected: Vec<Block> = cfg.preds(b).to_vec();
                    expected.sort_unstable();
                    let mut got: Vec<Block> = args.iter().map(|(p, _)| *p).collect();
                    got.sort_unstable();
                    // Only compare reachable preds (unreachable blocks
                    // are pruned before codegen).
                    if expected != got {
                        return err(format!("phi {v} in {b} edges {got:?} != preds {expected:?}"));
                    }
                }
                InstData::Copy(_) => return err(format!("unresolved copy {v} in {b}")),
                InstData::Param(_) => {
                    if b != f.entry() {
                        return err(format!("param {v} outside entry block"));
                    }
                    seen_non_phi = true;
                }
                _ => seen_non_phi = true,
            }
        }
    }

    // Dominance of uses.
    let dominates_use = |def: Value, use_block: Block, use_pos: usize| -> bool {
        match place.get(&def) {
            None => false,
            Some(&(db, dp)) => {
                if db == use_block {
                    dp < use_pos || f.inst(def).is_phi()
                } else {
                    dom.dominates(db, use_block)
                }
            }
        }
    };
    for &b in cfg.rpo() {
        let data = f.block(b);
        for (i, &v) in data.insts.iter().enumerate() {
            let inst = f.inst(v);
            if let InstData::Phi(args) = inst {
                for &(pred, av) in args {
                    if !dominates_use(av, pred, usize::MAX) {
                        return err(format!("phi {v} operand {av} not available at end of {pred}"));
                    }
                }
            } else {
                let mut bad = None;
                inst.for_each_operand(|op| {
                    if bad.is_none() && !dominates_use(op, b, i) {
                        bad = Some(op);
                    }
                });
                if let Some(op) = bad {
                    return err(format!("use of {op} in {v} ({b}) not dominated by its definition"));
                }
            }
        }
        let mut bad = None;
        data.term.for_each_operand(|op| {
            if bad.is_none() && !dominates_use(op, b, usize::MAX) {
                bad = Some(op);
            }
        });
        if let Some(op) = bad {
            return err(format!("terminator of {b} uses undominated {op}"));
        }
    }

    // Successor targets must exist.
    let nblocks = f.blocks.len();
    for b in f.block_ids() {
        for s in f.block(b).term.successors() {
            if s.index() >= nblocks {
                return err(format!("{b} branches to nonexistent {s}"));
            }
        }
    }

    let _ = HashSet::<Value>::new();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, Terminator};

    #[test]
    fn accepts_well_formed() {
        let mut f = Function::new("ok", 0, true);
        let e = f.entry();
        let a = f.push_inst(e, InstData::Const(1));
        let b = f.push_inst(e, InstData::Const(2));
        let s = f.push_inst(e, InstData::Bin { op: BinOp::Add, a, b });
        f.block_mut(e).term = Terminator::Ret(Some(s));
        assert!(verify_function(&f).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let f = Function::new("bad", 0, false);
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_use_before_def() {
        let mut f = Function::new("bad", 0, true);
        let e = f.entry();
        let ghost = Value::new(999);
        let a = f.push_inst(e, InstData::Const(1));
        let s = f.push_inst(e, InstData::Bin { op: BinOp::Add, a, b: ghost });
        f.block_mut(e).term = Terminator::Ret(Some(s));
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_phi_pred_mismatch() {
        let mut f = Function::new("bad", 0, true);
        let e = f.entry();
        let j = f.create_block();
        let c = f.push_inst(e, InstData::Const(1));
        f.block_mut(e).term = Terminator::Br(j);
        let phi = f.create_inst(InstData::Phi(vec![(e, c), (Block::new(0), c)]));
        f.block_mut(j).insts.push(phi);
        f.block_mut(j).term = Terminator::Ret(Some(phi));
        assert!(verify_function(&f).is_err());
    }
}
