//! Index newtypes for IR entities.

use std::fmt;

macro_rules! entity {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            #[must_use]
            pub fn new(i: usize) -> Self {
                Self(u32::try_from(i).expect("entity index fits in u32"))
            }

            /// The raw index.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

entity! {
    /// An SSA value. Every value is produced by exactly one
    /// instruction, and the id doubles as the instruction id.
    Value, "v"
}

entity! {
    /// A basic block within a function.
    Block, "bb"
}

entity! {
    /// A module-level global variable.
    GlobalId, "g"
}

entity! {
    /// A function-local stack slot (address-taken local, local array,
    /// or spill created by the back-end).
    SlotId, "slot"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert_eq!(Value::new(3).to_string(), "v3");
        assert_eq!(Block::new(0).to_string(), "bb0");
        assert_eq!(GlobalId::new(1).to_string(), "g1");
        assert_eq!(SlotId::new(2).to_string(), "slot2");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(Value::new(42).index(), 42);
    }
}
