//! # straight-ir
//!
//! The SSA intermediate representation and MinC front-end feeding both
//! code generators of the STRAIGHT reproduction.
//!
//! The paper compiles LLVM IR (an SSA-form IR with PHI nodes) to
//! STRAIGHT machine code. This crate plays the role of clang + LLVM IR:
//! **MinC**, a small C-like language, is parsed and lowered directly to
//! SSA using the on-the-fly algorithm of Braun et al., producing a
//! [`Module`] of [`Function`]s whose operands the STRAIGHT back-end
//! turns into distances (Section IV of the paper).
//!
//! The crate also hosts the analyses the compilation algorithm needs —
//! CFG utilities, dominators, [`analysis::Liveness`] (used for distance
//! fixing), natural [`analysis::Loops`] (used by the RE+ redundancy
//! elimination) — plus
//! optimization passes and a reference [`interp`]reter used for
//! differential testing of the back-ends.
//!
//! ```
//! use straight_ir::compile_source;
//!
//! let module = compile_source(
//!     "int add(int a, int b) { return a + b; }
//!      int main() { print_int(add(2, 3)); return 0; }",
//! ).unwrap();
//! let out = straight_ir::interp::run_main(&module).unwrap();
//! assert_eq!(out.stdout, "5\n");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod entities;
pub mod frontend;
mod func;
pub mod inline;
mod inst;
pub mod interp;
mod module;
pub mod passes;
pub mod verify;

pub mod analysis;

pub use builder::FunctionBuilder;
pub use entities::{Block, GlobalId, SlotId, Value};
pub use frontend::CompileError;
pub use func::{BlockData, Function, StackSlot};
pub use inst::{BinOp, InstData, SysOp, Terminator};
pub use module::{Global, Module};
pub use straight_isa::MemWidth;

/// Parses, lowers, optimizes, and verifies a MinC source file.
///
/// This is the front half of the paper's Figure 7 flow (`C source →
/// LLVM-IR`); the back-ends in `straight-compiler` implement the rest.
///
/// # Errors
///
/// Returns [`CompileError`] on lexical, syntactic, or semantic errors.
pub fn compile_source(src: &str) -> Result<Module, CompileError> {
    let mut module = frontend::lower_source(src)?;
    passes::resolve_aliases(&mut module);
    inline::inline_module(&mut module);
    passes::optimize(&mut module);
    verify::verify_module(&module).map_err(CompileError::Verify)?;
    Ok(module)
}

/// Parses and lowers without the optimization pipeline (used by tests
/// that inspect raw lowering output and by the `RAW` compilation mode).
///
/// # Errors
///
/// Returns [`CompileError`] on lexical, syntactic, or semantic errors.
pub fn compile_source_unoptimized(src: &str) -> Result<Module, CompileError> {
    let mut module = frontend::lower_source(src)?;
    passes::resolve_aliases(&mut module);
    verify::verify_module(&module).map_err(CompileError::Verify)?;
    Ok(module)
}
