//! Function inlining: small leaf functions are cloned into their
//! callers. Both back-ends consume the same inlined IR, mirroring the
//! paper's use of clang/LLVM `-O2` (which inlines such callees) for
//! both machines.

use std::collections::HashMap;

use crate::{Block, Function, InstData, Module, SlotId, Terminator, Value};

/// Maximum callee size (IR instructions) considered for inlining.
const MAX_CALLEE_INSTS: usize = 64;
/// Maximum number of call sites expanded per caller per round.
const MAX_SITES_PER_ROUND: usize = 12;
/// Inline rounds (two levels of call depth).
const ROUNDS: usize = 2;

/// Inlines eligible callees into all callers. A callee is eligible
/// when it is small and makes no calls itself (leaf), which also
/// rules out recursion.
pub fn inline_module(module: &mut Module) {
    for _ in 0..ROUNDS {
        // Snapshot eligible callees.
        let eligible: HashMap<String, Function> = module
            .funcs
            .iter()
            .filter(|f| {
                f.insts.len() <= MAX_CALLEE_INSTS
                    && !f.insts.iter().any(|i| matches!(i, InstData::Call { .. }))
            })
            .map(|f| (f.name.clone(), f.clone()))
            .collect();
        if eligible.is_empty() {
            return;
        }
        let mut changed = false;
        for f in &mut module.funcs {
            let mut sites = 0;
            // Re-scan until no inlinable call remains (or budget).
            'outer: while sites < MAX_SITES_PER_ROUND {
                for b in f.block_ids().collect::<Vec<_>>() {
                    for (pos, &v) in f.block(b).insts.iter().enumerate() {
                        if let InstData::Call { callee, .. } = f.inst(v) {
                            if callee != &f.name {
                                if let Some(target) = eligible.get(callee) {
                                    inline_one(f, b, pos, v, target);
                                    sites += 1;
                                    changed = true;
                                    continue 'outer;
                                }
                            }
                        }
                    }
                }
                break;
            }
        }
        if !changed {
            return;
        }
    }
}

/// Expands the call at `(block, pos)` (value `call_v`) with a clone of
/// `callee`.
fn inline_one(f: &mut Function, block: Block, pos: usize, call_v: Value, callee: &Function) {
    let InstData::Call { args, .. } = f.inst(call_v).clone() else {
        unreachable!("inline_one on non-call")
    };

    // 1. Split the caller block: the tail (everything after the call)
    //    moves to a continuation block, which inherits the terminator.
    let cont = f.create_block();
    let tail: Vec<Value> = f.block_mut(block).insts.split_off(pos + 1);
    f.block_mut(cont).insts = tail;
    let old_term = std::mem::replace(&mut f.block_mut(block).term, Terminator::Unreachable);
    f.block_mut(cont).term = old_term;
    // Phi edges pointing at `block` now come from `cont` (the block's
    // exit moved there).
    for bb in f.block_ids().collect::<Vec<_>>() {
        for &p in &f.block(bb).insts.clone() {
            if let InstData::Phi(phi_args) = f.inst_mut(p) {
                for (pb, _) in phi_args.iter_mut() {
                    if *pb == block {
                        *pb = cont;
                    }
                }
            }
        }
    }
    // Remove the call from the original block; it becomes an alias of
    // the return value (patched below).
    f.block_mut(block).insts.truncate(pos);

    // 2. Clone callee slots.
    let slot_off = f.slots.len();
    for s in &callee.slots {
        f.slots.push(s.clone());
    }

    // 3. Clone callee instructions (value remap) and blocks (block
    //    remap). Params become copies of the arguments.
    let value_map: Vec<Value> = callee
        .insts
        .iter()
        .map(|data| {
            let placeholder = match data {
                InstData::Param(i) => {
                    InstData::Copy(args.get(*i as usize).copied().unwrap_or(args[0]))
                }
                other => other.clone(),
            };
            f.create_inst(placeholder)
        })
        .collect();
    let block_map: Vec<Block> = callee.blocks.iter().map(|_| f.create_block()).collect();

    // Rewrite cloned instruction operands / slot ids / phi blocks.
    let mut returns: Vec<(Block, Option<Value>)> = Vec::new();
    for (ci, data) in callee.insts.iter().enumerate() {
        if matches!(data, InstData::Param(_)) {
            continue; // already a Copy of the argument
        }
        let mut cloned = data.clone();
        cloned.map_operands(|op| value_map[op.index()]);
        if let InstData::SlotAddr(s) = &mut cloned {
            *s = SlotId::new(slot_off + s.index());
        }
        if let InstData::Phi(phi_args) = &mut cloned {
            for (pb, _) in phi_args.iter_mut() {
                *pb = block_map[pb.index()];
            }
        }
        *f.inst_mut(value_map[ci]) = cloned;
    }
    for (cb, data) in callee.blocks.iter().enumerate() {
        let nb = block_map[cb];
        f.block_mut(nb).insts = data.insts.iter().map(|v| value_map[v.index()]).collect();
        f.block_mut(nb).term = match &data.term {
            Terminator::Br(t) => Terminator::Br(block_map[t.index()]),
            Terminator::CondBr { cond, then_bb, else_bb } => Terminator::CondBr {
                cond: value_map[cond.index()],
                then_bb: block_map[then_bb.index()],
                else_bb: block_map[else_bb.index()],
            },
            Terminator::Ret(v) => {
                let rv = v.map(|v| value_map[v.index()]);
                returns.push((nb, rv));
                Terminator::Br(cont)
            }
            Terminator::Unreachable => Terminator::Unreachable,
        };
    }

    // 4. Enter the clone and materialize the return value.
    f.block_mut(block).term = Terminator::Br(block_map[callee.entry().index()]);
    let result = match returns.len() {
        0 => {
            // No return (infinite loop in callee): the continuation is
            // unreachable; give the call value a dummy.
            f.push_inst(block, InstData::Const(0))
        }
        1 => match returns[0].1 {
            Some(v) => v,
            None => f.push_inst(block, InstData::Const(0)),
        },
        _ => {
            let phi_args: Vec<(Block, Value)> = returns
                .iter()
                .map(|(b, v)| match v {
                    Some(v) => (*b, *v),
                    None => (*b, call_v), // void returns: value unused
                })
                .collect();
            // Void multi-return: if all values reference the call
            // itself, just use zero.
            if phi_args.iter().all(|(_, v)| *v == call_v) {
                f.push_inst(block, InstData::Const(0))
            } else {
                let phi = f.create_inst(InstData::Phi(phi_args));
                f.block_mut(cont).insts.insert(0, phi);
                phi
            }
        }
    };
    *f.inst_mut(call_v) = InstData::Copy(result);
}

#[cfg(test)]
mod tests {
    use crate::{compile_source, interp};

    fn behaviour(src: &str) -> (String, i32, usize) {
        let m = compile_source(src).unwrap();
        let calls = m
            .funcs
            .iter()
            .flat_map(|f| f.insts.iter())
            .filter(|i| matches!(i, crate::InstData::Call { .. }))
            .count();
        let out = interp::run_main(&m).unwrap();
        (out.stdout, out.exit_code, calls)
    }

    #[test]
    fn leaf_calls_disappear_and_behaviour_is_preserved() {
        let (stdout, code, calls) = behaviour(
            "int sq(int x) { return x * x; }
             int main() { print_int(sq(3) + sq(4)); return sq(5); }",
        );
        assert_eq!(stdout, "25\n");
        assert_eq!(code, 25);
        assert_eq!(calls, 0, "leaf calls should be inlined");
    }

    #[test]
    fn control_flow_in_callee_inlines() {
        let (stdout, _, calls) = behaviour(
            "int absv(int x) { if (x < 0) return -x; return x; }
             int main() {
                 int s = 0;
                 int i;
                 for (i = -5; i <= 5; i++) s += absv(i);
                 print_int(s);
                 return 0;
             }",
        );
        assert_eq!(stdout, "30\n");
        assert_eq!(calls, 0);
    }

    #[test]
    fn recursion_is_not_inlined() {
        let (stdout, _, calls) = behaviour(
            "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
             int main() { print_int(fib(10)); return 0; }",
        );
        assert_eq!(stdout, "55\n");
        assert!(calls > 0, "recursive calls must survive");
    }

    #[test]
    fn void_callee_with_stores() {
        let (stdout, _, calls) = behaviour(
            "int g;
             void bump(int d) { g = g + d; }
             int main() { bump(4); bump(38); print_int(g); return 0; }",
        );
        assert_eq!(stdout, "42\n");
        assert_eq!(calls, 0);
    }

    #[test]
    fn callee_locals_get_fresh_slots() {
        let (stdout, _, _) = behaviour(
            "int sum3(int a, int b, int c) {
                 int tmp[3];
                 tmp[0] = a; tmp[1] = b; tmp[2] = c;
                 return tmp[0] + tmp[1] + tmp[2];
             }
             int main() { print_int(sum3(1, 2, 3) * sum3(4, 5, 6)); return 0; }",
        );
        assert_eq!(stdout, "90\n");
    }
}
