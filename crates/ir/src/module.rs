//! Modules: a set of functions plus global data.

use std::fmt;

use crate::{Function, GlobalId};

/// A module-level global variable or constant (string literals become
/// anonymous globals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Alignment in bytes.
    pub align: u32,
    /// Initial contents; zero-filled up to `size` if shorter.
    pub init: Vec<u8>,
}

/// A compiled MinC translation unit.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Functions, in source order.
    pub funcs: Vec<Function>,
    /// Globals, in creation order.
    pub globals: Vec<Global>,
}

impl Module {
    /// Finds a function by name.
    #[must_use]
    pub fn func(&self, name: &str) -> Option<&Function> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Adds a global and returns its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId::new(self.globals.len());
        self.globals.push(g);
        id
    }

    /// Global accessor.
    #[must_use]
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Total instruction count across all functions (coarse size
    /// metric used in tests and reports).
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.insts.len()).sum()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, g) in self.globals.iter().enumerate() {
            writeln!(f, "g{i}: {} ({} bytes)", g.name, g.size)?;
        }
        for fun in &self.funcs {
            writeln!(f, "{fun}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let mut m = Module::default();
        m.funcs.push(Function::new("main", 0, true));
        assert!(m.func("main").is_some());
        assert!(m.func("nope").is_none());
    }

    #[test]
    fn globals_get_sequential_ids() {
        let mut m = Module::default();
        let a = m.add_global(Global { name: "a".into(), size: 4, align: 4, init: vec![] });
        let b = m.add_global(Global { name: "b".into(), size: 8, align: 4, init: vec![1] });
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(m.global(b).init, vec![1]);
    }
}
