//! Recursive-descent parser for MinC.

use super::ast::*;
use super::lexer::{Token, TokenKind};
use super::CompileError;

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

type PResult<T> = Result<T, CompileError>;

/// Parses a token stream into a [`Program`].
///
/// # Errors
///
/// Returns [`CompileError::Parse`] with the offending line.
pub fn parse(toks: &[Token]) -> PResult<Program> {
    let mut p = Parser { toks, pos: 0 };
    let mut items = Vec::new();
    while p.peek() != &TokenKind::Eof {
        items.push(p.item()?);
    }
    Ok(Program { items })
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(CompileError::Parse { line: self.line(), msg: msg.into() })
    }

    fn expect(&mut self, k: &TokenKind, what: &str) -> PResult<()> {
        if self.peek() == k {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn eat(&mut self, k: &TokenKind) -> bool {
        if self.peek() == k {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    /// Parses a type: `int`/`byte`/`void` with optional `*`s.
    fn type_spec(&mut self) -> PResult<Type> {
        let base = match self.bump() {
            TokenKind::KwInt => Type::Int,
            TokenKind::KwByte => Type::Byte,
            TokenKind::KwVoid => Type::Void,
            other => {
                self.pos -= 1;
                return self.err(format!("expected type, found {other:?}"));
            }
        };
        let mut ty = base;
        while self.eat(&TokenKind::Star) {
            ty = match ty {
                Type::Int => Type::PtrInt,
                Type::Byte => Type::PtrByte,
                _ => return self.err("only single-level pointers to int/byte are supported"),
            };
        }
        Ok(ty)
    }

    fn starts_type(&self) -> bool {
        matches!(self.peek(), TokenKind::KwInt | TokenKind::KwByte | TokenKind::KwVoid)
    }

    fn item(&mut self) -> PResult<Item> {
        let line = self.line();
        let ty = self.type_spec()?;
        let name = self.ident()?;
        if self.peek() == &TokenKind::LParen {
            // Function definition.
            self.bump();
            let mut params = Vec::new();
            if !self.eat(&TokenKind::RParen) {
                loop {
                    let pty = self.type_spec()?;
                    if pty == Type::Void {
                        return self.err("void parameter");
                    }
                    let pname = self.ident()?;
                    params.push((pty, pname));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen, ")")?;
            }
            self.expect(&TokenKind::LBrace, "{")?;
            let mut body = Vec::new();
            while !self.eat(&TokenKind::RBrace) {
                body.push(self.stmt()?);
            }
            Ok(Item::Func(FuncDef { name, ret: ty, params, body, line }))
        } else {
            // Global declaration.
            if ty == Type::Void {
                return self.err("void global");
            }
            let mut array = None;
            if self.eat(&TokenKind::LBracket) {
                match self.bump() {
                    TokenKind::Int(n) if n > 0 => array = Some(n as u32),
                    _ => return self.err("array length must be a positive integer literal"),
                }
                self.expect(&TokenKind::RBracket, "]")?;
            }
            let mut init = None;
            let mut str_init = None;
            if self.eat(&TokenKind::Assign) {
                match self.bump() {
                    TokenKind::Int(v) => init = Some(v),
                    TokenKind::Minus => match self.bump() {
                        TokenKind::Int(v) => init = Some(-v),
                        _ => return self.err("expected integer after '-'"),
                    },
                    TokenKind::Str(s) if ty == Type::Byte && array.is_some() => str_init = Some(s),
                    _ => return self.err("global initializer must be an integer literal (or string for byte arrays)"),
                }
            }
            self.expect(&TokenKind::Semi, ";")?;
            Ok(Item::Global(GlobalDecl { ty, name, array, init, str_init, line }))
        }
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        match self.peek() {
            TokenKind::LBrace => {
                self.bump();
                let mut body = Vec::new();
                while !self.eat(&TokenKind::RBrace) {
                    body.push(self.stmt()?);
                }
                Ok(Stmt::Block(body))
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(&TokenKind::LParen, "(")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, ")")?;
                let then_stmt = Box::new(self.stmt()?);
                let else_stmt =
                    if self.eat(&TokenKind::KwElse) { Some(Box::new(self.stmt()?)) } else { None };
                Ok(Stmt::If { cond, then_stmt, else_stmt })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen, "(")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, ")")?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body })
            }
            TokenKind::KwDo => {
                self.bump();
                let body = Box::new(self.stmt()?);
                self.expect(&TokenKind::KwWhile, "while")?;
                self.expect(&TokenKind::LParen, "(")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, ")")?;
                self.expect(&TokenKind::Semi, ";")?;
                Ok(Stmt::DoWhile { body, cond })
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(&TokenKind::LParen, "(")?;
                let init = if self.peek() == &TokenKind::Semi {
                    self.bump();
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                let cond = if self.peek() == &TokenKind::Semi { None } else { Some(self.expr()?) };
                self.expect(&TokenKind::Semi, ";")?;
                let step = if self.peek() == &TokenKind::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt_no_semi()?))
                };
                self.expect(&TokenKind::RParen, ")")?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For { init, cond, step, body })
            }
            TokenKind::KwReturn => {
                self.bump();
                let e = if self.peek() == &TokenKind::Semi { None } else { Some(self.expr()?) };
                self.expect(&TokenKind::Semi, ";")?;
                Ok(Stmt::Return(e))
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(&TokenKind::Semi, ";")?;
                Ok(Stmt::Break { line })
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(&TokenKind::Semi, ";")?;
                Ok(Stmt::Continue { line })
            }
            _ => self.simple_stmt(),
        }
    }

    /// A declaration / assignment / expression statement with its
    /// trailing semicolon.
    fn simple_stmt(&mut self) -> PResult<Stmt> {
        let s = self.simple_stmt_no_semi()?;
        self.expect(&TokenKind::Semi, ";")?;
        Ok(s)
    }

    fn simple_stmt_no_semi(&mut self) -> PResult<Stmt> {
        let line = self.line();
        if self.starts_type() {
            let ty = self.type_spec()?;
            if ty == Type::Void {
                return self.err("void local");
            }
            let name = self.ident()?;
            let mut array = None;
            if self.eat(&TokenKind::LBracket) {
                match self.bump() {
                    TokenKind::Int(n) if n > 0 => array = Some(n as u32),
                    _ => return self.err("array length must be a positive integer literal"),
                }
                self.expect(&TokenKind::RBracket, "]")?;
            }
            let init = if self.eat(&TokenKind::Assign) {
                if array.is_some() {
                    return self.err("array initializers are not supported");
                }
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Decl { ty, name, array, init, line });
        }
        // `x++` / `x--` sugar on a plain identifier or lvalue.
        let e = self.expr()?;
        let mk_one = |line| Expr::Int { value: 1, line };
        match self.peek().clone() {
            TokenKind::Assign => {
                self.bump();
                let value = self.expr()?;
                Ok(Stmt::Assign { lvalue: e, value })
            }
            TokenKind::PlusPlus | TokenKind::MinusMinus | TokenKind::PlusEq | TokenKind::MinusEq => {
                let tok = self.bump();
                let (op, rhs) = match tok {
                    TokenKind::PlusPlus => (BinAst::Add, mk_one(line)),
                    TokenKind::MinusMinus => (BinAst::Sub, mk_one(line)),
                    TokenKind::PlusEq => (BinAst::Add, self.expr()?),
                    _ => (BinAst::Sub, self.expr()?),
                };
                Ok(Stmt::Assign {
                    lvalue: e.clone(),
                    value: Expr::Binary { op, lhs: Box::new(e), rhs: Box::new(rhs), line },
                })
            }
            _ => Ok(Stmt::ExprStmt(e)),
        }
    }

    fn expr(&mut self) -> PResult<Expr> {
        self.binary(0)
    }

    /// Precedence-climbing binary parser. Level 0 is `||`.
    fn binary(&mut self, level: usize) -> PResult<Expr> {
        const LEVELS: &[&[(TokenKind, BinAst)]] = &[
            &[(TokenKind::OrOr, BinAst::LogOr)],
            &[(TokenKind::AndAnd, BinAst::LogAnd)],
            &[(TokenKind::Pipe, BinAst::BitOr)],
            &[(TokenKind::Caret, BinAst::BitXor)],
            &[(TokenKind::Amp, BinAst::BitAnd)],
            &[(TokenKind::EqEq, BinAst::Eq), (TokenKind::Ne, BinAst::Ne)],
            &[
                (TokenKind::Lt, BinAst::Lt),
                (TokenKind::Le, BinAst::Le),
                (TokenKind::Gt, BinAst::Gt),
                (TokenKind::Ge, BinAst::Ge),
            ],
            &[(TokenKind::Shl, BinAst::Shl), (TokenKind::Shr, BinAst::Shr)],
            &[(TokenKind::Plus, BinAst::Add), (TokenKind::Minus, BinAst::Sub)],
            &[(TokenKind::Star, BinAst::Mul), (TokenKind::Slash, BinAst::Div), (TokenKind::Percent, BinAst::Rem)],
        ];
        if level == LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        loop {
            let line = self.line();
            let mut matched = None;
            for (tok, op) in LEVELS[level] {
                if self.peek() == tok {
                    matched = Some(*op);
                    break;
                }
            }
            match matched {
                Some(op) => {
                    self.bump();
                    let rhs = self.binary(level + 1)?;
                    lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
                }
                None => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> PResult<Expr> {
        let line = self.line();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary { op: UnAst::Neg, expr: Box::new(self.unary()?), line })
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Unary { op: UnAst::Not, expr: Box::new(self.unary()?), line })
            }
            TokenKind::Tilde => {
                self.bump();
                Ok(Expr::Unary { op: UnAst::BitNot, expr: Box::new(self.unary()?), line })
            }
            TokenKind::Star => {
                self.bump();
                Ok(Expr::Deref { expr: Box::new(self.unary()?), line })
            }
            TokenKind::Amp => {
                self.bump();
                Ok(Expr::AddrOf { expr: Box::new(self.unary()?), line })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            if self.eat(&TokenKind::LBracket) {
                let index = self.expr()?;
                self.expect(&TokenKind::RBracket, "]")?;
                e = Expr::Index { base: Box::new(e), index: Box::new(index), line };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> PResult<Expr> {
        let line = self.line();
        match self.bump() {
            TokenKind::Int(value) => Ok(Expr::Int { value, line }),
            TokenKind::Char(c) => Ok(Expr::Int { value: i64::from(c), line }),
            TokenKind::Str(bytes) => Ok(Expr::Str { bytes, line }),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, ")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.peek() == &TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen, ")")?;
                    }
                    Ok(Expr::Call { name, args, line })
                } else {
                    Ok(Expr::Ident { name, line })
                }
            }
            other => {
                self.pos -= 1;
                let _ = self.peek2();
                self.err(format!("expected expression, found {other:?}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_function_and_global() {
        let p = parse_src("int g = 5; byte buf[10]; int f(int a, int* p) { return a; }");
        assert_eq!(p.items.len(), 3);
        match &p.items[2] {
            Item::Func(f) => {
                assert_eq!(f.name, "f");
                assert_eq!(f.params, vec![(Type::Int, "a".into()), (Type::PtrInt, "p".into())]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter() {
        let p = parse_src("int f() { return 1 + 2 * 3; }");
        let Item::Func(f) = &p.items[0] else { panic!() };
        let Stmt::Return(Some(Expr::Binary { op: BinAst::Add, rhs, .. })) = &f.body[0] else {
            panic!("{:?}", f.body[0])
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinAst::Mul, .. }));
    }

    #[test]
    fn parses_control_flow() {
        let src = "void f(int n) {
            int i;
            for (i = 0; i < n; i++) { if (i % 2 == 0) continue; else break; }
            while (n > 0) { n -= 1; }
            do { n++; } while (n < 3);
        }";
        let p = parse_src(src);
        assert_eq!(p.items.len(), 1);
    }

    #[test]
    fn parses_pointers_and_strings() {
        let src = "int f(byte* s) { return s[0] + *s + \"x\"[0]; }";
        let _ = parse_src(src);
    }

    #[test]
    fn plusplus_desugars_to_assign() {
        let p = parse_src("void f() { int i = 0; i++; }");
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert!(matches!(&f.body[1], Stmt::Assign { .. }));
    }

    #[test]
    fn error_reports_line() {
        let toks = lex("int f() {\n  return $;\n}").unwrap_or_default();
        if toks.is_empty() {
            return; // lexer already rejects '$'
        }
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn rejects_bad_items() {
        assert!(parse(&lex("void g;").unwrap()).is_err());
        assert!(parse(&lex("int a[0];").unwrap()).is_err());
        assert!(parse(&lex("int f(void v) {}").unwrap()).is_err());
    }
}
