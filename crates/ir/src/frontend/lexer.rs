//! MinC lexer.

use super::CompileError;

/// Token kinds. Punctuation is named after its spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum TokenKind {
    Ident(String),
    Int(i64),
    Char(u8),
    Str(Vec<u8>),
    // Keywords.
    KwInt,
    KwByte,
    KwVoid,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwDo,
    KwReturn,
    KwBreak,
    KwContinue,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    Shl,
    Shr,
    AndAnd,
    OrOr,
    PlusPlus,
    MinusMinus,
    PlusEq,
    MinusEq,
    Eof,
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// Lexes MinC source into tokens (terminated by an `Eof` token).
///
/// # Errors
///
/// Returns [`CompileError::Lex`] on malformed literals or stray
/// characters.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Vec::new();
    let err = |line: u32, msg: &str| CompileError::Lex { line, msg: msg.to_string() };

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let mut value: i64;
                if c == b'0' && matches!(bytes.get(i + 1), Some(b'x' | b'X')) {
                    i += 2;
                    let hstart = i;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    if i == hstart {
                        return Err(err(line, "empty hex literal"));
                    }
                    value = i64::from_str_radix(&src[hstart..i], 16)
                        .map_err(|_| err(line, "hex literal out of range"))?;
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    value = src[start..i].parse().map_err(|_| err(line, "integer literal out of range"))?;
                }
                if value > u32::MAX as i64 {
                    value &= 0xffff_ffff;
                }
                out.push(Token { kind: TokenKind::Int(value), line });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let kind = match word {
                    "int" => TokenKind::KwInt,
                    "byte" | "char" => TokenKind::KwByte,
                    "void" => TokenKind::KwVoid,
                    "if" => TokenKind::KwIf,
                    "else" => TokenKind::KwElse,
                    "while" => TokenKind::KwWhile,
                    "for" => TokenKind::KwFor,
                    "do" => TokenKind::KwDo,
                    "return" => TokenKind::KwReturn,
                    "break" => TokenKind::KwBreak,
                    "continue" => TokenKind::KwContinue,
                    _ => TokenKind::Ident(word.to_string()),
                };
                out.push(Token { kind, line });
            }
            b'\'' => {
                i += 1;
                let ch = match bytes.get(i) {
                    Some(b'\\') => {
                        i += 1;
                        let e = escape(*bytes.get(i).ok_or_else(|| err(line, "unterminated char"))?)
                            .ok_or_else(|| err(line, "bad escape"))?;
                        i += 1;
                        e
                    }
                    Some(&c2) => {
                        i += 1;
                        c2
                    }
                    None => return Err(err(line, "unterminated char literal")),
                };
                if bytes.get(i) != Some(&b'\'') {
                    return Err(err(line, "unterminated char literal"));
                }
                i += 1;
                out.push(Token { kind: TokenKind::Char(ch), line });
            }
            b'"' => {
                i += 1;
                let mut s = Vec::new();
                loop {
                    match bytes.get(i) {
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            i += 1;
                            let e = escape(*bytes.get(i).ok_or_else(|| err(line, "unterminated string"))?)
                                .ok_or_else(|| err(line, "bad escape"))?;
                            s.push(e);
                            i += 1;
                        }
                        Some(b'\n') | None => return Err(err(line, "unterminated string literal")),
                        Some(&c2) => {
                            s.push(c2);
                            i += 1;
                        }
                    }
                }
                out.push(Token { kind: TokenKind::Str(s), line });
            }
            _ => {
                let two = |a: u8, b: u8| c == a && bytes.get(i + 1) == Some(&b);
                let (kind, len) = if two(b'<', b'=') {
                    (TokenKind::Le, 2)
                } else if two(b'>', b'=') {
                    (TokenKind::Ge, 2)
                } else if two(b'=', b'=') {
                    (TokenKind::EqEq, 2)
                } else if two(b'!', b'=') {
                    (TokenKind::Ne, 2)
                } else if two(b'<', b'<') {
                    (TokenKind::Shl, 2)
                } else if two(b'>', b'>') {
                    (TokenKind::Shr, 2)
                } else if two(b'&', b'&') {
                    (TokenKind::AndAnd, 2)
                } else if two(b'|', b'|') {
                    (TokenKind::OrOr, 2)
                } else if two(b'+', b'+') {
                    (TokenKind::PlusPlus, 2)
                } else if two(b'-', b'-') {
                    (TokenKind::MinusMinus, 2)
                } else if two(b'+', b'=') {
                    (TokenKind::PlusEq, 2)
                } else if two(b'-', b'=') {
                    (TokenKind::MinusEq, 2)
                } else {
                    let k = match c {
                        b'(' => TokenKind::LParen,
                        b')' => TokenKind::RParen,
                        b'{' => TokenKind::LBrace,
                        b'}' => TokenKind::RBrace,
                        b'[' => TokenKind::LBracket,
                        b']' => TokenKind::RBracket,
                        b',' => TokenKind::Comma,
                        b';' => TokenKind::Semi,
                        b'=' => TokenKind::Assign,
                        b'+' => TokenKind::Plus,
                        b'-' => TokenKind::Minus,
                        b'*' => TokenKind::Star,
                        b'/' => TokenKind::Slash,
                        b'%' => TokenKind::Percent,
                        b'&' => TokenKind::Amp,
                        b'|' => TokenKind::Pipe,
                        b'^' => TokenKind::Caret,
                        b'~' => TokenKind::Tilde,
                        b'!' => TokenKind::Bang,
                        b'<' => TokenKind::Lt,
                        b'>' => TokenKind::Gt,
                        _ => return Err(err(line, &format!("unexpected character {:?}", c as char))),
                    };
                    (k, 1)
                };
                out.push(Token { kind, line });
                i += len;
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, line });
    Ok(out)
}

fn escape(c: u8) -> Option<u8> {
    Some(match c {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                TokenKind::KwInt,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(42),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped_and_lines_counted() {
        let toks = lex("// c\n/* multi\nline */ x").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("x".into()));
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn literals() {
        assert_eq!(kinds("0x1F")[0], TokenKind::Int(31));
        assert_eq!(kinds("'a'")[0], TokenKind::Char(b'a'));
        assert_eq!(kinds("'\\n'")[0], TokenKind::Char(b'\n'));
        assert_eq!(kinds("\"hi\\0\"")[0], TokenKind::Str(vec![b'h', b'i', 0]));
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("<= >= == != << >> && || ++ -- += -="),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::PlusPlus,
                TokenKind::MinusMinus,
                TokenKind::PlusEq,
                TokenKind::MinusEq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_reported_with_line() {
        match lex("\n\n@") {
            Err(CompileError::Lex { line, .. }) => assert_eq!(line, 3),
            other => panic!("{other:?}"),
        }
        assert!(lex("\"open").is_err());
        assert!(lex("/* open").is_err());
    }

    #[test]
    fn char_keyword_is_byte() {
        assert_eq!(kinds("char")[0], TokenKind::KwByte);
    }
}
