//! The MinC front-end: a small C-like language standing in for the
//! paper's clang front-end (see DESIGN.md for the substitution
//! rationale). MinC has `int`/`byte` scalars, pointers, arrays,
//! strings, functions, and full structured control flow — enough to
//! express Dhrystone-like and CoreMark-like workloads.

mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::{BinAst, Expr, FuncDef, GlobalDecl, Item, Program, Stmt, Type, UnAst};
pub use lexer::{lex, Token, TokenKind};
pub use lower::lower_program;
pub use parser::parse;

use crate::{verify::VerifyError, Module};

/// A front-end or verification error, with source position where
/// available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexical error.
    Lex {
        /// 1-based line.
        line: u32,
        /// Explanation.
        msg: String,
    },
    /// Parse error.
    Parse {
        /// 1-based line.
        line: u32,
        /// Explanation.
        msg: String,
    },
    /// Semantic (type/symbol) error.
    Sema {
        /// 1-based line.
        line: u32,
        /// Explanation.
        msg: String,
    },
    /// Post-lowering IR verification failure (an internal error).
    Verify(VerifyError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lex { line, msg } => write!(f, "lex error at line {line}: {msg}"),
            CompileError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            CompileError::Sema { line, msg } => write!(f, "semantic error at line {line}: {msg}"),
            CompileError::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Lexes, parses, and lowers MinC source to an IR [`Module`].
///
/// # Errors
///
/// Returns [`CompileError`] on any front-end failure.
pub fn lower_source(src: &str) -> Result<Module, CompileError> {
    let tokens = lex(src)?;
    let program = parse(&tokens)?;
    lower_program(&program)
}
