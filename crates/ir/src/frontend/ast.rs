//! MinC abstract syntax.

/// A MinC type. Arrays exist only at declaration sites and decay to
/// pointers in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// 32-bit signed integer.
    Int,
    /// 8-bit unsigned integer (promoted to `int` in arithmetic).
    Byte,
    /// Pointer to `int`.
    PtrInt,
    /// Pointer to `byte`.
    PtrByte,
    /// Function with no return value (return type position only).
    Void,
}

impl Type {
    /// Element size in bytes for pointer arithmetic and indexing.
    #[must_use]
    pub fn elem_size(self) -> u32 {
        match self {
            Type::PtrInt => 4,
            Type::PtrByte => 1,
            _ => panic!("elem_size on non-pointer {self:?}"),
        }
    }

    /// The pointed-to scalar type.
    #[must_use]
    pub fn pointee(self) -> Type {
        match self {
            Type::PtrInt => Type::Int,
            Type::PtrByte => Type::Byte,
            _ => panic!("pointee on non-pointer {self:?}"),
        }
    }

    /// The pointer type to `self` (must be a scalar).
    #[must_use]
    pub fn ptr_to(self) -> Type {
        match self {
            Type::Int => Type::PtrInt,
            Type::Byte => Type::PtrByte,
            _ => panic!("ptr_to on non-scalar {self:?}"),
        }
    }

    /// Whether the type is a pointer.
    #[must_use]
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::PtrInt | Type::PtrByte)
    }

    /// Scalar byte width (for loads/stores).
    #[must_use]
    pub fn scalar_size(self) -> u32 {
        match self {
            Type::Byte => 1,
            Type::Int | Type::PtrInt | Type::PtrByte => 4,
            Type::Void => panic!("void has no size"),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnAst {
    Neg,
    Not,
    BitNot,
}

/// Binary operators (short-circuit `&&`/`||` included; lowered via
/// control flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinAst {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    LogAnd,
    LogOr,
}

/// Expressions. Every node carries the source line for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int {
        /// Value (wrapped to 32 bits during lowering).
        value: i64,
        /// Source line.
        line: u32,
    },
    /// String literal (becomes an anonymous `byte` global).
    Str {
        /// Bytes, without terminator (lowering appends NUL).
        bytes: Vec<u8>,
        /// Source line.
        line: u32,
    },
    /// Variable reference.
    Ident {
        /// Name.
        name: String,
        /// Source line.
        line: u32,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnAst,
        /// Operand.
        expr: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinAst,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Array/pointer indexing `base[index]`.
    Index {
        /// Base (array or pointer).
        base: Box<Expr>,
        /// Element index.
        index: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Pointer dereference `*p`.
    Deref {
        /// Pointer expression.
        expr: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Address-of `&lvalue`.
    AddrOf {
        /// Lvalue expression.
        expr: Box<Expr>,
        /// Source line.
        line: u32,
    },
}

impl Expr {
    /// The source line of the expression.
    #[must_use]
    pub fn line(&self) -> u32 {
        match self {
            Expr::Int { line, .. }
            | Expr::Str { line, .. }
            | Expr::Ident { line, .. }
            | Expr::Call { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Index { line, .. }
            | Expr::Deref { line, .. }
            | Expr::AddrOf { line, .. } => *line,
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `{ ... }` — introduces a scope.
    Block(Vec<Stmt>),
    /// `if (cond) then else?`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_stmt: Box<Stmt>,
        /// Else branch.
        else_stmt: Option<Box<Stmt>>,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// Body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for (init; cond; step) body` — each clause optional.
    For {
        /// Initializer statement.
        init: Option<Box<Stmt>>,
        /// Loop condition (absent = always true).
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Box<Stmt>,
    },
    /// `return e?;`.
    Return(Option<Expr>),
    /// `break;`.
    Break {
        /// Source line.
        line: u32,
    },
    /// `continue;`.
    Continue {
        /// Source line.
        line: u32,
    },
    /// Local declaration, optionally an array, optionally initialized.
    Decl {
        /// Scalar/element type.
        ty: Type,
        /// Name.
        name: String,
        /// Array length if declared as an array.
        array: Option<u32>,
        /// Initializer (scalars only).
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `lvalue = expr;`.
    Assign {
        /// Target lvalue.
        lvalue: Expr,
        /// Value.
        value: Expr,
    },
    /// Bare expression statement (typically a call).
    ExprStmt(Expr),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDef {
    /// Name.
    pub name: String,
    /// Return type (`Void` for none).
    pub ret: Type,
    /// Parameters as `(type, name)`.
    pub params: Vec<(Type, String)>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// A global variable declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Scalar/element type.
    pub ty: Type,
    /// Name.
    pub name: String,
    /// Array length if an array.
    pub array: Option<u32>,
    /// Constant scalar initializer.
    pub init: Option<i64>,
    /// String initializer for byte arrays.
    pub str_init: Option<Vec<u8>>,
    /// Source line.
    pub line: u32,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// Function definition.
    Func(FuncDef),
    /// Global declaration.
    Global(GlobalDecl),
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}
