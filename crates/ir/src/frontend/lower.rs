//! Lowering from the MinC AST to SSA IR via the Braun builder.

use std::collections::{HashMap, HashSet};

use super::ast::*;
use super::CompileError;
use crate::builder::VarId;
use crate::{
    BinOp, Block, FunctionBuilder, Global, GlobalId, InstData, MemWidth, Module, SlotId, SysOp, Terminator,
    Value,
};

type LResult<T> = Result<T, CompileError>;

fn sema<T>(line: u32, msg: impl Into<String>) -> LResult<T> {
    Err(CompileError::Sema { line, msg: msg.into() })
}

#[derive(Debug, Clone)]
struct FuncSig {
    params: Vec<Type>,
    ret: Type,
}

#[derive(Debug, Clone, Copy)]
enum Binding {
    /// SSA variable (scalar local whose address is never taken).
    Var { var: VarId, ty: Type },
    /// Stack slot (array or address-taken scalar).
    Slot { slot: SlotId, ty: Type, is_array: bool },
}

#[derive(Debug, Clone, Copy)]
enum GlobalBinding {
    Scalar { id: GlobalId, ty: Type },
    Array { id: GlobalId, elem: Type },
}

/// Lowers a parsed program into an IR [`Module`].
///
/// # Errors
///
/// Returns [`CompileError::Sema`] on semantic errors.
pub fn lower_program(prog: &Program) -> LResult<Module> {
    let mut module = Module::default();
    let mut globals: HashMap<String, GlobalBinding> = HashMap::new();
    let mut sigs: HashMap<String, FuncSig> = HashMap::new();

    for item in &prog.items {
        match item {
            Item::Global(g) => {
                if globals.contains_key(&g.name) {
                    return sema(g.line, format!("duplicate global `{}`", g.name));
                }
                let elem_size = g.ty.scalar_size();
                let (size, align) = match g.array {
                    Some(n) => (elem_size * n, elem_size),
                    None => (elem_size, elem_size),
                };
                let mut init = Vec::new();
                if let Some(v) = g.init {
                    if g.array.is_some() {
                        return sema(g.line, "scalar initializer on array global");
                    }
                    let v = v as i32;
                    match g.ty {
                        Type::Byte => init.push(v as u8),
                        _ => init.extend_from_slice(&v.to_le_bytes()),
                    }
                }
                if let Some(s) = &g.str_init {
                    let cap = g.array.unwrap_or(0) as usize;
                    if s.len() + 1 > cap {
                        return sema(g.line, "string initializer longer than array");
                    }
                    init = s.clone();
                    init.push(0);
                }
                let id = module.add_global(Global { name: g.name.clone(), size, align, init });
                let binding = match g.array {
                    Some(_) => GlobalBinding::Array { id, elem: g.ty },
                    None => GlobalBinding::Scalar { id, ty: g.ty },
                };
                globals.insert(g.name.clone(), binding);
            }
            Item::Func(f) => {
                if sigs.contains_key(&f.name) || is_builtin(&f.name) {
                    return sema(f.line, format!("duplicate function `{}`", f.name));
                }
                sigs.insert(
                    f.name.clone(),
                    FuncSig { params: f.params.iter().map(|(t, _)| *t).collect(), ret: f.ret },
                );
            }
        }
    }

    for item in &prog.items {
        if let Item::Func(f) = item {
            let func = Lowerer::lower(f, &globals, &sigs, &mut module)?;
            module.funcs.push(func);
        }
    }
    Ok(module)
}

fn is_builtin(name: &str) -> bool {
    matches!(name, "print_int" | "print_char" | "exit")
}

fn builtin_op(name: &str) -> Option<SysOp> {
    match name {
        "print_int" => Some(SysOp::PrintInt),
        "print_char" => Some(SysOp::PrintChar),
        "exit" => Some(SysOp::Exit),
        _ => None,
    }
}

struct Lowerer<'a> {
    b: FunctionBuilder,
    scopes: Vec<HashMap<String, Binding>>,
    globals: &'a HashMap<String, GlobalBinding>,
    sigs: &'a HashMap<String, FuncSig>,
    module: &'a mut Module,
    /// (continue target, break target)
    loop_stack: Vec<(Block, Block)>,
    addr_taken: HashSet<String>,
    ret: Type,
    str_count: u32,
}

impl<'a> Lowerer<'a> {
    fn lower(
        f: &FuncDef,
        globals: &'a HashMap<String, GlobalBinding>,
        sigs: &'a HashMap<String, FuncSig>,
        module: &'a mut Module,
    ) -> LResult<crate::Function> {
        let returns_value = f.ret != Type::Void;
        let b = FunctionBuilder::new(&f.name, f.params.len() as u32, returns_value);
        let mut addr_taken = HashSet::new();
        for s in &f.body {
            collect_addr_taken(s, &mut addr_taken);
        }
        let mut lo = Lowerer {
            b,
            scopes: vec![HashMap::new()],
            globals,
            sigs,
            module,
            loop_stack: Vec::new(),
            addr_taken,
            ret: f.ret,
            str_count: 0,
        };
        // Bind parameters.
        for (i, (ty, name)) in f.params.iter().enumerate() {
            let pv = lo.b.param(i as u32);
            if lo.addr_taken.contains(name) {
                let slot = lo.b.func.create_slot(name, ty.scalar_size(), ty.scalar_size());
                let addr = lo.b.ins(InstData::SlotAddr(slot));
                lo.b.ins(InstData::Store { width: width_of(*ty), val: pv, addr });
                lo.bind(name, Binding::Slot { slot, ty: *ty, is_array: false });
            } else {
                let var = lo.b.declare_var();
                lo.b.def_var(var, pv);
                lo.bind(name, Binding::Var { var, ty: *ty });
            }
        }
        for s in &f.body {
            lo.stmt(s)?;
        }
        if !lo.b.is_terminated(lo.b.current_block()) {
            if returns_value {
                let zero = lo.b.ins(InstData::Const(0));
                lo.b.terminate(Terminator::Ret(Some(zero)));
            } else {
                lo.b.terminate(Terminator::Ret(None));
            }
        }
        Ok(lo.b.finish())
    }

    fn bind(&mut self, name: &str, binding: Binding) {
        self.scopes.last_mut().expect("scope").insert(name.to_string(), binding);
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    /// Starts a fresh unreachable block after a `return`/`break`/
    /// `continue` so lowering can continue; passes delete it later.
    fn start_dead_block(&mut self) {
        let dead = self.b.create_block();
        self.b.seal_block(dead);
        self.b.switch_to_block(dead);
    }

    fn terminate_once(&mut self, t: Terminator) {
        if !self.b.is_terminated(self.b.current_block()) {
            self.b.terminate(t);
        }
    }

    fn stmt(&mut self, s: &Stmt) -> LResult<()> {
        match s {
            Stmt::Block(body) => {
                self.scopes.push(HashMap::new());
                for st in body {
                    self.stmt(st)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Decl { ty, name, array, init, line } => self.decl(*ty, name, *array, init.as_ref(), *line),
            Stmt::Assign { lvalue, value } => self.assign(lvalue, value),
            Stmt::ExprStmt(e) => {
                self.expr(e)?;
                Ok(())
            }
            Stmt::Return(e) => {
                match (e, self.ret) {
                    (Some(e), Type::Void) => return sema(e.line(), "returning a value from a void function"),
                    (Some(e), _) => {
                        let (v, _) = self.expr(e)?;
                        self.terminate_once(Terminator::Ret(Some(v)));
                    }
                    (None, Type::Void) => self.terminate_once(Terminator::Ret(None)),
                    (None, _) => {
                        let zero = self.b.ins(InstData::Const(0));
                        self.terminate_once(Terminator::Ret(Some(zero)));
                    }
                }
                self.start_dead_block();
                Ok(())
            }
            Stmt::Break { line } => {
                let Some(&(_, brk)) = self.loop_stack.last() else {
                    return sema(*line, "break outside loop");
                };
                self.terminate_once(Terminator::Br(brk));
                self.start_dead_block();
                Ok(())
            }
            Stmt::Continue { line } => {
                let Some(&(cont, _)) = self.loop_stack.last() else {
                    return sema(*line, "continue outside loop");
                };
                self.terminate_once(Terminator::Br(cont));
                self.start_dead_block();
                Ok(())
            }
            Stmt::If { cond, then_stmt, else_stmt } => {
                let (c, _) = self.expr(cond)?;
                let then_bb = self.b.create_block();
                let merge = self.b.create_block();
                let else_bb = if else_stmt.is_some() { self.b.create_block() } else { merge };
                self.terminate_once(Terminator::CondBr { cond: c, then_bb, else_bb });
                self.b.seal_block(then_bb);
                self.b.switch_to_block(then_bb);
                self.stmt(then_stmt)?;
                self.terminate_once(Terminator::Br(merge));
                if let Some(es) = else_stmt {
                    self.b.seal_block(else_bb);
                    self.b.switch_to_block(else_bb);
                    self.stmt(es)?;
                    self.terminate_once(Terminator::Br(merge));
                }
                self.b.seal_block(merge);
                self.b.switch_to_block(merge);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let header = self.b.create_block();
                let body_bb = self.b.create_block();
                let exit = self.b.create_block();
                self.terminate_once(Terminator::Br(header));
                self.b.switch_to_block(header);
                let (c, _) = self.expr(cond)?;
                self.terminate_once(Terminator::CondBr { cond: c, then_bb: body_bb, else_bb: exit });
                self.b.seal_block(body_bb);
                self.b.switch_to_block(body_bb);
                self.loop_stack.push((header, exit));
                self.stmt(body)?;
                self.loop_stack.pop();
                self.terminate_once(Terminator::Br(header));
                self.b.seal_block(header);
                self.b.seal_block(exit);
                self.b.switch_to_block(exit);
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                let body_bb = self.b.create_block();
                let latch = self.b.create_block();
                let exit = self.b.create_block();
                self.terminate_once(Terminator::Br(body_bb));
                self.b.switch_to_block(body_bb);
                self.loop_stack.push((latch, exit));
                self.stmt(body)?;
                self.loop_stack.pop();
                self.terminate_once(Terminator::Br(latch));
                self.b.seal_block(latch);
                self.b.switch_to_block(latch);
                let (c, _) = self.expr(cond)?;
                self.terminate_once(Terminator::CondBr { cond: c, then_bb: body_bb, else_bb: exit });
                self.b.seal_block(body_bb);
                self.b.seal_block(exit);
                self.b.switch_to_block(exit);
                Ok(())
            }
            Stmt::For { init, cond, step, body } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let header = self.b.create_block();
                let body_bb = self.b.create_block();
                let step_bb = self.b.create_block();
                let exit = self.b.create_block();
                self.terminate_once(Terminator::Br(header));
                self.b.switch_to_block(header);
                let c = match cond {
                    Some(e) => self.expr(e)?.0,
                    None => self.b.ins(InstData::Const(1)),
                };
                self.terminate_once(Terminator::CondBr { cond: c, then_bb: body_bb, else_bb: exit });
                self.b.seal_block(body_bb);
                self.b.switch_to_block(body_bb);
                self.loop_stack.push((step_bb, exit));
                self.stmt(body)?;
                self.loop_stack.pop();
                self.terminate_once(Terminator::Br(step_bb));
                self.b.seal_block(step_bb);
                self.b.switch_to_block(step_bb);
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                self.terminate_once(Terminator::Br(header));
                self.b.seal_block(header);
                self.b.seal_block(exit);
                self.b.switch_to_block(exit);
                self.scopes.pop();
                Ok(())
            }
        }
    }

    fn decl(&mut self, ty: Type, name: &str, array: Option<u32>, init: Option<&Expr>, line: u32) -> LResult<()> {
        if let Some(n) = array {
            let elem = ty.scalar_size();
            let slot = self.b.func.create_slot(name, elem * n, 4);
            self.bind(name, Binding::Slot { slot, ty, is_array: true });
            if init.is_some() {
                return sema(line, "array initializers are not supported");
            }
            return Ok(());
        }
        let init_v = match init {
            Some(e) => {
                let (v, vty) = self.expr(e)?;
                self.coerce(v, vty, ty, line)?
            }
            None => self.b.ins(InstData::Const(0)),
        };
        if self.addr_taken.contains(name) {
            let slot = self.b.func.create_slot(name, ty.scalar_size(), ty.scalar_size());
            let addr = self.b.ins(InstData::SlotAddr(slot));
            self.b.ins(InstData::Store { width: width_of(ty), val: init_v, addr });
            self.bind(name, Binding::Slot { slot, ty, is_array: false });
        } else {
            let var = self.b.declare_var();
            self.b.def_var(var, init_v);
            self.bind(name, Binding::Var { var, ty });
        }
        Ok(())
    }

    fn assign(&mut self, lvalue: &Expr, value: &Expr) -> LResult<()> {
        // Fast path: assignment to an SSA-bound identifier.
        if let Expr::Ident { name, line } = lvalue {
            if let Some(Binding::Var { var, ty }) = self.lookup(name) {
                let (v, vty) = self.expr(value)?;
                let v = self.coerce(v, vty, ty, *line)?;
                self.b.def_var(var, v);
                return Ok(());
            }
        }
        let (addr, pointee) = self.addr_of(lvalue)?;
        let (v, vty) = self.expr(value)?;
        let v = self.coerce(v, vty, pointee, lvalue.line())?;
        self.b.ins(InstData::Store { width: width_of(pointee), val: v, addr });
        Ok(())
    }

    /// Inserts conversions: byte targets are masked to 8 bits;
    /// pointer/int mixing is allowed silently (MinC is permissive, like
    /// pre-ANSI C) except that `Void` values cannot be used.
    fn coerce(&mut self, v: Value, from: Type, to: Type, line: u32) -> LResult<Value> {
        if from == Type::Void {
            return sema(line, "using the value of a void call");
        }
        if to == Type::Byte && from != Type::Byte {
            let mask = self.b.ins(InstData::Const(0xff));
            return Ok(self.b.ins(InstData::Bin { op: BinOp::And, a: v, b: mask }));
        }
        Ok(v)
    }

    fn expr(&mut self, e: &Expr) -> LResult<(Value, Type)> {
        match e {
            Expr::Int { value, .. } => Ok((self.b.ins(InstData::Const(*value as i32)), Type::Int)),
            Expr::Str { bytes, .. } => {
                let id = self.intern_string(bytes);
                Ok((self.b.ins(InstData::GlobalAddr(id)), Type::PtrByte))
            }
            Expr::Ident { name, line } => {
                if let Some(binding) = self.lookup(name) {
                    return match binding {
                        Binding::Var { var, ty } => Ok((self.b.use_var(var), ty)),
                        Binding::Slot { slot, ty, is_array } => {
                            let addr = self.b.ins(InstData::SlotAddr(slot));
                            if is_array {
                                Ok((addr, ty.ptr_to()))
                            } else {
                                let v = self.b.ins(InstData::Load { width: width_of(ty), addr });
                                Ok((v, ty))
                            }
                        }
                    };
                }
                match self.globals.get(name) {
                    Some(&GlobalBinding::Scalar { id, ty }) => {
                        let addr = self.b.ins(InstData::GlobalAddr(id));
                        let v = self.b.ins(InstData::Load { width: width_of(ty), addr });
                        Ok((v, ty))
                    }
                    Some(&GlobalBinding::Array { id, elem }) => {
                        Ok((self.b.ins(InstData::GlobalAddr(id)), elem.ptr_to()))
                    }
                    None => sema(*line, format!("unknown variable `{name}`")),
                }
            }
            Expr::Call { name, args, line } => {
                if let Some(op) = builtin_op(name) {
                    if args.len() != op.arity() {
                        return sema(*line, format!("`{name}` takes {} argument(s)", op.arity()));
                    }
                    let mut vals = Vec::new();
                    for a in args {
                        let (v, ty) = self.expr(a)?;
                        if ty == Type::Void {
                            return sema(a.line(), "void argument");
                        }
                        vals.push(v);
                    }
                    return Ok((self.b.ins(InstData::Sys { op, args: vals }), Type::Int));
                }
                let Some(sig) = self.sigs.get(name).cloned() else {
                    return sema(*line, format!("unknown function `{name}`"));
                };
                if sig.params.len() != args.len() {
                    return sema(
                        *line,
                        format!("`{name}` takes {} argument(s), got {}", sig.params.len(), args.len()),
                    );
                }
                let mut vals = Vec::new();
                for (a, pty) in args.iter().zip(&sig.params) {
                    let (v, ty) = self.expr(a)?;
                    let v = self.coerce(v, ty, *pty, a.line())?;
                    vals.push(v);
                }
                let v = self.b.ins(InstData::Call { callee: name.clone(), args: vals });
                Ok((v, sig.ret))
            }
            Expr::Unary { op, expr, line } => {
                let (v, ty) = self.expr(expr)?;
                if ty == Type::Void {
                    return sema(*line, "void operand");
                }
                let r = match op {
                    UnAst::Neg => {
                        let zero = self.b.ins(InstData::Const(0));
                        self.b.ins(InstData::Bin { op: BinOp::Sub, a: zero, b: v })
                    }
                    UnAst::Not => {
                        let zero = self.b.ins(InstData::Const(0));
                        self.b.ins(InstData::Bin { op: BinOp::Eq, a: v, b: zero })
                    }
                    UnAst::BitNot => {
                        let ones = self.b.ins(InstData::Const(-1));
                        self.b.ins(InstData::Bin { op: BinOp::Xor, a: v, b: ones })
                    }
                };
                Ok((r, Type::Int))
            }
            Expr::Deref { expr, line } => {
                let (p, ty) = self.expr(expr)?;
                if !ty.is_ptr() {
                    return sema(*line, "dereferencing a non-pointer");
                }
                let pointee = ty.pointee();
                let v = self.b.ins(InstData::Load { width: width_of(pointee), addr: p });
                Ok((v, pointee))
            }
            Expr::AddrOf { expr, .. } => {
                let (addr, pointee) = self.addr_of(expr)?;
                Ok((addr, pointee.ptr_to()))
            }
            Expr::Index { .. } => {
                let (addr, pointee) = self.addr_of(e)?;
                let v = self.b.ins(InstData::Load { width: width_of(pointee), addr });
                Ok((v, pointee))
            }
            Expr::Binary { op: BinAst::LogAnd, lhs, rhs, .. } => self.short_circuit(lhs, rhs, true),
            Expr::Binary { op: BinAst::LogOr, lhs, rhs, .. } => self.short_circuit(lhs, rhs, false),
            Expr::Binary { op, lhs, rhs, line } => {
                let (a, ta) = self.expr(lhs)?;
                let (b, tb) = self.expr(rhs)?;
                if ta == Type::Void || tb == Type::Void {
                    return sema(*line, "void operand");
                }
                self.binary(*op, a, ta, b, tb, *line)
            }
        }
    }

    fn binary(&mut self, op: BinAst, a: Value, ta: Type, b: Value, tb: Type, line: u32) -> LResult<(Value, Type)> {
        use BinAst::*;
        // Pointer arithmetic.
        if matches!(op, Add | Sub) && (ta.is_ptr() || tb.is_ptr()) {
            match (op, ta.is_ptr(), tb.is_ptr()) {
                (Add, true, false) => return Ok((self.ptr_offset(a, ta, b, false), ta)),
                (Add, false, true) => return Ok((self.ptr_offset(b, tb, a, false), tb)),
                (Sub, true, false) => return Ok((self.ptr_offset(a, ta, b, true), ta)),
                (Sub, true, true) => {
                    if ta != tb {
                        return sema(line, "subtracting incompatible pointers");
                    }
                    let diff = self.b.ins(InstData::Bin { op: BinOp::Sub, a, b });
                    let r = if ta.elem_size() == 4 {
                        let two = self.b.ins(InstData::Const(2));
                        self.b.ins(InstData::Bin { op: BinOp::ShrA, a: diff, b: two })
                    } else {
                        diff
                    };
                    return Ok((r, Type::Int));
                }
                _ => return sema(line, "invalid pointer arithmetic"),
            }
        }
        let unsigned = ta.is_ptr() || tb.is_ptr();
        let ir = match op {
            Add => BinOp::Add,
            Sub => BinOp::Sub,
            Mul => BinOp::Mul,
            Div => BinOp::Div,
            Rem => BinOp::Rem,
            Shl => BinOp::Shl,
            Shr => BinOp::ShrA,
            BitAnd => BinOp::And,
            BitOr => BinOp::Or,
            BitXor => BinOp::Xor,
            Eq => BinOp::Eq,
            Ne => BinOp::Ne,
            Lt => {
                if unsigned {
                    BinOp::ULt
                } else {
                    BinOp::SLt
                }
            }
            Le => {
                if unsigned {
                    BinOp::ULe
                } else {
                    BinOp::SLe
                }
            }
            Gt => {
                if unsigned {
                    BinOp::UGt
                } else {
                    BinOp::SGt
                }
            }
            Ge => {
                if unsigned {
                    BinOp::UGe
                } else {
                    BinOp::SGe
                }
            }
            LogAnd | LogOr => unreachable!("handled by short_circuit"),
        };
        Ok((self.b.ins(InstData::Bin { op: ir, a, b }), Type::Int))
    }

    /// `p + i` / `p - i` with element scaling.
    fn ptr_offset(&mut self, p: Value, pty: Type, i: Value, negate: bool) -> Value {
        let scaled = if pty.elem_size() == 4 {
            let two = self.b.ins(InstData::Const(2));
            self.b.ins(InstData::Bin { op: BinOp::Shl, a: i, b: two })
        } else {
            i
        };
        let op = if negate { BinOp::Sub } else { BinOp::Add };
        self.b.ins(InstData::Bin { op, a: p, b: scaled })
    }

    /// Short-circuit `&&` (and = true) / `||`.
    fn short_circuit(&mut self, lhs: &Expr, rhs: &Expr, is_and: bool) -> LResult<(Value, Type)> {
        let (l, lt) = self.expr(lhs)?;
        if lt == Type::Void {
            return sema(lhs.line(), "void operand");
        }
        let result = self.b.declare_var();
        let zero = self.b.ins(InstData::Const(0));
        let lbool = self.b.ins(InstData::Bin { op: BinOp::Ne, a: l, b: zero });
        self.b.def_var(result, lbool);
        let rhs_bb = self.b.create_block();
        let merge = self.b.create_block();
        if is_and {
            self.terminate_once(Terminator::CondBr { cond: lbool, then_bb: rhs_bb, else_bb: merge });
        } else {
            self.terminate_once(Terminator::CondBr { cond: lbool, then_bb: merge, else_bb: rhs_bb });
        }
        self.b.seal_block(rhs_bb);
        self.b.switch_to_block(rhs_bb);
        let (r, rt) = self.expr(rhs)?;
        if rt == Type::Void {
            return sema(rhs.line(), "void operand");
        }
        let zero2 = self.b.ins(InstData::Const(0));
        let rbool = self.b.ins(InstData::Bin { op: BinOp::Ne, a: r, b: zero2 });
        self.b.def_var(result, rbool);
        self.terminate_once(Terminator::Br(merge));
        self.b.seal_block(merge);
        self.b.switch_to_block(merge);
        Ok((self.b.use_var(result), Type::Int))
    }

    /// Lowers an lvalue to `(address, pointee type)`.
    fn addr_of(&mut self, e: &Expr) -> LResult<(Value, Type)> {
        match e {
            Expr::Ident { name, line } => {
                if let Some(binding) = self.lookup(name) {
                    return match binding {
                        Binding::Var { .. } => {
                            sema(*line, format!("cannot take the address of SSA variable `{name}` (internal)"))
                        }
                        Binding::Slot { slot, ty, .. } => {
                            Ok((self.b.ins(InstData::SlotAddr(slot)), ty))
                        }
                    };
                }
                match self.globals.get(name) {
                    Some(&GlobalBinding::Scalar { id, ty }) => {
                        Ok((self.b.ins(InstData::GlobalAddr(id)), ty))
                    }
                    Some(&GlobalBinding::Array { id, elem }) => {
                        Ok((self.b.ins(InstData::GlobalAddr(id)), elem))
                    }
                    None => sema(*line, format!("unknown variable `{name}`")),
                }
            }
            Expr::Deref { expr, line } => {
                let (p, ty) = self.expr(expr)?;
                if !ty.is_ptr() {
                    return sema(*line, "dereferencing a non-pointer");
                }
                Ok((p, ty.pointee()))
            }
            Expr::Index { base, index, line } => {
                let (bv, bt) = self.expr(base)?;
                if !bt.is_ptr() {
                    return sema(*line, "indexing a non-pointer");
                }
                let (iv, it) = self.expr(index)?;
                if it.is_ptr() {
                    return sema(*line, "pointer used as index");
                }
                let addr = self.ptr_offset(bv, bt, iv, false);
                Ok((addr, bt.pointee()))
            }
            Expr::Str { bytes, .. } => {
                let id = self.intern_string(bytes);
                Ok((self.b.ins(InstData::GlobalAddr(id)), Type::Byte))
            }
            other => sema(other.line(), "expression is not an lvalue"),
        }
    }

    fn intern_string(&mut self, bytes: &[u8]) -> GlobalId {
        let mut init = bytes.to_vec();
        init.push(0);
        let name = format!(".str.{}.{}", self.b.func.name, self.str_count);
        self.str_count += 1;
        self.module.add_global(Global { name, size: init.len() as u32, align: 1, init })
    }
}

fn width_of(ty: Type) -> MemWidth {
    match ty {
        Type::Byte => MemWidth::Bu,
        _ => MemWidth::W,
    }
}

/// Collects names whose address is taken with `&name` so they get
/// stack slots instead of SSA variables.
fn collect_addr_taken(s: &Stmt, out: &mut HashSet<String>) {
    fn walk_expr(e: &Expr, out: &mut HashSet<String>) {
        match e {
            Expr::AddrOf { expr, .. } => {
                if let Expr::Ident { name, .. } = &**expr {
                    out.insert(name.clone());
                }
                walk_expr(expr, out);
            }
            Expr::Unary { expr, .. } | Expr::Deref { expr, .. } => walk_expr(expr, out),
            Expr::Binary { lhs, rhs, .. } => {
                walk_expr(lhs, out);
                walk_expr(rhs, out);
            }
            Expr::Index { base, index, .. } => {
                walk_expr(base, out);
                walk_expr(index, out);
            }
            Expr::Call { args, .. } => args.iter().for_each(|a| walk_expr(a, out)),
            Expr::Int { .. } | Expr::Str { .. } | Expr::Ident { .. } => {}
        }
    }
    match s {
        Stmt::Block(body) => body.iter().for_each(|st| collect_addr_taken(st, out)),
        Stmt::If { cond, then_stmt, else_stmt } => {
            walk_expr(cond, out);
            collect_addr_taken(then_stmt, out);
            if let Some(e) = else_stmt {
                collect_addr_taken(e, out);
            }
        }
        Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
            walk_expr(cond, out);
            collect_addr_taken(body, out);
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(i) = init {
                collect_addr_taken(i, out);
            }
            if let Some(c) = cond {
                walk_expr(c, out);
            }
            if let Some(st) = step {
                collect_addr_taken(st, out);
            }
            collect_addr_taken(body, out);
        }
        Stmt::Return(Some(e)) | Stmt::ExprStmt(e) => walk_expr(e, out),
        Stmt::Assign { lvalue, value } => {
            walk_expr(lvalue, out);
            walk_expr(value, out);
        }
        Stmt::Decl { init: Some(e), .. } => walk_expr(e, out),
        _ => {}
    }
}
