//! IR instruction and terminator definitions.

use std::fmt;

use straight_isa::MemWidth;

use crate::{Block, GlobalId, SlotId, Value};

/// Binary operations on 32-bit values. Comparisons produce 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    DivU,
    RemU,
    And,
    Or,
    Xor,
    Shl,
    ShrA,
    ShrL,
    Eq,
    Ne,
    SLt,
    SLe,
    SGt,
    SGe,
    ULt,
    ULe,
    UGt,
    UGe,
}

impl BinOp {
    /// Evaluates the operation with the same corner-case semantics as
    /// RV32IM (wrapping arithmetic, masked shifts, defined division by
    /// zero).
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> u32 {
        use straight_isa::AluOp;
        let (sa, sb) = (a as i32, b as i32);
        match self {
            BinOp::Add => AluOp::Add.eval(a, b),
            BinOp::Sub => AluOp::Sub.eval(a, b),
            BinOp::Mul => AluOp::Mul.eval(a, b),
            BinOp::Div => AluOp::Div.eval(a, b),
            BinOp::Rem => AluOp::Rem.eval(a, b),
            BinOp::DivU => AluOp::Divu.eval(a, b),
            BinOp::RemU => AluOp::Remu.eval(a, b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => AluOp::Sll.eval(a, b),
            BinOp::ShrA => AluOp::Sra.eval(a, b),
            BinOp::ShrL => AluOp::Srl.eval(a, b),
            BinOp::Eq => u32::from(a == b),
            BinOp::Ne => u32::from(a != b),
            BinOp::SLt => u32::from(sa < sb),
            BinOp::SLe => u32::from(sa <= sb),
            BinOp::SGt => u32::from(sa > sb),
            BinOp::SGe => u32::from(sa >= sb),
            BinOp::ULt => u32::from(a < b),
            BinOp::ULe => u32::from(a <= b),
            BinOp::UGt => u32::from(a > b),
            BinOp::UGe => u32::from(a >= b),
        }
    }

    /// True when `op(a, b) == op(b, a)` for all inputs.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Eq | BinOp::Ne
        )
    }

    /// Lower-case mnemonic for printing.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::DivU => "divu",
            BinOp::RemU => "remu",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::ShrA => "shra",
            BinOp::ShrL => "shrl",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::SLt => "slt",
            BinOp::SLe => "sle",
            BinOp::SGt => "sgt",
            BinOp::SGe => "sge",
            BinOp::ULt => "ult",
            BinOp::ULe => "ule",
            BinOp::UGt => "ugt",
            BinOp::UGe => "uge",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Built-in environment services available to MinC programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SysOp {
    /// Print the first argument as a signed decimal, then a newline.
    PrintInt,
    /// Print the low byte of the first argument as a character.
    PrintChar,
    /// Terminate the program with the first argument as exit code.
    Exit,
}

impl SysOp {
    /// The service code shared with both ISAs' `SYS`/`ecall`
    /// conventions.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            SysOp::PrintInt => 1,
            SysOp::PrintChar => 2,
            SysOp::Exit => 3,
        }
    }

    /// Inverse of [`SysOp::code`].
    #[must_use]
    pub fn from_code(code: u16) -> Option<SysOp> {
        match code {
            1 => Some(SysOp::PrintInt),
            2 => Some(SysOp::PrintChar),
            3 => Some(SysOp::Exit),
            _ => None,
        }
    }

    /// Number of arguments the service consumes.
    #[must_use]
    pub fn arity(self) -> usize {
        1
    }

    /// MinC-level builtin name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SysOp::PrintInt => "print_int",
            SysOp::PrintChar => "print_char",
            SysOp::Exit => "exit",
        }
    }
}

/// One value-producing IR instruction. The producing [`Value`] id is
/// implicit (it is the instruction's index in the function arena),
/// mirroring STRAIGHT's implicit destinations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstData {
    /// The `i`-th function parameter; only valid in the entry block.
    Param(u32),
    /// 32-bit constant.
    Const(i32),
    /// Binary operation.
    Bin {
        /// Operation.
        op: BinOp,
        /// Left operand.
        a: Value,
        /// Right operand.
        b: Value,
    },
    /// Memory load.
    Load {
        /// Access width and extension.
        width: MemWidth,
        /// Byte address.
        addr: Value,
    },
    /// Memory store; produces `val` (so every instruction has a
    /// result, as in STRAIGHT).
    Store {
        /// Access width.
        width: MemWidth,
        /// Stored value.
        val: Value,
        /// Byte address.
        addr: Value,
    },
    /// Direct call by symbol name; produces the (single) return value,
    /// or an unspecified value for `void` callees.
    Call {
        /// Callee symbol.
        callee: String,
        /// Argument values.
        args: Vec<Value>,
    },
    /// Environment service.
    Sys {
        /// Service.
        op: SysOp,
        /// Argument values.
        args: Vec<Value>,
    },
    /// Address of a global.
    GlobalAddr(GlobalId),
    /// Address of a stack slot.
    SlotAddr(SlotId),
    /// SSA phi: one incoming value per predecessor block.
    Phi(Vec<(Block, Value)>),
    /// Value alias introduced by SSA construction when a phi turns out
    /// to be trivial; removed by `passes::resolve_aliases`.
    Copy(Value),
}

impl InstData {
    /// Visits every value operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match self {
            InstData::Param(_) | InstData::Const(_) | InstData::GlobalAddr(_) | InstData::SlotAddr(_) => {}
            InstData::Bin { a, b, .. } => {
                f(*a);
                f(*b);
            }
            InstData::Load { addr, .. } => f(*addr),
            InstData::Store { val, addr, .. } => {
                f(*val);
                f(*addr);
            }
            InstData::Call { args, .. } | InstData::Sys { args, .. } => args.iter().copied().for_each(f),
            InstData::Phi(args) => args.iter().for_each(|(_, v)| f(*v)),
            InstData::Copy(v) => f(*v),
        }
    }

    /// Rewrites every value operand in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            InstData::Param(_) | InstData::Const(_) | InstData::GlobalAddr(_) | InstData::SlotAddr(_) => {}
            InstData::Bin { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            InstData::Load { addr, .. } => *addr = f(*addr),
            InstData::Store { val, addr, .. } => {
                *val = f(*val);
                *addr = f(*addr);
            }
            InstData::Call { args, .. } | InstData::Sys { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            InstData::Phi(args) => {
                for (_, v) in args {
                    *v = f(*v);
                }
            }
            InstData::Copy(v) => *v = f(*v),
        }
    }

    /// True when removing the instruction (with an unused result)
    /// changes program behaviour.
    #[must_use]
    pub fn has_side_effect(&self) -> bool {
        matches!(self, InstData::Store { .. } | InstData::Call { .. } | InstData::Sys { .. })
    }

    /// True for phi instructions.
    #[must_use]
    pub fn is_phi(&self) -> bool {
        matches!(self, InstData::Phi(_))
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional branch.
    Br(Block),
    /// Two-way branch on `cond != 0`.
    CondBr {
        /// Condition value.
        cond: Value,
        /// Target when nonzero.
        then_bb: Block,
        /// Target when zero.
        else_bb: Block,
    },
    /// Function return.
    Ret(Option<Value>),
    /// Placeholder while a block is under construction; never present
    /// in a verified function.
    Unreachable,
}

impl Terminator {
    /// Successor blocks in order.
    #[must_use]
    pub fn successors(&self) -> Vec<Block> {
        match self {
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
        }
    }

    /// Visits value operands.
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match self {
            Terminator::CondBr { cond, .. } => f(*cond),
            Terminator::Ret(Some(v)) => f(*v),
            _ => {}
        }
    }

    /// Rewrites value operands in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            Terminator::CondBr { cond, .. } => *cond = f(*cond),
            Terminator::Ret(Some(v)) => *v = f(*v),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_produce_bool() {
        assert_eq!(BinOp::SLt.eval(-1i32 as u32, 0), 1);
        assert_eq!(BinOp::UGe.eval(0, 1), 0);
        assert_eq!(BinOp::SLe.eval(5, 5), 1);
        assert_eq!(BinOp::Ne.eval(1, 2), 1);
    }

    #[test]
    fn division_by_zero_defined() {
        assert_eq!(BinOp::Div.eval(9, 0), u32::MAX);
        assert_eq!(BinOp::RemU.eval(9, 0), 9);
    }

    #[test]
    fn commutativity_flags() {
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        for op in [BinOp::Add, BinOp::Mul, BinOp::Xor] {
            assert_eq!(op.eval(13, 7), op.eval(7, 13));
        }
    }

    #[test]
    fn sysop_codes_roundtrip() {
        for op in [SysOp::PrintInt, SysOp::PrintChar, SysOp::Exit] {
            assert_eq!(SysOp::from_code(op.code()), Some(op));
        }
        assert_eq!(SysOp::from_code(99), None);
    }

    #[test]
    fn operand_iteration_and_rewrite() {
        let mut i = InstData::Bin { op: BinOp::Add, a: Value::new(1), b: Value::new(2) };
        let mut seen = vec![];
        i.for_each_operand(|v| seen.push(v));
        assert_eq!(seen, vec![Value::new(1), Value::new(2)]);
        i.map_operands(|v| Value::new(v.index() + 10));
        let mut seen2 = vec![];
        i.for_each_operand(|v| seen2.push(v));
        assert_eq!(seen2, vec![Value::new(11), Value::new(12)]);
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::CondBr { cond: Value::new(0), then_bb: Block::new(1), else_bb: Block::new(2) };
        assert_eq!(t.successors(), vec![Block::new(1), Block::new(2)]);
        assert!(Terminator::Ret(None).successors().is_empty());
    }
}
