//! SSA construction using the on-the-fly algorithm of Braun et al.
//! ("Simple and Efficient Construction of Static Single Assignment
//! Form", CC 2013) — the same SSA discipline LLVM IR gives the paper's
//! compiler.
//!
//! The front-end declares variables, assigns them with
//! [`FunctionBuilder::def_var`], and reads them with
//! [`FunctionBuilder::use_var`]; phis are created lazily at join
//! points and trivial phis are degraded to [`InstData::Copy`] aliases
//! that `passes::resolve_aliases` later folds away.

use std::collections::HashMap;

use crate::{Block, Function, InstData, Terminator, Value};

/// A front-end variable handle (pre-SSA "variable" that may be
/// assigned many times).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(u32);

/// Incremental SSA function builder.
#[derive(Debug)]
pub struct FunctionBuilder {
    /// The function under construction.
    pub func: Function,
    current: Block,
    next_var: u32,
    sealed: Vec<bool>,
    terminated: Vec<bool>,
    preds: Vec<Vec<Block>>,
    current_def: HashMap<(VarId, Block), Value>,
    incomplete_phis: HashMap<Block, Vec<(VarId, Value)>>,
}

impl FunctionBuilder {
    /// Starts building `name`; parameters become `Param` instructions
    /// in the entry block (retrieve them with [`FunctionBuilder::param`]).
    #[must_use]
    pub fn new(name: &str, num_params: u32, returns_value: bool) -> FunctionBuilder {
        let mut func = Function::new(name, num_params, returns_value);
        let entry = func.entry();
        for i in 0..num_params {
            func.push_inst(entry, InstData::Param(i));
        }
        FunctionBuilder {
            func,
            current: entry,
            next_var: 0,
            sealed: vec![true],
            terminated: vec![false],
            preds: vec![vec![]],
            current_def: HashMap::new(),
            incomplete_phis: HashMap::new(),
        }
    }

    /// The value of parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a parameter index.
    #[must_use]
    pub fn param(&self, i: u32) -> Value {
        assert!(i < self.func.num_params, "parameter {i} out of range");
        self.func.block(self.func.entry()).insts[i as usize]
    }

    /// Declares a new front-end variable.
    pub fn declare_var(&mut self) -> VarId {
        let v = VarId(self.next_var);
        self.next_var += 1;
        v
    }

    /// Records an assignment `var = value` in the current block.
    pub fn def_var(&mut self, var: VarId, value: Value) {
        self.current_def.insert((var, self.current), value);
    }

    /// Reads `var` at the current point, inserting phis as needed.
    pub fn use_var(&mut self, var: VarId) -> Value {
        self.read_var(var, self.current)
    }

    fn read_var(&mut self, var: VarId, block: Block) -> Value {
        if let Some(&v) = self.current_def.get(&(var, block)) {
            return self.resolve(v);
        }
        self.read_var_recursive(var, block)
    }

    fn read_var_recursive(&mut self, var: VarId, block: Block) -> Value {
        let value = if !self.sealed[block.index()] {
            let phi = self.insert_phi(block);
            self.incomplete_phis.entry(block).or_default().push((var, phi));
            phi
        } else if self.preds[block.index()].len() == 1 {
            let pred = self.preds[block.index()][0];
            self.read_var(var, pred)
        } else if self.preds[block.index()].is_empty() {
            // Use of a variable never assigned on this path: MinC
            // defines uninitialized locals to read as zero.
            self.func.push_inst(block, InstData::Const(0))
        } else {
            let phi = self.insert_phi(block);
            self.current_def.insert((var, block), phi);
            self.add_phi_operands(var, phi, block)
        };
        self.current_def.insert((var, block), value);
        value
    }

    fn insert_phi(&mut self, block: Block) -> Value {
        let phi = self.func.create_inst(InstData::Phi(Vec::new()));
        self.func.block_mut(block).insts.insert(0, phi);
        phi
    }

    fn add_phi_operands(&mut self, var: VarId, phi: Value, block: Block) -> Value {
        let preds = self.preds[block.index()].clone();
        let mut args = Vec::with_capacity(preds.len());
        for pred in preds {
            let v = self.read_var(var, pred);
            args.push((pred, v));
        }
        if let InstData::Phi(a) = self.func.inst_mut(phi) {
            *a = args;
        }
        self.try_remove_trivial_phi(phi)
    }

    /// If all operands of `phi` (other than self-references) resolve
    /// to the same value, degrade it to a `Copy` alias.
    fn try_remove_trivial_phi(&mut self, phi: Value) -> Value {
        let args = match self.func.inst(phi) {
            InstData::Phi(a) => a.clone(),
            _ => return self.resolve(phi),
        };
        let mut same: Option<Value> = None;
        for (_, raw) in args {
            let v = self.resolve(raw);
            if v == phi {
                continue;
            }
            match same {
                None => same = Some(v),
                Some(s) if s == v => {}
                Some(_) => return phi, // non-trivial
            }
        }
        // A phi with no non-self operand only happens in dead cycles;
        // keep it as zero for determinism.
        let target = same.unwrap_or_else(|| self.func.create_inst(InstData::Const(0)));
        *self.func.inst_mut(phi) = InstData::Copy(target);
        target
    }

    fn resolve(&self, mut v: Value) -> Value {
        loop {
            match self.func.inst(v) {
                InstData::Copy(t) => v = *t,
                _ => return v,
            }
        }
    }

    /// Creates a new (unsealed) block.
    pub fn create_block(&mut self) -> Block {
        let b = self.func.create_block();
        self.sealed.push(false);
        self.terminated.push(false);
        self.preds.push(Vec::new());
        b
    }

    /// Switches the insertion point.
    pub fn switch_to_block(&mut self, b: Block) {
        self.current = b;
    }

    /// The current insertion block.
    #[must_use]
    pub fn current_block(&self) -> Block {
        self.current
    }

    /// True once `b` has a terminator.
    #[must_use]
    pub fn is_terminated(&self, b: Block) -> bool {
        self.terminated[b.index()]
    }

    /// Declares that no further predecessors will be added to `b`,
    /// completing any pending phis.
    pub fn seal_block(&mut self, b: Block) {
        if self.sealed[b.index()] {
            return;
        }
        self.sealed[b.index()] = true;
        if let Some(pending) = self.incomplete_phis.remove(&b) {
            for (var, phi) in pending {
                self.add_phi_operands(var, phi, b);
            }
        }
    }

    /// Appends an instruction to the current block.
    pub fn ins(&mut self, data: InstData) -> Value {
        debug_assert!(!self.terminated[self.current.index()], "instruction after terminator");
        self.func.push_inst(self.current, data)
    }

    /// Terminates the current block, recording predecessor edges.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn terminate(&mut self, term: Terminator) {
        let b = self.current;
        assert!(!self.terminated[b.index()], "{b} terminated twice");
        for succ in term.successors() {
            debug_assert!(!self.sealed[succ.index()], "adding predecessor to sealed block {succ}");
            self.preds[succ.index()].push(b);
        }
        self.func.block_mut(b).term = term;
        self.terminated[b.index()] = true;
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if any block is unsealed (the front-end must seal every
    /// block it creates).
    #[must_use]
    pub fn finish(self) -> Function {
        for (i, s) in self.sealed.iter().enumerate() {
            assert!(s, "block bb{i} never sealed");
        }
        assert!(self.incomplete_phis.is_empty(), "unresolved incomplete phis");
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BinOp;

    /// Builds: x = 1; if (p0) x = 2; return x — expecting a phi.
    #[test]
    fn join_creates_phi() {
        let mut b = FunctionBuilder::new("f", 1, true);
        let x = b.declare_var();
        let one = b.ins(InstData::Const(1));
        b.def_var(x, one);
        let then_bb = b.create_block();
        let join = b.create_block();
        let p = b.param(0);
        b.terminate(Terminator::CondBr { cond: p, then_bb, else_bb: join });
        b.seal_block(then_bb);
        b.switch_to_block(then_bb);
        let two = b.ins(InstData::Const(2));
        b.def_var(x, two);
        b.terminate(Terminator::Br(join));
        b.seal_block(join);
        b.switch_to_block(join);
        let xv = b.use_var(x);
        b.terminate(Terminator::Ret(Some(xv)));
        let f = b.finish();
        assert!(matches!(f.inst(xv), InstData::Phi(args) if args.len() == 2));
    }

    /// x assigned identically on both paths folds to a trivial copy.
    #[test]
    fn trivial_phi_removed() {
        let mut b = FunctionBuilder::new("f", 1, true);
        let x = b.declare_var();
        let one = b.ins(InstData::Const(1));
        b.def_var(x, one);
        let then_bb = b.create_block();
        let join = b.create_block();
        let p = b.param(0);
        b.terminate(Terminator::CondBr { cond: p, then_bb, else_bb: join });
        b.seal_block(then_bb);
        b.switch_to_block(then_bb);
        b.terminate(Terminator::Br(join));
        b.seal_block(join);
        b.switch_to_block(join);
        let xv = b.use_var(x);
        b.terminate(Terminator::Ret(Some(xv)));
        assert_eq!(xv, one);
    }

    /// Loop-carried variable gets a phi in an initially unsealed header.
    #[test]
    fn loop_carried_phi() {
        let mut b = FunctionBuilder::new("f", 0, true);
        let i = b.declare_var();
        let zero = b.ins(InstData::Const(0));
        b.def_var(i, zero);
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.terminate(Terminator::Br(header));
        b.switch_to_block(header);
        let iv = b.use_var(i);
        let hundred = b.ins(InstData::Const(100));
        let cond = b.ins(InstData::Bin { op: BinOp::SLt, a: iv, b: hundred });
        b.terminate(Terminator::CondBr { cond, then_bb: body, else_bb: exit });
        b.seal_block(body);
        b.switch_to_block(body);
        let one = b.ins(InstData::Const(1));
        let iv2 = b.use_var(i);
        let inc = b.ins(InstData::Bin { op: BinOp::Add, a: iv2, b: one });
        b.def_var(i, inc);
        b.terminate(Terminator::Br(header));
        b.seal_block(header);
        b.seal_block(exit);
        b.switch_to_block(exit);
        let ret = b.use_var(i);
        b.terminate(Terminator::Ret(Some(ret)));
        let f = b.finish();
        assert!(matches!(f.inst(iv), InstData::Phi(args) if args.len() == 2), "{:?}", f.inst(iv));
    }

    #[test]
    fn uninitialized_var_reads_zero() {
        let mut b = FunctionBuilder::new("f", 0, true);
        let x = b.declare_var();
        let v = b.use_var(x);
        b.terminate(Terminator::Ret(Some(v)));
        let f = b.finish();
        assert!(matches!(f.inst(v), InstData::Const(0)));
    }

    #[test]
    #[should_panic(expected = "never sealed")]
    fn unsealed_block_rejected() {
        let mut b = FunctionBuilder::new("f", 0, false);
        let dangling = b.create_block();
        let _ = dangling;
        b.terminate(Terminator::Ret(None));
        let _ = b.finish();
    }
}
