use crate::{analysis::Cfg, Block, Function};

/// Dominator tree computed with the Cooper–Harvey–Kennedy iterative
/// algorithm over reverse postorder.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// Immediate dominator per block; `idom[entry] == entry`;
    /// `None` for unreachable blocks.
    idom: Vec<Option<Block>>,
    rpo_index: Vec<usize>,
}

impl Dominators {
    /// Computes dominators for `func` given its `cfg`.
    #[must_use]
    pub fn compute(func: &Function, cfg: &Cfg) -> Dominators {
        let n = func.blocks.len();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in cfg.rpo().iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let mut idom: Vec<Option<Block>> = vec![None; n];
        let entry = func.entry();
        idom[entry.index()] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo().iter().skip(1) {
                let mut new_idom: Option<Block> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo_index }
    }

    fn intersect(idom: &[Option<Block>], rpo_index: &[usize], mut a: Block, mut b: Block) -> Block {
        while a != b {
            while rpo_index[a.index()] > rpo_index[b.index()] {
                a = idom[a.index()].expect("processed block has idom");
            }
            while rpo_index[b.index()] > rpo_index[a.index()] {
                b = idom[b.index()].expect("processed block has idom");
            }
        }
        a
    }

    /// The immediate dominator of `b` (the entry dominates itself).
    #[must_use]
    pub fn idom(&self, b: Block) -> Option<Block> {
        self.idom[b.index()]
    }

    /// True when `a` dominates `b` (reflexive).
    #[must_use]
    pub fn dominates(&self, a: Block, mut b: Block) -> bool {
        loop {
            if a == b {
                return true;
            }
            match self.idom[b.index()] {
                Some(i) if i != b => b = i,
                _ => return false,
            }
        }
    }

    /// RPO position of a block (`usize::MAX` when unreachable).
    #[must_use]
    pub fn rpo_index(&self, b: Block) -> usize {
        self.rpo_index[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstData, Terminator};

    /// entry -> {b1, b2} -> b3; b3 -> b4 (loop back to b1? no, plain).
    #[test]
    fn diamond_dominators() {
        let mut f = crate::Function::new("d", 0, false);
        let b1 = f.create_block();
        let b2 = f.create_block();
        let b3 = f.create_block();
        let c = f.push_inst(f.entry(), InstData::Const(1));
        f.block_mut(f.entry()).term = Terminator::CondBr { cond: c, then_bb: b1, else_bb: b2 };
        f.block_mut(b1).term = Terminator::Br(b3);
        f.block_mut(b2).term = Terminator::Br(b3);
        f.block_mut(b3).term = Terminator::Ret(None);
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&f, &cfg);
        let entry = f.entry();
        assert_eq!(dom.idom(b1), Some(entry));
        assert_eq!(dom.idom(b2), Some(entry));
        assert_eq!(dom.idom(b3), Some(entry));
        assert!(dom.dominates(entry, b3));
        assert!(!dom.dominates(b1, b3));
        assert!(dom.dominates(b3, b3));
    }

    /// entry -> header -> body -> header; header -> exit.
    #[test]
    fn loop_dominators() {
        let mut f = crate::Function::new("l", 0, false);
        let header = f.create_block();
        let body = f.create_block();
        let exit = f.create_block();
        let c = f.push_inst(header, InstData::Const(1));
        f.block_mut(f.entry()).term = Terminator::Br(header);
        f.block_mut(header).term = Terminator::CondBr { cond: c, then_bb: body, else_bb: exit };
        f.block_mut(body).term = Terminator::Br(header);
        f.block_mut(exit).term = Terminator::Ret(None);
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&f, &cfg);
        assert_eq!(dom.idom(body), Some(header));
        assert_eq!(dom.idom(exit), Some(header));
        assert!(dom.dominates(header, body));
        assert!(!dom.dominates(body, exit));
    }
}
