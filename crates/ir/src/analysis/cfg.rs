use crate::{Block, Function};

/// Control-flow graph: predecessor/successor lists and orderings.
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: Vec<Vec<Block>>,
    succs: Vec<Vec<Block>>,
    rpo: Vec<Block>,
}

impl Cfg {
    /// Computes the CFG of `func`.
    #[must_use]
    pub fn compute(func: &Function) -> Cfg {
        let n = func.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for b in func.block_ids() {
            for s in func.block(b).term.successors() {
                succs[b.index()].push(s);
                preds[s.index()].push(b);
            }
        }
        // Reverse postorder from the entry (unreachable blocks are
        // excluded; passes remove them before codegen).
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        // Iterative DFS carrying an explicit successor cursor.
        let entry = func.entry();
        let mut stack: Vec<(Block, usize)> = vec![(entry, 0)];
        visited[entry.index()] = true;
        while let Some(&mut (b, ref mut cursor)) = stack.last_mut() {
            if *cursor < succs[b.index()].len() {
                let s = succs[b.index()][*cursor];
                *cursor += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }
        postorder.reverse();
        Cfg { preds, succs, rpo: postorder }
    }

    /// Predecessors of `b` (in terminator order, duplicates possible
    /// for two-armed branches to the same target).
    #[must_use]
    pub fn preds(&self, b: Block) -> &[Block] {
        &self.preds[b.index()]
    }

    /// Successors of `b`.
    #[must_use]
    pub fn succs(&self, b: Block) -> &[Block] {
        &self.succs[b.index()]
    }

    /// Reachable blocks in reverse postorder (entry first).
    #[must_use]
    pub fn rpo(&self) -> &[Block] {
        &self.rpo
    }

    /// True if `b` is reachable from the entry.
    #[must_use]
    pub fn is_reachable(&self, b: Block) -> bool {
        self.rpo.contains(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Function, Terminator, Value};

    fn diamond() -> Function {
        let mut f = Function::new("d", 0, false);
        let b1 = f.create_block();
        let b2 = f.create_block();
        let b3 = f.create_block();
        let c = f.push_inst(f.entry(), crate::InstData::Const(1));
        f.block_mut(f.entry()).term = Terminator::CondBr { cond: c, then_bb: b1, else_bb: b2 };
        f.block_mut(b1).term = Terminator::Br(b3);
        f.block_mut(b2).term = Terminator::Br(b3);
        f.block_mut(b3).term = Terminator::Ret(None);
        f
    }

    #[test]
    fn diamond_edges() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs(Block::new(0)), &[Block::new(1), Block::new(2)]);
        assert_eq!(cfg.preds(Block::new(3)), &[Block::new(1), Block::new(2)]);
        assert_eq!(cfg.rpo().first(), Some(&Block::new(0)));
        assert_eq!(cfg.rpo().last(), Some(&Block::new(3)));
        assert_eq!(cfg.rpo().len(), 4);
    }

    #[test]
    fn unreachable_excluded_from_rpo() {
        let mut f = diamond();
        let dead = f.create_block();
        f.block_mut(dead).term = Terminator::Ret(None);
        let cfg = Cfg::compute(&f);
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo().len(), 4);
    }

    #[test]
    fn rpo_places_preds_before_succs_in_dags() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let pos = |b: Block| cfg.rpo().iter().position(|x| *x == b).unwrap();
        assert!(pos(Block::new(0)) < pos(Block::new(1)));
        assert!(pos(Block::new(1)) < pos(Block::new(3)));
        let _ = Value::new(0);
    }
}
