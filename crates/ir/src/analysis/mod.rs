//! Analyses over IR functions: CFG utilities, dominators, liveness,
//! and natural-loop detection.
//!
//! These are exactly the analyses the paper's compilation algorithm
//! needs: liveness drives distance fixing at merging flows (Section
//! IV-C2) and loop information drives the RE+ stack-spilling
//! optimization (Section IV-D).

mod cfg;
mod dom;
mod liveness;
mod loops;

pub use cfg::Cfg;
pub use dom::Dominators;
pub use liveness::Liveness;
pub use loops::{Loop, Loops};
