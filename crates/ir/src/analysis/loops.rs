use std::collections::HashSet;

use crate::{
    analysis::{Cfg, Dominators},
    Block, Function,
};

/// A natural loop: a header plus the set of blocks that can reach a
/// back edge without leaving the header's dominance region.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: Block,
    /// All blocks in the loop, including the header.
    pub blocks: HashSet<Block>,
    /// Blocks with a back edge to the header.
    pub latches: Vec<Block>,
}

impl Loop {
    /// True if `b` belongs to the loop.
    #[must_use]
    pub fn contains(&self, b: Block) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of a function. Back edges sharing a header are
/// merged into one loop, as usual.
#[derive(Debug, Clone)]
pub struct Loops {
    /// Detected loops, ordered by header block id.
    pub loops: Vec<Loop>,
}

impl Loops {
    /// Detects natural loops from back edges (`latch -> header` where
    /// the header dominates the latch).
    #[must_use]
    pub fn compute(_func: &Function, cfg: &Cfg, dom: &Dominators) -> Loops {
        let mut loops: Vec<Loop> = Vec::new();
        for &b in cfg.rpo() {
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    // Back edge b -> s.
                    if let Some(l) = loops.iter_mut().find(|l| l.header == s) {
                        l.latches.push(b);
                        extend_loop_body(cfg, s, b, &mut l.blocks);
                    } else {
                        let mut blocks = HashSet::new();
                        blocks.insert(s);
                        extend_loop_body(cfg, s, b, &mut blocks);
                        loops.push(Loop { header: s, blocks, latches: vec![b] });
                    }
                }
            }
        }
        loops.sort_by_key(|l| l.header);
        Loops { loops }
    }

    /// The innermost loop containing `b`, if any (smallest body).
    #[must_use]
    pub fn innermost_containing(&self, b: Block) -> Option<&Loop> {
        self.loops.iter().filter(|l| l.contains(b)).min_by_key(|l| l.blocks.len())
    }

    /// True when `b` is inside any loop.
    #[must_use]
    pub fn in_any_loop(&self, b: Block) -> bool {
        self.loops.iter().any(|l| l.contains(b))
    }
}

/// Walks predecessors from `latch` until the `header`, inserting every
/// visited block into `body`.
fn extend_loop_body(cfg: &Cfg, header: Block, latch: Block, body: &mut HashSet<Block>) {
    body.insert(header);
    if body.contains(&latch) {
        return;
    }
    let mut stack = vec![latch];
    body.insert(latch);
    while let Some(b) = stack.pop() {
        for &p in cfg.preds(b) {
            if body.insert(p) {
                stack.push(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstData, Terminator};

    /// entry -> h; h -> b -> h; h -> exit; and a nested inner loop
    /// b -> b2 -> b.
    #[test]
    fn nested_loops_detected() {
        let mut f = Function::new("n", 0, false);
        let h = f.create_block();
        let b = f.create_block();
        let b2 = f.create_block();
        let exit = f.create_block();
        let c = f.push_inst(h, InstData::Const(1));
        let c2 = f.push_inst(b, InstData::Const(1));
        f.block_mut(f.entry()).term = Terminator::Br(h);
        f.block_mut(h).term = Terminator::CondBr { cond: c, then_bb: b, else_bb: exit };
        f.block_mut(b).term = Terminator::CondBr { cond: c2, then_bb: b2, else_bb: h };
        f.block_mut(b2).term = Terminator::Br(b);
        f.block_mut(exit).term = Terminator::Ret(None);

        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&f, &cfg);
        let loops = Loops::compute(&f, &cfg, &dom);
        assert_eq!(loops.loops.len(), 2);
        let outer = loops.loops.iter().find(|l| l.header == h).unwrap();
        let inner = loops.loops.iter().find(|l| l.header == b).unwrap();
        assert!(outer.contains(b) && outer.contains(b2));
        assert!(inner.contains(b2) && !inner.contains(h));
        assert_eq!(loops.innermost_containing(b2).unwrap().header, b);
        assert!(loops.in_any_loop(h));
        assert!(!loops.in_any_loop(exit));
    }

    #[test]
    fn acyclic_function_has_no_loops() {
        let mut f = Function::new("a", 0, false);
        f.block_mut(f.entry()).term = Terminator::Ret(None);
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&f, &cfg);
        let loops = Loops::compute(&f, &cfg, &dom);
        assert!(loops.loops.is_empty());
    }
}
