use std::collections::HashSet;

use crate::{analysis::Cfg, Block, Function, InstData, Value};

/// Per-block live-in/live-out sets from a standard backward dataflow
/// over SSA.
///
/// Phi semantics: a phi's result is *defined at the entry* of its
/// block; a phi's `(pred, value)` operand counts as a use at the *end
/// of that predecessor*, which is exactly the program point where the
/// STRAIGHT back-end inserts the distance-fixing `RMOV`s (Figure 8c).
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<HashSet<Value>>,
    live_out: Vec<HashSet<Value>>,
}

impl Liveness {
    /// Computes liveness for `func`.
    #[must_use]
    pub fn compute(func: &Function, cfg: &Cfg) -> Liveness {
        let n = func.blocks.len();
        // Per-block upward-exposed uses and defs.
        let mut uses: Vec<HashSet<Value>> = vec![HashSet::new(); n];
        let mut defs: Vec<HashSet<Value>> = vec![HashSet::new(); n];
        for b in func.block_ids() {
            let bi = b.index();
            for &v in &func.block(b).insts {
                let inst = func.inst(v);
                if !inst.is_phi() {
                    inst.for_each_operand(|op| {
                        if !defs[bi].contains(&op) {
                            uses[bi].insert(op);
                        }
                    });
                }
                defs[bi].insert(v);
            }
            func.block(b).term.for_each_operand(|op| {
                if !defs[bi].contains(&op) {
                    uses[bi].insert(op);
                }
            });
        }

        let mut live_in: Vec<HashSet<Value>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<Value>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            // Iterate in reverse RPO for fast convergence.
            for &b in cfg.rpo().iter().rev() {
                let bi = b.index();
                let mut out: HashSet<Value> = HashSet::new();
                for &s in cfg.succs(b) {
                    let si = s.index();
                    // live-in of successor minus its phi defs...
                    for &v in &live_in[si] {
                        out.insert(v);
                    }
                    // Remove every phi def of `s` before inserting any
                    // edge argument: one phi's argument may itself be a
                    // later phi of `s` (loop-carried rotation such as
                    // `a' = phi(.., c); c' = phi(.., ..)`), and
                    // interleaving the removal with the insertion would
                    // clobber that use.
                    for &p in &func.block(s).insts {
                        if func.inst(p).is_phi() {
                            out.remove(&p);
                        }
                    }
                    // ...plus the values its phis select from this pred.
                    for &p in &func.block(s).insts {
                        if let InstData::Phi(args) = func.inst(p) {
                            for (pred, v) in args {
                                if *pred == b {
                                    out.insert(*v);
                                }
                            }
                        }
                    }
                }
                let mut inn: HashSet<Value> = uses[bi].clone();
                for &v in &out {
                    if !defs[bi].contains(&v) {
                        inn.insert(v);
                    }
                }
                if out != live_out[bi] || inn != live_in[bi] {
                    live_out[bi] = out;
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Values live at the entry of `b` (excluding `b`'s own phi
    /// results).
    #[must_use]
    pub fn live_in(&self, b: Block) -> &HashSet<Value> {
        &self.live_in[b.index()]
    }

    /// Values live at the exit of `b` (including values feeding
    /// successor phis along the `b` edge).
    #[must_use]
    pub fn live_out(&self, b: Block) -> &HashSet<Value> {
        &self.live_out[b.index()]
    }

    /// Sorted live-in list (deterministic iteration for codegen).
    #[must_use]
    pub fn live_in_sorted(&self, b: Block) -> Vec<Value> {
        let mut v: Vec<Value> = self.live_in[b.index()].iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Sorted live-out list.
    #[must_use]
    pub fn live_out_sorted(&self, b: Block) -> Vec<Value> {
        let mut v: Vec<Value> = self.live_out[b.index()].iter().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, Terminator};

    /// Loop: i = phi(0, i+1); live sets must carry the phi value
    /// around the back edge.
    #[test]
    fn loop_carried_value_is_live() {
        let mut f = Function::new("l", 0, true);
        let entry = f.entry();
        let header = f.create_block();
        let body = f.create_block();
        let exit = f.create_block();
        let zero = f.push_inst(entry, InstData::Const(0));
        f.block_mut(entry).term = Terminator::Br(header);
        // header: i = phi [(entry, zero), (body, inc)]; cond = i < 10
        let phi = f.create_inst(InstData::Phi(vec![]));
        f.block_mut(header).insts.push(phi);
        let ten = f.push_inst(header, InstData::Const(10));
        let cond = f.push_inst(header, InstData::Bin { op: BinOp::SLt, a: phi, b: ten });
        f.block_mut(header).term = Terminator::CondBr { cond, then_bb: body, else_bb: exit };
        let one = f.push_inst(body, InstData::Const(1));
        let inc = f.push_inst(body, InstData::Bin { op: BinOp::Add, a: phi, b: one });
        f.block_mut(body).term = Terminator::Br(header);
        *f.inst_mut(phi) = InstData::Phi(vec![(entry, zero), (body, inc)]);
        f.block_mut(exit).term = Terminator::Ret(Some(phi));

        let cfg = Cfg::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        // zero is live out of entry (feeds the phi), dead after.
        assert!(live.live_out(entry).contains(&zero));
        assert!(!live.live_out(header).contains(&zero));
        // phi is live into body (used by inc) and into exit (returned).
        assert!(live.live_in(body).contains(&phi));
        assert!(live.live_in(exit).contains(&phi));
        // inc is live out of body (feeds the phi on the back edge).
        assert!(live.live_out(body).contains(&inc));
        // phi result is not live-in to its own block.
        assert!(!live.live_in(header).contains(&phi));
    }

    /// One phi's back-edge argument is another phi of the same block
    /// (`a' = phi(.., c)` where `c` is itself a phi): the argument must
    /// stay live out of the predecessor even though the same value is
    /// also a phi *def* of the successor.
    #[test]
    fn phi_rotation_argument_stays_live() {
        let mut f = Function::new("r", 0, true);
        let entry = f.entry();
        let header = f.create_block();
        let body = f.create_block();
        let exit = f.create_block();
        let zero = f.push_inst(entry, InstData::Const(0));
        let one = f.push_inst(entry, InstData::Const(1));
        f.block_mut(entry).term = Terminator::Br(header);
        // header: a = phi [(entry, zero), (body, c)]; c = phi [(entry, one), (body, inc)]
        let a = f.create_inst(InstData::Phi(vec![]));
        f.block_mut(header).insts.push(a);
        let c = f.create_inst(InstData::Phi(vec![]));
        f.block_mut(header).insts.push(c);
        let ten = f.push_inst(header, InstData::Const(10));
        let cond = f.push_inst(header, InstData::Bin { op: BinOp::SLt, a: c, b: ten });
        f.block_mut(header).term = Terminator::CondBr { cond, then_bb: body, else_bb: exit };
        let inc = f.push_inst(body, InstData::Bin { op: BinOp::Add, a: c, b: one });
        f.block_mut(body).term = Terminator::Br(header);
        *f.inst_mut(a) = InstData::Phi(vec![(entry, zero), (body, c)]);
        *f.inst_mut(c) = InstData::Phi(vec![(entry, one), (body, inc)]);
        f.block_mut(exit).term = Terminator::Ret(Some(a));

        let cfg = Cfg::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        // c feeds a's back-edge argument: live out of body despite
        // being a phi def of header.
        assert!(live.live_out(body).contains(&c));
        assert!(live.live_in(body).contains(&c));
    }

    #[test]
    fn straight_line_liveness() {
        let mut f = Function::new("s", 1, true);
        let entry = f.entry();
        let p = f.push_inst(entry, InstData::Param(0));
        let one = f.push_inst(entry, InstData::Const(1));
        let add = f.push_inst(entry, InstData::Bin { op: BinOp::Add, a: p, b: one });
        f.block_mut(entry).term = Terminator::Ret(Some(add));
        let cfg = Cfg::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        assert!(live.live_in(entry).is_empty());
        assert!(live.live_out(entry).is_empty());
    }
}
