//! Function bodies: instruction arena, basic blocks, stack slots.

use std::fmt;

use crate::{Block, InstData, SlotId, Terminator, Value};

/// A function-local stack allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackSlot {
    /// Size in bytes.
    pub size: u32,
    /// Required alignment in bytes (1, 2, or 4).
    pub align: u32,
    /// Debug name.
    pub name: String,
}

/// A basic block: an ordered list of instruction ids (phis first) and
/// a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockData {
    /// Instruction ids in program order. Phis, if any, come first.
    pub insts: Vec<Value>,
    /// The block terminator.
    pub term: Terminator,
}

impl Default for BlockData {
    fn default() -> Self {
        BlockData { insts: Vec::new(), term: Terminator::Unreachable }
    }
}

/// An IR function in SSA form.
#[derive(Debug, Clone)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Number of parameters.
    pub num_params: u32,
    /// Whether the function produces a value.
    pub returns_value: bool,
    /// Instruction arena; `Value(i)` is produced by `insts[i]`.
    pub insts: Vec<InstData>,
    /// Basic blocks; `blocks[0]` is the entry.
    pub blocks: Vec<BlockData>,
    /// Stack slots.
    pub slots: Vec<StackSlot>,
}

impl Function {
    /// Creates an empty function with just an entry block.
    #[must_use]
    pub fn new(name: &str, num_params: u32, returns_value: bool) -> Function {
        Function {
            name: name.to_string(),
            num_params,
            returns_value,
            insts: Vec::new(),
            blocks: vec![BlockData::default()],
            slots: Vec::new(),
        }
    }

    /// The entry block.
    #[must_use]
    pub fn entry(&self) -> Block {
        Block::new(0)
    }

    /// Appends an instruction to the arena *without* placing it in a
    /// block (the builder/backends control placement).
    pub fn create_inst(&mut self, data: InstData) -> Value {
        let v = Value::new(self.insts.len());
        self.insts.push(data);
        v
    }

    /// Appends an instruction to the arena and to the end of `block`.
    pub fn push_inst(&mut self, block: Block, data: InstData) -> Value {
        let v = self.create_inst(data);
        self.blocks[block.index()].insts.push(v);
        v
    }

    /// Creates a new empty block.
    pub fn create_block(&mut self) -> Block {
        let b = Block::new(self.blocks.len());
        self.blocks.push(BlockData::default());
        b
    }

    /// Creates a stack slot.
    pub fn create_slot(&mut self, name: &str, size: u32, align: u32) -> SlotId {
        let s = SlotId::new(self.slots.len());
        self.slots.push(StackSlot { size, align, name: name.to_string() });
        s
    }

    /// The instruction producing `v`.
    #[must_use]
    pub fn inst(&self, v: Value) -> &InstData {
        &self.insts[v.index()]
    }

    /// Mutable access to the instruction producing `v`.
    pub fn inst_mut(&mut self, v: Value) -> &mut InstData {
        &mut self.insts[v.index()]
    }

    /// Block data accessor.
    #[must_use]
    pub fn block(&self, b: Block) -> &BlockData {
        &self.blocks[b.index()]
    }

    /// Mutable block data accessor.
    pub fn block_mut(&mut self, b: Block) -> &mut BlockData {
        &mut self.blocks[b.index()]
    }

    /// Iterator over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = Block> {
        (0..self.blocks.len()).map(Block::new)
    }

    /// Total byte size of all stack slots, each aligned, rounded up to
    /// 4-byte alignment overall.
    #[must_use]
    pub fn frame_size(&self) -> u32 {
        let mut off = 0u32;
        for s in &self.slots {
            off = off.next_multiple_of(s.align.max(1));
            off += s.size;
        }
        off.next_multiple_of(4)
    }

    /// Byte offset of `slot` within the frame (frame base = lowest
    /// address).
    #[must_use]
    pub fn slot_offset(&self, slot: SlotId) -> u32 {
        let mut off = 0u32;
        for (i, s) in self.slots.iter().enumerate() {
            off = off.next_multiple_of(s.align.max(1));
            if i == slot.index() {
                return off;
            }
            off += s.size;
        }
        panic!("slot {slot} out of range");
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fn {}({} params){} {{",
            self.name,
            self.num_params,
            if self.returns_value { " -> value" } else { "" }
        )?;
        for (si, slot) in self.slots.iter().enumerate() {
            writeln!(f, "  slot{si}: {} bytes ({})", slot.size, slot.name)?;
        }
        for b in self.block_ids() {
            writeln!(f, "{b}:")?;
            for &v in &self.block(b).insts {
                writeln!(f, "  {v} = {:?}", self.inst(v))?;
            }
            writeln!(f, "  {:?}", self.block(b).term)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BinOp;

    #[test]
    fn arena_and_blocks() {
        let mut fun = Function::new("f", 0, false);
        let c = fun.push_inst(fun.entry(), InstData::Const(7));
        let b = fun.create_block();
        let add = fun.push_inst(b, InstData::Bin { op: BinOp::Add, a: c, b: c });
        assert_eq!(fun.inst(c), &InstData::Const(7));
        assert_eq!(fun.block(b).insts, vec![add]);
        assert_eq!(fun.entry(), Block::new(0));
    }

    #[test]
    fn frame_layout_respects_alignment() {
        let mut fun = Function::new("f", 0, false);
        let a = fun.create_slot("a", 1, 1);
        let b = fun.create_slot("b", 4, 4);
        let c = fun.create_slot("c", 2, 2);
        assert_eq!(fun.slot_offset(a), 0);
        assert_eq!(fun.slot_offset(b), 4);
        assert_eq!(fun.slot_offset(c), 8);
        assert_eq!(fun.frame_size(), 12);
    }

    #[test]
    fn display_contains_blocks() {
        let fun = Function::new("g", 2, true);
        let s = fun.to_string();
        assert!(s.contains("fn g"));
        assert!(s.contains("bb0:"));
    }
}
