//! IR-to-IR passes: alias resolution, constant folding, dead-code
//! elimination, unreachable-block removal, and critical-edge splitting
//! (required by both back-ends before phi lowering).

use std::collections::HashSet;

use crate::{analysis::Cfg, Block, Function, InstData, Module, Terminator, Value};

/// Runs the standard optimization pipeline on every function.
pub fn optimize(module: &mut Module) {
    resolve_aliases(module);
    for f in &mut module.funcs {
        remove_unreachable_blocks(f);
        let mut budget = 4;
        loop {
            let changed = constfold(f) | dce(f);
            budget -= 1;
            if !changed || budget == 0 {
                break;
            }
            remove_unreachable_blocks(f);
        }
        remove_unreachable_blocks(f);
    }
    resolve_aliases(module);
}

/// Folds `Copy` chains introduced by SSA construction and removes
/// phis that become trivial once copies are resolved.
pub fn resolve_aliases(module: &mut Module) {
    for f in &mut module.funcs {
        // Fixpoint: copy-resolve operands, then demote trivial phis.
        loop {
            let resolve = |mut v: Value, f: &Function| -> Value {
                loop {
                    match f.inst(v) {
                        InstData::Copy(t) => v = *t,
                        _ => return v,
                    }
                }
            };
            let mut changed = false;
            for i in 0..f.insts.len() {
                let mut inst = f.insts[i].clone();
                inst.map_operands(|v| {
                    let r = resolve(v, f);
                    if r != v {
                        changed = true;
                    }
                    r
                });
                f.insts[i] = inst;
            }
            for b in 0..f.blocks.len() {
                let mut term = f.blocks[b].term.clone();
                term.map_operands(|v| {
                    let r = resolve(v, f);
                    if r != v {
                        changed = true;
                    }
                    r
                });
                f.blocks[b].term = term;
            }
            // Demote phis whose operands (ignoring self) agree.
            for i in 0..f.insts.len() {
                let phi = Value::new(i);
                if let InstData::Phi(args) = &f.insts[i] {
                    let mut same = None;
                    let mut trivial = true;
                    for (_, v) in args {
                        if *v == phi {
                            continue;
                        }
                        match same {
                            None => same = Some(*v),
                            Some(s) if s == *v => {}
                            Some(_) => {
                                trivial = false;
                                break;
                            }
                        }
                    }
                    if trivial {
                        if let Some(s) = same {
                            f.insts[i] = InstData::Copy(s);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Drop now-dead Copy instructions from block bodies.
        for b in 0..f.blocks.len() {
            let insts = std::mem::take(&mut f.blocks[b].insts);
            f.blocks[b].insts =
                insts.into_iter().filter(|v| !matches!(f.insts[v.index()], InstData::Copy(_))).collect();
        }
    }
}

/// Folds constant expressions and constant conditional branches.
/// Returns true when anything changed.
pub fn constfold(f: &mut Function) -> bool {
    let mut changed = false;
    for i in 0..f.insts.len() {
        if let InstData::Bin { op, a, b } = f.insts[i] {
            if let (InstData::Const(ca), InstData::Const(cb)) = (f.inst(a), f.inst(b)) {
                let folded = op.eval(*ca as u32, *cb as u32) as i32;
                f.insts[i] = InstData::Const(folded);
                changed = true;
            }
        }
    }
    // Fold conditional branches on constants.
    for b in f.block_ids().collect::<Vec<_>>() {
        if let Terminator::CondBr { cond, then_bb, else_bb } = f.block(b).term.clone() {
            if then_bb == else_bb {
                continue; // never produced by the front-end; left alone
            }
            if let InstData::Const(c) = f.inst(cond) {
                let (taken, dropped) = if *c != 0 { (then_bb, else_bb) } else { (else_bb, then_bb) };
                f.block_mut(b).term = Terminator::Br(taken);
                remove_phi_edge(f, dropped, b);
                changed = true;
            }
        }
    }
    changed
}

/// Removes phi arguments coming from `pred` in block `b`.
fn remove_phi_edge(f: &mut Function, b: Block, pred: Block) {
    for v in f.block(b).insts.clone() {
        if let InstData::Phi(args) = f.inst_mut(v) {
            args.retain(|(p, _)| *p != pred);
        }
    }
}

/// Removes instructions whose results are unused and that have no side
/// effects. Returns true when anything changed.
pub fn dce(f: &mut Function) -> bool {
    let mut live: HashSet<Value> = HashSet::new();
    let mut work: Vec<Value> = Vec::new();
    for b in f.block_ids() {
        for &v in &f.block(b).insts {
            if f.inst(v).has_side_effect() && live.insert(v) {
                work.push(v);
            }
        }
        f.block(b).term.for_each_operand(|v| {
            if live.insert(v) {
                work.push(v);
            }
        });
    }
    while let Some(v) = work.pop() {
        f.inst(v).for_each_operand(|op| {
            if live.insert(op) {
                work.push(op);
            }
        });
    }
    let mut changed = false;
    for b in 0..f.blocks.len() {
        let insts = std::mem::take(&mut f.blocks[b].insts);
        let orig_len = insts.len();
        let kept: Vec<Value> = insts.into_iter().filter(|v| live.contains(v)).collect();
        if kept.len() != orig_len {
            changed = true;
        }
        f.blocks[b].insts = kept;
    }
    changed
}

/// Removes blocks unreachable from the entry, compacting block ids
/// and pruning phi arguments from deleted predecessors.
pub fn remove_unreachable_blocks(f: &mut Function) {
    let cfg = Cfg::compute(f);
    let reachable: HashSet<Block> = cfg.rpo().iter().copied().collect();
    if reachable.len() == f.blocks.len() {
        return;
    }
    // Old -> new id mapping; keep original relative order.
    let mut map: Vec<Option<Block>> = vec![None; f.blocks.len()];
    let mut next = 0usize;
    for b in f.block_ids() {
        if reachable.contains(&b) {
            map[b.index()] = Some(Block::new(next));
            next += 1;
        }
    }
    let remap = |b: Block| map[b.index()].expect("reachable block");
    let mut new_blocks = Vec::with_capacity(next);
    for b in f.block_ids().collect::<Vec<_>>() {
        if !reachable.contains(&b) {
            continue;
        }
        let mut data = std::mem::take(&mut f.blocks[b.index()]);
        data.term = match data.term {
            Terminator::Br(t) => Terminator::Br(remap(t)),
            Terminator::CondBr { cond, then_bb, else_bb } => {
                Terminator::CondBr { cond, then_bb: remap(then_bb), else_bb: remap(else_bb) }
            }
            t => t,
        };
        for &v in &data.insts {
            if let InstData::Phi(args) = f.inst_mut(v) {
                args.retain(|(p, _)| reachable.contains(p));
                for (p, _) in args {
                    *p = remap(*p);
                }
            }
        }
        new_blocks.push(data);
    }
    f.blocks = new_blocks;
}

/// Splits every critical edge (predecessor with multiple successors →
/// successor with multiple predecessors) by inserting an empty block.
/// Both back-ends require this before lowering phis to parallel moves
/// or distance-fixing shuffles.
pub fn split_critical_edges(f: &mut Function) {
    let cfg = Cfg::compute(f);
    let n = f.blocks.len();
    let mut edits: Vec<(Block, usize, Block)> = Vec::new(); // (pred, succ-slot, succ)
    for bi in 0..n {
        let b = Block::new(bi);
        let succs = f.block(b).term.successors();
        if succs.len() < 2 {
            continue;
        }
        for (slot, &s) in succs.iter().enumerate() {
            if cfg.preds(s).len() > 1 {
                edits.push((b, slot, s));
            }
        }
    }
    for (pred, slot, succ) in edits {
        let mid = f.create_block();
        f.block_mut(mid).term = Terminator::Br(succ);
        match &mut f.block_mut(pred).term {
            Terminator::CondBr { then_bb, else_bb, .. } => {
                if slot == 0 {
                    *then_bb = mid;
                } else {
                    *else_bb = mid;
                }
            }
            _ => unreachable!("critical edge source must be a CondBr"),
        }
        for v in f.block(succ).insts.clone() {
            if let InstData::Phi(args) = f.inst_mut(v) {
                // Retarget exactly one matching arg (two-armed branches
                // to the same block contribute two args).
                if let Some(entry) = args.iter_mut().find(|(p, _)| *p == pred) {
                    entry.0 = mid;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, Terminator};

    #[test]
    fn constfold_folds_and_dce_cleans() {
        let mut f = Function::new("c", 0, true);
        let e = f.entry();
        let a = f.push_inst(e, InstData::Const(2));
        let b = f.push_inst(e, InstData::Const(3));
        let s = f.push_inst(e, InstData::Bin { op: BinOp::Mul, a, b });
        f.block_mut(e).term = Terminator::Ret(Some(s));
        assert!(constfold(&mut f));
        assert_eq!(f.inst(s), &InstData::Const(6));
        assert!(dce(&mut f));
        assert_eq!(f.block(e).insts, vec![s]);
    }

    #[test]
    fn const_branch_folds_and_prunes_phi() {
        let mut f = Function::new("b", 0, true);
        let e = f.entry();
        let t = f.create_block();
        let z = f.create_block();
        let j = f.create_block();
        let c = f.push_inst(e, InstData::Const(1));
        f.block_mut(e).term = Terminator::CondBr { cond: c, then_bb: t, else_bb: z };
        let tv = f.push_inst(t, InstData::Const(10));
        f.block_mut(t).term = Terminator::Br(j);
        let zv = f.push_inst(z, InstData::Const(20));
        f.block_mut(z).term = Terminator::Br(j);
        let phi = f.create_inst(InstData::Phi(vec![(t, tv), (z, zv)]));
        f.block_mut(j).insts.push(phi);
        f.block_mut(j).term = Terminator::Ret(Some(phi));

        assert!(constfold(&mut f));
        assert_eq!(f.block(e).term, Terminator::Br(t));
        remove_unreachable_blocks(&mut f);
        // z removed; phi has a single arg now.
        assert_eq!(f.blocks.len(), 3);
        let phi_args = match f.inst(phi) {
            InstData::Phi(a) => a.clone(),
            other => panic!("{other:?}"),
        };
        assert_eq!(phi_args.len(), 1);
    }

    #[test]
    fn split_critical_edges_inserts_blocks() {
        // entry --cond--> {loop header (2 preds), exit}; edge to header
        // is critical because entry has 2 succs and header has 2 preds.
        let mut f = Function::new("s", 0, false);
        let e = f.entry();
        let h = f.create_block();
        let x = f.create_block();
        let c = f.push_inst(e, InstData::Const(1));
        f.block_mut(e).term = Terminator::CondBr { cond: c, then_bb: h, else_bb: x };
        let c2 = f.push_inst(h, InstData::Const(0));
        f.block_mut(h).term = Terminator::CondBr { cond: c2, then_bb: h, else_bb: x };
        f.block_mut(x).term = Terminator::Ret(None);

        let before = f.blocks.len();
        split_critical_edges(&mut f);
        assert!(f.blocks.len() > before);
        let cfg = Cfg::compute(&f);
        for b in f.block_ids() {
            let nsucc = cfg.succs(b).len();
            if nsucc < 2 {
                continue;
            }
            for &s in cfg.succs(b) {
                assert!(cfg.preds(s).len() <= 1, "critical edge {b}->{s} survived");
            }
        }
    }
}
