//! Functional emulator for the STRAIGHT ISA.
//!
//! Architectural state is the PC, the SP, and the ring of the last
//! `MAX_DISTANCE` results (the paper's key-value register file seen
//! architecturally). Distance `d` reads the result of the `d`-th
//! previously executed instruction.

use straight_asm::{Image, MEM_SIZE, STACK_TOP};
use straight_isa::{decode, Dist, Inst, InstKind, MemWidth, MAX_DISTANCE};

use super::{sys::SysState, EmuExit, EmuResult, EmuStats};

const RING: usize = (MAX_DISTANCE as usize + 1).next_power_of_two();

/// STRAIGHT functional emulator.
#[derive(Debug)]
pub struct StraightEmu {
    image: Image,
    mem: Vec<u8>,
    /// Results of the most recent instructions, indexed by retired
    /// count modulo `RING`.
    ring: Vec<u32>,
    count: u64,
    pc: u32,
    sp: u32,
    sys: SysState,
    stats: EmuStats,
    /// Collect the per-operand distance histogram (Figure 16).
    pub profile_distances: bool,
}

impl StraightEmu {
    /// Prepares an emulator for a linked image.
    #[must_use]
    pub fn new(image: Image) -> StraightEmu {
        let mut mem = vec![0u8; MEM_SIZE as usize];
        image.load_into(&mut mem);
        let pc = image.entry;
        StraightEmu {
            image,
            mem,
            ring: vec![0; RING],
            count: 0,
            pc,
            sp: STACK_TOP,
            sys: SysState::default(),
            stats: EmuStats { dist_hist: vec![0; MAX_DISTANCE as usize + 1], ..EmuStats::default() },
            profile_distances: false,
        }
    }

    fn read_dist(&self, d: Dist) -> u32 {
        if d.is_zero() {
            return 0;
        }
        let back = u64::from(d.get());
        debug_assert!(back <= self.count, "distance {back} exceeds executed count {}", self.count);
        self.ring[((self.count - back) % RING as u64) as usize]
    }

    fn load(&self, width: MemWidth, addr: u32) -> Result<u32, String> {
        let a = addr as usize;
        if a + width.bytes() as usize > self.mem.len() {
            return Err(format!("load fault at {addr:#x}"));
        }
        Ok(match width {
            MemWidth::B => self.mem[a] as i8 as i32 as u32,
            MemWidth::Bu => u32::from(self.mem[a]),
            MemWidth::H => i32::from(i16::from_le_bytes([self.mem[a], self.mem[a + 1]])) as u32,
            MemWidth::Hu => u32::from(u16::from_le_bytes([self.mem[a], self.mem[a + 1]])),
            MemWidth::W => {
                u32::from_le_bytes([self.mem[a], self.mem[a + 1], self.mem[a + 2], self.mem[a + 3]])
            }
        })
    }

    fn store(&mut self, width: MemWidth, addr: u32, val: u32) -> Result<(), String> {
        let a = addr as usize;
        if a + width.bytes() as usize > self.mem.len() {
            return Err(format!("store fault at {addr:#x}"));
        }
        match width {
            MemWidth::B | MemWidth::Bu => self.mem[a] = val as u8,
            MemWidth::H | MemWidth::Hu => self.mem[a..a + 2].copy_from_slice(&(val as u16).to_le_bytes()),
            MemWidth::W => self.mem[a..a + 4].copy_from_slice(&val.to_le_bytes()),
        }
        Ok(())
    }

    fn profile(&mut self, inst: &Inst) {
        for s in inst.sources().into_iter().flatten() {
            if !s.is_zero() {
                self.stats.dist_hist[s.get() as usize] += 1;
            }
        }
    }

    fn kind_name(kind: InstKind) -> &'static str {
        match kind {
            InstKind::JumpBranch => "jump+branch",
            InstKind::Alu => "alu",
            InstKind::Ld => "ld",
            InstKind::St => "st",
            InstKind::Rmov => "rmov",
            InstKind::Nop => "nop",
            InstKind::Other => "other",
        }
    }

    /// Executes one instruction. Returns `Some(exit)` when the program
    /// stops.
    pub fn step(&mut self) -> Option<EmuExit> {
        let Some(word) = self.image.fetch(self.pc) else {
            return Some(EmuExit::Fault(format!("fetch fault at {:#x}", self.pc)));
        };
        let inst = match decode(word) {
            Ok(i) => i,
            Err(e) => return Some(EmuExit::Fault(format!("decode fault at {:#x}: {e}", self.pc))),
        };
        if self.profile_distances {
            self.profile(&inst);
        }
        self.stats.bump_kind(Self::kind_name(inst.kind()));
        let mut next_pc = self.pc.wrapping_add(4);
        let result: u32 = match inst {
            Inst::Nop | Inst::Halt => 0,
            Inst::Alu { op, s1, s2 } => op.eval(self.read_dist(s1), self.read_dist(s2)),
            Inst::AluImm { op, s1, imm } => op.eval_straight(self.read_dist(s1), imm),
            Inst::Lui { imm } => u32::from(imm) << 16,
            Inst::Ld { width, addr, offset } => {
                let a = self.read_dist(addr).wrapping_add(offset as i32 as u32);
                match self.load(width, a) {
                    Ok(v) => v,
                    Err(e) => return Some(EmuExit::Fault(e)),
                }
            }
            Inst::St { width, val, addr } => {
                let v = self.read_dist(val);
                let a = self.read_dist(addr);
                if let Err(e) = self.store(width, a, v) {
                    return Some(EmuExit::Fault(e));
                }
                v
            }
            Inst::Rmov { s } => self.read_dist(s),
            Inst::SpAdd { imm } => {
                self.sp = self.sp.wrapping_add(imm as i32 as u32);
                self.sp
            }
            Inst::Bez { s, offset } => {
                if self.read_dist(s) == 0 {
                    next_pc = self.pc.wrapping_add((offset as i32 as u32).wrapping_mul(4));
                }
                0
            }
            Inst::Bnz { s, offset } => {
                if self.read_dist(s) != 0 {
                    next_pc = self.pc.wrapping_add((offset as i32 as u32).wrapping_mul(4));
                }
                0
            }
            Inst::J { offset } => {
                next_pc = self.pc.wrapping_add((offset as u32).wrapping_mul(4));
                0
            }
            Inst::Jal { offset } => {
                let link = self.pc.wrapping_add(4);
                next_pc = self.pc.wrapping_add((offset as u32).wrapping_mul(4));
                link
            }
            Inst::Jr { s } | Inst::Jalr { s } => {
                let target = self.read_dist(s);
                next_pc = target;
                if matches!(inst, Inst::Jalr { .. }) {
                    self.pc.wrapping_add(4)
                } else {
                    target
                }
            }
            Inst::Sys { code, s } => {
                let arg = self.read_dist(s);
                match self.sys.apply(code, arg) {
                    Some(r) => r,
                    None => return Some(EmuExit::Fault(format!("unknown SYS code {code}"))),
                }
            }
        };
        self.ring[(self.count % RING as u64) as usize] = result;
        self.count += 1;
        self.pc = next_pc;
        if matches!(inst, Inst::Halt) {
            return Some(EmuExit::Done { code: self.sys.exit_code.unwrap_or(0) });
        }
        if self.sys.exit_code.is_some() {
            return Some(EmuExit::Done { code: self.sys.exit_code.unwrap() });
        }
        None
    }

    /// Runs until exit, fault, or the step limit.
    pub fn run(mut self, max_steps: u64) -> EmuResult {
        loop {
            if self.stats.retired >= max_steps {
                return self.finish(EmuExit::StepLimit);
            }
            if let Some(exit) = self.step() {
                return self.finish(exit);
            }
        }
    }

    fn finish(self, exit: EmuExit) -> EmuResult {
        EmuResult { exit, stdout: self.sys.stdout, stats: self.stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use straight_asm::{link_straight, parse_straight_asm};

    fn run_asm(src: &str) -> EmuResult {
        let prog = parse_straight_asm(src).expect("assembles");
        let image = link_straight(&prog).expect("links");
        StraightEmu::new(image).run(1_000_000)
    }

    #[test]
    fn returns_value_through_stub() {
        // main returns 42 via the convention: retval immediately
        // before JR, return address is the JAL at distance 3 from JR.
        let r = run_asm(
            ".text
             func main:
                ADDi [0] 41
                ADDi [1] 1
                RMOV [1]
                JR [4]",
        );
        assert_eq!(r.exit_code(), Some(42));
    }

    #[test]
    fn fibonacci_loop_from_figure1() {
        // A counted loop in the style of Figure 1/9: the NOP
        // equalizes the fall-through entry distance with the
        // back-edge distance (the paper's padding rule).
        let r = run_asm(
            ".text
             func main:
                ADDi [0] 10      ; counter
                NOP              ; entry-path padding
             loop:
                ADDi [2] -1      ; counter - 1 (same distance on both paths)
                BNZ [1] loop
                SYS 1 [2]        ; print the final counter
                HALT",
        );
        assert_eq!(r.exit_code(), Some(0));
        assert_eq!(r.stdout, "0\n");
        assert!(r.stats.retired > 20, "{}", r.stats.retired);
        assert!(r.stats.kinds.get("nop").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn spadd_updates_sp_and_returns_it() {
        let r = run_asm(
            ".text
             func main:
                SPADD -16
                ADDi [0] 7
                ST [1] [2]       ; store 7 at frame base
                LD [3] 0         ; load it back
                RMOV [1]
                JR [6]",
        );
        assert_eq!(r.exit_code(), Some(7));
    }

    #[test]
    fn distance_profile_collected() {
        let prog = parse_straight_asm(
            ".text
             func main:
                ADDi [0] 1
                ADD [1] [1]
                RMOV [2]
                JR [4]",
        )
        .unwrap();
        let image = link_straight(&prog).unwrap();
        let mut emu = StraightEmu::new(image);
        emu.profile_distances = true;
        let r = emu.run(1000);
        assert!(r.stats.dist_hist[1] >= 2);
        assert!(r.stats.cumulative_fraction(8) > 0.9);
    }

    #[test]
    fn step_limit_reported() {
        let r = run_asm(
            ".text
             func main:
             spin:
                J spin",
        );
        assert_eq!(r.exit, EmuExit::StepLimit);
    }
}
