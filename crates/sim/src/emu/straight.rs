//! Functional emulator for the STRAIGHT ISA.
//!
//! Architectural state is the PC, the SP, and the ring of the last
//! `MAX_DISTANCE` results (the paper's key-value register file seen
//! architecturally). Distance `d` reads the result of the `d`-th
//! previously executed instruction.
//!
//! The emulator doubles as the hazard-semantics reference: reading a
//! distance that points before the start of execution is a typed
//! [`TrapKind::DistanceOutOfRange`] trap in every build profile (the
//! referenced producer never existed, so the read would otherwise
//! return ring garbage), and the opt-in sanitizer additionally checks
//! each operand distance against the bound the binary was compiled
//! for and the stack pointer against the stack region.

use straight_asm::{Image, MEM_SIZE, STACK_TOP};
use straight_isa::{decode, Dist, Inst, InstKind, MemWidth, Trap, TrapKind, MAX_DISTANCE};

use super::{sys::SysState, EmuExit, EmuResult, EmuStats};

const RING: usize = (MAX_DISTANCE as usize + 1).next_power_of_two();

/// STRAIGHT functional emulator.
#[derive(Debug)]
pub struct StraightEmu {
    image: Image,
    mem: Vec<u8>,
    /// Results of the most recent instructions, indexed by retired
    /// count modulo `RING`.
    ring: Vec<u32>,
    count: u64,
    pc: u32,
    sp: u32,
    /// Lowest address the sanitizer accepts for SP (end of the data
    /// segment — everything above it up to [`STACK_TOP`] is stack).
    stack_floor: u32,
    sys: SysState,
    stats: EmuStats,
    /// Collect the per-operand distance histogram (Figure 16).
    pub profile_distances: bool,
    /// Sanitizer: trap with [`TrapKind::DistanceAboveBound`] on any
    /// operand distance above this bound (the distance limit the
    /// binary was compiled for). `None` disables the check.
    pub distance_bound: Option<u16>,
    /// Sanitizer: trap with [`TrapKind::SpMisuse`] when `SPADD` moves
    /// the stack pointer out of the stack region.
    pub check_sp: bool,
}

impl StraightEmu {
    /// Prepares an emulator for a linked image.
    #[must_use]
    pub fn new(image: Image) -> StraightEmu {
        let mut mem = vec![0u8; MEM_SIZE as usize];
        image.load_into(&mut mem);
        let pc = image.entry;
        let stack_floor = image.data_base.saturating_add(image.data.len() as u32);
        StraightEmu {
            image,
            mem,
            ring: vec![0; RING],
            count: 0,
            pc,
            sp: STACK_TOP,
            stack_floor,
            sys: SysState::default(),
            stats: EmuStats { dist_hist: vec![0; MAX_DISTANCE as usize + 1], ..EmuStats::default() },
            profile_distances: false,
            distance_bound: None,
            check_sp: false,
        }
    }

    /// Current program counter (the next instruction to execute).
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Current stack pointer.
    #[must_use]
    pub fn sp(&self) -> u32 {
        self.sp
    }

    /// Dynamic instructions executed so far.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.count
    }

    /// Result of the most recently executed instruction (the value at
    /// distance 1). Zero before any instruction has executed.
    #[must_use]
    pub fn last_result(&self) -> u32 {
        if self.count == 0 {
            0
        } else {
            self.ring[((self.count - 1) % RING as u64) as usize]
        }
    }

    fn read_dist(&self, d: Dist) -> Result<u32, TrapKind> {
        if d.is_zero() {
            return Ok(0);
        }
        let back = u64::from(d.get());
        // A distance reaching past the start of execution references a
        // producer that never existed; the ring slot holds garbage (or
        // a stale wrap-around value), so this must trap in every build
        // profile rather than silently mis-read.
        if back > self.count {
            return Err(TrapKind::DistanceOutOfRange { dist: d.get(), executed: self.count });
        }
        if let Some(bound) = self.distance_bound {
            if d.get() > bound {
                return Err(TrapKind::DistanceAboveBound { dist: d.get(), bound });
            }
        }
        Ok(self.ring[((self.count - back) % RING as u64) as usize])
    }

    fn load(&self, width: MemWidth, addr: u32) -> Result<u32, TrapKind> {
        let a = addr as usize;
        if !addr.is_multiple_of(width.bytes()) {
            return Err(TrapKind::MisalignedLoad { addr, width });
        }
        if a + width.bytes() as usize > self.mem.len() {
            return Err(TrapKind::WildLoad { addr, width });
        }
        Ok(match width {
            MemWidth::B => self.mem[a] as i8 as i32 as u32,
            MemWidth::Bu => u32::from(self.mem[a]),
            MemWidth::H => i32::from(i16::from_le_bytes([self.mem[a], self.mem[a + 1]])) as u32,
            MemWidth::Hu => u32::from(u16::from_le_bytes([self.mem[a], self.mem[a + 1]])),
            MemWidth::W => {
                u32::from_le_bytes([self.mem[a], self.mem[a + 1], self.mem[a + 2], self.mem[a + 3]])
            }
        })
    }

    fn store(&mut self, width: MemWidth, addr: u32, val: u32) -> Result<(), TrapKind> {
        let a = addr as usize;
        if !addr.is_multiple_of(width.bytes()) {
            return Err(TrapKind::MisalignedStore { addr, width });
        }
        if a + width.bytes() as usize > self.mem.len() {
            return Err(TrapKind::WildStore { addr, width });
        }
        match width {
            MemWidth::B | MemWidth::Bu => self.mem[a] = val as u8,
            MemWidth::H | MemWidth::Hu => self.mem[a..a + 2].copy_from_slice(&(val as u16).to_le_bytes()),
            MemWidth::W => self.mem[a..a + 4].copy_from_slice(&val.to_le_bytes()),
        }
        Ok(())
    }

    fn profile(&mut self, inst: &Inst) {
        for s in inst.sources().into_iter().flatten() {
            if !s.is_zero() {
                self.stats.dist_hist[s.get() as usize] += 1;
            }
        }
    }

    fn kind_name(kind: InstKind) -> &'static str {
        match kind {
            InstKind::JumpBranch => "jump+branch",
            InstKind::Alu => "alu",
            InstKind::Ld => "ld",
            InstKind::St => "st",
            InstKind::Rmov => "rmov",
            InstKind::Nop => "nop",
            InstKind::Other => "other",
        }
    }

    /// Executes one instruction. Returns `Some(exit)` when the program
    /// stops.
    pub fn step(&mut self) -> Option<EmuExit> {
        match self.step_trapping() {
            Ok(exit) => exit,
            Err(kind) => Some(EmuExit::Trap(Trap::untimed(kind, self.pc, self.count))),
        }
    }

    fn step_trapping(&mut self) -> Result<Option<EmuExit>, TrapKind> {
        let Some(word) = self.image.fetch(self.pc) else {
            return Err(TrapKind::FetchFault);
        };
        let Ok(inst) = decode(word) else {
            return Err(TrapKind::IllegalInstruction { word });
        };
        if self.profile_distances {
            self.profile(&inst);
        }
        let mut next_pc = self.pc.wrapping_add(4);
        let result: u32 = match inst {
            Inst::Nop | Inst::Halt => 0,
            Inst::Alu { op, s1, s2 } => op.eval(self.read_dist(s1)?, self.read_dist(s2)?),
            Inst::AluImm { op, s1, imm } => op.eval_straight(self.read_dist(s1)?, imm),
            Inst::Lui { imm } => u32::from(imm) << 16,
            Inst::Ld { width, addr, offset } => {
                let a = self.read_dist(addr)?.wrapping_add(offset as i32 as u32);
                self.load(width, a)?
            }
            Inst::St { width, val, addr } => {
                let v = self.read_dist(val)?;
                let a = self.read_dist(addr)?;
                self.store(width, a, v)?;
                v
            }
            Inst::Rmov { s } => self.read_dist(s)?,
            Inst::SpAdd { imm } => {
                let sp = self.sp.wrapping_add(imm as i32 as u32);
                if self.check_sp && !(self.stack_floor..=STACK_TOP).contains(&sp) {
                    return Err(TrapKind::SpMisuse { sp });
                }
                self.sp = sp;
                self.sp
            }
            Inst::Bez { s, offset } => {
                if self.read_dist(s)? == 0 {
                    next_pc = self.pc.wrapping_add((offset as i32 as u32).wrapping_mul(4));
                }
                0
            }
            Inst::Bnz { s, offset } => {
                if self.read_dist(s)? != 0 {
                    next_pc = self.pc.wrapping_add((offset as i32 as u32).wrapping_mul(4));
                }
                0
            }
            Inst::J { offset } => {
                next_pc = self.pc.wrapping_add((offset as u32).wrapping_mul(4));
                0
            }
            Inst::Jal { offset } => {
                let link = self.pc.wrapping_add(4);
                next_pc = self.pc.wrapping_add((offset as u32).wrapping_mul(4));
                link
            }
            Inst::Jr { s } | Inst::Jalr { s } => {
                let target = self.read_dist(s)?;
                next_pc = target;
                if matches!(inst, Inst::Jalr { .. }) {
                    self.pc.wrapping_add(4)
                } else {
                    target
                }
            }
            Inst::Sys { code, s } => {
                let arg = self.read_dist(s)?;
                match self.sys.apply(code, arg) {
                    Some(r) => r,
                    None => return Err(TrapKind::UnknownSys { code }),
                }
            }
        };
        // Statistics count only instructions that complete without
        // trapping, keeping the retired count equal to the trap index.
        self.stats.bump_kind(Self::kind_name(inst.kind()));
        self.ring[(self.count % RING as u64) as usize] = result;
        self.count += 1;
        self.pc = next_pc;
        if matches!(inst, Inst::Halt) {
            return Ok(Some(EmuExit::Done { code: self.sys.exit_code.unwrap_or(0) }));
        }
        if let Some(code) = self.sys.exit_code {
            return Ok(Some(EmuExit::Done { code }));
        }
        Ok(None)
    }

    /// Runs until exit, trap, or the step limit.
    pub fn run(mut self, max_steps: u64) -> EmuResult {
        loop {
            if self.stats.retired >= max_steps {
                return self.finish(EmuExit::StepLimit);
            }
            if let Some(exit) = self.step() {
                return self.finish(exit);
            }
        }
    }

    fn finish(self, exit: EmuExit) -> EmuResult {
        EmuResult { exit, stdout: self.sys.stdout, stats: self.stats }
    }

    /// Console output captured so far (used by the in-pipeline oracle,
    /// which steps the emulator incrementally instead of via [`StraightEmu::run`]).
    #[must_use]
    pub fn stdout(&self) -> &str {
        &self.sys.stdout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use straight_asm::{link_straight, parse_straight_asm};

    fn run_asm(src: &str) -> EmuResult {
        let prog = parse_straight_asm(src).expect("assembles");
        let image = link_straight(&prog).expect("links");
        StraightEmu::new(image).run(1_000_000)
    }

    #[test]
    fn returns_value_through_stub() {
        // main returns 42 via the convention: retval immediately
        // before JR, return address is the JAL at distance 3 from JR.
        let r = run_asm(
            ".text
             func main:
                ADDi [0] 41
                ADDi [1] 1
                RMOV [1]
                JR [4]",
        );
        assert_eq!(r.exit_code(), Some(42));
    }

    #[test]
    fn fibonacci_loop_from_figure1() {
        // A counted loop in the style of Figure 1/9: the NOP
        // equalizes the fall-through entry distance with the
        // back-edge distance (the paper's padding rule).
        let r = run_asm(
            ".text
             func main:
                ADDi [0] 10      ; counter
                NOP              ; entry-path padding
             loop:
                ADDi [2] -1      ; counter - 1 (same distance on both paths)
                BNZ [1] loop
                SYS 1 [2]        ; print the final counter
                HALT",
        );
        assert_eq!(r.exit_code(), Some(0));
        assert_eq!(r.stdout, "0\n");
        assert!(r.stats.retired > 20, "{}", r.stats.retired);
        assert!(r.stats.kinds.get("nop").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn spadd_updates_sp_and_returns_it() {
        let r = run_asm(
            ".text
             func main:
                SPADD -16
                ADDi [0] 7
                ST [1] [2]       ; store 7 at frame base
                LD [3] 0         ; load it back
                RMOV [1]
                JR [6]",
        );
        assert_eq!(r.exit_code(), Some(7));
    }

    #[test]
    fn distance_profile_collected() {
        let prog = parse_straight_asm(
            ".text
             func main:
                ADDi [0] 1
                ADD [1] [1]
                RMOV [2]
                JR [4]",
        )
        .unwrap();
        let image = link_straight(&prog).unwrap();
        let mut emu = StraightEmu::new(image);
        emu.profile_distances = true;
        let r = emu.run(1000);
        assert!(r.stats.dist_hist[1] >= 2);
        assert!(r.stats.cumulative_fraction(8) > 0.9);
    }

    #[test]
    fn step_limit_reported() {
        let r = run_asm(
            ".text
             func main:
             spin:
                J spin",
        );
        assert_eq!(r.exit, EmuExit::StepLimit);
    }

    #[test]
    fn distance_past_start_of_execution_traps() {
        // The second instruction reads distance 5, but only one
        // instruction has executed: the producer never existed.
        let r = run_asm(
            ".text
             func main:
                ADDi [0] 1
                ADD [1] [5]
                HALT",
        );
        // The _start stub's JAL and the ADDi have executed: count 2.
        match r.exit {
            EmuExit::Trap(t) => {
                assert_eq!(t.kind, TrapKind::DistanceOutOfRange { dist: 5, executed: 2 });
                assert_eq!(t.index, 2);
            }
            other => panic!("expected a distance trap, got {other:?}"),
        }
    }

    #[test]
    fn sanitizer_flags_distance_above_compiled_bound() {
        let prog = parse_straight_asm(
            ".text
             func main:
                ADDi [0] 1
                NOP
                NOP
                NOP
                ADD [4] [1]
                HALT",
        )
        .unwrap();
        let image = link_straight(&prog).unwrap();
        // Without the sanitizer the program completes...
        let ok = StraightEmu::new(image.clone()).run(1000);
        assert_eq!(ok.exit_code(), Some(0));
        // ...with a bound of 3 the distance-4 read is flagged.
        let mut emu = StraightEmu::new(image);
        emu.distance_bound = Some(3);
        let r = emu.run(1000);
        assert_eq!(
            r.trap().map(|t| t.kind),
            Some(TrapKind::DistanceAboveBound { dist: 4, bound: 3 })
        );
    }

    #[test]
    fn sanitizer_flags_sp_escape() {
        let prog = parse_straight_asm(
            ".text
             func main:
                SPADD 16
                HALT",
        )
        .unwrap();
        let image = link_straight(&prog).unwrap();
        let mut emu = StraightEmu::new(image);
        emu.check_sp = true;
        let r = emu.run(1000);
        assert!(
            matches!(r.trap().map(|t| t.kind), Some(TrapKind::SpMisuse { .. })),
            "{:?}",
            r.exit
        );
    }

    #[test]
    fn misaligned_load_traps() {
        let r = run_asm(
            ".text
             func main:
                ADDi [0] 2
                LD [1] 1        ; word load at address 3
                HALT",
        );
        assert_eq!(
            r.trap().map(|t| t.kind),
            Some(TrapKind::MisalignedLoad { addr: 3, width: MemWidth::W })
        );
    }
}
