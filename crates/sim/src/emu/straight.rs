//! Functional emulator for the STRAIGHT ISA.
//!
//! Architectural state is the PC, the SP, and the ring of the last
//! `MAX_DISTANCE` results (the paper's key-value register file seen
//! architecturally). Distance `d` reads the result of the `d`-th
//! previously executed instruction.
//!
//! The emulator doubles as the hazard-semantics reference: reading a
//! distance that points before the start of execution is a typed
//! [`TrapKind::DistanceOutOfRange`] trap in every build profile (the
//! referenced producer never existed, so the read would otherwise
//! return ring garbage), and the opt-in sanitizer additionally checks
//! each operand distance against the bound the binary was compiled
//! for and the stack pointer against the stack region.
//!
//! Two execution tiers implement the same semantics (see
//! `docs/EXECUTION_TIERS.md`). The interpreter fetches and decodes
//! every instruction and is the reference. The fast tier pre-translates
//! traces into lowered [`FastOp`] micro-ops — branch targets resolved
//! to absolute PCs, `LUI` folded to a constant, immediates pre-extended,
//! load/store widths specialized, consecutive `RMOV`s fused into one
//! chain macro-op, and unconditional `J`/`JAL` fused *through* (their
//! ring results are the constants 0 and the link PC, so a trace
//! continues into the jump target) — and executes them with unchecked
//! ring reads (legal once `executed` exceeds the trace's maximum
//! operand distance; younger traces fall back to the interpreter) and
//! per-trace batched statistics. Code is immutable (fetch reads the
//! image, not memory), so translated traces never need invalidation.

use straight_asm::{Image, MEM_SIZE, STACK_TOP};
use straight_isa::{
    decode, AluImmOp, AluOp, Dist, Inst, MemWidth, Trap, TrapKind, MAX_DISTANCE,
};

use super::checkpoint::{self, ArchSnap, Checkpoint, CheckpointError, DirtyMap};
use super::sys::SysState;
use super::{memops, EmuExit, EmuKind, EmuStats, ExecBackend, Tier, TierConfig};

const RING: usize = (MAX_DISTANCE as usize + 1).next_power_of_two();
const RING_MASK: u64 = RING as u64 - 1;

/// Longest translated trace, in architectural instructions.
const BLOCK_CAP: usize = 256;
/// Retired instructions per lockstep comparison window.
const LOCKSTEP_CHUNK: u64 = 4096;

/// A lowered micro-op of the fast tier — one dispatch per op, with
/// everything the translator can pre-resolve folded in: distances are
/// raw `u16`s (zero = "reads the constant 0"), branch targets are
/// absolute PCs, `AluImm` immediates are pre-extended (STRAIGHT's
/// logical group zero-extends) to the 32-bit value the base op takes,
/// and load/store widths are specialized into separate variants. The
/// common ALU ops get dedicated variants so the hot loop is a single
/// match dispatch, skipping the inner [`AluOp::eval`] match.
#[derive(Debug, Clone)]
enum FastOp {
    /// `NOP`, and fused unconditional `J` (ring result 0).
    Nop,
    /// `LUI` with the shift pre-applied, and fused `JAL` (ring result
    /// is the link PC, a translation-time constant).
    Const { value: u32 },
    Add { s1: u16, s2: u16 },
    Sub { s1: u16, s2: u16 },
    Sll { s1: u16, s2: u16 },
    Slt { s1: u16, s2: u16 },
    Sltu { s1: u16, s2: u16 },
    Xor { s1: u16, s2: u16 },
    Srl { s1: u16, s2: u16 },
    Sra { s1: u16, s2: u16 },
    Or { s1: u16, s2: u16 },
    And { s1: u16, s2: u16 },
    Mul { s1: u16, s2: u16 },
    /// Reg-reg ops without a dedicated variant (M-extension
    /// high/div/rem): second dispatch through [`AluOp::eval`].
    Alu { op: AluOp, s1: u16, s2: u16 },
    Addi { s1: u16, imm: u32 },
    Slli { s1: u16, imm: u32 },
    Slti { s1: u16, imm: u32 },
    Sltiu { s1: u16, imm: u32 },
    Xori { s1: u16, imm: u32 },
    Srli { s1: u16, imm: u32 },
    Srai { s1: u16, imm: u32 },
    Ori { s1: u16, imm: u32 },
    Andi { s1: u16, imm: u32 },
    /// Unreachable in practice ([`AluImmOp::base`] is covered by the
    /// dedicated variants above); kept as a safety net.
    AluImm { op: AluOp, s1: u16, imm: u32 },
    LdB { addr: u16, offset: u32 },
    LdBu { addr: u16, offset: u32 },
    LdH { addr: u16, offset: u32 },
    LdHu { addr: u16, offset: u32 },
    LdW { addr: u16, offset: u32 },
    /// `width` is the encoded width (`B` or `Bu`), kept for
    /// byte-identical trap values.
    StB { val: u16, addr: u16, width: MemWidth },
    StH { val: u16, addr: u16, width: MemWidth },
    StW { val: u16, addr: u16 },
    /// `len` consecutive `RMOV`s; their distances live in the block's
    /// `chain_dists[first..first + len]`.
    RmovChain { first: u32, len: u32 },
    SpAdd { imm: i16 },
    Bez { s: u16, target: u32 },
    Bnz { s: u16, target: u32 },
    Jr { s: u16 },
    Jalr { s: u16, link: u32 },
    Sys { code: u16, s: u16 },
    Halt,
}

/// A translated trace: instructions ending at the first *conditional*
/// or *indirect* control transfer, `HALT`, `SYS`, undecodable word,
/// code-end, or [`BLOCK_CAP`]. Unconditional `J`/`JAL` do not end a
/// trace — their targets are static, so translation continues there.
#[derive(Debug, Clone)]
struct Block {
    /// PC after the last instruction when no terminator redirects
    /// (follows fused jumps, so not simply `start_pc + 4 * len`).
    end_pc: u32,
    ops: Vec<FastOp>,
    /// Fused RMOV-chain distances, indexed by `RmovChain::first`.
    chain_dists: Vec<u16>,
    /// Per architectural instruction: its PC and Figure 15 category.
    /// Cold paths only (mid-trace traps need the interpreter's exact
    /// PC and per-instruction statistics).
    meta: Vec<(u32, EmuKind)>,
    /// Precomputed Figure 15 category counts for a full execution.
    kind_counts: [u64; EmuKind::COUNT],
    /// Architectural instructions in the trace (chains expanded).
    len_insts: u32,
    /// Largest source distance any instruction uses; executing the
    /// trace with unchecked ring reads is legal once at least this
    /// many instructions have retired.
    max_dist: u16,
    /// Ends in `HALT`.
    ends_halt: bool,
}

/// STRAIGHT functional emulator.
#[derive(Debug, Clone)]
pub struct StraightEmu {
    image: Image,
    mem: Vec<u8>,
    /// Results of the most recent instructions, indexed by retired
    /// count masked by `RING - 1` (fixed size so indexing needs no
    /// bounds check in the fast tier).
    ring: Box<[u32; RING]>,
    count: u64,
    pc: u32,
    sp: u32,
    /// Lowest address the sanitizer accepts for SP (end of the data
    /// segment — everything above it up to [`STACK_TOP`] is stack).
    stack_floor: u32,
    sys: SysState,
    stats: EmuStats,
    dirty: DirtyMap,
    /// Fast-tier block cache, indexed by code-segment slot. Sized
    /// lazily on the first fast-tier run.
    blocks: Vec<Option<Box<Block>>>,
    /// Collect the per-operand distance histogram (Figure 16).
    /// Forces the interpreter tier (the histogram needs per-operand
    /// hooks).
    pub profile_distances: bool,
    /// Sanitizer: trap with [`TrapKind::DistanceAboveBound`] on any
    /// operand distance above this bound (the distance limit the
    /// binary was compiled for). `None` disables the check. Forces
    /// the interpreter tier.
    pub distance_bound: Option<u16>,
    /// Sanitizer: trap with [`TrapKind::SpMisuse`] when `SPADD` moves
    /// the stack pointer out of the stack region.
    pub check_sp: bool,
}

/// Unchecked ring read: distance zero reads 0, anything else reads the
/// masked slot. Only legal when `d <= count` is already established.
#[inline]
fn src(ring: &[u32; RING], count: u64, d: u16) -> u32 {
    if d == 0 {
        0
    } else {
        ring[((count - u64::from(d)) & RING_MASK) as usize]
    }
}

impl StraightEmu {
    /// Prepares an emulator for a linked image.
    #[must_use]
    pub fn new(image: Image) -> StraightEmu {
        let mut mem = vec![0u8; MEM_SIZE as usize];
        image.load_into(&mut mem);
        let pc = image.entry;
        let stack_floor = image.data_base.saturating_add(image.data.len() as u32);
        StraightEmu {
            image,
            mem,
            ring: Box::new([0; RING]),
            count: 0,
            pc,
            sp: STACK_TOP,
            stack_floor,
            sys: SysState::default(),
            stats: EmuStats { dist_hist: vec![0; MAX_DISTANCE as usize + 1], ..EmuStats::default() },
            dirty: DirtyMap::new(),
            blocks: Vec::new(),
            profile_distances: false,
            distance_bound: None,
            check_sp: false,
        }
    }

    /// Current stack pointer.
    #[must_use]
    pub fn sp(&self) -> u32 {
        self.sp
    }

    /// Result of the most recently executed instruction (the value at
    /// distance 1). Zero before any instruction has executed.
    #[must_use]
    pub fn last_result(&self) -> u32 {
        if self.count == 0 {
            0
        } else {
            self.ring[((self.count - 1) & RING_MASK) as usize]
        }
    }

    fn read_dist(&self, d: Dist) -> Result<u32, TrapKind> {
        if d.is_zero() {
            return Ok(0);
        }
        let back = u64::from(d.get());
        // A distance reaching past the start of execution references a
        // producer that never existed; the ring slot holds garbage (or
        // a stale wrap-around value), so this must trap in every build
        // profile rather than silently mis-read.
        if back > self.count {
            return Err(TrapKind::DistanceOutOfRange { dist: d.get(), executed: self.count });
        }
        if let Some(bound) = self.distance_bound {
            if d.get() > bound {
                return Err(TrapKind::DistanceAboveBound { dist: d.get(), bound });
            }
        }
        Ok(self.ring[((self.count - back) & RING_MASK) as usize])
    }

    fn load(&self, width: MemWidth, addr: u32) -> Result<u32, TrapKind> {
        let a = addr as usize;
        if !addr.is_multiple_of(width.bytes()) {
            return Err(TrapKind::MisalignedLoad { addr, width });
        }
        if a + width.bytes() as usize > self.mem.len() {
            return Err(TrapKind::WildLoad { addr, width });
        }
        Ok(match width {
            MemWidth::B => self.mem[a] as i8 as i32 as u32,
            MemWidth::Bu => u32::from(self.mem[a]),
            MemWidth::H => i32::from(i16::from_le_bytes([self.mem[a], self.mem[a + 1]])) as u32,
            MemWidth::Hu => u32::from(u16::from_le_bytes([self.mem[a], self.mem[a + 1]])),
            MemWidth::W => {
                u32::from_le_bytes([self.mem[a], self.mem[a + 1], self.mem[a + 2], self.mem[a + 3]])
            }
        })
    }

    fn store(&mut self, width: MemWidth, addr: u32, val: u32) -> Result<(), TrapKind> {
        let a = addr as usize;
        if !addr.is_multiple_of(width.bytes()) {
            return Err(TrapKind::MisalignedStore { addr, width });
        }
        if a + width.bytes() as usize > self.mem.len() {
            return Err(TrapKind::WildStore { addr, width });
        }
        match width {
            MemWidth::B | MemWidth::Bu => self.mem[a] = val as u8,
            MemWidth::H | MemWidth::Hu => self.mem[a..a + 2].copy_from_slice(&(val as u16).to_le_bytes()),
            MemWidth::W => self.mem[a..a + 4].copy_from_slice(&val.to_le_bytes()),
        }
        // Aligned accesses never straddle a page, so one mark suffices.
        self.dirty.mark(a);
        Ok(())
    }

    fn profile(&mut self, inst: &Inst) {
        for s in inst.sources().into_iter().flatten() {
            if !s.is_zero() {
                self.stats.dist_hist[s.get() as usize] += 1;
            }
        }
    }

    fn step_trapping(&mut self) -> Result<Option<EmuExit>, TrapKind> {
        let Some(word) = self.image.fetch(self.pc) else {
            return Err(TrapKind::FetchFault);
        };
        let Ok(inst) = decode(word) else {
            return Err(TrapKind::IllegalInstruction { word });
        };
        if self.profile_distances {
            self.profile(&inst);
        }
        let mut next_pc = self.pc.wrapping_add(4);
        let result: u32 = match inst {
            Inst::Nop | Inst::Halt => 0,
            Inst::Alu { op, s1, s2 } => op.eval(self.read_dist(s1)?, self.read_dist(s2)?),
            Inst::AluImm { op, s1, imm } => op.eval_straight(self.read_dist(s1)?, imm),
            Inst::Lui { imm } => u32::from(imm) << 16,
            Inst::Ld { width, addr, offset } => {
                let a = self.read_dist(addr)?.wrapping_add(offset as i32 as u32);
                self.load(width, a)?
            }
            Inst::St { width, val, addr } => {
                let v = self.read_dist(val)?;
                let a = self.read_dist(addr)?;
                self.store(width, a, v)?;
                v
            }
            Inst::Rmov { s } => self.read_dist(s)?,
            Inst::SpAdd { imm } => {
                let sp = self.sp.wrapping_add(imm as i32 as u32);
                if self.check_sp && !(self.stack_floor..=STACK_TOP).contains(&sp) {
                    return Err(TrapKind::SpMisuse { sp });
                }
                self.sp = sp;
                self.sp
            }
            Inst::Bez { s, offset } => {
                if self.read_dist(s)? == 0 {
                    next_pc = self.pc.wrapping_add((offset as i32 as u32).wrapping_mul(4));
                }
                0
            }
            Inst::Bnz { s, offset } => {
                if self.read_dist(s)? != 0 {
                    next_pc = self.pc.wrapping_add((offset as i32 as u32).wrapping_mul(4));
                }
                0
            }
            Inst::J { offset } => {
                next_pc = self.pc.wrapping_add((offset as u32).wrapping_mul(4));
                0
            }
            Inst::Jal { offset } => {
                let link = self.pc.wrapping_add(4);
                next_pc = self.pc.wrapping_add((offset as u32).wrapping_mul(4));
                link
            }
            Inst::Jr { s } | Inst::Jalr { s } => {
                let target = self.read_dist(s)?;
                next_pc = target;
                if matches!(inst, Inst::Jalr { .. }) {
                    self.pc.wrapping_add(4)
                } else {
                    target
                }
            }
            Inst::Sys { code, s } => {
                let arg = self.read_dist(s)?;
                match self.sys.apply(code, arg) {
                    Some(r) => r,
                    None => return Err(TrapKind::UnknownSys { code }),
                }
            }
        };
        // Statistics count only instructions that complete without
        // trapping, keeping the retired count equal to the trap index.
        self.stats.bump_kind(EmuKind::of_straight(inst.kind()));
        self.stats.count_retired(1);
        self.ring[(self.count & RING_MASK) as usize] = result;
        self.count += 1;
        self.pc = next_pc;
        if matches!(inst, Inst::Halt) {
            return Ok(Some(EmuExit::Done { code: self.sys.exit_code.unwrap_or(0) }));
        }
        if let Some(code) = self.sys.exit_code {
            return Ok(Some(EmuExit::Done { code }));
        }
        Ok(None)
    }

    fn run_interp(&mut self, max_steps: u64) -> EmuExit {
        loop {
            if self.stats.retired >= max_steps {
                return EmuExit::StepLimit;
            }
            if let Some(exit) = self.step() {
                return exit;
            }
        }
    }

    /// Translates the trace starting at `start_pc`. An empty trace
    /// (first word unfetchable/undecodable) makes the caller fall back
    /// to the interpreter, which raises the proper trap.
    fn translate(&self, start_pc: u32) -> Block {
        let mut ops = Vec::new();
        let mut chain_dists: Vec<u16> = Vec::new();
        let mut meta: Vec<(u32, EmuKind)> = Vec::new();
        let mut kind_counts = [0u64; EmuKind::COUNT];
        let mut max_dist: u16 = 0;
        let mut ends_halt = false;
        let mut pc = start_pc;
        while meta.len() < BLOCK_CAP {
            let Some(word) = self.image.fetch(pc) else { break };
            let Ok(inst) = decode(word) else { break };
            let kind = EmuKind::of_straight(inst.kind());
            kind_counts[kind as usize] += 1;
            meta.push((pc, kind));
            for s in inst.sources().into_iter().flatten() {
                max_dist = max_dist.max(s.get());
            }
            let mut next = pc.wrapping_add(4);
            let terminator = matches!(
                inst,
                Inst::Bez { .. }
                    | Inst::Bnz { .. }
                    | Inst::Jr { .. }
                    | Inst::Jalr { .. }
                    | Inst::Sys { .. }
                    | Inst::Halt
            );
            match inst {
                Inst::Nop => ops.push(FastOp::Nop),
                Inst::Alu { op, s1, s2 } => {
                    let (s1, s2) = (s1.get(), s2.get());
                    ops.push(match op {
                        AluOp::Add => FastOp::Add { s1, s2 },
                        AluOp::Sub => FastOp::Sub { s1, s2 },
                        AluOp::Sll => FastOp::Sll { s1, s2 },
                        AluOp::Slt => FastOp::Slt { s1, s2 },
                        AluOp::Sltu => FastOp::Sltu { s1, s2 },
                        AluOp::Xor => FastOp::Xor { s1, s2 },
                        AluOp::Srl => FastOp::Srl { s1, s2 },
                        AluOp::Sra => FastOp::Sra { s1, s2 },
                        AluOp::Or => FastOp::Or { s1, s2 },
                        AluOp::And => FastOp::And { s1, s2 },
                        AluOp::Mul => FastOp::Mul { s1, s2 },
                        op => FastOp::Alu { op, s1, s2 },
                    });
                }
                Inst::AluImm { op, s1, imm } => {
                    // Pre-extend the immediate exactly as
                    // `AluImmOp::eval_straight` would.
                    let imm32 = match op {
                        AluImmOp::Andi | AluImmOp::Ori | AluImmOp::Xori => u32::from(imm as u16),
                        _ => imm as i32 as u32,
                    };
                    let (s1, imm) = (s1.get(), imm32);
                    ops.push(match op.base() {
                        AluOp::Add => FastOp::Addi { s1, imm },
                        AluOp::Sll => FastOp::Slli { s1, imm },
                        AluOp::Slt => FastOp::Slti { s1, imm },
                        AluOp::Sltu => FastOp::Sltiu { s1, imm },
                        AluOp::Xor => FastOp::Xori { s1, imm },
                        AluOp::Srl => FastOp::Srli { s1, imm },
                        AluOp::Sra => FastOp::Srai { s1, imm },
                        AluOp::Or => FastOp::Ori { s1, imm },
                        AluOp::And => FastOp::Andi { s1, imm },
                        base => FastOp::AluImm { op: base, s1, imm },
                    });
                }
                Inst::Lui { imm } => ops.push(FastOp::Const { value: u32::from(imm) << 16 }),
                Inst::Ld { width, addr, offset } => {
                    let (addr, offset) = (addr.get(), offset as i32 as u32);
                    ops.push(match width {
                        MemWidth::B => FastOp::LdB { addr, offset },
                        MemWidth::Bu => FastOp::LdBu { addr, offset },
                        MemWidth::H => FastOp::LdH { addr, offset },
                        MemWidth::Hu => FastOp::LdHu { addr, offset },
                        MemWidth::W => FastOp::LdW { addr, offset },
                    });
                }
                Inst::St { width, val, addr } => {
                    let (val, addr) = (val.get(), addr.get());
                    ops.push(match width {
                        MemWidth::B | MemWidth::Bu => FastOp::StB { val, addr, width },
                        MemWidth::H | MemWidth::Hu => FastOp::StH { val, addr, width },
                        MemWidth::W => FastOp::StW { val, addr },
                    });
                }
                Inst::Rmov { s } => {
                    // Fuse runs of RMOVs (the compiler's distance-fixing
                    // pads) into one macro-op.
                    if let Some(FastOp::RmovChain { len: l, .. }) = ops.last_mut() {
                        *l += 1;
                    } else {
                        ops.push(FastOp::RmovChain { first: chain_dists.len() as u32, len: 1 });
                    }
                    chain_dists.push(s.get());
                }
                Inst::SpAdd { imm } => ops.push(FastOp::SpAdd { imm }),
                Inst::Bez { s, offset } => ops.push(FastOp::Bez {
                    s: s.get(),
                    target: pc.wrapping_add((offset as i32 as u32).wrapping_mul(4)),
                }),
                Inst::Bnz { s, offset } => ops.push(FastOp::Bnz {
                    s: s.get(),
                    target: pc.wrapping_add((offset as i32 as u32).wrapping_mul(4)),
                }),
                Inst::J { offset } => {
                    // Unconditional with a static target: the ring
                    // result is 0, so fuse and keep translating there.
                    ops.push(FastOp::Nop);
                    next = pc.wrapping_add((offset as u32).wrapping_mul(4));
                }
                Inst::Jal { offset } => {
                    // Ring result is the link PC, a constant here.
                    ops.push(FastOp::Const { value: pc.wrapping_add(4) });
                    next = pc.wrapping_add((offset as u32).wrapping_mul(4));
                }
                Inst::Jr { s } => ops.push(FastOp::Jr { s: s.get() }),
                Inst::Jalr { s } => {
                    ops.push(FastOp::Jalr { s: s.get(), link: pc.wrapping_add(4) });
                }
                Inst::Sys { code, s } => ops.push(FastOp::Sys { code, s: s.get() }),
                Inst::Halt => {
                    ends_halt = true;
                    ops.push(FastOp::Halt);
                }
            }
            pc = next;
            if terminator {
                break;
            }
        }
        Block {
            end_pc: pc,
            ops,
            chain_dists,
            len_insts: meta.len() as u32,
            meta,
            kind_counts,
            max_dist,
            ends_halt,
        }
    }

    /// Flushes statistics for the first `done` architectural
    /// instructions of a partially executed trace (cold path: traps
    /// and early exits only).
    fn flush_partial(&mut self, b: &Block, done: u64) {
        for &(_, kind) in &b.meta[..done as usize] {
            self.stats.bump_kind(kind);
        }
        self.stats.count_retired(done);
    }

    /// Finalizes a mid-trace trap: syncs count/PC/stats to the
    /// completed prefix and produces the trap exit the interpreter
    /// would have raised at the same instruction.
    fn block_trap(&mut self, b: &Block, entry: u64, count: u64, kind: TrapKind) -> Option<EmuExit> {
        let done = count - entry;
        self.flush_partial(b, done);
        self.count = count;
        self.pc = b.meta[done as usize].0;
        Some(EmuExit::Trap(Trap::untimed(kind, self.pc, self.count)))
    }

    /// Executes one translated trace. Requires `self.count >=
    /// block.max_dist` (unchecked ring reads) and enough step budget
    /// for the whole trace — both enforced by [`StraightEmu::run_fast`].
    fn exec_block(&mut self, b: &Block) -> Option<EmuExit> {
        let entry = self.count;
        let mut count = entry;
        let mut next_pc = b.end_pc;
        for op in &b.ops {
            match *op {
                FastOp::Nop => {
                    self.ring[(count & RING_MASK) as usize] = 0;
                    count += 1;
                }
                FastOp::Const { value } => {
                    self.ring[(count & RING_MASK) as usize] = value;
                    count += 1;
                }
                FastOp::Add { s1, s2 } => {
                    let v = src(&self.ring, count, s1).wrapping_add(src(&self.ring, count, s2));
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Sub { s1, s2 } => {
                    let v = src(&self.ring, count, s1).wrapping_sub(src(&self.ring, count, s2));
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Sll { s1, s2 } => {
                    let v = src(&self.ring, count, s1).wrapping_shl(src(&self.ring, count, s2) & 31);
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Slt { s1, s2 } => {
                    let v = u32::from((src(&self.ring, count, s1) as i32) < (src(&self.ring, count, s2) as i32));
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Sltu { s1, s2 } => {
                    let v = u32::from(src(&self.ring, count, s1) < src(&self.ring, count, s2));
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Xor { s1, s2 } => {
                    let v = src(&self.ring, count, s1) ^ src(&self.ring, count, s2);
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Srl { s1, s2 } => {
                    let v = src(&self.ring, count, s1).wrapping_shr(src(&self.ring, count, s2) & 31);
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Sra { s1, s2 } => {
                    let v = ((src(&self.ring, count, s1) as i32).wrapping_shr(src(&self.ring, count, s2) & 31)) as u32;
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Or { s1, s2 } => {
                    let v = src(&self.ring, count, s1) | src(&self.ring, count, s2);
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::And { s1, s2 } => {
                    let v = src(&self.ring, count, s1) & src(&self.ring, count, s2);
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Mul { s1, s2 } => {
                    let v = src(&self.ring, count, s1).wrapping_mul(src(&self.ring, count, s2));
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Alu { op, s1, s2 } => {
                    let v = op.eval(src(&self.ring, count, s1), src(&self.ring, count, s2));
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Addi { s1, imm } => {
                    let v = src(&self.ring, count, s1).wrapping_add(imm);
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Slli { s1, imm } => {
                    let v = src(&self.ring, count, s1).wrapping_shl(imm & 31);
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Slti { s1, imm } => {
                    let v = u32::from((src(&self.ring, count, s1) as i32) < (imm as i32));
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Sltiu { s1, imm } => {
                    let v = u32::from(src(&self.ring, count, s1) < imm);
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Xori { s1, imm } => {
                    let v = src(&self.ring, count, s1) ^ imm;
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Srli { s1, imm } => {
                    let v = src(&self.ring, count, s1).wrapping_shr(imm & 31);
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Srai { s1, imm } => {
                    let v = ((src(&self.ring, count, s1) as i32).wrapping_shr(imm & 31)) as u32;
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Ori { s1, imm } => {
                    let v = src(&self.ring, count, s1) | imm;
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::Andi { s1, imm } => {
                    let v = src(&self.ring, count, s1) & imm;
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::AluImm { op, s1, imm } => {
                    let v = op.eval(src(&self.ring, count, s1), imm);
                    self.ring[(count & RING_MASK) as usize] = v;
                    count += 1;
                }
                FastOp::LdB { addr, offset } => {
                    let a = src(&self.ring, count, addr).wrapping_add(offset);
                    match memops::load_b(&self.mem, a) {
                        Ok(v) => {
                            self.ring[(count & RING_MASK) as usize] = v;
                            count += 1;
                        }
                        Err(kind) => return self.block_trap(b, entry, count, kind),
                    }
                }
                FastOp::LdBu { addr, offset } => {
                    let a = src(&self.ring, count, addr).wrapping_add(offset);
                    match memops::load_bu(&self.mem, a) {
                        Ok(v) => {
                            self.ring[(count & RING_MASK) as usize] = v;
                            count += 1;
                        }
                        Err(kind) => return self.block_trap(b, entry, count, kind),
                    }
                }
                FastOp::LdH { addr, offset } => {
                    let a = src(&self.ring, count, addr).wrapping_add(offset);
                    match memops::load_h(&self.mem, a) {
                        Ok(v) => {
                            self.ring[(count & RING_MASK) as usize] = v;
                            count += 1;
                        }
                        Err(kind) => return self.block_trap(b, entry, count, kind),
                    }
                }
                FastOp::LdHu { addr, offset } => {
                    let a = src(&self.ring, count, addr).wrapping_add(offset);
                    match memops::load_hu(&self.mem, a) {
                        Ok(v) => {
                            self.ring[(count & RING_MASK) as usize] = v;
                            count += 1;
                        }
                        Err(kind) => return self.block_trap(b, entry, count, kind),
                    }
                }
                FastOp::LdW { addr, offset } => {
                    let a = src(&self.ring, count, addr).wrapping_add(offset);
                    match memops::load_w(&self.mem, a) {
                        Ok(v) => {
                            self.ring[(count & RING_MASK) as usize] = v;
                            count += 1;
                        }
                        Err(kind) => return self.block_trap(b, entry, count, kind),
                    }
                }
                FastOp::StB { val, addr, width } => {
                    let v = src(&self.ring, count, val);
                    let a = src(&self.ring, count, addr);
                    match memops::store_b(&mut self.mem, a, v, width) {
                        Ok(()) => {
                            self.dirty.mark(a as usize);
                            self.ring[(count & RING_MASK) as usize] = v;
                            count += 1;
                        }
                        Err(kind) => return self.block_trap(b, entry, count, kind),
                    }
                }
                FastOp::StH { val, addr, width } => {
                    let v = src(&self.ring, count, val);
                    let a = src(&self.ring, count, addr);
                    match memops::store_h(&mut self.mem, a, v, width) {
                        Ok(()) => {
                            self.dirty.mark(a as usize);
                            self.ring[(count & RING_MASK) as usize] = v;
                            count += 1;
                        }
                        Err(kind) => return self.block_trap(b, entry, count, kind),
                    }
                }
                FastOp::StW { val, addr } => {
                    let v = src(&self.ring, count, val);
                    let a = src(&self.ring, count, addr);
                    match memops::store_w(&mut self.mem, a, v) {
                        Ok(()) => {
                            self.dirty.mark(a as usize);
                            self.ring[(count & RING_MASK) as usize] = v;
                            count += 1;
                        }
                        Err(kind) => return self.block_trap(b, entry, count, kind),
                    }
                }
                FastOp::RmovChain { first, len } => {
                    for &d in &b.chain_dists[first as usize..(first + len) as usize] {
                        let v = src(&self.ring, count, d);
                        self.ring[(count & RING_MASK) as usize] = v;
                        count += 1;
                    }
                }
                FastOp::SpAdd { imm } => {
                    let sp = self.sp.wrapping_add(imm as i32 as u32);
                    if self.check_sp && !(self.stack_floor..=STACK_TOP).contains(&sp) {
                        return self.block_trap(b, entry, count, TrapKind::SpMisuse { sp });
                    }
                    self.sp = sp;
                    self.ring[(count & RING_MASK) as usize] = sp;
                    count += 1;
                }
                FastOp::Bez { s, target } => {
                    let c = src(&self.ring, count, s);
                    self.ring[(count & RING_MASK) as usize] = 0;
                    count += 1;
                    if c == 0 {
                        next_pc = target;
                    }
                }
                FastOp::Bnz { s, target } => {
                    let c = src(&self.ring, count, s);
                    self.ring[(count & RING_MASK) as usize] = 0;
                    count += 1;
                    if c != 0 {
                        next_pc = target;
                    }
                }
                FastOp::Jr { s } => {
                    let target = src(&self.ring, count, s);
                    self.ring[(count & RING_MASK) as usize] = target;
                    count += 1;
                    next_pc = target;
                }
                FastOp::Jalr { s, link } => {
                    let target = src(&self.ring, count, s);
                    self.ring[(count & RING_MASK) as usize] = link;
                    count += 1;
                    next_pc = target;
                }
                FastOp::Sys { code, s } => {
                    let arg = src(&self.ring, count, s);
                    match self.sys.apply(code, arg) {
                        Some(r) => {
                            self.ring[(count & RING_MASK) as usize] = r;
                            count += 1;
                        }
                        None => {
                            return self.block_trap(b, entry, count, TrapKind::UnknownSys { code })
                        }
                    }
                }
                FastOp::Halt => {
                    self.ring[(count & RING_MASK) as usize] = 0;
                    count += 1;
                }
            }
        }
        self.count = count;
        self.pc = next_pc;
        self.stats.add_kind_counts(&b.kind_counts);
        self.stats.count_retired(count - entry);
        if b.ends_halt {
            return Some(EmuExit::Done { code: self.sys.exit_code.unwrap_or(0) });
        }
        if let Some(code) = self.sys.exit_code {
            return Some(EmuExit::Done { code });
        }
        None
    }

    fn run_fast(&mut self, max_steps: u64) -> EmuExit {
        if self.blocks.len() != self.image.code.len() {
            self.blocks = (0..self.image.code.len()).map(|_| None).collect();
        }
        // Move the cache out of `self` so a cached trace can stay
        // borrowed across `exec_block(&mut self, ..)` without a
        // per-dispatch take/put-back of the slot.
        let mut blocks = std::mem::take(&mut self.blocks);
        let exit = self.run_fast_cached(max_steps, &mut blocks);
        self.blocks = blocks;
        exit
    }

    fn run_fast_cached(&mut self, max_steps: u64, blocks: &mut [Option<Box<Block>>]) -> EmuExit {
        loop {
            if self.stats.retired >= max_steps {
                return EmuExit::StepLimit;
            }
            let pc = self.pc;
            let in_code =
                pc >= self.image.code_base && pc < self.image.code_end() && pc.is_multiple_of(4);
            if !in_code {
                // Out of the code segment: the interpreter raises the
                // fetch fault with the proper context.
                match self.step() {
                    Some(exit) => return exit,
                    None => continue,
                }
            }
            let slot = ((pc - self.image.code_base) / 4) as usize;
            if blocks[slot].is_none() {
                blocks[slot] = Some(Box::new(self.translate(pc)));
            }
            let Some(block) = blocks[slot].as_deref() else {
                return EmuExit::StepLimit; // unreachable: slot just filled
            };
            // Fall back to single-stepping when the trace would
            // overshoot the step budget (preserving exact StepLimit
            // semantics), when distance reads are not yet provably in
            // range (warm-up: fewer instructions retired than the
            // trace's deepest read), or when the trace is empty (the
            // first word faults — let the interpreter trap).
            let budget = max_steps - self.stats.retired;
            if block.len_insts == 0
                || u64::from(block.len_insts) > budget
                || self.count < u64::from(block.max_dist)
            {
                match self.step() {
                    Some(exit) => return exit,
                    None => continue,
                }
            }
            if let Some(exit) = self.exec_block(block) {
                return exit;
            }
        }
    }

    /// Fast tier cross-checked against a cloned interpreter twin in
    /// [`LOCKSTEP_CHUNK`]-instruction windows; any divergence in exit
    /// or full architectural checkpoint is a
    /// [`TrapKind::TierDivergence`] trap.
    fn run_lockstep(&mut self, max_steps: u64) -> EmuExit {
        let mut twin = self.clone();
        loop {
            let target = self.stats.retired.saturating_add(LOCKSTEP_CHUNK).min(max_steps);
            let fast = self.run_fast(target);
            let interp = twin.run_interp(target);
            if fast != interp || self.checkpoint() != twin.checkpoint() {
                return EmuExit::Trap(Trap::untimed(
                    TrapKind::TierDivergence { executed: self.count },
                    self.pc,
                    self.count,
                ));
            }
            match fast {
                EmuExit::StepLimit if target < max_steps => {}
                exit => return exit,
            }
        }
    }
}

impl ExecBackend for StraightEmu {
    /// Executes one instruction on the interpreter tier. Returns
    /// `Some(exit)` when the program stops.
    fn step(&mut self) -> Option<EmuExit> {
        match self.step_trapping() {
            Ok(exit) => exit,
            Err(kind) => Some(EmuExit::Trap(Trap::untimed(kind, self.pc, self.count))),
        }
    }

    fn run_with(&mut self, max_steps: u64, tier: TierConfig) -> EmuExit {
        let fast = matches!(tier.tier, Tier::Fast)
            && !self.profile_distances
            && self.distance_bound.is_none();
        if !fast {
            self.run_interp(max_steps)
        } else if tier.lockstep {
            self.run_lockstep(max_steps)
        } else {
            self.run_fast(max_steps)
        }
    }

    fn stats(&self) -> &EmuStats {
        &self.stats
    }

    fn pc(&self) -> u32 {
        self.pc
    }

    fn executed(&self) -> u64 {
        self.count
    }

    fn stdout(&self) -> &str {
        &self.sys.stdout
    }

    fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            pc: self.pc,
            executed: self.count,
            arch: ArchSnap::Straight { sp: self.sp, ring: self.ring.to_vec() },
            sys: self.sys.clone(),
            stats: self.stats.clone(),
            pages: checkpoint::collect_pages(&self.dirty, &self.mem),
        }
    }

    fn restore(&mut self, cp: &Checkpoint) -> Result<(), CheckpointError> {
        let ArchSnap::Straight { sp, ring } = &cp.arch else {
            return Err(CheckpointError::IsaMismatch);
        };
        self.pc = cp.pc;
        self.count = cp.executed;
        self.sp = *sp;
        for (dst, v) in self.ring.iter_mut().zip(ring) {
            *dst = *v;
        }
        self.sys = cp.sys.clone();
        self.stats = cp.stats.clone();
        self.mem.fill(0);
        self.image.load_into(&mut self.mem);
        cp.apply_pages(&mut self.mem);
        self.dirty = cp.dirty_map();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::EmuResult;
    use straight_asm::{link_straight, parse_straight_asm};

    fn image_for(src: &str) -> Image {
        let prog = parse_straight_asm(src).expect("assembles");
        link_straight(&prog).expect("links")
    }

    fn run_asm(src: &str) -> EmuResult {
        StraightEmu::new(image_for(src)).run(1_000_000)
    }

    #[test]
    fn returns_value_through_stub() {
        // main returns 42 via the convention: retval immediately
        // before JR, return address is the JAL at distance 3 from JR.
        let r = run_asm(
            ".text
             func main:
                ADDi [0] 41
                ADDi [1] 1
                RMOV [1]
                JR [4]",
        );
        assert_eq!(r.exit_code(), Some(42));
    }

    #[test]
    fn fibonacci_loop_from_figure1() {
        // A counted loop in the style of Figure 1/9: the NOP
        // equalizes the fall-through entry distance with the
        // back-edge distance (the paper's padding rule).
        let r = run_asm(
            ".text
             func main:
                ADDi [0] 10      ; counter
                NOP              ; entry-path padding
             loop:
                ADDi [2] -1      ; counter - 1 (same distance on both paths)
                BNZ [1] loop
                SYS 1 [2]        ; print the final counter
                HALT",
        );
        assert_eq!(r.exit_code(), Some(0));
        assert_eq!(r.stdout, "0\n");
        assert!(r.stats.retired > 20, "{}", r.stats.retired);
        assert!(r.stats.kinds().get("nop").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn spadd_updates_sp_and_returns_it() {
        let r = run_asm(
            ".text
             func main:
                SPADD -16
                ADDi [0] 7
                ST [1] [2]       ; store 7 at frame base
                LD [3] 0         ; load it back
                RMOV [1]
                JR [6]",
        );
        assert_eq!(r.exit_code(), Some(7));
    }

    #[test]
    fn distance_profile_collected() {
        let image = image_for(
            ".text
             func main:
                ADDi [0] 1
                ADD [1] [1]
                RMOV [2]
                JR [4]",
        );
        let mut emu = StraightEmu::new(image);
        emu.profile_distances = true;
        let r = emu.run(1000);
        assert!(r.stats.dist_hist[1] >= 2);
        assert!(r.stats.cumulative_fraction(8) > 0.9);
    }

    #[test]
    fn step_limit_reported() {
        let r = run_asm(
            ".text
             func main:
             spin:
                J spin",
        );
        assert_eq!(r.exit, EmuExit::StepLimit);
    }

    #[test]
    fn distance_past_start_of_execution_traps() {
        // The second instruction reads distance 5, but only one
        // instruction has executed: the producer never existed.
        let r = run_asm(
            ".text
             func main:
                ADDi [0] 1
                ADD [1] [5]
                HALT",
        );
        // The _start stub's JAL and the ADDi have executed: count 2.
        match r.exit {
            EmuExit::Trap(t) => {
                assert_eq!(t.kind, TrapKind::DistanceOutOfRange { dist: 5, executed: 2 });
                assert_eq!(t.index, 2);
            }
            other => panic!("expected a distance trap, got {other:?}"),
        }
    }

    #[test]
    fn sanitizer_flags_distance_above_compiled_bound() {
        let image = image_for(
            ".text
             func main:
                ADDi [0] 1
                NOP
                NOP
                NOP
                ADD [4] [1]
                HALT",
        );
        // Without the sanitizer the program completes...
        let ok = StraightEmu::new(image.clone()).run(1000);
        assert_eq!(ok.exit_code(), Some(0));
        // ...with a bound of 3 the distance-4 read is flagged.
        let mut emu = StraightEmu::new(image);
        emu.distance_bound = Some(3);
        let r = emu.run(1000);
        assert_eq!(
            r.trap().map(|t| t.kind),
            Some(TrapKind::DistanceAboveBound { dist: 4, bound: 3 })
        );
    }

    #[test]
    fn sanitizer_flags_sp_escape() {
        let image = image_for(
            ".text
             func main:
                SPADD 16
                HALT",
        );
        let mut emu = StraightEmu::new(image);
        emu.check_sp = true;
        let r = emu.run(1000);
        assert!(
            matches!(r.trap().map(|t| t.kind), Some(TrapKind::SpMisuse { .. })),
            "{:?}",
            r.exit
        );
    }

    #[test]
    fn misaligned_load_traps() {
        let r = run_asm(
            ".text
             func main:
                ADDi [0] 2
                LD [1] 1        ; word load at address 3
                HALT",
        );
        assert_eq!(
            r.trap().map(|t| t.kind),
            Some(TrapKind::MisalignedLoad { addr: 3, width: MemWidth::W })
        );
    }

    #[test]
    fn fast_tier_matches_interpreter_exactly() {
        let src = ".text
             func main:
                ADDi [0] 10      ; counter
                NOP
             loop:
                ADDi [2] -1
                BNZ [1] loop
                SYS 1 [2]
                HALT";
        let interp = StraightEmu::new(image_for(src)).run(1_000_000);
        let fast =
            StraightEmu::new(image_for(src)).run_tiered(1_000_000, TierConfig::fast_lockstep());
        assert_eq!(interp.exit, fast.exit);
        assert_eq!(interp.stdout, fast.stdout);
        assert_eq!(interp.stats, fast.stats);
    }

    #[test]
    fn fast_tier_traps_like_the_interpreter() {
        let src = ".text
             func main:
                ADDi [0] 2
                LD [1] 1
                HALT";
        let interp = StraightEmu::new(image_for(src)).run(1_000_000);
        let fast = StraightEmu::new(image_for(src)).run_tiered(1_000_000, TierConfig::fast());
        assert_eq!(interp.exit, fast.exit);
        assert_eq!(interp.stats, fast.stats);
    }

    #[test]
    fn checkpoint_round_trips_mid_run() {
        let src = ".text
             func main:
                ADDi [0] 10
                NOP
             loop:
                ADDi [2] -1
                BNZ [1] loop
                SYS 1 [2]
                HALT";
        let mut emu = StraightEmu::new(image_for(src));
        assert_eq!(emu.run_until(7), EmuExit::StepLimit);
        let cp = emu.checkpoint();
        let done = emu.run_until(u64::MAX);

        let mut resumed = StraightEmu::new(image_for(src));
        resumed.restore(&cp).expect("same ISA");
        assert_eq!(resumed.checkpoint().to_bytes(), cp.to_bytes());
        let done2 = resumed.run_until(u64::MAX);
        assert_eq!(done, done2);
        assert_eq!(emu.checkpoint().to_bytes(), resumed.checkpoint().to_bytes());
    }
}
