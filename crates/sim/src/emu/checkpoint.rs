//! Architectural emulator checkpoints.
//!
//! A [`Checkpoint`] captures everything needed to resume execution of
//! an image mid-stream: PC, dynamic instruction count, the ISA's
//! register state (the STRAIGHT result ring + SP, or the 32 RV32
//! registers), console/exit state, statistics, and — instead of the
//! whole 4 MiB address space — only the memory pages that differ from
//! the pristine image. Both emulators track dirtied pages as they
//! store (a `DirtyMap` page bitset), so snapshotting is proportional to the
//! touched working set, and restoring is "reload the image, overlay
//! the dirty pages".
//!
//! Checkpoints have a canonical byte serialization
//! ([`Checkpoint::to_bytes`]) used by the differential suite to assert
//! bit-identity, and are the hand-off format for sampled simulation:
//! the cycle-accurate core's `Core::resume_from` seeds its physical
//! register file and RP/RMT state from one.

use straight_asm::{ImageIsa, MEM_SIZE};

use super::sys::SysState;
use super::EmuStats;

/// Dirty-page granule. Aligned stores never straddle a page (the
/// widest access is 4 bytes, alignment-checked before writing), so a
/// store dirties exactly one page.
pub(crate) const PAGE_SIZE: usize = 4096;
/// Number of granules covering the simulated address space.
pub(crate) const PAGE_COUNT: usize = MEM_SIZE as usize / PAGE_SIZE;

/// A bitset over the memory pages an emulator has stored to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DirtyMap {
    bits: [u64; PAGE_COUNT / 64],
}

impl DirtyMap {
    pub(crate) fn new() -> DirtyMap {
        DirtyMap { bits: [0; PAGE_COUNT / 64] }
    }

    /// Marks the page containing `addr` dirty.
    #[inline]
    pub(crate) fn mark(&mut self, addr: usize) {
        let page = addr / PAGE_SIZE;
        self.bits[page / 64] |= 1u64 << (page % 64);
    }

    fn is_dirty(&self, page: usize) -> bool {
        self.bits[page / 64] & (1u64 << (page % 64)) != 0
    }

    fn set(&mut self, page: usize) {
        self.bits[page / 64] |= 1u64 << (page % 64);
    }
}

/// One dirtied page: its index and its full contents at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DirtyPage {
    pub(crate) index: u32,
    pub(crate) bytes: Vec<u8>,
}

/// ISA-specific register state of a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ArchSnap {
    /// STRAIGHT: the stack pointer and the full result ring (indexed
    /// by executed count modulo the ring size).
    Straight {
        sp: u32,
        ring: Vec<u32>,
    },
    /// RV32IM: the 32 architectural registers.
    Riscv {
        regs: [u32; 32],
    },
}

/// Why a checkpoint could not be restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint was taken on the other ISA's emulator.
    IsaMismatch,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::IsaMismatch => {
                write!(f, "checkpoint ISA does not match this emulator")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A complete architectural snapshot (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    pub(crate) pc: u32,
    pub(crate) executed: u64,
    pub(crate) arch: ArchSnap,
    pub(crate) sys: SysState,
    pub(crate) stats: EmuStats,
    /// Dirty pages in ascending index order (canonical).
    pub(crate) pages: Vec<DirtyPage>,
}

impl Checkpoint {
    /// PC at which execution resumes.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Dynamic instructions executed before the snapshot.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The ISA this checkpoint belongs to.
    #[must_use]
    pub fn isa(&self) -> ImageIsa {
        match self.arch {
            ArchSnap::Straight { .. } => ImageIsa::Straight,
            ArchSnap::Riscv { .. } => ImageIsa::Riscv,
        }
    }

    /// Console output captured up to the snapshot.
    #[must_use]
    pub fn stdout(&self) -> &str {
        &self.sys.stdout
    }

    /// Number of dirty memory pages carried.
    #[must_use]
    pub fn dirty_pages(&self) -> usize {
        self.pages.len()
    }

    /// Overlays the dirty pages onto an image-loaded memory (the
    /// restore path shared by the emulators and `Core::resume_from`).
    pub(crate) fn apply_pages(&self, mem: &mut [u8]) {
        for page in &self.pages {
            let base = page.index as usize * PAGE_SIZE;
            mem[base..base + PAGE_SIZE].copy_from_slice(&page.bytes);
        }
    }

    /// Rebuilds the dirty map matching this checkpoint's pages.
    pub(crate) fn dirty_map(&self) -> DirtyMap {
        let mut map = DirtyMap::new();
        for page in &self.pages {
            map.set(page.index as usize);
        }
        map
    }

    /// Canonical byte serialization: every field in a fixed
    /// little-endian layout, dirty pages in ascending order. Two
    /// checkpoints are byte-identical exactly when they are `==`.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"STCP");
        out.extend_from_slice(&self.pc.to_le_bytes());
        out.extend_from_slice(&self.executed.to_le_bytes());
        match &self.arch {
            ArchSnap::Straight { sp, ring } => {
                out.push(0);
                out.extend_from_slice(&sp.to_le_bytes());
                out.extend_from_slice(&(ring.len() as u32).to_le_bytes());
                for v in ring {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            ArchSnap::Riscv { regs } => {
                out.push(1);
                for v in regs {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&(self.sys.stdout.len() as u32).to_le_bytes());
        out.extend_from_slice(self.sys.stdout.as_bytes());
        match self.sys.exit_code {
            Some(code) => {
                out.push(1);
                out.extend_from_slice(&code.to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&self.stats.retired.to_le_bytes());
        for kind in self.stats.kinds() {
            out.extend_from_slice(kind.0.as_bytes());
            out.extend_from_slice(&kind.1.to_le_bytes());
        }
        out.extend_from_slice(&(self.stats.dist_hist.len() as u32).to_le_bytes());
        for v in &self.stats.dist_hist {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.pages.len() as u32).to_le_bytes());
        for page in &self.pages {
            out.extend_from_slice(&page.index.to_le_bytes());
            out.extend_from_slice(&page.bytes);
        }
        out
    }
}

/// Collects the dirty pages of `mem` in canonical (ascending) order.
pub(crate) fn collect_pages(dirty: &DirtyMap, mem: &[u8]) -> Vec<DirtyPage> {
    (0..PAGE_COUNT)
        .filter(|&p| dirty.is_dirty(p))
        .map(|p| DirtyPage {
            index: p as u32,
            bytes: mem[p * PAGE_SIZE..(p + 1) * PAGE_SIZE].to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_map_marks_and_collects() {
        let mut map = DirtyMap::new();
        let mut mem = vec![0u8; MEM_SIZE as usize];
        mem[5000] = 0xab;
        map.mark(5000);
        mem[MEM_SIZE as usize - 1] = 0xcd;
        map.mark(MEM_SIZE as usize - 1);
        let pages = collect_pages(&map, &mem);
        assert_eq!(pages.len(), 2);
        assert_eq!(pages[0].index, 1);
        assert_eq!(pages[0].bytes[5000 - PAGE_SIZE], 0xab);
        assert_eq!(pages[1].index as usize, PAGE_COUNT - 1);
        assert_eq!(pages[1].bytes[PAGE_SIZE - 1], 0xcd);
    }

    #[test]
    fn serialization_is_injective_on_state() {
        let base = Checkpoint {
            pc: 0x1000,
            executed: 7,
            arch: ArchSnap::Riscv { regs: [0; 32] },
            sys: SysState::default(),
            stats: EmuStats::default(),
            pages: vec![],
        };
        let mut other = base.clone();
        assert_eq!(base.to_bytes(), other.to_bytes());
        other.executed = 8;
        assert_ne!(base.to_bytes(), other.to_bytes());
    }
}
