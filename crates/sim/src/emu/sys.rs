//! Shared environment-service handling (`SYS` / `ecall`).

use straight_asm::abi;

/// Captured console output and termination state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SysState {
    /// Text printed so far.
    pub stdout: String,
    /// Set when the exit service has run.
    pub exit_code: Option<i32>,
}

impl SysState {
    /// Applies one service invocation; returns the service's result
    /// value, or `None` for an unknown code.
    pub fn apply(&mut self, code: u16, arg: u32) -> Option<u32> {
        match code {
            abi::SYS_PRINT_INT => {
                self.stdout.push_str(&(arg as i32).to_string());
                self.stdout.push('\n');
                Some(0)
            }
            abi::SYS_PRINT_CHAR => {
                self.stdout.push(arg as u8 as char);
                Some(0)
            }
            abi::SYS_EXIT => {
                self.exit_code = Some(arg as i32);
                Some(0)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn services() {
        let mut s = SysState::default();
        assert_eq!(s.apply(abi::SYS_PRINT_INT, -5i32 as u32), Some(0));
        assert_eq!(s.apply(abi::SYS_PRINT_CHAR, u32::from(b'x')), Some(0));
        assert_eq!(s.stdout, "-5\nx");
        assert_eq!(s.apply(abi::SYS_EXIT, 9), Some(0));
        assert_eq!(s.exit_code, Some(9));
        assert_eq!(s.apply(999, 0), None);
    }
}
