//! Width-specialized memory accessors for the fast execution tiers.
//!
//! The interpreter tiers keep the one `load`/`store` pair that
//! dispatches on [`MemWidth`] at run time; the fast tiers resolve the
//! width when a block is translated and call these helpers, each of
//! which performs exactly one alignment test and one bounds test.
//! Semantics (alignment rule, trap values, little-endian byte order)
//! are identical to the interpreter paths.

use straight_isa::{MemWidth, TrapKind};

/// Sign-extending byte load.
#[inline]
pub(super) fn load_b(mem: &[u8], addr: u32) -> Result<u32, TrapKind> {
    match mem.get(addr as usize) {
        Some(&b) => Ok(b as i8 as i32 as u32),
        None => Err(TrapKind::WildLoad { addr, width: MemWidth::B }),
    }
}

/// Zero-extending byte load.
#[inline]
pub(super) fn load_bu(mem: &[u8], addr: u32) -> Result<u32, TrapKind> {
    match mem.get(addr as usize) {
        Some(&b) => Ok(u32::from(b)),
        None => Err(TrapKind::WildLoad { addr, width: MemWidth::Bu }),
    }
}

/// Sign-extending halfword load.
#[inline]
pub(super) fn load_h(mem: &[u8], addr: u32) -> Result<u32, TrapKind> {
    if !addr.is_multiple_of(2) {
        return Err(TrapKind::MisalignedLoad { addr, width: MemWidth::H });
    }
    match mem.get(addr as usize..addr as usize + 2) {
        Some(b) => Ok(i32::from(i16::from_le_bytes([b[0], b[1]])) as u32),
        None => Err(TrapKind::WildLoad { addr, width: MemWidth::H }),
    }
}

/// Zero-extending halfword load.
#[inline]
pub(super) fn load_hu(mem: &[u8], addr: u32) -> Result<u32, TrapKind> {
    if !addr.is_multiple_of(2) {
        return Err(TrapKind::MisalignedLoad { addr, width: MemWidth::Hu });
    }
    match mem.get(addr as usize..addr as usize + 2) {
        Some(b) => Ok(u32::from(u16::from_le_bytes([b[0], b[1]]))),
        None => Err(TrapKind::WildLoad { addr, width: MemWidth::Hu }),
    }
}

/// Word load.
#[inline]
pub(super) fn load_w(mem: &[u8], addr: u32) -> Result<u32, TrapKind> {
    if !addr.is_multiple_of(4) {
        return Err(TrapKind::MisalignedLoad { addr, width: MemWidth::W });
    }
    match mem.get(addr as usize..addr as usize + 4) {
        Some(b) => Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        None => Err(TrapKind::WildLoad { addr, width: MemWidth::W }),
    }
}

/// Byte store. `width` is the instruction's encoded width (`B` or
/// `Bu` — same store semantics), reported verbatim in traps so the
/// fast tiers trap byte-identically to the interpreter.
#[inline]
pub(super) fn store_b(mem: &mut [u8], addr: u32, val: u32, width: MemWidth) -> Result<(), TrapKind> {
    match mem.get_mut(addr as usize) {
        Some(b) => {
            *b = val as u8;
            Ok(())
        }
        None => Err(TrapKind::WildStore { addr, width }),
    }
}

/// Halfword store; `width` as in [`store_b`] (`H` or `Hu`).
#[inline]
pub(super) fn store_h(mem: &mut [u8], addr: u32, val: u32, width: MemWidth) -> Result<(), TrapKind> {
    if !addr.is_multiple_of(2) {
        return Err(TrapKind::MisalignedStore { addr, width });
    }
    match mem.get_mut(addr as usize..addr as usize + 2) {
        Some(b) => {
            b.copy_from_slice(&(val as u16).to_le_bytes());
            Ok(())
        }
        None => Err(TrapKind::WildStore { addr, width }),
    }
}

/// Word store.
#[inline]
pub(super) fn store_w(mem: &mut [u8], addr: u32, val: u32) -> Result<(), TrapKind> {
    if !addr.is_multiple_of(4) {
        return Err(TrapKind::MisalignedStore { addr, width: MemWidth::W });
    }
    match mem.get_mut(addr as usize..addr as usize + 4) {
        Some(b) => {
            b.copy_from_slice(&val.to_le_bytes());
            Ok(())
        }
        None => Err(TrapKind::WildStore { addr, width: MemWidth::W }),
    }
}
