//! Functional emulator for the RV32IM baseline.
//!
//! Same two-tier structure as the STRAIGHT emulator: the interpreter
//! fetches and decodes every instruction; the fast tier translates
//! traces of lowered [`FastOp`] micro-ops — one dispatch per op, all
//! PC-relative values (`AUIPC`, links, branch targets) folded to
//! constants at translation time, `LUI`/`li` folded to constant
//! writes, `x0`-target writes redirected to a dead sink slot so the
//! hot path writes unconditionally, load/store widths specialized,
//! and unconditional `JAL`s fused *through* (the trace continues into
//! the static target) — with statistics batched per trace.

use straight_asm::{Image, MEM_SIZE, STACK_TOP};
use straight_isa::{AluOp, Trap, TrapKind};
use straight_riscv::{decode, MemWidth, Reg, RvInst};

use super::checkpoint::{self, ArchSnap, Checkpoint, CheckpointError, DirtyMap};
use super::sys::SysState;
use super::{memops, EmuExit, EmuKind, EmuStats, ExecBackend, Tier, TierConfig};

/// Longest translated trace, in instructions.
const BLOCK_CAP: usize = 256;
/// Retired instructions per lockstep comparison window.
const LOCKSTEP_CHUNK: u64 = 4096;
/// Architectural registers are `x0..x31`; slot 32 is the fast tier's
/// write sink for `x0`-target instructions (never read, excluded from
/// checkpoints), letting lowered ops write unconditionally. The file
/// is 64 slots so fast-tier indices can be masked with `& 63` (an
/// identity for every real index), which lets the compiler drop the
/// bounds check on every hot-loop register access.
const SINK: u8 = 32;

/// A lowered micro-op of the fast tier. Register numbers are raw
/// indices (writes pre-redirected to [`SINK`] for `x0`), immediates
/// pre-extended, branch/link values absolute.
#[derive(Debug, Clone)]
enum FastOp {
    /// `x0`-target ALU/`LUI` instructions (architectural no-ops), and
    /// fused `jal x0` (plain `j`).
    Nop,
    /// Constant write: `LUI`, `AUIPC` (PC folded), `li`
    /// (`OpImm` on `x0`), and fused `JAL` link writes.
    Li { rd: u8, value: u32 },
    Add { rd: u8, rs1: u8, rs2: u8 },
    Sub { rd: u8, rs1: u8, rs2: u8 },
    Sll { rd: u8, rs1: u8, rs2: u8 },
    Slt { rd: u8, rs1: u8, rs2: u8 },
    Sltu { rd: u8, rs1: u8, rs2: u8 },
    Xor { rd: u8, rs1: u8, rs2: u8 },
    Srl { rd: u8, rs1: u8, rs2: u8 },
    Sra { rd: u8, rs1: u8, rs2: u8 },
    Or { rd: u8, rs1: u8, rs2: u8 },
    And { rd: u8, rs1: u8, rs2: u8 },
    Mul { rd: u8, rs1: u8, rs2: u8 },
    /// Reg-reg ops without a dedicated variant (M-extension
    /// high/div/rem): second dispatch through [`AluOp::eval`].
    Alu { op: AluOp, rd: u8, rs1: u8, rs2: u8 },
    Addi { rd: u8, rs1: u8, imm: u32 },
    Slli { rd: u8, rs1: u8, imm: u32 },
    Slti { rd: u8, rs1: u8, imm: u32 },
    Sltiu { rd: u8, rs1: u8, imm: u32 },
    Xori { rd: u8, rs1: u8, imm: u32 },
    Srli { rd: u8, rs1: u8, imm: u32 },
    Srai { rd: u8, rs1: u8, imm: u32 },
    Ori { rd: u8, rs1: u8, imm: u32 },
    Andi { rd: u8, rs1: u8, imm: u32 },
    /// Unreachable in practice ([`AluImmOp::base`] is covered by the
    /// dedicated variants above); kept as a safety net.
    AluImm { op: AluOp, rd: u8, rs1: u8, imm: u32 },
    LdB { rd: u8, rs1: u8, offset: u32 },
    LdBu { rd: u8, rs1: u8, offset: u32 },
    LdH { rd: u8, rs1: u8, offset: u32 },
    LdHu { rd: u8, rs1: u8, offset: u32 },
    LdW { rd: u8, rs1: u8, offset: u32 },
    /// `width` is the encoded width, kept for byte-identical traps.
    StB { rs2: u8, rs1: u8, offset: u32, width: MemWidth },
    StH { rs2: u8, rs1: u8, offset: u32, width: MemWidth },
    StW { rs2: u8, rs1: u8, offset: u32 },
    Beq { rs1: u8, rs2: u8, target: u32 },
    Bne { rs1: u8, rs2: u8, target: u32 },
    Blt { rs1: u8, rs2: u8, target: u32 },
    Bge { rs1: u8, rs2: u8, target: u32 },
    Bltu { rs1: u8, rs2: u8, target: u32 },
    Bgeu { rs1: u8, rs2: u8, target: u32 },
    Jalr { rd: u8, rs1: u8, offset: u32, link: u32 },
    Ecall,
    Ebreak,
}

/// A translated trace: instructions ending at the first conditional
/// branch, indirect jump, environment call, undecodable word,
/// code-end, or [`BLOCK_CAP`]. Unconditional `JAL` does not end a
/// trace — its target is static, so translation continues there.
#[derive(Debug, Clone)]
struct Block {
    /// PC after the last instruction when no terminator redirects
    /// (follows fused jumps, so not simply `start_pc + 4 * len`).
    end_pc: u32,
    ops: Vec<FastOp>,
    /// Per instruction: its PC and Figure 15 category. Cold paths
    /// only (mid-trace traps need the interpreter's exact PC and
    /// per-instruction statistics).
    meta: Vec<(u32, EmuKind)>,
    /// Precomputed Figure 15 category counts for a full execution.
    kind_counts: [u64; EmuKind::COUNT],
    /// Ends in `EBREAK`.
    ends_break: bool,
}

/// RV32IM functional emulator.
#[derive(Debug, Clone)]
pub struct RiscvEmu {
    image: Image,
    mem: Vec<u8>,
    /// `x0..x31` plus the fast tier's [`SINK`] slot; padded to 64
    /// for mask-based bounds-check elimination (slots 33..64 unused).
    regs: [u32; 64],
    count: u64,
    pc: u32,
    sys: SysState,
    stats: EmuStats,
    dirty: DirtyMap,
    /// Fast-tier trace cache, indexed by code-segment slot. Sized
    /// lazily on the first fast-tier run.
    blocks: Vec<Option<Box<Block>>>,
}

/// Write-side register lowering: `x0` writes go to the sink slot.
fn wreg(rd: Reg) -> u8 {
    if rd.is_zero() {
        SINK
    } else {
        rd.num()
    }
}

impl RiscvEmu {
    /// Prepares an emulator for a linked image.
    #[must_use]
    pub fn new(image: Image) -> RiscvEmu {
        let mut mem = vec![0u8; MEM_SIZE as usize];
        image.load_into(&mut mem);
        let pc = image.entry;
        let mut regs = [0u32; 64];
        regs[Reg::SP.num() as usize] = STACK_TOP;
        RiscvEmu {
            image,
            mem,
            regs,
            count: 0,
            pc,
            sys: SysState::default(),
            stats: EmuStats::default(),
            dirty: DirtyMap::new(),
            blocks: Vec::new(),
        }
    }

    /// Architectural value of `reg`.
    #[must_use]
    pub fn reg(&self, reg: Reg) -> u32 {
        self.r(reg)
    }

    fn r(&self, reg: Reg) -> u32 {
        self.regs[reg.num() as usize]
    }

    fn w(&mut self, reg: Reg, val: u32) {
        if !reg.is_zero() {
            self.regs[reg.num() as usize] = val;
        }
    }

    /// Fast-tier register read. `& 63` is an identity for every real
    /// index and lets the compiler elide the bounds check.
    #[inline(always)]
    fn rr(&self, r: u8) -> u32 {
        self.regs[usize::from(r & 63)]
    }

    fn load(&self, width: MemWidth, addr: u32) -> Result<u32, TrapKind> {
        let a = addr as usize;
        if !addr.is_multiple_of(width.bytes()) {
            return Err(TrapKind::MisalignedLoad { addr, width });
        }
        if a + width.bytes() as usize > self.mem.len() {
            return Err(TrapKind::WildLoad { addr, width });
        }
        Ok(match width {
            MemWidth::B => self.mem[a] as i8 as i32 as u32,
            MemWidth::Bu => u32::from(self.mem[a]),
            MemWidth::H => i32::from(i16::from_le_bytes([self.mem[a], self.mem[a + 1]])) as u32,
            MemWidth::Hu => u32::from(u16::from_le_bytes([self.mem[a], self.mem[a + 1]])),
            MemWidth::W => {
                u32::from_le_bytes([self.mem[a], self.mem[a + 1], self.mem[a + 2], self.mem[a + 3]])
            }
        })
    }

    fn store(&mut self, width: MemWidth, addr: u32, val: u32) -> Result<(), TrapKind> {
        let a = addr as usize;
        if !addr.is_multiple_of(width.bytes()) {
            return Err(TrapKind::MisalignedStore { addr, width });
        }
        if a + width.bytes() as usize > self.mem.len() {
            return Err(TrapKind::WildStore { addr, width });
        }
        match width {
            MemWidth::B | MemWidth::Bu => self.mem[a] = val as u8,
            MemWidth::H | MemWidth::Hu => self.mem[a..a + 2].copy_from_slice(&(val as u16).to_le_bytes()),
            MemWidth::W => self.mem[a..a + 4].copy_from_slice(&val.to_le_bytes()),
        }
        // Aligned accesses never straddle a page, so one mark suffices.
        self.dirty.mark(a);
        Ok(())
    }

    /// Executes one already-decoded instruction at `pc`. Returns the
    /// next PC; `Ok(None)` in the `exit` slot distinction is handled
    /// by the caller via `sys.exit_code` and the `Ebreak` flag.
    fn exec_inst(&mut self, inst: &RvInst, pc: u32) -> Result<u32, TrapKind> {
        let mut next_pc = pc.wrapping_add(4);
        match *inst {
            RvInst::Lui { rd, imm } => self.w(rd, imm),
            RvInst::Auipc { rd, imm } => self.w(rd, pc.wrapping_add(imm)),
            RvInst::Jal { rd, offset } => {
                self.w(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(offset as u32);
            }
            RvInst::Jalr { rd, rs1, offset } => {
                let target = self.r(rs1).wrapping_add(offset as u32) & !1;
                self.w(rd, pc.wrapping_add(4));
                next_pc = target;
            }
            RvInst::Branch { op, rs1, rs2, offset } => {
                if op.eval(self.r(rs1), self.r(rs2)) {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            RvInst::Load { width, rd, rs1, offset } => {
                let a = self.r(rs1).wrapping_add(offset as u32);
                let v = self.load(width, a)?;
                self.w(rd, v);
            }
            RvInst::Store { width, rs2, rs1, offset } => {
                let a = self.r(rs1).wrapping_add(offset as u32);
                let v = self.r(rs2);
                self.store(width, a, v)?;
            }
            RvInst::OpImm { op, rd, rs1, imm } => {
                let v = op.eval(self.r(rs1), imm);
                self.w(rd, v);
            }
            RvInst::Op { op, rd, rs1, rs2 } => {
                let v = op.eval(self.r(rs1), self.r(rs2));
                self.w(rd, v);
            }
            RvInst::Ecall => {
                let code = self.r(Reg::A7) as u16;
                let arg = self.r(Reg::A0);
                match self.sys.apply(code, arg) {
                    Some(r) => self.w(Reg::A0, r),
                    None => return Err(TrapKind::UnknownSys { code }),
                }
            }
            RvInst::Ebreak => {}
        }
        Ok(next_pc)
    }

    fn step_trapping(&mut self) -> Result<Option<EmuExit>, TrapKind> {
        let Some(word) = self.image.fetch(self.pc) else {
            return Err(TrapKind::FetchFault);
        };
        let Ok(inst) = decode(word) else {
            return Err(TrapKind::IllegalInstruction { word });
        };
        let next_pc = self.exec_inst(&inst, self.pc)?;
        // Statistics count only instructions that complete without
        // trapping, keeping the retired count equal to the trap index.
        self.stats.bump_kind(EmuKind::of_riscv(&inst));
        self.stats.count_retired(1);
        self.count += 1;
        self.pc = next_pc;
        if matches!(inst, RvInst::Ebreak) {
            return Ok(Some(EmuExit::Done { code: self.sys.exit_code.unwrap_or(0) }));
        }
        if let Some(code) = self.sys.exit_code {
            return Ok(Some(EmuExit::Done { code }));
        }
        Ok(None)
    }

    fn run_interp(&mut self, max_steps: u64) -> EmuExit {
        loop {
            if self.stats.retired >= max_steps {
                return EmuExit::StepLimit;
            }
            if let Some(exit) = self.step() {
                return exit;
            }
        }
    }

    /// Translates the trace starting at `start_pc`. An empty trace
    /// (first word unfetchable/undecodable) makes the caller fall
    /// back to the interpreter, which raises the proper trap.
    fn translate(&self, start_pc: u32) -> Block {
        let mut ops = Vec::new();
        let mut meta: Vec<(u32, EmuKind)> = Vec::new();
        let mut kind_counts = [0u64; EmuKind::COUNT];
        let mut ends_break = false;
        let mut pc = start_pc;
        while meta.len() < BLOCK_CAP {
            let Some(word) = self.image.fetch(pc) else { break };
            let Ok(inst) = decode(word) else { break };
            kind_counts[EmuKind::of_riscv(&inst) as usize] += 1;
            meta.push((pc, EmuKind::of_riscv(&inst)));
            let mut next = pc.wrapping_add(4);
            let terminator = matches!(
                inst,
                RvInst::Jalr { .. } | RvInst::Branch { .. } | RvInst::Ecall | RvInst::Ebreak
            );
            match inst {
                RvInst::Lui { rd, imm } => ops.push(if rd.is_zero() {
                    FastOp::Nop
                } else {
                    FastOp::Li { rd: rd.num(), value: imm }
                }),
                RvInst::Auipc { rd, imm } => ops.push(if rd.is_zero() {
                    FastOp::Nop
                } else {
                    // The PC is a translation-time constant here.
                    FastOp::Li { rd: rd.num(), value: pc.wrapping_add(imm) }
                }),
                RvInst::Jal { rd, offset } => {
                    // Unconditional with a static target: fold the
                    // link write and keep translating at the target.
                    ops.push(if rd.is_zero() {
                        FastOp::Nop
                    } else {
                        FastOp::Li { rd: rd.num(), value: pc.wrapping_add(4) }
                    });
                    next = pc.wrapping_add(offset as u32);
                }
                RvInst::Jalr { rd, rs1, offset } => ops.push(FastOp::Jalr {
                    rd: wreg(rd),
                    rs1: rs1.num(),
                    offset: offset as u32,
                    link: pc.wrapping_add(4),
                }),
                RvInst::Branch { op, rs1, rs2, offset } => {
                    let (rs1, rs2) = (rs1.num(), rs2.num());
                    let target = pc.wrapping_add(offset as u32);
                    use straight_riscv::BranchOp;
                    ops.push(match op {
                        BranchOp::Beq => FastOp::Beq { rs1, rs2, target },
                        BranchOp::Bne => FastOp::Bne { rs1, rs2, target },
                        BranchOp::Blt => FastOp::Blt { rs1, rs2, target },
                        BranchOp::Bge => FastOp::Bge { rs1, rs2, target },
                        BranchOp::Bltu => FastOp::Bltu { rs1, rs2, target },
                        BranchOp::Bgeu => FastOp::Bgeu { rs1, rs2, target },
                    });
                }
                RvInst::Load { width, rd, rs1, offset } => {
                    let (rd, rs1, offset) = (wreg(rd), rs1.num(), offset as u32);
                    ops.push(match width {
                        MemWidth::B => FastOp::LdB { rd, rs1, offset },
                        MemWidth::Bu => FastOp::LdBu { rd, rs1, offset },
                        MemWidth::H => FastOp::LdH { rd, rs1, offset },
                        MemWidth::Hu => FastOp::LdHu { rd, rs1, offset },
                        MemWidth::W => FastOp::LdW { rd, rs1, offset },
                    });
                }
                RvInst::Store { width, rs2, rs1, offset } => {
                    let (rs2, rs1, offset) = (rs2.num(), rs1.num(), offset as u32);
                    ops.push(match width {
                        MemWidth::B | MemWidth::Bu => FastOp::StB { rs2, rs1, offset, width },
                        MemWidth::H | MemWidth::Hu => FastOp::StH { rs2, rs1, offset, width },
                        MemWidth::W => FastOp::StW { rs2, rs1, offset },
                    });
                }
                RvInst::OpImm { op, rd, rs1, imm } => ops.push(if rd.is_zero() {
                    FastOp::Nop
                } else if rs1.is_zero() {
                    // `li` and friends: fold to a constant write.
                    FastOp::Li { rd: rd.num(), value: op.eval(0, imm) }
                } else {
                    let (rd, rs1, imm) = (rd.num(), rs1.num(), imm as u32);
                    match op.base() {
                        AluOp::Add => FastOp::Addi { rd, rs1, imm },
                        AluOp::Sll => FastOp::Slli { rd, rs1, imm },
                        AluOp::Slt => FastOp::Slti { rd, rs1, imm },
                        AluOp::Sltu => FastOp::Sltiu { rd, rs1, imm },
                        AluOp::Xor => FastOp::Xori { rd, rs1, imm },
                        AluOp::Srl => FastOp::Srli { rd, rs1, imm },
                        AluOp::Sra => FastOp::Srai { rd, rs1, imm },
                        AluOp::Or => FastOp::Ori { rd, rs1, imm },
                        AluOp::And => FastOp::Andi { rd, rs1, imm },
                        base => FastOp::AluImm { op: base, rd, rs1, imm },
                    }
                }),
                RvInst::Op { op, rd, rs1, rs2 } => ops.push(if rd.is_zero() {
                    FastOp::Nop
                } else {
                    let (rd, rs1, rs2) = (rd.num(), rs1.num(), rs2.num());
                    match op {
                        AluOp::Add => FastOp::Add { rd, rs1, rs2 },
                        AluOp::Sub => FastOp::Sub { rd, rs1, rs2 },
                        AluOp::Sll => FastOp::Sll { rd, rs1, rs2 },
                        AluOp::Slt => FastOp::Slt { rd, rs1, rs2 },
                        AluOp::Sltu => FastOp::Sltu { rd, rs1, rs2 },
                        AluOp::Xor => FastOp::Xor { rd, rs1, rs2 },
                        AluOp::Srl => FastOp::Srl { rd, rs1, rs2 },
                        AluOp::Sra => FastOp::Sra { rd, rs1, rs2 },
                        AluOp::Or => FastOp::Or { rd, rs1, rs2 },
                        AluOp::And => FastOp::And { rd, rs1, rs2 },
                        AluOp::Mul => FastOp::Mul { rd, rs1, rs2 },
                        op => FastOp::Alu { op, rd, rs1, rs2 },
                    }
                }),
                RvInst::Ecall => ops.push(FastOp::Ecall),
                RvInst::Ebreak => {
                    ends_break = true;
                    ops.push(FastOp::Ebreak);
                }
            }
            pc = next;
            if terminator {
                break;
            }
        }
        Block { end_pc: pc, ops, meta, kind_counts, ends_break }
    }

    /// Flushes statistics for the first `done` instructions of a
    /// partially executed trace (cold path: traps only).
    fn flush_partial(&mut self, b: &Block, done: u64) {
        for &(_, kind) in &b.meta[..done as usize] {
            self.stats.bump_kind(kind);
        }
        self.stats.count_retired(done);
    }

    /// Finalizes a mid-trace trap: syncs count/PC/stats to the
    /// completed prefix and produces the trap exit the interpreter
    /// would have raised at the same instruction.
    fn block_trap(&mut self, b: &Block, entry: u64, done: u32, kind: TrapKind) -> Option<EmuExit> {
        self.flush_partial(b, u64::from(done));
        self.count = entry + u64::from(done);
        self.pc = b.meta[done as usize].0;
        Some(EmuExit::Trap(Trap::untimed(kind, self.pc, self.count)))
    }

    /// Executes one translated trace; the caller guarantees enough
    /// step budget for the whole trace.
    fn exec_block(&mut self, b: &Block) -> Option<EmuExit> {
        let entry = self.count;
        let mut next_pc = b.end_pc;
        for (idx, op) in (0_u32..).zip(b.ops.iter()) {
            match *op {
                FastOp::Nop => {}
                FastOp::Li { rd, value } => self.regs[usize::from(rd & 63)] = value,
                FastOp::Add { rd, rs1, rs2 } => {
                    self.regs[usize::from(rd & 63)] =
                        self.rr(rs1).wrapping_add(self.rr(rs2));
                }
                FastOp::Sub { rd, rs1, rs2 } => {
                    self.regs[usize::from(rd & 63)] = self.rr(rs1).wrapping_sub(self.rr(rs2));
                }
                FastOp::Sll { rd, rs1, rs2 } => {
                    self.regs[usize::from(rd & 63)] = self.rr(rs1).wrapping_shl(self.rr(rs2) & 31);
                }
                FastOp::Slt { rd, rs1, rs2 } => {
                    self.regs[usize::from(rd & 63)] = u32::from((self.rr(rs1) as i32) < (self.rr(rs2) as i32));
                }
                FastOp::Sltu { rd, rs1, rs2 } => {
                    self.regs[usize::from(rd & 63)] = u32::from(self.rr(rs1) < self.rr(rs2));
                }
                FastOp::Xor { rd, rs1, rs2 } => {
                    self.regs[usize::from(rd & 63)] = self.rr(rs1) ^ self.rr(rs2);
                }
                FastOp::Srl { rd, rs1, rs2 } => {
                    self.regs[usize::from(rd & 63)] = self.rr(rs1).wrapping_shr(self.rr(rs2) & 31);
                }
                FastOp::Sra { rd, rs1, rs2 } => {
                    self.regs[usize::from(rd & 63)] = ((self.rr(rs1) as i32).wrapping_shr(self.rr(rs2) & 31)) as u32;
                }
                FastOp::Or { rd, rs1, rs2 } => {
                    self.regs[usize::from(rd & 63)] = self.rr(rs1) | self.rr(rs2);
                }
                FastOp::And { rd, rs1, rs2 } => {
                    self.regs[usize::from(rd & 63)] = self.rr(rs1) & self.rr(rs2);
                }
                FastOp::Mul { rd, rs1, rs2 } => {
                    self.regs[usize::from(rd & 63)] = self.rr(rs1).wrapping_mul(self.rr(rs2));
                }
                FastOp::Alu { op, rd, rs1, rs2 } => {
                    self.regs[usize::from(rd & 63)] =
                        op.eval(self.rr(rs1), self.rr(rs2));
                }
                FastOp::Addi { rd, rs1, imm } => {
                    self.regs[usize::from(rd & 63)] = self.rr(rs1).wrapping_add(imm);
                }
                FastOp::Slli { rd, rs1, imm } => {
                    self.regs[usize::from(rd & 63)] = self.rr(rs1).wrapping_shl(imm & 31);
                }
                FastOp::Slti { rd, rs1, imm } => {
                    self.regs[usize::from(rd & 63)] = u32::from((self.rr(rs1) as i32) < (imm as i32));
                }
                FastOp::Sltiu { rd, rs1, imm } => {
                    self.regs[usize::from(rd & 63)] = u32::from(self.rr(rs1) < imm);
                }
                FastOp::Xori { rd, rs1, imm } => {
                    self.regs[usize::from(rd & 63)] = self.rr(rs1) ^ imm;
                }
                FastOp::Srli { rd, rs1, imm } => {
                    self.regs[usize::from(rd & 63)] = self.rr(rs1).wrapping_shr(imm & 31);
                }
                FastOp::Srai { rd, rs1, imm } => {
                    self.regs[usize::from(rd & 63)] = ((self.rr(rs1) as i32).wrapping_shr(imm & 31)) as u32;
                }
                FastOp::Ori { rd, rs1, imm } => {
                    self.regs[usize::from(rd & 63)] = self.rr(rs1) | imm;
                }
                FastOp::Andi { rd, rs1, imm } => {
                    self.regs[usize::from(rd & 63)] = self.rr(rs1) & imm;
                }
                FastOp::AluImm { op, rd, rs1, imm } => {
                    self.regs[usize::from(rd & 63)] = op.eval(self.rr(rs1), imm);
                }
                FastOp::LdB { rd, rs1, offset } => {
                    let a = self.rr(rs1).wrapping_add(offset);
                    match memops::load_b(&self.mem, a) {
                        Ok(v) => self.regs[usize::from(rd & 63)] = v,
                        Err(kind) => return self.block_trap(b, entry, idx, kind),
                    }
                }
                FastOp::LdBu { rd, rs1, offset } => {
                    let a = self.rr(rs1).wrapping_add(offset);
                    match memops::load_bu(&self.mem, a) {
                        Ok(v) => self.regs[usize::from(rd & 63)] = v,
                        Err(kind) => return self.block_trap(b, entry, idx, kind),
                    }
                }
                FastOp::LdH { rd, rs1, offset } => {
                    let a = self.rr(rs1).wrapping_add(offset);
                    match memops::load_h(&self.mem, a) {
                        Ok(v) => self.regs[usize::from(rd & 63)] = v,
                        Err(kind) => return self.block_trap(b, entry, idx, kind),
                    }
                }
                FastOp::LdHu { rd, rs1, offset } => {
                    let a = self.rr(rs1).wrapping_add(offset);
                    match memops::load_hu(&self.mem, a) {
                        Ok(v) => self.regs[usize::from(rd & 63)] = v,
                        Err(kind) => return self.block_trap(b, entry, idx, kind),
                    }
                }
                FastOp::LdW { rd, rs1, offset } => {
                    let a = self.rr(rs1).wrapping_add(offset);
                    match memops::load_w(&self.mem, a) {
                        Ok(v) => self.regs[usize::from(rd & 63)] = v,
                        Err(kind) => return self.block_trap(b, entry, idx, kind),
                    }
                }
                FastOp::StB { rs2, rs1, offset, width } => {
                    let a = self.rr(rs1).wrapping_add(offset);
                    let v = self.rr(rs2);
                    match memops::store_b(&mut self.mem, a, v, width) {
                        Ok(()) => self.dirty.mark(a as usize),
                        Err(kind) => return self.block_trap(b, entry, idx, kind),
                    }
                }
                FastOp::StH { rs2, rs1, offset, width } => {
                    let a = self.rr(rs1).wrapping_add(offset);
                    let v = self.rr(rs2);
                    match memops::store_h(&mut self.mem, a, v, width) {
                        Ok(()) => self.dirty.mark(a as usize),
                        Err(kind) => return self.block_trap(b, entry, idx, kind),
                    }
                }
                FastOp::StW { rs2, rs1, offset } => {
                    let a = self.rr(rs1).wrapping_add(offset);
                    let v = self.rr(rs2);
                    match memops::store_w(&mut self.mem, a, v) {
                        Ok(()) => self.dirty.mark(a as usize),
                        Err(kind) => return self.block_trap(b, entry, idx, kind),
                    }
                }
                FastOp::Beq { rs1, rs2, target } => {
                    if self.rr(rs1) == self.rr(rs2) {
                        next_pc = target;
                    }
                }
                FastOp::Bne { rs1, rs2, target } => {
                    if self.rr(rs1) != self.rr(rs2) {
                        next_pc = target;
                    }
                }
                FastOp::Blt { rs1, rs2, target } => {
                    if (self.rr(rs1) as i32) < (self.rr(rs2) as i32) {
                        next_pc = target;
                    }
                }
                FastOp::Bge { rs1, rs2, target } => {
                    if (self.rr(rs1) as i32) >= (self.rr(rs2) as i32) {
                        next_pc = target;
                    }
                }
                FastOp::Bltu { rs1, rs2, target } => {
                    if self.rr(rs1) < self.rr(rs2) {
                        next_pc = target;
                    }
                }
                FastOp::Bgeu { rs1, rs2, target } => {
                    if self.rr(rs1) >= self.rr(rs2) {
                        next_pc = target;
                    }
                }
                FastOp::Jalr { rd, rs1, offset, link } => {
                    // Target before link write: rd may alias rs1.
                    next_pc = self.rr(rs1).wrapping_add(offset) & !1;
                    self.regs[usize::from(rd & 63)] = link;
                }
                FastOp::Ecall => {
                    let code = self.rr(Reg::A7.num()) as u16;
                    let arg = self.rr(Reg::A0.num());
                    match self.sys.apply(code, arg) {
                        Some(r) => self.regs[usize::from(Reg::A0.num() & 63)] = r,
                        None => {
                            return self.block_trap(b, entry, idx, TrapKind::UnknownSys { code })
                        }
                    }
                }
                FastOp::Ebreak => {}
            }
        }
        let done = b.meta.len() as u64;
        self.count = entry + done;
        self.pc = next_pc;
        self.stats.add_kind_counts(&b.kind_counts);
        self.stats.count_retired(done);
        if b.ends_break {
            return Some(EmuExit::Done { code: self.sys.exit_code.unwrap_or(0) });
        }
        if let Some(code) = self.sys.exit_code {
            return Some(EmuExit::Done { code });
        }
        None
    }

    fn run_fast(&mut self, max_steps: u64) -> EmuExit {
        if self.blocks.len() != self.image.code.len() {
            self.blocks = (0..self.image.code.len()).map(|_| None).collect();
        }
        // Move the cache out of `self` so a cached trace can stay
        // borrowed across `exec_block(&mut self, ..)` without a
        // per-dispatch take/put-back of the slot.
        let mut blocks = std::mem::take(&mut self.blocks);
        let exit = self.run_fast_cached(max_steps, &mut blocks);
        self.blocks = blocks;
        exit
    }

    fn run_fast_cached(&mut self, max_steps: u64, blocks: &mut [Option<Box<Block>>]) -> EmuExit {
        loop {
            if self.stats.retired >= max_steps {
                return EmuExit::StepLimit;
            }
            let pc = self.pc;
            let in_code =
                pc >= self.image.code_base && pc < self.image.code_end() && pc.is_multiple_of(4);
            if !in_code {
                match self.step() {
                    Some(exit) => return exit,
                    None => continue,
                }
            }
            let slot = ((pc - self.image.code_base) / 4) as usize;
            if blocks[slot].is_none() {
                blocks[slot] = Some(Box::new(self.translate(pc)));
            }
            let Some(block) = blocks[slot].as_deref() else {
                return EmuExit::StepLimit; // unreachable: slot just filled
            };
            // Single-step when the trace would overshoot the step
            // budget (preserving exact StepLimit semantics) or is
            // empty (first word faults — let the interpreter trap).
            let budget = max_steps - self.stats.retired;
            if block.meta.is_empty() || block.meta.len() as u64 > budget {
                match self.step() {
                    Some(exit) => return exit,
                    None => continue,
                }
            }
            if let Some(exit) = self.exec_block(block) {
                return exit;
            }
        }
    }

    /// Fast tier cross-checked against a cloned interpreter twin in
    /// [`LOCKSTEP_CHUNK`]-instruction windows; any divergence in exit
    /// or full architectural checkpoint is a
    /// [`TrapKind::TierDivergence`] trap.
    fn run_lockstep(&mut self, max_steps: u64) -> EmuExit {
        let mut twin = self.clone();
        loop {
            let target = self.stats.retired.saturating_add(LOCKSTEP_CHUNK).min(max_steps);
            let fast = self.run_fast(target);
            let interp = twin.run_interp(target);
            if fast != interp || self.checkpoint() != twin.checkpoint() {
                return EmuExit::Trap(Trap::untimed(
                    TrapKind::TierDivergence { executed: self.count },
                    self.pc,
                    self.count,
                ));
            }
            match fast {
                EmuExit::StepLimit if target < max_steps => {}
                exit => return exit,
            }
        }
    }
}

impl ExecBackend for RiscvEmu {
    /// Executes one instruction on the interpreter tier. Returns
    /// `Some(exit)` when the program stops.
    fn step(&mut self) -> Option<EmuExit> {
        match self.step_trapping() {
            Ok(exit) => exit,
            Err(kind) => Some(EmuExit::Trap(Trap::untimed(kind, self.pc, self.count))),
        }
    }

    fn run_with(&mut self, max_steps: u64, tier: TierConfig) -> EmuExit {
        match tier.tier {
            Tier::Interp => self.run_interp(max_steps),
            Tier::Fast if tier.lockstep => self.run_lockstep(max_steps),
            Tier::Fast => self.run_fast(max_steps),
        }
    }

    fn stats(&self) -> &EmuStats {
        &self.stats
    }

    fn pc(&self) -> u32 {
        self.pc
    }

    fn executed(&self) -> u64 {
        self.count
    }

    fn stdout(&self) -> &str {
        &self.sys.stdout
    }

    fn checkpoint(&self) -> Checkpoint {
        // Snapshot only the 32 architectural registers; the fast
        // tier's sink slot is never architecturally visible.
        let mut regs = [0u32; 32];
        regs.copy_from_slice(&self.regs[..32]);
        Checkpoint {
            pc: self.pc,
            executed: self.count,
            arch: ArchSnap::Riscv { regs },
            sys: self.sys.clone(),
            stats: self.stats.clone(),
            pages: checkpoint::collect_pages(&self.dirty, &self.mem),
        }
    }

    fn restore(&mut self, cp: &Checkpoint) -> Result<(), CheckpointError> {
        let ArchSnap::Riscv { regs } = &cp.arch else {
            return Err(CheckpointError::IsaMismatch);
        };
        self.pc = cp.pc;
        self.count = cp.executed;
        self.regs[..32].copy_from_slice(regs);
        self.regs[32] = 0;
        self.sys = cp.sys.clone();
        self.stats = cp.stats.clone();
        self.mem.fill(0);
        self.image.load_into(&mut self.mem);
        cp.apply_pages(&mut self.mem);
        self.dirty = cp.dirty_map();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use straight_asm::{link_riscv, RvFunc, RvItem, RvProgram, RvReloc};
    use straight_isa::AluImmOp;

    #[test]
    fn returns_value_through_stub() {
        // main: li a0, 42; ret
        let prog = RvProgram {
            funcs: vec![RvFunc {
                name: "main".into(),
                items: vec![
                    RvItem::plain(RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 42 }),
                    RvItem::plain(RvInst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 }),
                ],
                labels: vec![],
            }],
            data: vec![],
        };
        let image = link_riscv(&prog).unwrap();
        let r = RiscvEmu::new(image).run(1000);
        assert_eq!(r.exit_code(), Some(42));
    }

    fn sum_loop_program() -> RvProgram {
        // Loop: sum 1..=5 into a1, store/load through sp, return it.
        RvProgram {
            funcs: vec![RvFunc {
                name: "main".into(),
                items: vec![
                    RvItem::plain(RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::T0, rs1: Reg::ZERO, imm: 5 }),
                    RvItem::plain(RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::A1, rs1: Reg::ZERO, imm: 0 }),
                    // loop:
                    RvItem::plain(RvInst::Op {
                        op: straight_isa::AluOp::Add,
                        rd: Reg::A1,
                        rs1: Reg::A1,
                        rs2: Reg::T0,
                    }),
                    RvItem::plain(RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::T0, rs1: Reg::T0, imm: -1 }),
                    RvItem {
                        inst: RvInst::Branch {
                            op: straight_riscv::BranchOp::Bne,
                            rs1: Reg::T0,
                            rs2: Reg::ZERO,
                            offset: 0,
                        },
                        reloc: Some(RvReloc::BranchTo("loop".into())),
                    },
                    RvItem::plain(RvInst::Store {
                        width: MemWidth::W,
                        rs2: Reg::A1,
                        rs1: Reg::SP,
                        offset: -4,
                    }),
                    RvItem::plain(RvInst::Load { width: MemWidth::W, rd: Reg::A0, rs1: Reg::SP, offset: -4 }),
                    RvItem::plain(RvInst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 }),
                ],
                labels: vec![("loop".into(), 2)],
            }],
            data: vec![],
        }
    }

    #[test]
    fn memory_and_branches() {
        let image = link_riscv(&sum_loop_program()).unwrap();
        let r = RiscvEmu::new(image).run(10_000);
        assert_eq!(r.exit_code(), Some(15));
        assert!(r.stats.kinds()["jump+branch"] >= 5);
    }

    #[test]
    fn fast_tier_matches_interpreter_exactly() {
        let image = link_riscv(&sum_loop_program()).unwrap();
        let interp = RiscvEmu::new(image.clone()).run(10_000);
        let fast = RiscvEmu::new(image).run_tiered(10_000, TierConfig::fast_lockstep());
        assert_eq!(interp.exit, fast.exit);
        assert_eq!(interp.stdout, fast.stdout);
        assert_eq!(interp.stats, fast.stats);
    }

    #[test]
    fn checkpoint_round_trips_mid_run() {
        let image = link_riscv(&sum_loop_program()).unwrap();
        let mut emu = RiscvEmu::new(image.clone());
        assert_eq!(emu.run_until(6), EmuExit::StepLimit);
        let cp = emu.checkpoint();
        let done = emu.run_until(u64::MAX);

        let mut resumed = RiscvEmu::new(image);
        resumed.restore(&cp).expect("same ISA");
        assert_eq!(resumed.checkpoint().to_bytes(), cp.to_bytes());
        assert_eq!(resumed.run_until(u64::MAX), done);
    }

    #[test]
    fn wild_store_traps_with_context() {
        // sw a0, -8(zero): address wraps to the top of the 32-bit
        // space, far outside simulated memory.
        let prog = RvProgram {
            funcs: vec![RvFunc {
                name: "main".into(),
                items: vec![
                    RvItem::plain(RvInst::Store {
                        width: MemWidth::W,
                        rs2: Reg::A0,
                        rs1: Reg::ZERO,
                        offset: -8,
                    }),
                    RvItem::plain(RvInst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 }),
                ],
                labels: vec![],
            }],
            data: vec![],
        };
        let image = link_riscv(&prog).unwrap();
        let r = RiscvEmu::new(image).run(1000);
        match r.exit {
            EmuExit::Trap(t) => {
                assert_eq!(t.kind, TrapKind::WildStore { addr: (-8i32) as u32, width: MemWidth::W });
                // _start's JAL has executed; the store is instruction 1.
                assert_eq!(t.index, 1);
            }
            other => panic!("expected a wild-store trap, got {other:?}"),
        }
    }
}
