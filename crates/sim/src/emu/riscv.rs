//! Functional emulator for the RV32IM baseline.

use straight_asm::{Image, MEM_SIZE, STACK_TOP};
use straight_isa::{Trap, TrapKind};
use straight_riscv::{decode, MemWidth, Reg, RvInst};

use super::{sys::SysState, EmuExit, EmuResult, EmuStats};

/// RV32IM functional emulator.
#[derive(Debug)]
pub struct RiscvEmu {
    image: Image,
    mem: Vec<u8>,
    regs: [u32; 32],
    count: u64,
    pc: u32,
    sys: SysState,
    stats: EmuStats,
}

impl RiscvEmu {
    /// Prepares an emulator for a linked image.
    #[must_use]
    pub fn new(image: Image) -> RiscvEmu {
        let mut mem = vec![0u8; MEM_SIZE as usize];
        image.load_into(&mut mem);
        let pc = image.entry;
        let mut regs = [0u32; 32];
        regs[Reg::SP.num() as usize] = STACK_TOP;
        RiscvEmu { image, mem, regs, count: 0, pc, sys: SysState::default(), stats: EmuStats::default() }
    }

    /// Current program counter (the next instruction to execute).
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Architectural value of `reg`.
    #[must_use]
    pub fn reg(&self, reg: Reg) -> u32 {
        self.r(reg)
    }

    /// Dynamic instructions executed so far.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.count
    }

    fn r(&self, reg: Reg) -> u32 {
        self.regs[reg.num() as usize]
    }

    fn w(&mut self, reg: Reg, val: u32) {
        if !reg.is_zero() {
            self.regs[reg.num() as usize] = val;
        }
    }

    fn load(&self, width: MemWidth, addr: u32) -> Result<u32, TrapKind> {
        let a = addr as usize;
        if !addr.is_multiple_of(width.bytes()) {
            return Err(TrapKind::MisalignedLoad { addr, width });
        }
        if a + width.bytes() as usize > self.mem.len() {
            return Err(TrapKind::WildLoad { addr, width });
        }
        Ok(match width {
            MemWidth::B => self.mem[a] as i8 as i32 as u32,
            MemWidth::Bu => u32::from(self.mem[a]),
            MemWidth::H => i32::from(i16::from_le_bytes([self.mem[a], self.mem[a + 1]])) as u32,
            MemWidth::Hu => u32::from(u16::from_le_bytes([self.mem[a], self.mem[a + 1]])),
            MemWidth::W => {
                u32::from_le_bytes([self.mem[a], self.mem[a + 1], self.mem[a + 2], self.mem[a + 3]])
            }
        })
    }

    fn store(&mut self, width: MemWidth, addr: u32, val: u32) -> Result<(), TrapKind> {
        let a = addr as usize;
        if !addr.is_multiple_of(width.bytes()) {
            return Err(TrapKind::MisalignedStore { addr, width });
        }
        if a + width.bytes() as usize > self.mem.len() {
            return Err(TrapKind::WildStore { addr, width });
        }
        match width {
            MemWidth::B | MemWidth::Bu => self.mem[a] = val as u8,
            MemWidth::H | MemWidth::Hu => self.mem[a..a + 2].copy_from_slice(&(val as u16).to_le_bytes()),
            MemWidth::W => self.mem[a..a + 4].copy_from_slice(&val.to_le_bytes()),
        }
        Ok(())
    }

    fn kind_name(inst: &RvInst) -> &'static str {
        match inst {
            RvInst::Jal { .. } | RvInst::Jalr { .. } | RvInst::Branch { .. } => "jump+branch",
            RvInst::Load { .. } => "ld",
            RvInst::Store { .. } => "st",
            RvInst::Ecall | RvInst::Ebreak => "other",
            _ => "alu",
        }
    }

    /// Executes one instruction. Returns `Some(exit)` when the program
    /// stops.
    pub fn step(&mut self) -> Option<EmuExit> {
        match self.step_trapping() {
            Ok(exit) => exit,
            Err(kind) => Some(EmuExit::Trap(Trap::untimed(kind, self.pc, self.count))),
        }
    }

    fn step_trapping(&mut self) -> Result<Option<EmuExit>, TrapKind> {
        let Some(word) = self.image.fetch(self.pc) else {
            return Err(TrapKind::FetchFault);
        };
        let Ok(inst) = decode(word) else {
            return Err(TrapKind::IllegalInstruction { word });
        };
        let mut next_pc = self.pc.wrapping_add(4);
        match inst {
            RvInst::Lui { rd, imm } => self.w(rd, imm),
            RvInst::Auipc { rd, imm } => self.w(rd, self.pc.wrapping_add(imm)),
            RvInst::Jal { rd, offset } => {
                self.w(rd, self.pc.wrapping_add(4));
                next_pc = self.pc.wrapping_add(offset as u32);
            }
            RvInst::Jalr { rd, rs1, offset } => {
                let target = self.r(rs1).wrapping_add(offset as u32) & !1;
                self.w(rd, self.pc.wrapping_add(4));
                next_pc = target;
            }
            RvInst::Branch { op, rs1, rs2, offset } => {
                if op.eval(self.r(rs1), self.r(rs2)) {
                    next_pc = self.pc.wrapping_add(offset as u32);
                }
            }
            RvInst::Load { width, rd, rs1, offset } => {
                let a = self.r(rs1).wrapping_add(offset as u32);
                let v = self.load(width, a)?;
                self.w(rd, v);
            }
            RvInst::Store { width, rs2, rs1, offset } => {
                let a = self.r(rs1).wrapping_add(offset as u32);
                let v = self.r(rs2);
                self.store(width, a, v)?;
            }
            RvInst::OpImm { op, rd, rs1, imm } => {
                let v = op.eval(self.r(rs1), imm);
                self.w(rd, v);
            }
            RvInst::Op { op, rd, rs1, rs2 } => {
                let v = op.eval(self.r(rs1), self.r(rs2));
                self.w(rd, v);
            }
            RvInst::Ecall => {
                let code = self.r(Reg::A7) as u16;
                let arg = self.r(Reg::A0);
                match self.sys.apply(code, arg) {
                    Some(r) => self.w(Reg::A0, r),
                    None => return Err(TrapKind::UnknownSys { code }),
                }
            }
            RvInst::Ebreak => {
                self.stats.bump_kind(Self::kind_name(&inst));
                self.count += 1;
                self.pc = next_pc;
                return Ok(Some(EmuExit::Done { code: self.sys.exit_code.unwrap_or(0) }));
            }
        }
        self.stats.bump_kind(Self::kind_name(&inst));
        self.count += 1;
        self.pc = next_pc;
        if let Some(code) = self.sys.exit_code {
            return Ok(Some(EmuExit::Done { code }));
        }
        Ok(None)
    }

    /// Runs until exit, trap, or the step limit.
    pub fn run(mut self, max_steps: u64) -> EmuResult {
        loop {
            if self.stats.retired >= max_steps {
                return self.finish(EmuExit::StepLimit);
            }
            if let Some(exit) = self.step() {
                return self.finish(exit);
            }
        }
    }

    fn finish(self, exit: EmuExit) -> EmuResult {
        EmuResult { exit, stdout: self.sys.stdout, stats: self.stats }
    }

    /// Console output captured so far (used by the in-pipeline oracle,
    /// which steps the emulator incrementally instead of via [`RiscvEmu::run`]).
    #[must_use]
    pub fn stdout(&self) -> &str {
        &self.sys.stdout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use straight_asm::{link_riscv, RvFunc, RvItem, RvProgram, RvReloc};
    use straight_isa::AluImmOp;

    #[test]
    fn returns_value_through_stub() {
        // main: li a0, 42; ret
        let prog = RvProgram {
            funcs: vec![RvFunc {
                name: "main".into(),
                items: vec![
                    RvItem::plain(RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 42 }),
                    RvItem::plain(RvInst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 }),
                ],
                labels: vec![],
            }],
            data: vec![],
        };
        let image = link_riscv(&prog).unwrap();
        let r = RiscvEmu::new(image).run(1000);
        assert_eq!(r.exit_code(), Some(42));
    }

    #[test]
    fn memory_and_branches() {
        // Loop: sum 1..=5 into a1, store/load through sp, return it.
        let prog = RvProgram {
            funcs: vec![RvFunc {
                name: "main".into(),
                items: vec![
                    RvItem::plain(RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::T0, rs1: Reg::ZERO, imm: 5 }),
                    RvItem::plain(RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::A1, rs1: Reg::ZERO, imm: 0 }),
                    // loop:
                    RvItem::plain(RvInst::Op {
                        op: straight_isa::AluOp::Add,
                        rd: Reg::A1,
                        rs1: Reg::A1,
                        rs2: Reg::T0,
                    }),
                    RvItem::plain(RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::T0, rs1: Reg::T0, imm: -1 }),
                    RvItem {
                        inst: RvInst::Branch {
                            op: straight_riscv::BranchOp::Bne,
                            rs1: Reg::T0,
                            rs2: Reg::ZERO,
                            offset: 0,
                        },
                        reloc: Some(RvReloc::BranchTo("loop".into())),
                    },
                    RvItem::plain(RvInst::Store {
                        width: MemWidth::W,
                        rs2: Reg::A1,
                        rs1: Reg::SP,
                        offset: -4,
                    }),
                    RvItem::plain(RvInst::Load { width: MemWidth::W, rd: Reg::A0, rs1: Reg::SP, offset: -4 }),
                    RvItem::plain(RvInst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 }),
                ],
                labels: vec![("loop".into(), 2)],
            }],
            data: vec![],
        };
        let image = link_riscv(&prog).unwrap();
        let r = RiscvEmu::new(image).run(10_000);
        assert_eq!(r.exit_code(), Some(15));
        assert!(r.stats.kinds["jump+branch"] >= 5);
    }

    #[test]
    fn wild_store_traps_with_context() {
        // sw a0, -8(zero): address wraps to the top of the 32-bit
        // space, far outside simulated memory.
        let prog = RvProgram {
            funcs: vec![RvFunc {
                name: "main".into(),
                items: vec![
                    RvItem::plain(RvInst::Store {
                        width: MemWidth::W,
                        rs2: Reg::A0,
                        rs1: Reg::ZERO,
                        offset: -8,
                    }),
                    RvItem::plain(RvInst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 }),
                ],
                labels: vec![],
            }],
            data: vec![],
        };
        let image = link_riscv(&prog).unwrap();
        let r = RiscvEmu::new(image).run(1000);
        match r.exit {
            EmuExit::Trap(t) => {
                assert_eq!(t.kind, TrapKind::WildStore { addr: (-8i32) as u32, width: MemWidth::W });
                // _start's JAL has executed; the store is instruction 1.
                assert_eq!(t.index, 1);
            }
            other => panic!("expected a wild-store trap, got {other:?}"),
        }
    }
}
