//! Functional (architectural) emulators for both ISAs, behind one
//! [`ExecBackend`] API.
//!
//! These execute linked [`straight_asm::Image`]s in order, with no
//! timing model; they serve as the semantic oracle for the
//! cycle-accurate cores and produce the retired-instruction statistics
//! of Figures 15 and 16.
//!
//! Both emulators implement the [`ExecBackend`] trait: stepping,
//! tier-selected batch execution ([`ExecBackend::run_with`]),
//! statistics, and architectural [`Checkpoint`]s (registers, RP state,
//! and dirty memory pages) that a fresh emulator — or a cycle-accurate
//! core, via `Core::resume_from` — can restore and continue from.
//!
//! Execution comes in two tiers (see `docs/EXECUTION_TIERS.md`):
//!
//! * the **interpreter** tier fetches and decodes every instruction —
//!   it is the reference semantics, and the only tier that collects
//!   the Figure 16 distance histogram;
//! * the **fast** tier caches pre-translated basic blocks of lowered
//!   micro-ops (with RMOV chains fused into one macro-op) and batches
//!   statistics per block. It is validated against the interpreter in
//!   lockstep mode ([`TierConfig::fast_lockstep`]), where any state
//!   divergence surfaces as a typed
//!   [`TrapKind::TierDivergence`](straight_isa::TrapKind) trap.
//!
//! Every abnormal stop is a typed [`Trap`] carrying the faulting PC
//! and dynamic instruction index, so differential tests can assert the
//! emulator and the cycle-accurate core observe the *same* event.

pub mod checkpoint;
mod memops;
mod riscv;
mod straight;
pub mod sys;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use riscv::RiscvEmu;
pub use straight::StraightEmu;

use std::collections::BTreeMap;

use straight_isa::{InstKind, Trap};
use straight_riscv::RvInst;

/// Why emulation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmuExit {
    /// The program invoked the exit service or executed `HALT`.
    Done {
        /// Exit code.
        code: i32,
    },
    /// The step budget was exhausted.
    StepLimit,
    /// A typed architectural (or sanitizer) trap.
    Trap(Trap),
}

/// The Figure 15 retired-instruction categories, shared by both ISAs.
/// The discriminants index [`EmuStats`]' flat count array, so the fast
/// tier can batch-account a whole translated block with one array add
/// instead of a map lookup per instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmuKind {
    /// Jumps and branches.
    JumpBranch = 0,
    /// ALU operations (including `LUI`/`AUIPC`-style immediates).
    Alu = 1,
    /// Loads.
    Ld = 2,
    /// Stores.
    St = 3,
    /// STRAIGHT `RMOV` distance moves.
    Rmov = 4,
    /// STRAIGHT distance-padding `NOP`s.
    Nop = 5,
    /// Everything else (`SPADD`, `SYS`/`ecall`, `HALT`).
    Other = 6,
}

impl EmuKind {
    /// Number of categories (the length of the count arrays).
    pub const COUNT: usize = 7;

    /// The figure label of this category.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EmuKind::JumpBranch => "jump+branch",
            EmuKind::Alu => "alu",
            EmuKind::Ld => "ld",
            EmuKind::St => "st",
            EmuKind::Rmov => "rmov",
            EmuKind::Nop => "nop",
            EmuKind::Other => "other",
        }
    }

    /// Category of a STRAIGHT instruction kind.
    #[must_use]
    pub fn of_straight(kind: InstKind) -> EmuKind {
        match kind {
            InstKind::JumpBranch => EmuKind::JumpBranch,
            InstKind::Alu => EmuKind::Alu,
            InstKind::Ld => EmuKind::Ld,
            InstKind::St => EmuKind::St,
            InstKind::Rmov => EmuKind::Rmov,
            InstKind::Nop => EmuKind::Nop,
            InstKind::Other => EmuKind::Other,
        }
    }

    /// Category of an RV32IM instruction.
    #[must_use]
    pub fn of_riscv(inst: &RvInst) -> EmuKind {
        match inst {
            RvInst::Jal { .. } | RvInst::Jalr { .. } | RvInst::Branch { .. } => EmuKind::JumpBranch,
            RvInst::Load { .. } => EmuKind::Ld,
            RvInst::Store { .. } => EmuKind::St,
            RvInst::Ecall | RvInst::Ebreak => EmuKind::Other,
            _ => EmuKind::Alu,
        }
    }
}

/// Retired-instruction statistics.
///
/// Retirement counting and categorization are deliberately separate
/// operations: the interpreter bumps both per instruction, while the
/// fast tier retires a whole translated block with one
/// `count_retired` plus one flat-array add — no
/// per-instruction map lookups. The category map of the old API is
/// still available, built on demand by [`EmuStats::kinds`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EmuStats {
    /// Total retired instructions.
    pub retired: u64,
    /// Per-category counts, indexed by [`EmuKind`] discriminant.
    kind_counts: [u64; EmuKind::COUNT],
    /// Histogram of source-operand distances (STRAIGHT only; index =
    /// distance, Figure 16).
    pub dist_hist: Vec<u64>,
}

impl EmuStats {
    /// Categorizes one retired instruction. Does *not* advance
    /// `retired` — pair with [`EmuStats::count_retired`].
    #[inline]
    pub(crate) fn bump_kind(&mut self, kind: EmuKind) {
        self.kind_counts[kind as usize] += 1;
    }

    /// Advances the retired count by `n` (batch retirement).
    #[inline]
    pub(crate) fn count_retired(&mut self, n: u64) {
        self.retired += n;
    }

    /// Adds a whole block's precomputed category counts at once.
    #[inline]
    pub(crate) fn add_kind_counts(&mut self, counts: &[u64; EmuKind::COUNT]) {
        for (total, add) in self.kind_counts.iter_mut().zip(counts) {
            *total += add;
        }
    }

    /// Per-category counts as a labeled map (Figure 15 shape); only
    /// categories that retired at least one instruction appear.
    #[must_use]
    pub fn kinds(&self) -> BTreeMap<&'static str, u64> {
        const ALL: [EmuKind; EmuKind::COUNT] = [
            EmuKind::JumpBranch,
            EmuKind::Alu,
            EmuKind::Ld,
            EmuKind::St,
            EmuKind::Rmov,
            EmuKind::Nop,
            EmuKind::Other,
        ];
        ALL.into_iter()
            .filter(|k| self.kind_counts[*k as usize] > 0)
            .map(|k| (k.name(), self.kind_counts[k as usize]))
            .collect()
    }

    /// Retired count of one category.
    #[must_use]
    pub fn kind_count(&self, kind: EmuKind) -> u64 {
        self.kind_counts[kind as usize]
    }

    /// Cumulative fraction of operands at distance ≤ `d`.
    #[must_use]
    pub fn cumulative_fraction(&self, d: usize) -> f64 {
        let total: u64 = self.dist_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let within: u64 = self.dist_hist.iter().take(d + 1).sum();
        within as f64 / total as f64
    }

    /// The largest operand distance observed.
    #[must_use]
    pub fn max_distance_used(&self) -> usize {
        self.dist_hist.iter().rposition(|&c| c > 0).unwrap_or(0)
    }
}

/// Which execution engine [`ExecBackend::run_with`] drives.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Tier {
    /// The fetch-and-decode reference interpreter.
    #[default]
    Interp,
    /// Pre-translated basic blocks with RMOV-chain fusion and batched
    /// statistics. Falls back to the interpreter while distance
    /// profiling is enabled (the histogram needs per-operand hooks).
    Fast,
}

/// Per-call tier selection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierConfig {
    /// Engine to run.
    pub tier: Tier,
    /// Cross-validate: run a cloned interpreter twin alongside and
    /// compare full architectural checkpoints every few thousand
    /// instructions; any mismatch exits with a
    /// [`TrapKind::TierDivergence`](straight_isa::TrapKind) trap.
    pub lockstep: bool,
}

impl TierConfig {
    /// The interpreter tier (the default).
    #[must_use]
    pub fn interp() -> TierConfig {
        TierConfig::default()
    }

    /// The fast tier, unchecked.
    #[must_use]
    pub fn fast() -> TierConfig {
        TierConfig { tier: Tier::Fast, lockstep: false }
    }

    /// The fast tier with lockstep validation against the interpreter.
    #[must_use]
    pub fn fast_lockstep() -> TierConfig {
        TierConfig { tier: Tier::Fast, lockstep: true }
    }
}

/// Result of running an emulator to completion.
#[derive(Debug, Clone)]
pub struct EmuResult {
    /// Why execution stopped.
    pub exit: EmuExit,
    /// Captured console output.
    pub stdout: String,
    /// Statistics.
    pub stats: EmuStats,
}

impl EmuResult {
    /// The exit code, if the program completed.
    #[must_use]
    pub fn exit_code(&self) -> Option<i32> {
        match self.exit {
            EmuExit::Done { code } => Some(code),
            _ => None,
        }
    }

    /// The trap, if execution ended in one.
    #[must_use]
    pub fn trap(&self) -> Option<Trap> {
        match self.exit {
            EmuExit::Trap(t) => Some(t),
            _ => None,
        }
    }
}

/// The common emulator API: stepping, tier-selected batch execution,
/// statistics, and architectural checkpoint/restore. Implemented by
/// [`StraightEmu`] and [`RiscvEmu`]; everything that drives an
/// emulator (the lab's mix/distance cells, the benches, the pipeline's
/// shadow oracle, the differential tests) goes through this trait.
pub trait ExecBackend {
    /// Executes one instruction on the interpreter tier. Returns
    /// `Some(exit)` when the program stops.
    fn step(&mut self) -> Option<EmuExit>;

    /// Runs in place until exit, trap, or `max_steps` retired
    /// instructions, on the selected tier.
    fn run_with(&mut self, max_steps: u64, tier: TierConfig) -> EmuExit;

    /// Statistics accumulated so far.
    fn stats(&self) -> &EmuStats;

    /// Current program counter (the next instruction to execute).
    fn pc(&self) -> u32;

    /// Dynamic instructions executed so far.
    fn executed(&self) -> u64;

    /// Console output captured so far.
    fn stdout(&self) -> &str;

    /// Snapshots the complete architectural state: PC, executed count,
    /// ISA register state, console/exit state, statistics, and every
    /// memory page that differs from the pristine image.
    fn checkpoint(&self) -> Checkpoint;

    /// Restores a snapshot taken by [`ExecBackend::checkpoint`] (on
    /// this emulator or any emulator of the same image and ISA),
    /// rewinding memory to the image and overlaying the dirty pages.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::IsaMismatch`] when the checkpoint was taken
    /// on the other ISA's emulator.
    fn restore(&mut self, cp: &Checkpoint) -> Result<(), CheckpointError>;

    /// Runs in place on the interpreter tier until exit, trap, or
    /// `max_steps` retired instructions.
    fn run_until(&mut self, max_steps: u64) -> EmuExit {
        self.run_with(max_steps, TierConfig::interp())
    }

    /// Consuming interpreter-tier run (the historical call shape:
    /// `Emu::new(image).run(max)`).
    #[must_use]
    fn run(self, max_steps: u64) -> EmuResult
    where
        Self: Sized,
    {
        self.run_tiered(max_steps, TierConfig::interp())
    }

    /// Consuming run on the selected tier.
    #[must_use]
    fn run_tiered(mut self, max_steps: u64, tier: TierConfig) -> EmuResult
    where
        Self: Sized,
    {
        let exit = self.run_with(max_steps, tier);
        EmuResult { exit, stdout: self.stdout().to_string(), stats: self.stats().clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_contains_only_touched_categories() {
        let mut stats = EmuStats::default();
        stats.bump_kind(EmuKind::Alu);
        stats.bump_kind(EmuKind::Alu);
        stats.bump_kind(EmuKind::JumpBranch);
        stats.count_retired(3);
        let kinds = stats.kinds();
        assert_eq!(kinds.get("alu"), Some(&2));
        assert_eq!(kinds.get("jump+branch"), Some(&1));
        assert!(!kinds.contains_key("nop"), "untouched kinds are absent, as in the old map");
        assert_eq!(stats.retired, 3);
    }

    #[test]
    fn batch_accounting_matches_per_instruction() {
        let mut a = EmuStats::default();
        for _ in 0..5 {
            a.bump_kind(EmuKind::Ld);
            a.count_retired(1);
        }
        a.bump_kind(EmuKind::St);
        a.count_retired(1);

        let mut b = EmuStats::default();
        let mut block = [0u64; EmuKind::COUNT];
        block[EmuKind::Ld as usize] = 5;
        block[EmuKind::St as usize] = 1;
        b.add_kind_counts(&block);
        b.count_retired(6);

        assert_eq!(a, b);
    }
}
