//! Functional (architectural) emulators for both ISAs.
//!
//! These execute linked [`straight_asm::Image`]s in order, with no
//! timing model; they serve as the semantic oracle for the
//! cycle-accurate cores and produce the retired-instruction statistics
//! of Figures 15 and 16.
//!
//! Every abnormal stop is a typed [`Trap`] carrying the faulting PC
//! and dynamic instruction index, so differential tests can assert the
//! emulator and the cycle-accurate core observe the *same* event.

mod riscv;
mod straight;
pub mod sys;

pub use riscv::RiscvEmu;
pub use straight::StraightEmu;

use std::collections::BTreeMap;

use straight_isa::Trap;

/// Why emulation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmuExit {
    /// The program invoked the exit service or executed `HALT`.
    Done {
        /// Exit code.
        code: i32,
    },
    /// The step budget was exhausted.
    StepLimit,
    /// A typed architectural (or sanitizer) trap.
    Trap(Trap),
}

/// Retired-instruction statistics.
#[derive(Debug, Clone, Default)]
pub struct EmuStats {
    /// Total retired instructions.
    pub retired: u64,
    /// Per-category counts (Figure 15 categories).
    pub kinds: BTreeMap<&'static str, u64>,
    /// Histogram of source-operand distances (STRAIGHT only; index =
    /// distance, Figure 16).
    pub dist_hist: Vec<u64>,
}

impl EmuStats {
    pub(crate) fn bump_kind(&mut self, kind: &'static str) {
        *self.kinds.entry(kind).or_insert(0) += 1;
        self.retired += 1;
    }

    /// Cumulative fraction of operands at distance ≤ `d`.
    #[must_use]
    pub fn cumulative_fraction(&self, d: usize) -> f64 {
        let total: u64 = self.dist_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let within: u64 = self.dist_hist.iter().take(d + 1).sum();
        within as f64 / total as f64
    }

    /// The largest operand distance observed.
    #[must_use]
    pub fn max_distance_used(&self) -> usize {
        self.dist_hist.iter().rposition(|&c| c > 0).unwrap_or(0)
    }
}

/// Result of running an emulator to completion.
#[derive(Debug, Clone)]
pub struct EmuResult {
    /// Why execution stopped.
    pub exit: EmuExit,
    /// Captured console output.
    pub stdout: String,
    /// Statistics.
    pub stats: EmuStats,
}

impl EmuResult {
    /// The exit code, if the program completed.
    #[must_use]
    pub fn exit_code(&self) -> Option<i32> {
        match self.exit {
            EmuExit::Done { code } => Some(code),
            _ => None,
        }
    }

    /// The trap, if execution ended in one.
    #[must_use]
    pub fn trap(&self) -> Option<Trap> {
        match self.exit {
            EmuExit::Trap(t) => Some(t),
            _ => None,
        }
    }
}
