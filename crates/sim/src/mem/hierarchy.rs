//! The multi-level hierarchy: L1I + L1D backed by a shared L2, an
//! optional L3, fixed-latency main memory, and a stream prefetcher on
//! the data side (Section V-A lists the stream prefetcher among the
//! modeled ILP features).

use super::cache::{Cache, CacheCfg};

/// Hierarchy configuration (Table I rows).
#[derive(Debug, Clone, Copy)]
pub struct HierarchyCfg {
    /// Instruction L1.
    pub l1i: CacheCfg,
    /// Data L1.
    pub l1d: CacheCfg,
    /// Unified L2.
    pub l2: CacheCfg,
    /// Optional unified L3 (the paper's 4-way models only).
    pub l3: Option<CacheCfg>,
    /// Main-memory latency in cycles.
    pub mem_latency: u32,
    /// Stream-prefetcher depth (lines fetched ahead on a detected
    /// stream); 0 disables.
    pub prefetch_depth: u32,
}

impl HierarchyCfg {
    /// The paper's 2-way model: no L3.
    #[must_use]
    pub fn two_way() -> HierarchyCfg {
        HierarchyCfg {
            l1i: CacheCfg::l1(),
            l1d: CacheCfg::l1(),
            l2: CacheCfg::l2(),
            l3: None,
            mem_latency: 200,
            prefetch_depth: 2,
        }
    }

    /// The paper's 4-way model: with the 2 MiB L3.
    #[must_use]
    pub fn four_way() -> HierarchyCfg {
        HierarchyCfg { l3: Some(CacheCfg::l3()), ..HierarchyCfg::two_way() }
    }
}

/// Aggregate memory-system statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1I accesses / misses.
    pub l1i: (u64, u64),
    /// L1D accesses / misses.
    pub l1d: (u64, u64),
    /// L2 accesses / misses.
    pub l2: (u64, u64),
    /// L3 accesses / misses.
    pub l3: (u64, u64),
    /// Prefetches issued.
    pub prefetches: u64,
}

// Each cache level serializes as a two-element `[accesses, misses]`
// array.
crate::json_record!(MemStats { l1i, l1d, l2, l3, prefetches });

/// Simple next-line stream detector: tracks a few recent miss
/// streams; two consecutive line misses arm a stream that prefetches
/// ahead.
#[derive(Debug, Clone)]
struct StreamPrefetcher {
    depth: u32,
    /// (last line, armed) per tracked stream.
    streams: Vec<(u32, bool)>,
}

impl StreamPrefetcher {
    fn new(depth: u32) -> StreamPrefetcher {
        StreamPrefetcher { depth, streams: vec![(u32::MAX, false); 8] }
    }

    /// On an L1D miss of `line`: true when an armed stream matched, in
    /// which case the caller prefetches the next `depth` lines. (The
    /// prefetch set is always the contiguous range `line+1 ..= line+depth`,
    /// so no allocation is needed to communicate it.)
    fn on_miss(&mut self, line: u32) -> bool {
        if self.depth == 0 {
            return false;
        }
        // An existing stream expecting this line?
        for s in &mut self.streams {
            if s.0 != u32::MAX && s.0.wrapping_add(1) == line {
                s.0 = line;
                s.1 = true;
                return true;
            }
        }
        // Start tracking a new stream (round-robin victim).
        self.streams.rotate_right(1);
        self.streams[0] = (line, false);
        false
    }
}

/// The full timing hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Option<Cache>,
    mem_latency: u32,
    prefetcher: StreamPrefetcher,
    prefetches: u64,
}

impl Hierarchy {
    /// Builds an empty hierarchy.
    #[must_use]
    pub fn new(cfg: HierarchyCfg) -> Hierarchy {
        Hierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: cfg.l3.map(Cache::new),
            mem_latency: cfg.mem_latency,
            prefetcher: StreamPrefetcher::new(cfg.prefetch_depth),
            prefetches: 0,
        }
    }

    /// Latency below L1 (L2 → L3 → memory).
    fn below_l1(&mut self, addr: u32) -> u32 {
        if self.l2.access(addr) {
            return self.l2.cfg().hit_latency;
        }
        let l2_lat = self.l2.cfg().hit_latency;
        if let Some(l3) = &mut self.l3 {
            if l3.access(addr) {
                return l2_lat + l3.cfg().hit_latency;
            }
            return l2_lat + l3.cfg().hit_latency + self.mem_latency;
        }
        l2_lat + self.mem_latency
    }

    /// Instruction fetch of the line containing `addr`; returns the
    /// total latency. The L1I hit latency itself is folded into the
    /// front-end pipeline depth, so a hit reports 0 extra cycles.
    pub fn fetch_access(&mut self, addr: u32) -> u32 {
        if self.l1i.access(addr) {
            0
        } else {
            self.below_l1(addr)
        }
    }

    /// Data access; returns total latency including the L1D hit
    /// latency. Misses train the stream prefetcher.
    pub fn data_access(&mut self, addr: u32) -> u32 {
        let l1_lat = self.l1d.cfg().hit_latency;
        if self.l1d.access(addr) {
            return l1_lat;
        }
        let extra = self.below_l1(addr);
        let line = self.l1d.line_number(addr);
        if self.prefetcher.on_miss(line) {
            for k in 1..=self.prefetcher.depth {
                let pf_addr = (line + k).wrapping_mul(self.l1d.line());
                if !self.l1d.probe(pf_addr) {
                    self.l1d.access(pf_addr);
                    self.l2.access(pf_addr);
                    self.prefetches += 1;
                }
            }
        }
        l1_lat + extra
    }

    /// The L1D hit latency (what a hit costs; used by the scheduler's
    /// load latency assumption).
    #[must_use]
    pub fn l1d_hit_latency(&self) -> u32 {
        self.l1d.cfg().hit_latency
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1i: (self.l1i.accesses, self.l1i.misses),
            l1d: (self.l1d.accesses, self.l1d.misses),
            l2: (self.l2.accesses, self.l2.misses),
            l3: self.l3.as_ref().map(|c| (c.accesses, c.misses)).unwrap_or((0, 0)),
            prefetches: self.prefetches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_costs_full_path_then_hits() {
        let mut h = Hierarchy::new(HierarchyCfg::two_way());
        let first = h.data_access(0x2000);
        assert_eq!(first, 4 + 12 + 200);
        let second = h.data_access(0x2000);
        assert_eq!(second, 4);
    }

    #[test]
    fn l3_shortens_the_path() {
        let mut h2 = Hierarchy::new(HierarchyCfg::two_way());
        let mut h4 = Hierarchy::new(HierarchyCfg::four_way());
        // Fill L3/L2, evict from L2 by touching many distinct lines
        // mapping to the same L2 sets.
        let a = 0x10000;
        h2.data_access(a);
        h4.data_access(a);
        // Evict `a` from L1D+L2 via eight 64 KiB-strided conflicting
        // lines (all land in `a`'s L2 set but in distinct L3 sets, so
        // `a` survives in the L3).
        for k in 1..=8u32 {
            h2.data_access(a + k * 64 * 1024);
            h4.data_access(a + k * 64 * 1024);
        }
        let lat2 = h2.data_access(a);
        let lat4 = h4.data_access(a);
        assert!(lat4 < lat2, "L3 should help: {lat4} vs {lat2}");
    }

    #[test]
    fn stream_prefetcher_hides_sequential_misses() {
        let mut with = Hierarchy::new(HierarchyCfg::two_way());
        let mut without = Hierarchy::new(HierarchyCfg { prefetch_depth: 0, ..HierarchyCfg::two_way() });
        let mut lat_with = 0u64;
        let mut lat_without = 0u64;
        for i in 0..256u32 {
            lat_with += u64::from(with.data_access(0x4_0000 + i * 64));
            lat_without += u64::from(without.data_access(0x4_0000 + i * 64));
        }
        assert!(lat_with < lat_without, "prefetching should reduce latency: {lat_with} vs {lat_without}");
        assert!(with.stats().prefetches > 0);
    }

    #[test]
    fn fetch_hits_are_free_extra() {
        let mut h = Hierarchy::new(HierarchyCfg::two_way());
        assert!(h.fetch_access(0x1000) > 0);
        assert_eq!(h.fetch_access(0x1000), 0);
        assert_eq!(h.stats().l1i.0, 2);
    }
}
