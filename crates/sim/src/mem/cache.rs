//! A timing-only set-associative cache (tags + LRU, no data: the
//! simulator keeps functional data in flat memory).

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCfg {
    /// Total size in bytes.
    pub size: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheCfg {
    /// 32 KiB, 4-way, 64 B lines, 4-cycle hit — the paper's L1 config.
    #[must_use]
    pub fn l1() -> CacheCfg {
        CacheCfg { size: 32 * 1024, ways: 4, line: 64, hit_latency: 4 }
    }

    /// 256 KiB, 4-way, 64 B lines, 12-cycle hit — the paper's L2.
    #[must_use]
    pub fn l2() -> CacheCfg {
        CacheCfg { size: 256 * 1024, ways: 4, line: 64, hit_latency: 12 }
    }

    /// 2 MiB, 4-way, 64 B lines, 42-cycle hit — the paper's L3
    /// (4-way models only).
    #[must_use]
    pub fn l3() -> CacheCfg {
        CacheCfg { size: 2 * 1024 * 1024, ways: 4, line: 64, hit_latency: 42 }
    }
}

/// One cache level: tag array with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheCfg,
    /// `log2(line)` — addresses shift right by this for the line
    /// number (hot path: avoids a hardware divide per access).
    line_shift: u32,
    /// `sets - 1` — line numbers mask to the set index.
    set_mask: u32,
    /// `tags[set * ways + way]` = line tag; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Last-use stamp per way (larger = more recent; 0 = never used).
    /// Stamp LRU keeps `touch` to a single store instead of aging the
    /// whole set on every access; `tick` is monotonic so stamps of
    /// valid ways are unique and the min-stamp way is exactly the
    /// least recently used one.
    stamp: Vec<u64>,
    /// Next stamp value; starts at 1 so 0 marks never-touched ways.
    tick: u64,
    /// Accesses and misses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
}

impl Cache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible by
    /// `ways * line`, or line size / set count not a power of two).
    #[must_use]
    pub fn new(cfg: CacheCfg) -> Cache {
        let sets = cfg.size / (cfg.ways * cfg.line);
        assert!(sets > 0 && sets.is_power_of_two(), "bad cache geometry {cfg:?}");
        assert!(cfg.line.is_power_of_two(), "bad cache line size {cfg:?}");
        Cache {
            cfg,
            line_shift: cfg.line.trailing_zeros(),
            set_mask: sets - 1,
            tags: vec![u64::MAX; (sets * cfg.ways) as usize],
            stamp: vec![0; (sets * cfg.ways) as usize],
            tick: 1,
            accesses: 0,
            misses: 0,
        }
    }

    /// The level's configuration.
    #[must_use]
    pub fn cfg(&self) -> CacheCfg {
        self.cfg
    }

    fn set_and_tag(&self, addr: u32) -> (u32, u64) {
        let line_addr = addr >> self.line_shift;
        (line_addr & self.set_mask, u64::from(line_addr))
    }

    /// Looks up `addr`, updating LRU; returns true on hit. Misses
    /// allocate (the fill is assumed to complete with the access).
    pub fn access(&mut self, addr: u32) -> bool {
        self.accesses += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = (set * self.cfg.ways) as usize;
        let ways = self.cfg.ways as usize;
        let slot = self.tags[base..base + ways].iter().position(|&t| t == tag);
        match slot {
            Some(w) => {
                self.touch(base + w);
                true
            }
            None => {
                self.misses += 1;
                // Minimum stamp = least recently used. Stamps of valid
                // ways are unique (monotonic tick), so ties only occur
                // among never-touched ways (stamp 0), where the choice
                // cannot change the resident tag set.
                let victim = (0..ways).min_by_key(|&w| self.stamp[base + w]).unwrap_or(0);
                self.tags[base + victim] = tag;
                self.touch(base + victim);
                false
            }
        }
    }

    /// Probes without updating state.
    #[must_use]
    pub fn probe(&self, addr: u32) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = (set * self.cfg.ways) as usize;
        self.tags[base..base + self.cfg.ways as usize].contains(&tag)
    }

    fn touch(&mut self, way_index: usize) {
        self.stamp[way_index] = self.tick;
        self.tick += 1;
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line(&self) -> u32 {
        self.cfg.line
    }

    /// The line number containing `addr` (divide-free).
    #[must_use]
    pub fn line_number(&self, addr: u32) -> u32 {
        addr >> self.line_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 16 B lines.
        Cache::new(CacheCfg { size: 64, ways: 2, line: 16, hit_latency: 1 })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x10c)); // same line
        assert_eq!(c.misses, 1);
        assert_eq!(c.accesses, 3);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 lines: 0x000, 0x020, 0x040 (3 lines into 2 ways).
        assert!(!c.access(0x000));
        assert!(!c.access(0x020));
        assert!(c.access(0x000)); // refresh 0x000
        assert!(!c.access(0x040)); // evicts 0x020
        assert!(c.access(0x000));
        assert!(!c.access(0x020)); // was evicted
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut c = tiny();
        c.access(0x000);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x040));
        assert_eq!(c.accesses, 1);
    }

    #[test]
    fn invalid_ways_fill_before_any_eviction() {
        // Never-touched ways carry stamp 0, below any real stamp, so
        // misses must consume every invalid way before evicting a
        // resident line.
        let mut c = tiny();
        assert!(!c.access(0x000));
        assert!(!c.access(0x020)); // must fill way 2, not evict 0x000
        assert!(c.access(0x000));
        assert!(c.access(0x020));
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        assert!(!c.access(0x000)); // set 0
        assert!(!c.access(0x010)); // set 1
        assert!(c.access(0x000));
        assert!(c.access(0x010));
    }
}
