//! Timing model of the memory system: set-associative caches with LRU
//! replacement, a stream prefetcher for the data side, and a
//! fixed-latency main memory, per Table I of the paper.

mod cache;
mod hierarchy;

pub use cache::{Cache, CacheCfg};
pub use hierarchy::{Hierarchy, HierarchyCfg, MemStats};
