//! # straight-sim
//!
//! Execution infrastructure for the STRAIGHT reproduction:
//!
//! * [`emu`] — fast functional (architectural) emulators for both
//!   ISAs, used for correctness validation, retired-instruction-mix
//!   analysis (Figure 15), and operand-distance profiling (Figure 16);
//! * [`mem`] — the simulated memory hierarchy (L1I/L1D/L2/L3 caches,
//!   stream prefetcher, main memory);
//! * [`predict`] — branch predictors (gshare and 8-component TAGE),
//!   BTB, return-address stack, and a store-set memory-dependence
//!   predictor;
//! * [`pipeline`] — the cycle-accurate out-of-order cores: the
//!   renaming superscalar baseline (`SS`) with RAM-based RMT and
//!   ROB-walking recovery, and the STRAIGHT core with RP-based
//!   operand determination and single-read recovery (Sections III and
//!   V-A of the paper);
//! * [`inject`] — deterministic microarchitectural fault injection
//!   for exercising the hazard sanitizer and the forward-progress
//!   watchdog.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod emu;
pub mod inject;
pub mod mem;
pub mod pipeline;
pub mod predict;

/// Implements [`straight_json::ToJson`] and [`straight_json::FromJson`]
/// for a flat struct by listing its fields: the JSON object carries one
/// key per field, in declaration order.
macro_rules! json_record {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl straight_json::ToJson for $ty {
            fn to_json(&self) -> straight_json::Json {
                straight_json::Json::obj([
                    $((stringify!($field), straight_json::ToJson::to_json(&self.$field)),)*
                ])
            }
        }
        impl straight_json::FromJson for $ty {
            fn from_json(
                value: &straight_json::Json,
            ) -> Result<Self, straight_json::JsonError> {
                Ok(Self {
                    $($field: straight_json::read_field(value, stringify!($field))?,)*
                })
            }
        }
    };
}
pub(crate) use json_record;
