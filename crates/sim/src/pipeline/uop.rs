//! The micro-op layer: both ISAs decode/rename into a common `UOp`
//! form so the entire back-end (scheduler, LSQ, ROB, functional
//! units, commit) is shared between SS and STRAIGHT — mirroring the
//! paper's methodology ("both simulators can share common codes for
//! the most part", Section V-A).

use std::collections::VecDeque;

use straight_isa::{AluImmOp, AluOp, Dist, Inst, InstKind, MemWidth, TrapKind};
use straight_riscv::{BranchOp, Reg, RvInst};

use super::stats::kind_idx;

/// A raw fetched instruction of either ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawInst {
    /// STRAIGHT instruction.
    S(Inst),
    /// RV32IM instruction.
    R(RvInst),
    /// Fetch produced no decodable instruction (the PC left the code
    /// segment or the word is illegal). The fault flows through the
    /// pipeline like a normal instruction and is raised precisely at
    /// the ROB head — on the wrong path it is squashed like anything
    /// else.
    Fault(TrapKind),
}

/// What fetch needs to know about an instruction's control behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlInfo {
    /// Falls through.
    None,
    /// Conditional branch with a direct target.
    CondBranch {
        /// Taken target.
        target: u32,
    },
    /// Direct jump (always taken).
    DirectJump {
        /// Target.
        target: u32,
        /// Pushes a return address (calls).
        is_call: bool,
    },
    /// Indirect jump through a register.
    IndirectJump {
        /// Pushes a return address (indirect calls).
        is_call: bool,
        /// Predicted via the return-address stack.
        is_return: bool,
    },
}

impl RawInst {
    /// Control classification with resolved direct targets.
    #[must_use]
    pub fn control_info(&self, pc: u32) -> ControlInfo {
        match *self {
            RawInst::S(i) => match i {
                Inst::Bez { offset, .. } | Inst::Bnz { offset, .. } => {
                    ControlInfo::CondBranch { target: pc.wrapping_add((offset as i32 as u32).wrapping_mul(4)) }
                }
                Inst::J { offset } => ControlInfo::DirectJump {
                    target: pc.wrapping_add((offset as u32).wrapping_mul(4)),
                    is_call: false,
                },
                Inst::Jal { offset } => ControlInfo::DirectJump {
                    target: pc.wrapping_add((offset as u32).wrapping_mul(4)),
                    is_call: true,
                },
                Inst::Jr { .. } => ControlInfo::IndirectJump { is_call: false, is_return: true },
                Inst::Jalr { .. } => ControlInfo::IndirectJump { is_call: true, is_return: false },
                _ => ControlInfo::None,
            },
            RawInst::R(i) => match i {
                RvInst::Branch { offset, .. } => {
                    ControlInfo::CondBranch { target: pc.wrapping_add(offset as u32) }
                }
                RvInst::Jal { rd, offset } => ControlInfo::DirectJump {
                    target: pc.wrapping_add(offset as u32),
                    is_call: rd == Reg::RA,
                },
                RvInst::Jalr { rd, rs1, .. } => ControlInfo::IndirectJump {
                    is_call: rd == Reg::RA,
                    is_return: rd == Reg::ZERO && rs1 == Reg::RA,
                },
                _ => ControlInfo::None,
            },
            RawInst::Fault(_) => ControlInfo::None,
        }
    }
}

/// Condition kinds for branch resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondKind {
    /// Taken when source 0 is zero (STRAIGHT `BEZ`).
    Eqz,
    /// Taken when source 0 is nonzero (STRAIGHT `BNZ`).
    Nez,
    /// RV32 two-source comparison.
    Rv(BranchOp),
}

impl CondKind {
    /// Evaluates the condition.
    #[must_use]
    pub fn eval(self, s0: u32, s1: u32) -> bool {
        match self {
            CondKind::Eqz => s0 == 0,
            CondKind::Nez => s0 != 0,
            CondKind::Rv(op) => op.eval(s0, s1),
        }
    }
}

/// The functional payload of a micro-op (evaluated at completion over
/// physical-register values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuncOp {
    /// Two-source ALU operation.
    Alu(AluOp),
    /// RV32 register–immediate (sign-extended 12-bit semantics).
    AluImmRv(AluImmOp, i32),
    /// STRAIGHT register–immediate (zero-extended logical group).
    AluImmS(AluImmOp, i16),
    /// A value fully known at decode (`LUI`, `AUIPC`, `SPADD`).
    Const(u32),
    /// Copy of source 0 (`RMOV`).
    Copy,
    /// Load from `src0 + offset`.
    Load {
        /// Width.
        width: MemWidth,
        /// Byte offset.
        offset: i32,
    },
    /// Store of `src1` to `src0 + offset`.
    Store {
        /// Width.
        width: MemWidth,
        /// Byte offset.
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        /// Condition.
        cond: CondKind,
        /// Taken target.
        target: u32,
    },
    /// Direct jump.
    Jump {
        /// Target.
        target: u32,
        /// Result is the return address (else 0).
        link: bool,
    },
    /// Indirect jump to `src0 + offset`.
    JumpInd {
        /// Byte offset (RV32 `jalr`).
        offset: i32,
        /// Result is the return address (else the target, as STRAIGHT
        /// `JR` writes its target).
        link: bool,
    },
    /// Environment service; `code` is immediate for STRAIGHT, read
    /// from source 1 for RV32 `ecall`.
    Sys {
        /// Immediate code, if the ISA encodes it.
        code: Option<u16>,
    },
    /// Stop the machine.
    Halt,
    /// No operation.
    Nop,
    /// A typed trap raised precisely at the ROB head (fetch/decode
    /// faults, out-of-range operand distances).
    Trap(TrapKind),
}

/// Functional-unit classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecUnit {
    /// Simple ALU (1 cycle).
    Alu,
    /// Pipelined multiplier (3 cycles).
    Mul,
    /// Unpipelined divider (12 cycles).
    Div,
    /// Branch unit.
    Branch,
    /// Memory port.
    Mem,
}

/// A renamed micro-op.
///
/// All fields are plain values (`Copy`): the data-oriented ROB stores
/// uops in a flat column and the pipeline stages copy one out when
/// they need it, instead of cloning through a heap indirection.
#[derive(Debug, Clone, Copy)]
pub struct UOp {
    /// Instruction PC.
    pub pc: u32,
    /// Functional payload.
    pub func: FuncOp,
    /// Unit class.
    pub unit: ExecUnit,
    /// Fixed execution latency (memory adds cache time at issue).
    pub latency: u32,
    /// Physical source registers (`None` = constant zero / unused).
    pub srcs: [Option<u16>; 2],
    /// Physical destination.
    pub dst: Option<u16>,
    /// Figure 15 category, encoded as an index into
    /// [`KIND_NAMES`](crate::pipeline::KIND_NAMES). A compact `u8`
    /// instead of a `&'static str` keeps the micro-op small — uops are
    /// copied by value between the ROB columns and the pipeline stages.
    pub kind: u8,
    /// SS: architectural destination register.
    pub logical_dst: Option<u8>,
    /// SS: previous mapping of `logical_dst` (for walk recovery and
    /// freeing at commit).
    pub prev_phys: Option<u16>,
    /// STRAIGHT: RP value after this instruction (recovery restores
    /// it from the ROB entry, Section III-B).
    pub rp_after: u32,
    /// STRAIGHT: SP value after decode (recovery restores it).
    pub sp_after: u32,
}

impl UOp {
    /// True for conditional branches.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self.func, FuncOp::Branch { .. })
    }

    /// True for any control transfer.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(self.func, FuncOp::Branch { .. } | FuncOp::Jump { .. } | FuncOp::JumpInd { .. })
    }

    /// True for loads.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self.func, FuncOp::Load { .. })
    }

    /// True for stores.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self.func, FuncOp::Store { .. })
    }

    /// True for environment calls (executed at the ROB head).
    #[must_use]
    pub fn is_sys(&self) -> bool {
        matches!(self.func, FuncOp::Sys { .. })
    }

    /// True for `HALT`/`ebreak`.
    #[must_use]
    pub fn is_halt(&self) -> bool {
        matches!(self.func, FuncOp::Halt)
    }

    /// True for trap micro-ops (raised at the ROB head).
    #[must_use]
    pub fn is_trap(&self) -> bool {
        matches!(self.func, FuncOp::Trap(_))
    }

    /// A micro-op that carries a typed trap to the ROB head. It never
    /// issues; commit raises the trap when (and only when) it reaches
    /// the head un-squashed.
    #[must_use]
    pub fn trap(pc: u32, kind: TrapKind, rp_after: u32, sp_after: u32) -> UOp {
        UOp {
            pc,
            func: FuncOp::Trap(kind),
            unit: ExecUnit::Alu,
            latency: 1,
            srcs: [None, None],
            dst: None,
            kind: kind_idx::OTHER,
            logical_dst: None,
            prev_phys: None,
            rp_after,
            sp_after,
        }
    }
}

fn unit_of_alu(op: AluOp) -> (ExecUnit, u32) {
    if op.is_mul() {
        (ExecUnit::Mul, 3)
    } else if op.is_div() {
        (ExecUnit::Div, 12)
    } else {
        (ExecUnit::Alu, 1)
    }
}

/// STRAIGHT rename state: the register pointer and the (decode-time,
/// speculative) stack pointer.
#[derive(Debug, Clone, Copy)]
pub struct RpState {
    /// Next destination register index.
    pub rp: u32,
    /// Speculative SP (updated in order at decode by `SPADD`).
    pub sp: u32,
}

/// Renames a STRAIGHT instruction: the destination is the RP value,
/// sources are `RP - distance` (mod the physical count) — Figure 3's
/// operand determination.
#[must_use]
pub fn rename_straight(inst: Inst, pc: u32, st: &mut RpState, phys: u32) -> UOp {
    let rp = st.rp;
    let src = |d: Dist| -> Option<u16> {
        if d.is_zero() {
            None
        } else {
            // `rp < phys` and `1 <= d <= phys` (distance bounding plus
            // the config invariant `phys >= max_distance`), so the sum
            // is in `[rp, rp + phys)` and one conditional subtract is
            // the exact modulo — no hardware divide in the rename loop.
            let x = rp + phys - u32::from(d.get());
            Some(if x >= phys { x - phys } else { x } as u16)
        }
    };
    let kind = match inst.kind() {
        InstKind::JumpBranch => kind_idx::JUMP_BRANCH,
        InstKind::Alu => kind_idx::ALU,
        InstKind::Ld => kind_idx::LD,
        InstKind::St => kind_idx::ST,
        InstKind::Rmov => kind_idx::RMOV,
        InstKind::Nop => kind_idx::NOP,
        InstKind::Other => kind_idx::OTHER,
    };
    let (func, unit, latency, srcs): (FuncOp, ExecUnit, u32, [Option<u16>; 2]) = match inst {
        Inst::Nop => (FuncOp::Nop, ExecUnit::Alu, 1, [None, None]),
        Inst::Halt => (FuncOp::Halt, ExecUnit::Alu, 1, [None, None]),
        Inst::Alu { op, s1, s2 } => {
            let (u, l) = unit_of_alu(op);
            (FuncOp::Alu(op), u, l, [src(s1), src(s2)])
        }
        Inst::AluImm { op, s1, imm } => (FuncOp::AluImmS(op, imm), ExecUnit::Alu, 1, [src(s1), None]),
        Inst::Lui { imm } => (FuncOp::Const(u32::from(imm) << 16), ExecUnit::Alu, 1, [None, None]),
        Inst::Ld { width, addr, offset } => {
            (FuncOp::Load { width, offset: i32::from(offset) }, ExecUnit::Mem, 1, [src(addr), None])
        }
        Inst::St { width, val, addr } => {
            (FuncOp::Store { width, offset: 0 }, ExecUnit::Mem, 1, [src(addr), src(val)])
        }
        Inst::Rmov { s } => (FuncOp::Copy, ExecUnit::Alu, 1, [src(s), None]),
        Inst::SpAdd { imm } => {
            st.sp = st.sp.wrapping_add(imm as i32 as u32);
            (FuncOp::Const(st.sp), ExecUnit::Alu, 1, [None, None])
        }
        Inst::Bez { s, offset } => (
            FuncOp::Branch {
                cond: CondKind::Eqz,
                target: pc.wrapping_add((offset as i32 as u32).wrapping_mul(4)),
            },
            ExecUnit::Branch,
            1,
            [src(s), None],
        ),
        Inst::Bnz { s, offset } => (
            FuncOp::Branch {
                cond: CondKind::Nez,
                target: pc.wrapping_add((offset as i32 as u32).wrapping_mul(4)),
            },
            ExecUnit::Branch,
            1,
            [src(s), None],
        ),
        Inst::J { offset } => (
            FuncOp::Jump { target: pc.wrapping_add((offset as u32).wrapping_mul(4)), link: false },
            ExecUnit::Branch,
            1,
            [None, None],
        ),
        Inst::Jal { offset } => (
            FuncOp::Jump { target: pc.wrapping_add((offset as u32).wrapping_mul(4)), link: true },
            ExecUnit::Branch,
            1,
            [None, None],
        ),
        Inst::Jr { s } => (FuncOp::JumpInd { offset: 0, link: false }, ExecUnit::Branch, 1, [src(s), None]),
        Inst::Jalr { s } => (FuncOp::JumpInd { offset: 0, link: true }, ExecUnit::Branch, 1, [src(s), None]),
        Inst::Sys { code, s } => (FuncOp::Sys { code: Some(code) }, ExecUnit::Alu, 1, [src(s), None]),
    };
    let dst = Some(rp as u16);
    st.rp = if rp + 1 == phys { 0 } else { rp + 1 };
    UOp {
        pc,
        func,
        unit,
        latency,
        srcs,
        dst,
        kind,
        logical_dst: None,
        prev_phys: None,
        rp_after: st.rp,
        sp_after: st.sp,
    }
}

/// SS rename state: the RAM-based register map table and free list.
#[derive(Debug, Clone)]
pub struct RmtState {
    /// Logical → physical mapping.
    pub rmt: [u16; 32],
    /// Free physical registers.
    pub freelist: VecDeque<u16>,
}

impl RmtState {
    /// Initial mapping: logical `i` → physical `i`, the rest free.
    #[must_use]
    pub fn new(phys: u32) -> RmtState {
        let mut rmt = [0u16; 32];
        for (i, m) in rmt.iter_mut().enumerate() {
            *m = i as u16;
        }
        RmtState { rmt, freelist: (32..phys as u16).collect() }
    }
}

/// Renames an RV32 instruction through the RMT; returns `None` when
/// no physical register is free (rename stalls).
#[must_use]
pub fn rename_riscv(inst: RvInst, pc: u32, st: &mut RmtState) -> Option<UOp> {
    let kind = match inst {
        RvInst::Jal { .. } | RvInst::Jalr { .. } | RvInst::Branch { .. } => kind_idx::JUMP_BRANCH,
        RvInst::Load { .. } => kind_idx::LD,
        RvInst::Store { .. } => kind_idx::ST,
        RvInst::Ecall | RvInst::Ebreak => kind_idx::OTHER,
        _ => kind_idx::ALU,
    };
    let src = |st: &RmtState, r: Reg| -> Option<u16> {
        if r.is_zero() {
            None
        } else {
            Some(st.rmt[r.num() as usize])
        }
    };
    let (func, unit, latency, srcs, rd): (FuncOp, ExecUnit, u32, [Option<u16>; 2], Option<Reg>) = match inst {
        RvInst::Lui { rd, imm } => (FuncOp::Const(imm), ExecUnit::Alu, 1, [None, None], Some(rd)),
        RvInst::Auipc { rd, imm } => {
            (FuncOp::Const(pc.wrapping_add(imm)), ExecUnit::Alu, 1, [None, None], Some(rd))
        }
        RvInst::Jal { rd, offset } => (
            FuncOp::Jump { target: pc.wrapping_add(offset as u32), link: true },
            ExecUnit::Branch,
            1,
            [None, None],
            Some(rd),
        ),
        RvInst::Jalr { rd, rs1, offset } => {
            (FuncOp::JumpInd { offset, link: true }, ExecUnit::Branch, 1, [src(st, rs1), None], Some(rd))
        }
        RvInst::Branch { op, rs1, rs2, offset } => (
            FuncOp::Branch { cond: CondKind::Rv(op), target: pc.wrapping_add(offset as u32) },
            ExecUnit::Branch,
            1,
            [src(st, rs1), src(st, rs2)],
            None,
        ),
        RvInst::Load { width, rd, rs1, offset } => {
            (FuncOp::Load { width, offset }, ExecUnit::Mem, 1, [src(st, rs1), None], Some(rd))
        }
        RvInst::Store { width, rs2, rs1, offset } => {
            (FuncOp::Store { width, offset }, ExecUnit::Mem, 1, [src(st, rs1), src(st, rs2)], None)
        }
        RvInst::OpImm { op, rd, rs1, imm } => {
            (FuncOp::AluImmRv(op, imm), ExecUnit::Alu, 1, [src(st, rs1), None], Some(rd))
        }
        RvInst::Op { op, rd, rs1, rs2 } => {
            let (u, l) = unit_of_alu(op);
            (FuncOp::Alu(op), u, l, [src(st, rs1), src(st, rs2)], Some(rd))
        }
        RvInst::Ecall => (
            // Reads a0 (argument) and a7 (code); writes a0.
            FuncOp::Sys { code: None },
            ExecUnit::Alu,
            1,
            [src(st, Reg::A0), src(st, Reg::A7)],
            Some(Reg::A0),
        ),
        RvInst::Ebreak => (FuncOp::Halt, ExecUnit::Alu, 1, [None, None], None),
    };
    // Allocate a destination for real (non-x0) writes.
    let rd = rd.filter(|r| !r.is_zero());
    let (dst, logical_dst, prev_phys) = match rd {
        Some(r) => {
            let phys = st.freelist.pop_front()?;
            let prev = st.rmt[r.num() as usize];
            st.rmt[r.num() as usize] = phys;
            (Some(phys), Some(r.num()), Some(prev))
        }
        None => (None, None, None),
    };
    Some(UOp {
        pc,
        func,
        unit,
        latency,
        srcs,
        dst,
        kind,
        logical_dst,
        prev_phys,
        rp_after: 0,
        sp_after: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_rename_distances() {
        let mut st = RpState { rp: 10, sp: 0x1000 };
        let u = rename_straight(
            Inst::Alu { op: AluOp::Add, s1: Dist::of(1), s2: Dist::of(3) },
            0x100,
            &mut st,
            256,
        );
        assert_eq!(u.dst, Some(10));
        assert_eq!(u.srcs, [Some(9), Some(7)]);
        assert_eq!(st.rp, 11);
    }

    #[test]
    fn straight_rp_wraps() {
        let mut st = RpState { rp: 1, sp: 0 };
        let u = rename_straight(Inst::Rmov { s: Dist::of(3) }, 0, &mut st, 96);
        assert_eq!(u.srcs[0], Some(94)); // 1 - 3 mod 96
    }

    #[test]
    fn straight_spadd_updates_sp_at_decode() {
        let mut st = RpState { rp: 0, sp: 0x1000 };
        let u = rename_straight(Inst::SpAdd { imm: -16 }, 0, &mut st, 96);
        assert_eq!(st.sp, 0x0ff0);
        assert_eq!(u.func, FuncOp::Const(0x0ff0));
        assert_eq!(u.sp_after, 0x0ff0);
    }

    #[test]
    fn riscv_rename_allocates_and_tracks_prev() {
        let mut st = RmtState::new(96);
        let u = rename_riscv(
            RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::A0, imm: 1 },
            0,
            &mut st,
        )
        .unwrap();
        assert_eq!(u.srcs[0], Some(10)); // old a0 mapping
        assert_eq!(u.prev_phys, Some(10));
        assert_eq!(u.logical_dst, Some(10));
        assert_eq!(st.rmt[10], u.dst.unwrap());
    }

    #[test]
    fn riscv_x0_writes_discarded() {
        let mut st = RmtState::new(96);
        let before = st.freelist.len();
        let u = rename_riscv(
            RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 5 },
            0,
            &mut st,
        )
        .unwrap();
        assert_eq!(u.dst, None);
        assert_eq!(st.freelist.len(), before);
    }

    #[test]
    fn riscv_stalls_without_free_regs() {
        let mut st = RmtState::new(33);
        assert!(rename_riscv(
            RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 1 },
            0,
            &mut st
        )
        .is_some());
        assert!(rename_riscv(
            RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::A1, rs1: Reg::ZERO, imm: 1 },
            0,
            &mut st
        )
        .is_none());
    }

    #[test]
    fn control_info_classification() {
        let jal = RawInst::S(Inst::Jal { offset: 4 });
        assert_eq!(jal.control_info(0x100), ControlInfo::DirectJump { target: 0x110, is_call: true });
        let ret = RawInst::R(RvInst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 });
        assert_eq!(ret.control_info(0), ControlInfo::IndirectJump { is_call: false, is_return: true });
        let bez = RawInst::S(Inst::Bez { s: Dist::of(1), offset: -2 });
        assert_eq!(bez.control_info(0x100), ControlInfo::CondBranch { target: 0xf8 });
    }
}
