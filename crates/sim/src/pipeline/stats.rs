//! Simulation statistics, including the activity-event counters the
//! power model consumes (Figure 17).

use std::collections::BTreeMap;
use std::fmt;

use straight_isa::Trap;
use straight_json::{read_field, FromJson, Json, JsonError, ToJson};

use crate::json_record;
use crate::mem::MemStats;

/// Activity events for the power model: every counter corresponds to
/// a physical structure access in one of the modeled modules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct PowerEvents {
    // Rename logic (the module STRAIGHT removes).
    pub rmt_reads: u64,
    pub rmt_writes: u64,
    pub freelist_ops: u64,
    pub rob_walk_reads: u64,
    // STRAIGHT's counterpart: the operand-determination adders.
    pub rp_adds: u64,
    // Register file.
    pub prf_reads: u64,
    pub prf_writes: u64,
    // Other core modules.
    pub fetched: u64,
    pub decoded: u64,
    pub iq_wakeups: u64,
    pub iq_inserts: u64,
    pub fu_ops: u64,
    pub rob_writes: u64,
    pub rob_commits: u64,
    pub lsq_searches: u64,
}

json_record!(PowerEvents {
    rmt_reads,
    rmt_writes,
    freelist_ops,
    rob_walk_reads,
    rp_adds,
    prf_reads,
    prf_writes,
    fetched,
    decoded,
    iq_wakeups,
    iq_inserts,
    fu_ops,
    rob_writes,
    rob_commits,
    lsq_searches,
});

/// Full statistics of one simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Retired (committed) instructions.
    pub retired: u64,
    /// Retired counts per category, indexed like [`KIND_NAMES`]
    /// (Figure 15 categories). A fixed array rather than a map: the
    /// retire path bumps one of these per instruction, so the counter
    /// must be O(1) with no string hashing.
    pub retired_kinds: [u64; KIND_NAMES.len()],
    /// Conditional branches resolved / mispredicted.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub branch_mispredicts: u64,
    /// Indirect-jump mispredicts (wrong RAS/unknown target).
    pub indirect_mispredicts: u64,
    /// Memory-order violations (store-load replays).
    pub memory_violations: u64,
    /// Total instructions squashed by recoveries.
    pub squashed: u64,
    /// Cycles the rename stage was blocked by recovery (ROB walking
    /// for SS; the single ROB read for STRAIGHT).
    pub recovery_stall_cycles: u64,
    /// Cycles rename stalled for a free physical register.
    pub freelist_stall_cycles: u64,
    /// Cycles dispatch stalled on a full ROB/IQ/LSQ.
    pub backpressure_stall_cycles: u64,
    /// Power-model activity events.
    pub events: PowerEvents,
    /// Memory hierarchy statistics.
    pub mem: MemStats,
}

impl SimStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Misprediction rate over conditional branches.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Bumps a retired-kind counter. `kind` must be one of
    /// [`KIND_NAMES`]; anything else is counted as `"other"`.
    pub fn bump_kind(&mut self, kind: &'static str) {
        let slot = kind_slot(kind);
        debug_assert_eq!(KIND_NAMES[slot], kind, "unknown retired-instruction kind");
        self.retired_kinds[slot] += 1;
        self.retired += 1;
    }

    /// Bumps a retired-kind counter by its [`KIND_NAMES`] index — the
    /// pipeline's hot path, which carries the category pre-encoded as
    /// an index (the crate-internal `kind_idx` constants) instead of a
    /// string.
    #[inline]
    pub fn bump_kind_idx(&mut self, idx: u8) {
        debug_assert!((idx as usize) < KIND_NAMES.len(), "kind index out of range");
        self.retired_kinds[idx as usize] += 1;
        self.retired += 1;
    }

    /// The retired count for one [`KIND_NAMES`] category.
    #[must_use]
    pub fn kind_count(&self, name: &str) -> u64 {
        KIND_NAMES
            .iter()
            .position(|&k| k == name)
            .map_or(0, |i| self.retired_kinds[i])
    }
}

/// O(1) category dispatch: every [`KIND_NAMES`] entry starts with a
/// distinct byte, so one byte identifies the slot.
#[inline]
fn kind_slot(kind: &str) -> usize {
    match kind.as_bytes().first() {
        Some(b'j') => 0,
        Some(b'a') => 1,
        Some(b'l') => 2,
        Some(b's') => 3,
        Some(b'r') => 4,
        Some(b'n') => 5,
        _ => 6,
    }
}

/// The closed vocabulary of retired-instruction categories (the
/// Figure 15 legend). [`SimStats`] keys its per-kind counters with
/// these `&'static str`s, so deserialization interns incoming keys
/// against this list.
pub const KIND_NAMES: [&str; 7] = ["jump+branch", "alu", "ld", "st", "rmov", "nop", "other"];

/// [`KIND_NAMES`] indices, for code that carries a category as a
/// compact `u8` (the `UOp::kind` encoding) rather than a string.
pub(crate) mod kind_idx {
    /// `"jump+branch"`.
    pub const JUMP_BRANCH: u8 = 0;
    /// `"alu"`.
    pub const ALU: u8 = 1;
    /// `"ld"`.
    pub const LD: u8 = 2;
    /// `"st"`.
    pub const ST: u8 = 3;
    /// `"rmov"`.
    pub const RMOV: u8 = 4;
    /// `"nop"`.
    pub const NOP: u8 = 5;
    /// `"other"`.
    pub const OTHER: u8 = 6;
}

/// Interns a category name against [`KIND_NAMES`].
#[must_use]
pub fn intern_kind(name: &str) -> Option<&'static str> {
    KIND_NAMES.iter().find(|&&k| k == name).copied()
}

impl ToJson for SimStats {
    fn to_json(&self) -> Json {
        // Emitted exactly as the former `BTreeMap` representation did:
        // categories with a non-zero count, in lexicographic order.
        let mut lex: Vec<usize> = (0..KIND_NAMES.len()).collect();
        lex.sort_by_key(|&i| KIND_NAMES[i]);
        let kinds = Json::Obj(
            lex.into_iter()
                .filter(|&i| self.retired_kinds[i] != 0)
                .map(|i| (KIND_NAMES[i].to_string(), self.retired_kinds[i].to_json()))
                .collect(),
        );
        straight_json::obj()
            .field("cycles", &self.cycles)
            .field("retired", &self.retired)
            .field("ipc", &self.ipc())
            .field("retired_kinds", &kinds)
            .field("branches", &self.branches)
            .field("branch_mispredicts", &self.branch_mispredicts)
            .field("indirect_mispredicts", &self.indirect_mispredicts)
            .field("memory_violations", &self.memory_violations)
            .field("squashed", &self.squashed)
            .field("recovery_stall_cycles", &self.recovery_stall_cycles)
            .field("freelist_stall_cycles", &self.freelist_stall_cycles)
            .field("backpressure_stall_cycles", &self.backpressure_stall_cycles)
            .field("events", &self.events)
            .field("mem", &self.mem)
            .build()
    }
}

impl FromJson for SimStats {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let kinds_value: BTreeMap<String, u64> = read_field(value, "retired_kinds")?;
        let mut retired_kinds = [0u64; KIND_NAMES.len()];
        for (name, count) in kinds_value {
            let slot = KIND_NAMES.iter().position(|&k| k == name).ok_or_else(|| {
                JsonError::Shape(format!("unknown retired-instruction kind `{name}`"))
            })?;
            retired_kinds[slot] = count;
        }
        Ok(SimStats {
            cycles: read_field(value, "cycles")?,
            retired: read_field(value, "retired")?,
            retired_kinds,
            branches: read_field(value, "branches")?,
            branch_mispredicts: read_field(value, "branch_mispredicts")?,
            indirect_mispredicts: read_field(value, "indirect_mispredicts")?,
            memory_violations: read_field(value, "memory_violations")?,
            squashed: read_field(value, "squashed")?,
            recovery_stall_cycles: read_field(value, "recovery_stall_cycles")?,
            freelist_stall_cycles: read_field(value, "freelist_stall_cycles")?,
            backpressure_stall_cycles: read_field(value, "backpressure_stall_cycles")?,
            events: read_field(value, "events")?,
            mem: read_field(value, "mem")?,
        })
    }
}

/// Why a simulation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimExit {
    /// The program ran to completion.
    Completed {
        /// Exit code.
        code: i32,
    },
    /// The cycle budget was exhausted.
    CycleLimit,
    /// A typed trap — architectural, sanitizer-detected, or the
    /// forward-progress watchdog ([`straight_isa::TrapKind::Watchdog`],
    /// in which case [`SimResult::watchdog`] carries the full
    /// diagnostic).
    Trap(Trap),
}

/// Structured diagnostic dumped when the forward-progress watchdog
/// fires: enough pipeline state to see *where* progress stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Commit-free cycles observed when the watchdog fired.
    pub stalled_cycles: u64,
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Instructions retired before the stall.
    pub retired: u64,
    /// ROB head: (sequence number, PC, a short state description), if
    /// the ROB is non-empty.
    pub rob_head: Option<(u64, u32, &'static str)>,
    /// ROB occupancy.
    pub rob_len: usize,
    /// Scheduler occupancy.
    pub iq_len: usize,
    /// In-flight (issued, not yet completed) count.
    pub inflight_len: usize,
    /// Load/store-queue occupancy.
    pub lsq_len: usize,
    /// Front-end queue occupancy.
    pub front_len: usize,
    /// Next fetch PC.
    pub fetch_pc: u32,
    /// Cycle until which fetch is stalled.
    pub fetch_stall_until: u64,
    /// Cycle until which rename is stalled.
    pub rename_stall_until: u64,
}

impl fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "watchdog: no commit for {} cycles (cycle {}, {} retired)",
            self.stalled_cycles, self.cycle, self.retired
        )?;
        match self.rob_head {
            Some((seq, pc, state)) => {
                writeln!(f, "  rob head: seq {seq} pc {pc:#x} [{state}], {} entries", self.rob_len)?;
            }
            None => writeln!(f, "  rob: empty")?,
        }
        writeln!(
            f,
            "  iq {} / inflight {} / lsq {} / front {}",
            self.iq_len, self.inflight_len, self.lsq_len, self.front_len
        )?;
        write!(
            f,
            "  fetch_pc {:#x}, fetch stalled until {}, rename stalled until {}",
            self.fetch_pc, self.fetch_stall_until, self.rename_stall_until
        )
    }
}

/// Result of simulating a program to completion.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Why simulation stopped.
    pub exit: SimExit,
    /// Exit code, if the program completed (`exit` in convenient
    /// form for the common case).
    pub exit_code: Option<i32>,
    /// Watchdog diagnostic, when `exit` is a watchdog trap.
    pub watchdog: Option<WatchdogReport>,
    /// Console output.
    pub stdout: String,
    /// Statistics.
    pub stats: SimStats,
}

impl SimResult {
    /// The trap, if simulation ended in one.
    #[must_use]
    pub fn trap(&self) -> Option<Trap> {
        match self.exit {
            SimExit::Trap(t) => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_rates() {
        let mut s = SimStats { cycles: 100, ..SimStats::default() };
        for _ in 0..150 {
            s.bump_kind("alu");
        }
        s.branches = 10;
        s.branch_mispredicts = 3;
        assert!((s.ipc() - 1.5).abs() < 1e-9);
        assert!((s.mispredict_rate() - 0.3).abs() < 1e-9);
        assert_eq!(s.kind_count("alu"), 150);
        assert_eq!(s.kind_count("ld"), 0);
    }

    #[test]
    fn kind_slots_cover_all_names() {
        // The one-byte dispatch must stay in lockstep with KIND_NAMES.
        for (i, name) in KIND_NAMES.iter().enumerate() {
            assert_eq!(kind_slot(name), i, "kind {name} maps to the wrong slot");
        }
    }

    #[test]
    fn kind_idx_constants_match_names() {
        // The compact `u8` encoding must stay in lockstep with
        // KIND_NAMES too.
        let pairs = [
            (kind_idx::JUMP_BRANCH, "jump+branch"),
            (kind_idx::ALU, "alu"),
            (kind_idx::LD, "ld"),
            (kind_idx::ST, "st"),
            (kind_idx::RMOV, "rmov"),
            (kind_idx::NOP, "nop"),
            (kind_idx::OTHER, "other"),
        ];
        assert_eq!(pairs.len(), KIND_NAMES.len());
        for (idx, name) in pairs {
            assert_eq!(KIND_NAMES[idx as usize], name);
        }
    }

    #[test]
    fn zero_cycles_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
    }
}
