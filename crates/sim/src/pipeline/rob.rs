//! The reorder buffer as a structure-of-arrays ring slab.
//!
//! ROB entries always hold *contiguous* sequence numbers: dispatch
//! appends `next_seq`, commit pops the front, and recovery truncates
//! the tail (rewinding `next_seq`, so squashed sequence numbers are
//! reused). The slab exploits this: an entry for sequence number `s`
//! lives in slot `s mod capacity` (capacity rounded up to a power of
//! two so the modulo is a mask), and the live window is described by
//! `(head_seq, len)` alone. There is no per-entry allocation, no
//! pointer chasing, and each field lives in its own flat column so the
//! stages touch only the bytes they need: commit reads `state`/`trap`,
//! the wakeup path reads `gen`/`pending`, select reads `state` and the
//! `uop` payload, the recovery walk streams over `uop` columns.
//!
//! Cross-cycle references into the slab (scheduler wakeup waiters) use
//! generational [`SlotHandle`]s: `gen` holds the entry's dispatch uid
//! (never reused, unlike slots and sequence numbers), so a handle
//! taken before a squash cannot resolve to the slot's next tenant.

use straight_isa::TrapKind;

use crate::predict::RasCheckpoint;

use super::slab::{SlotBits, SlotHandle};
use super::uop::UOp;

/// Execution state of a ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RState {
    /// Dispatched, waiting in the scheduler (or at the ROB head for
    /// `SYS`/`HALT`/trap micro-ops).
    Waiting,
    /// Issued to a functional unit.
    Issued,
    /// Completed.
    Done,
}

/// The structure-of-arrays reorder buffer. Columns are indexed by
/// slot; [`RobSlab::slot`] maps a live sequence number to its slot.
#[derive(Debug)]
pub(crate) struct RobSlab {
    mask: usize,
    head_seq: u64,
    len: usize,
    /// Sequence number per slot (valid only inside the live window).
    pub seq: Box<[u64]>,
    /// Dispatch identity per slot; never reused, so stale handles to a
    /// recycled slot fail their generation check.
    pub gen: Box<[u64]>,
    /// The renamed micro-op payload.
    pub uop: Box<[UOp]>,
    /// Execution state.
    pub state: Box<[RState]>,
    /// Fetch-time predicted next PC.
    pub predicted_next: Box<[u32]>,
    /// Fetch-time predicted direction (conditional branches).
    pub pred_taken: Box<[bool]>,
    /// Resolved direction (valid once `state` is `Done`).
    pub actual_taken: Box<[bool]>,
    /// RAS checkpoint taken at prediction time.
    pub ras_cp: Box<[RasCheckpoint]>,
    /// Execution-time fault, raised precisely when the entry reaches
    /// the ROB head.
    pub trap: Box<[Option<TrapKind>]>,
    /// Source operands still outstanding before the entry enters the
    /// scheduler's ready set.
    pub pending: Box<[u8]>,
    /// Occupies a scheduler (issue-queue) slot.
    pub in_iq: SlotBits,
}

impl RobSlab {
    /// A slab holding at least `capacity` in-flight entries.
    pub fn new(capacity: usize, placeholder: UOp) -> RobSlab {
        let cap = capacity.next_power_of_two().max(64);
        RobSlab {
            mask: cap - 1,
            head_seq: 0,
            len: 0,
            seq: vec![0u64; cap].into_boxed_slice(),
            gen: vec![u64::MAX; cap].into_boxed_slice(),
            uop: vec![placeholder; cap].into_boxed_slice(),
            state: vec![RState::Waiting; cap].into_boxed_slice(),
            predicted_next: vec![0u32; cap].into_boxed_slice(),
            pred_taken: vec![false; cap].into_boxed_slice(),
            actual_taken: vec![false; cap].into_boxed_slice(),
            ras_cp: vec![RasCheckpoint::default(); cap].into_boxed_slice(),
            trap: vec![None; cap].into_boxed_slice(),
            pending: vec![0u8; cap].into_boxed_slice(),
            in_iq: SlotBits::new(cap),
        }
    }

    /// Live entry count.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Physical slot count (sizes the scheduler's per-slot bitsets).
    #[inline]
    pub fn slot_capacity(&self) -> usize {
        self.mask + 1
    }

    /// True when no entry is in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sequence number of the oldest entry.
    #[inline]
    pub fn front_seq(&self) -> Option<u64> {
        if self.len == 0 {
            None
        } else {
            Some(self.head_seq)
        }
    }

    /// Slot of the oldest entry (only meaningful when non-empty).
    #[inline]
    pub fn head_slot(&self) -> usize {
        (self.head_seq as usize) & self.mask
    }

    /// Slot for a sequence number, without a liveness check.
    #[inline]
    pub fn slot_of(&self, seq: u64) -> usize {
        (seq as usize) & self.mask
    }

    /// Slot for `seq` if that sequence number is live, `None` when it
    /// was already committed or squashed (the replacement for relative
    /// `VecDeque` indexing).
    #[inline]
    pub fn slot(&self, seq: u64) -> Option<usize> {
        if seq >= self.head_seq && seq < self.head_seq + self.len as u64 {
            Some((seq as usize) & self.mask)
        } else {
            None
        }
    }

    /// Appends an entry for `seq` (which must be `head_seq + len`,
    /// i.e. sequence numbers stay contiguous) and returns its slot.
    pub fn push(&mut self, seq: u64, uid: u64, uop: UOp) -> usize {
        debug_assert_eq!(seq, self.head_seq + self.len as u64, "ROB seqs must stay contiguous");
        debug_assert!(self.len <= self.mask, "ROB slab overfull");
        let slot = (seq as usize) & self.mask;
        self.seq[slot] = seq;
        self.gen[slot] = uid;
        self.uop[slot] = uop;
        self.state[slot] = RState::Waiting;
        self.trap[slot] = None;
        self.actual_taken[slot] = false;
        self.in_iq.clear(slot);
        self.len += 1;
        slot
    }

    /// Pops the oldest entry (commit). The slot's generation is
    /// invalidated so any handle still pointing at it goes stale.
    pub fn pop_front(&mut self) {
        debug_assert!(self.len > 0);
        let slot = self.head_slot();
        self.gen[slot] = u64::MAX;
        self.in_iq.clear(slot);
        self.head_seq += 1;
        self.len -= 1;
    }

    /// Truncates to the oldest `keep` entries (recovery). The caller
    /// walks the squashed tail first; this only moves the tail
    /// pointer. Slot generations of the squashed range are invalidated
    /// here so stale wakeup handles are rejected even before the slots
    /// are reused.
    pub fn truncate(&mut self, keep: usize) {
        for seq in self.head_seq + keep as u64..self.head_seq + self.len as u64 {
            let slot = (seq as usize) & self.mask;
            self.gen[slot] = u64::MAX;
            self.in_iq.clear(slot);
        }
        self.len = keep.min(self.len);
    }

    /// Resolves a scheduler wakeup handle: the slot is returned only
    /// while the *same* dispatched instruction still occupies it (the
    /// generation matches) and it still holds a scheduler slot. A
    /// handle to a committed, squashed, or recycled slot yields `None`.
    #[inline]
    pub fn waiter_slot(&self, h: SlotHandle) -> Option<usize> {
        let slot = h.slot as usize;
        if self.gen[slot] == h.gen && self.in_iq.get(slot) {
            Some(slot)
        } else {
            None
        }
    }

    /// Empties the slab (core reset), invalidating every generation.
    pub fn clear(&mut self) {
        self.gen.fill(u64::MAX);
        self.in_iq.clear_all();
        self.head_seq = 0;
        self.len = 0;
    }

    /// Empties the slab and rebases the contiguous-sequence window at
    /// `seq`, so the next `push` must carry exactly `seq`. Used when a
    /// core resumes from a checkpoint mid-stream: commit sequence
    /// numbers continue from the emulator's executed count.
    pub fn reset_base(&mut self, seq: u64) {
        self.clear();
        self.head_seq = seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use straight_isa::TrapKind;

    fn uop() -> UOp {
        UOp::trap(0, TrapKind::FetchFault, 0, 0)
    }

    fn push_n(rob: &mut RobSlab, from_seq: u64, from_uid: u64, n: u64) {
        for i in 0..n {
            let slot = rob.push(from_seq + i, from_uid + i, uop());
            rob.in_iq.set(slot);
        }
    }

    #[test]
    fn contiguous_window_and_slot_lookup() {
        let mut rob = RobSlab::new(64, uop());
        push_n(&mut rob, 0, 0, 10);
        assert_eq!(rob.len(), 10);
        assert_eq!(rob.front_seq(), Some(0));
        assert_eq!(rob.slot(9), Some(9));
        assert_eq!(rob.slot(10), None);
        rob.pop_front();
        assert_eq!(rob.slot(0), None, "committed seq is no longer live");
        assert_eq!(rob.front_seq(), Some(1));
    }

    #[test]
    fn slots_wrap_and_stay_unique_within_window() {
        let mut rob = RobSlab::new(64, uop());
        // Fill and drain well past one lap of the ring.
        let mut next = 0u64;
        for _ in 0..5 {
            while rob.len() < 64 {
                rob.push(next, next, uop());
                next += 1;
            }
            while rob.len() > 3 {
                rob.pop_front();
            }
        }
        // The three survivors resolve to three distinct slots.
        let front = rob.front_seq().unwrap();
        let slots: Vec<usize> = (front..front + 3).map(|s| rob.slot(s).unwrap()).collect();
        assert_eq!(slots.len(), 3);
        assert!(slots[0] != slots[1] && slots[1] != slots[2] && slots[0] != slots[2]);
    }

    #[test]
    fn stale_handle_rejected_after_squash_and_slot_reuse() {
        let mut rob = RobSlab::new(64, uop());
        push_n(&mut rob, 0, 0, 8);
        // A waiter subscribes to seq 5 (slot 5, gen/uid 5).
        let h = SlotHandle { slot: rob.slot(5).unwrap() as u32, gen: rob.gen[5] };
        assert_eq!(rob.waiter_slot(h), Some(5));

        // Recovery squashes seqs 4..8; seq numbers rewind and the slot
        // is reused by a *different* dynamic instruction (fresh uid).
        rob.truncate(4);
        assert_eq!(rob.waiter_slot(h), None, "squashed entry must reject its old handle");
        push_n(&mut rob, 4, 100, 4); // uids 100.. take slots 4..8
        assert_eq!(rob.slot(5), Some(5), "slot is live again");
        assert_eq!(rob.waiter_slot(h), None, "reused slot must reject the stale generation");

        // A handle minted for the new tenant works.
        let h2 = SlotHandle { slot: 5, gen: rob.gen[5] };
        assert_eq!(rob.waiter_slot(h2), Some(5));
    }

    #[test]
    fn committed_entry_rejects_handle() {
        let mut rob = RobSlab::new(64, uop());
        push_n(&mut rob, 0, 0, 2);
        let h = SlotHandle { slot: 0, gen: 0 };
        assert_eq!(rob.waiter_slot(h), Some(0));
        rob.pop_front();
        assert_eq!(rob.waiter_slot(h), None);
    }

    #[test]
    fn clear_invalidates_everything() {
        let mut rob = RobSlab::new(64, uop());
        push_n(&mut rob, 0, 0, 8);
        let h = SlotHandle { slot: 3, gen: 3 };
        rob.clear();
        assert!(rob.is_empty());
        assert_eq!(rob.waiter_slot(h), None);
        // The slab is reusable from seq 0 again.
        push_n(&mut rob, 0, 200, 1);
        assert_eq!(rob.slot(0), Some(0));
    }
}
