//! The load/store queue as two structure-of-arrays ring slabs.
//!
//! Loads and stores live in separate age-ordered rings (both ascending
//! by sequence number), so occupancy checks are O(1), per-seq lookups
//! binary-search a handful of entries, and the ordered scans (older
//! stores for a load, younger loads for a store) walk only the
//! relevant half with early exit. Unlike the previous
//! `VecDeque<LsqEntry>` layout, each field is a flat column: the hot
//! forwarding scan streams over `seq`/`addr` words instead of striding
//! 40-byte entries, and optional fields (`addr`, `data`, `fwd_src`)
//! are split into a value column plus a presence flag so the scan
//! reads no stale payloads.
//!
//! Entries are removed from the front at commit (the common case), by
//! tail truncation at recovery, and — rarely — from the middle, which
//! compacts the ring in place (shifting the younger suffix down one
//! position per column) so age order is preserved.

use straight_isa::MemWidth;

/// Byte-interval overlap of two accesses. Ends are computed in u64:
/// an access butting against the top of the 32-bit address space
/// (e.g. a wrong-path wild store at `0xffff_ffff`) must not wrap its
/// end around to a small value — a wrapped end of 0 made such an
/// access overlap nothing, silently skipping forwarding/violation
/// checks against it.
#[inline]
pub(crate) fn overlap(a_addr: u32, a_w: MemWidth, b_addr: u32, b_w: MemWidth) -> bool {
    let a_end = u64::from(a_addr) + u64::from(a_w.bytes());
    let b_end = u64::from(b_addr) + u64::from(b_w.bytes());
    u64::from(a_addr) < b_end && u64::from(b_addr) < a_end
}

/// Result of the older-store scan a load performs at issue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OlderStoreScan {
    /// Some older store has not generated its address yet.
    pub unknown_older: bool,
    /// The load cannot issue this cycle: an older overlapping store
    /// either partially overlaps (must drain at commit) or fully
    /// matches with its data still pending.
    pub blocked: bool,
    /// Youngest older fully-matching store with data available, as
    /// `(seq, data)` — the store-to-load forwarding source.
    pub best: Option<(u64, u32)>,
}

/// A borrowed view of one LSQ entry, assembled from the columns.
/// Returned by [`LsqRing::remove`] for the commit-time drain; the
/// identity fields are read only by the test-gated visitors.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LsqRef {
    #[cfg_attr(not(test), allow(dead_code))]
    pub seq: u64,
    pub pc: u32,
    pub width: MemWidth,
    pub addr: Option<u32>,
    pub data: Option<u32>,
    pub speculative: bool,
    #[cfg_attr(not(test), allow(dead_code))]
    pub fwd_src: Option<u64>,
}

/// One age-ordered ring (loads or stores) in structure-of-arrays form.
#[derive(Debug)]
pub(crate) struct LsqRing {
    mask: usize,
    head: usize,
    len: usize,
    seq: Box<[u64]>,
    pc: Box<[u32]>,
    width: Box<[MemWidth]>,
    addr: Box<[u32]>,
    addr_known: Box<[bool]>,
    data: Box<[u32]>,
    data_known: Box<[bool]>,
    speculative: Box<[bool]>,
    fwd_src: Box<[u64]>,
    fwd_known: Box<[bool]>,
}

impl LsqRing {
    fn new(capacity: usize) -> LsqRing {
        let cap = capacity.next_power_of_two().max(4);
        LsqRing {
            mask: cap - 1,
            head: 0,
            len: 0,
            seq: vec![0u64; cap].into_boxed_slice(),
            pc: vec![0u32; cap].into_boxed_slice(),
            width: vec![MemWidth::W; cap].into_boxed_slice(),
            addr: vec![0u32; cap].into_boxed_slice(),
            addr_known: vec![false; cap].into_boxed_slice(),
            data: vec![0u32; cap].into_boxed_slice(),
            data_known: vec![false; cap].into_boxed_slice(),
            speculative: vec![false; cap].into_boxed_slice(),
            fwd_src: vec![0u64; cap].into_boxed_slice(),
            fwd_known: vec![false; cap].into_boxed_slice(),
        }
    }

    /// Occupancy.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Physical index of logical position `pos` (0 = oldest).
    #[inline]
    fn at(&self, pos: usize) -> usize {
        (self.head + pos) & self.mask
    }

    /// Appends a fresh entry (dispatch). Sequence numbers must arrive
    /// ascending, which dispatch order guarantees.
    pub fn push_back(&mut self, seq: u64, pc: u32, width: MemWidth) {
        debug_assert!(self.len <= self.mask, "LSQ ring overfull");
        debug_assert!(self.len == 0 || self.seq[self.at(self.len - 1)] < seq);
        let i = self.at(self.len);
        self.seq[i] = seq;
        self.pc[i] = pc;
        self.width[i] = width;
        self.addr_known[i] = false;
        self.data_known[i] = false;
        self.speculative[i] = false;
        self.fwd_known[i] = false;
        self.len += 1;
    }

    /// Logical position of `seq`, if present (binary search — the ring
    /// is sorted ascending by construction).
    fn pos_of(&self, seq: u64) -> Option<usize> {
        let mut lo = 0usize;
        let mut hi = self.len;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let s = self.seq[self.at(mid)];
            if s < seq {
                lo = mid + 1;
            } else if s > seq {
                hi = mid;
            } else {
                return Some(mid);
            }
        }
        None
    }

    /// Assembles a full view of the entry for `seq`.
    #[cfg(test)]
    pub fn get(&self, seq: u64) -> Option<LsqRef> {
        let pos = self.pos_of(seq)?;
        let i = self.at(pos);
        Some(self.view(i))
    }

    #[inline]
    fn view(&self, i: usize) -> LsqRef {
        LsqRef {
            seq: self.seq[i],
            pc: self.pc[i],
            width: self.width[i],
            addr: self.addr_known[i].then(|| self.addr[i]),
            data: self.data_known[i].then(|| self.data[i]),
            speculative: self.speculative[i],
            fwd_src: self.fwd_known[i].then(|| self.fwd_src[i]),
        }
    }

    /// True when the entry exists and its address is generated.
    pub fn addr_known(&self, seq: u64) -> bool {
        self.pos_of(seq).is_some_and(|pos| self.addr_known[self.at(pos)])
    }

    /// The generated address of the entry for `seq`, if any — the
    /// writeback stage's load-address lookup, reading two columns
    /// instead of assembling a full [`LsqRef`].
    pub fn addr_of(&self, seq: u64) -> Option<u32> {
        let i = self.at(self.pos_of(seq)?);
        self.addr_known[i].then(|| self.addr[i])
    }

    /// The forwarding decision for a load of `addr`/`width` with
    /// sequence number `seq` against all older stores (this must be
    /// the store ring). Equivalent to a [`LsqRing::for_each_older`]
    /// walk, but reads the scanned columns directly — the hot
    /// store-to-load forwarding path materializes no entry views.
    pub fn scan_older_stores(&self, seq: u64, addr: u32, width: MemWidth) -> OlderStoreScan {
        let mut scan = OlderStoreScan { unknown_older: false, blocked: false, best: None };
        for pos in 0..self.len {
            let i = self.at(pos);
            if self.seq[i] >= seq {
                break;
            }
            if !self.addr_known[i] {
                scan.unknown_older = true;
                continue;
            }
            let (sa, sw) = (self.addr[i], self.width[i]);
            if !overlap(sa, sw, addr, width) {
                continue;
            }
            if sa == addr && sw == width && self.data_known[i] {
                // Forwardable full match; the ring ascends, so the
                // youngest match wins by overwriting.
                scan.best = Some((self.seq[i], self.data[i]));
            } else {
                // Partial overlap (must drain at commit) or data
                // still pending: the load cannot issue this cycle.
                scan.blocked = true;
                return scan;
            }
        }
        scan
    }

    /// The oldest younger executed load whose address overlaps a store
    /// of `addr`/`width` at `seq` (this must be the load ring),
    /// returning its `(seq, pc)` — the memory-order violation victim.
    /// Loads that forwarded from a store *younger* than `seq` already
    /// read the correct, newer value and are skipped.
    pub fn find_violation_victim(&self, seq: u64, addr: u32, width: MemWidth) -> Option<(u64, u32)> {
        let mut lo = 0usize;
        let mut hi = self.len;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.seq[self.at(mid)] <= seq {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        for pos in lo..self.len {
            let i = self.at(pos);
            if self.addr_known[i]
                && overlap(addr, width, self.addr[i], self.width[i])
                && (!self.fwd_known[i] || self.fwd_src[i] < seq)
            {
                return Some((self.seq[i], self.pc[i]));
            }
        }
        None
    }

    /// Records a generated address.
    pub fn set_addr(&mut self, seq: u64, addr: u32) {
        if let Some(pos) = self.pos_of(seq) {
            let i = self.at(pos);
            self.addr[i] = addr;
            self.addr_known[i] = true;
        }
    }

    /// Records a store's data once its value operand is ready.
    pub fn set_data(&mut self, seq: u64, data: u32) {
        if let Some(pos) = self.pos_of(seq) {
            let i = self.at(pos);
            self.data[i] = data;
            self.data_known[i] = true;
        }
    }

    /// Records a load's execution bookkeeping: address, whether older
    /// store addresses were still unknown, and the forwarding source.
    pub fn set_load_exec(&mut self, seq: u64, addr: u32, speculative: bool, fwd_src: Option<u64>) {
        if let Some(pos) = self.pos_of(seq) {
            let i = self.at(pos);
            self.addr[i] = addr;
            self.addr_known[i] = true;
            self.speculative[i] = speculative;
            match fwd_src {
                Some(s) => {
                    self.fwd_src[i] = s;
                    self.fwd_known[i] = true;
                }
                None => self.fwd_known[i] = false,
            }
        }
    }

    /// Removes the entry for `seq`, returning its view. Commit removes
    /// in dispatch order, so the front is the common O(1) case;
    /// mid-ring removal compacts the younger suffix down one position
    /// (order-preserving, like the old `VecDeque::remove`).
    pub fn remove(&mut self, seq: u64) -> Option<LsqRef> {
        if self.len > 0 && self.seq[self.head] == seq {
            let out = self.view(self.head);
            self.head = (self.head + 1) & self.mask;
            self.len -= 1;
            return Some(out);
        }
        let pos = self.pos_of(seq)?;
        let out = self.view(self.at(pos));
        for p in pos + 1..self.len {
            let from = self.at(p);
            let to = self.at(p - 1);
            self.seq[to] = self.seq[from];
            self.pc[to] = self.pc[from];
            self.width[to] = self.width[from];
            self.addr[to] = self.addr[from];
            self.addr_known[to] = self.addr_known[from];
            self.data[to] = self.data[from];
            self.data_known[to] = self.data_known[from];
            self.speculative[to] = self.speculative[from];
            self.fwd_src[to] = self.fwd_src[from];
            self.fwd_known[to] = self.fwd_known[from];
        }
        self.len -= 1;
        Some(out)
    }

    /// Drops every entry younger than `boundary` (recovery).
    pub fn squash_younger(&mut self, boundary: u64) {
        while self.len > 0 && self.seq[self.at(self.len - 1)] > boundary {
            self.len -= 1;
        }
    }

    /// Iterates entries older than `seq` in age order (oldest first).
    /// The ring is ascending, so this is a prefix walk with early
    /// exit. The pipeline's own scans use the specialized column
    /// walks ([`LsqRing::scan_older_stores`] and friends); this
    /// generic visitor remains for tests.
    #[cfg(test)]
    pub fn for_each_older(&self, seq: u64, mut f: impl FnMut(LsqRef) -> bool) {
        for pos in 0..self.len {
            let i = self.at(pos);
            if self.seq[i] >= seq {
                break;
            }
            if !f(self.view(i)) {
                break;
            }
        }
    }

    /// Iterates entries younger than `seq` in age order (oldest
    /// first), starting at the first younger position via binary
    /// search. Like [`LsqRing::for_each_older`], tests only.
    #[cfg(test)]
    pub fn for_each_younger(&self, seq: u64, mut f: impl FnMut(LsqRef) -> bool) {
        let mut lo = 0usize;
        let mut hi = self.len;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.seq[self.at(mid)] <= seq {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        for pos in lo..self.len {
            if !f(self.view(self.at(pos))) {
                break;
            }
        }
    }

    /// Empties the ring (core reset).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

/// The split load/store queue.
#[derive(Debug)]
pub(crate) struct LsqSlab {
    /// Load ring.
    pub loads: LsqRing,
    /// Store ring.
    pub stores: LsqRing,
}

impl LsqSlab {
    /// Rings sized for the configured load/store queue capacities.
    pub fn new(ld_capacity: usize, st_capacity: usize) -> LsqSlab {
        LsqSlab { loads: LsqRing::new(ld_capacity), stores: LsqRing::new(st_capacity) }
    }

    /// Total occupancy (both rings).
    pub fn len(&self) -> usize {
        self.loads.len() + self.stores.len()
    }

    /// Drops every entry younger than `boundary` from both rings.
    pub fn squash_younger(&mut self, boundary: u64) {
        self.loads.squash_younger(boundary);
        self.stores.squash_younger(boundary);
    }

    /// Empties both rings (core reset).
    pub fn clear(&mut self) {
        self.loads.clear();
        self.stores.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(r: &LsqRing) -> Vec<u64> {
        let mut out = Vec::new();
        r.for_each_younger(0, |e| {
            out.push(e.seq);
            true
        });
        // for_each_younger(0) misses seq 0 itself; cover it.
        let mut all = Vec::new();
        r.for_each_older(u64::MAX, |e| {
            all.push(e.seq);
            true
        });
        assert!(out.len() <= all.len());
        all
    }

    #[test]
    fn push_find_remove_front() {
        let mut r = LsqRing::new(8);
        for s in [2u64, 5, 9] {
            r.push_back(s, 0x100 + s as u32, MemWidth::W);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(5).unwrap().pc, 0x105);
        assert!(r.get(3).is_none());
        let front = r.remove(2).unwrap();
        assert_eq!(front.seq, 2);
        assert_eq!(seqs(&r), vec![5, 9]);
    }

    #[test]
    fn mid_ring_removal_compacts_preserving_order_and_fields() {
        let mut r = LsqRing::new(8);
        for s in [1u64, 3, 4, 7, 8] {
            r.push_back(s, s as u32 * 10, MemWidth::H);
            r.set_addr(s, s as u32 * 100);
        }
        r.set_data(7, 0x77);
        // Remove from the middle: the younger suffix shifts down.
        assert_eq!(r.remove(4).unwrap().addr, Some(400));
        assert_eq!(seqs(&r), vec![1, 3, 7, 8]);
        // Fields of shifted entries survive compaction intact.
        let e7 = r.get(7).unwrap();
        assert_eq!((e7.pc, e7.addr, e7.data), (70, Some(700), Some(0x77)));
        assert_eq!(r.get(8).unwrap().addr, Some(800));
        // Binary search still resolves every survivor after the shift.
        assert!(r.get(4).is_none());
        assert!(r.addr_known(8));
    }

    #[test]
    fn compaction_works_across_ring_wrap() {
        let mut r = LsqRing::new(4); // physical capacity 4, mask 3
        // Advance the head so the live window wraps the ring edge.
        for s in 0..3u64 {
            r.push_back(s, 0, MemWidth::W);
        }
        r.remove(0);
        r.remove(1);
        r.push_back(3, 30, MemWidth::W);
        r.push_back(4, 40, MemWidth::W);
        r.push_back(5, 50, MemWidth::W); // window now wraps
        assert_eq!(seqs(&r), vec![2, 3, 4, 5]);
        r.remove(3); // mid removal with the suffix crossing the wrap
        assert_eq!(seqs(&r), vec![2, 4, 5]);
        assert_eq!(r.get(4).unwrap().pc, 40);
        assert_eq!(r.get(5).unwrap().pc, 50);
    }

    #[test]
    fn squash_younger_truncates_tail() {
        let mut r = LsqRing::new(8);
        for s in [1u64, 4, 6, 9] {
            r.push_back(s, 0, MemWidth::W);
        }
        r.squash_younger(5);
        assert_eq!(seqs(&r), vec![1, 4]);
        r.squash_younger(0);
        assert_eq!(r.len(), 0);
        // Reusable after a full squash.
        r.push_back(2, 0, MemWidth::B);
        assert_eq!(r.get(2).unwrap().width, MemWidth::B);
    }

    #[test]
    fn ordered_scans_clip_to_the_relevant_half() {
        let mut r = LsqRing::new(8);
        for s in [2u64, 4, 6, 8] {
            r.push_back(s, 0, MemWidth::W);
        }
        let mut older = Vec::new();
        r.for_each_older(6, |e| {
            older.push(e.seq);
            true
        });
        assert_eq!(older, vec![2, 4]);
        let mut younger = Vec::new();
        r.for_each_younger(4, |e| {
            younger.push(e.seq);
            true
        });
        assert_eq!(younger, vec![6, 8]);
        // Early exit stops the walk.
        let mut first = Vec::new();
        r.for_each_younger(2, |e| {
            first.push(e.seq);
            false
        });
        assert_eq!(first, vec![4]);
    }

    #[test]
    fn overlap_at_top_of_address_space_does_not_wrap() {
        // Regression test: the interval ends were computed with
        // `u32::wrapping_add`, so an access touching `0xffff_ffff`
        // wrapped its end to ~0 and overlapped nothing. Such
        // addresses are reachable on the wrong path (wild speculative
        // stores), where the LSQ still must see the conflict.
        assert!(overlap(0xffff_fffe, MemWidth::W, 0xffff_ffff, MemWidth::B));
        assert!(overlap(0xffff_ffff, MemWidth::B, 0xffff_fffc, MemWidth::W));
        assert!(overlap(0xffff_ffff, MemWidth::B, 0xffff_ffff, MemWidth::B));
        // Adjacent but disjoint accesses still do not overlap.
        assert!(!overlap(0xffff_fff8, MemWidth::W, 0xffff_fffc, MemWidth::W));
        assert!(!overlap(0xffff_fffc, MemWidth::W, 0x0000_0000, MemWidth::W));
        // And the everyday cases are unchanged.
        assert!(overlap(0x100, MemWidth::W, 0x102, MemWidth::H));
        assert!(!overlap(0x100, MemWidth::W, 0x104, MemWidth::W));
    }

    #[test]
    fn older_store_scan_matches_the_view_walk() {
        // The specialized column scan must agree with an equivalent
        // for_each_older walk over assembled views, across the
        // interesting store states: unknown address, partial overlap,
        // full match with/without data, and a younger full match.
        let mut r = LsqRing::new(8);
        for s in 1..=5u64 {
            r.push_back(s, 0, MemWidth::W);
        }
        r.set_addr(1, 0x100); // full match, no data yet
        // seq 2: address unknown
        r.set_addr(3, 0x200); // disjoint
        r.set_addr(4, 0x100);
        r.set_data(4, 0xbeef); // forwardable full match
        r.set_addr(5, 0x100);
        r.set_data(5, 0xdead); // younger than the load: out of scope

        // Load at seq 5 (strictly older stores are 1..=4): seq 1
        // blocks (full match, data pending).
        let scan = r.scan_older_stores(5, 0x100, MemWidth::W);
        assert!(scan.blocked);

        // Give seq 1 its data: now forwardable, and the youngest
        // match (seq 4) wins; seq 2's unknown address is flagged.
        r.set_data(1, 0x1111);
        let scan = r.scan_older_stores(5, 0x100, MemWidth::W);
        assert!(!scan.blocked);
        assert!(scan.unknown_older);
        assert_eq!(scan.best, Some((4, 0xbeef)));

        // A partially overlapping older store blocks.
        let scan = r.scan_older_stores(5, 0x102, MemWidth::H);
        assert!(scan.blocked);

        // Loads with no overlapping older stores see a clean scan.
        let scan = r.scan_older_stores(5, 0x300, MemWidth::W);
        assert!(!scan.blocked);
        assert_eq!(scan.best, None);
    }

    #[test]
    fn violation_victim_is_oldest_younger_executed_overlap() {
        let mut r = LsqRing::new(8);
        for s in [2u64, 4, 6, 8] {
            r.push_back(s, s as u32 * 10, MemWidth::W);
        }
        // seq 4: executed at 0x100 (no forwarding).
        r.set_load_exec(4, 0x100, false, None);
        // seq 6: executed at 0x100, forwarded from store seq 5.
        r.set_load_exec(6, 0x100, false, Some(5));
        // seq 8: executed at 0x100, forwarded from store seq 1.
        r.set_load_exec(8, 0x100, false, Some(1));

        // A store at seq 3 writing 0x100: the oldest younger executed
        // overlapping load is seq 4.
        assert_eq!(r.find_violation_victim(3, 0x100, MemWidth::W), Some((4, 40)));
        // A store at seq 5: seq 6 forwarded from seq 5 itself, so it
        // already read this store's (correct) value and is safe; seq 8
        // forwarded from the older seq 1 and is the victim.
        assert_eq!(r.find_violation_victim(5, 0x100, MemWidth::W), Some((8, 80)));
        // Disjoint store address: no victim.
        assert_eq!(r.find_violation_victim(3, 0x400, MemWidth::W), None);
    }

    #[test]
    fn optional_fields_default_absent() {
        let mut r = LsqRing::new(8);
        r.push_back(1, 0, MemWidth::W);
        let e = r.get(1).unwrap();
        assert_eq!(e.addr, None);
        assert_eq!(e.data, None);
        assert_eq!(e.fwd_src, None);
        assert!(!e.speculative);
        r.set_load_exec(1, 0x80, true, Some(0));
        let e = r.get(1).unwrap();
        assert_eq!(e.addr, Some(0x80));
        assert!(e.speculative);
        assert_eq!(e.fwd_src, Some(0));
    }
}
